#include "src/trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace coopfs {
namespace {

Trace MakeSampleTrace() {
  Trace trace;
  trace.push_back({0, {1, 0}, 0, EventType::kRead});
  trace.push_back({100, {1, 1}, 2, EventType::kWrite});
  trace.push_back({250, {1, 0}, 0, EventType::kDelete});
  trace.push_back({900, {3, 7}, 1, EventType::kReadAttr});
  return trace;
}

TEST(TraceIoTest, TextRoundTrip) {
  const Trace original = MakeSampleTrace();
  std::stringstream stream;
  ASSERT_TRUE(WriteTraceText(original, stream).ok());
  const Result<Trace> loaded = ReadTrace(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, original);
}

TEST(TraceIoTest, BinaryRoundTrip) {
  const Trace original = MakeSampleTrace();
  std::stringstream stream;
  ASSERT_TRUE(WriteTraceBinary(original, stream).ok());
  const Result<Trace> loaded = ReadTrace(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, original);
}

TEST(TraceIoTest, EmptyTraceRoundTripsBothFormats) {
  for (const bool binary : {false, true}) {
    std::stringstream stream;
    ASSERT_TRUE((binary ? WriteTraceBinary(Trace{}, stream) : WriteTraceText(Trace{}, stream))
                    .ok());
    const Result<Trace> loaded = ReadTrace(stream);
    // An empty text file body still has a header; a short stream errors out
    // only if even the magic is missing.
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded->empty());
  }
}

TEST(TraceIoTest, ParseLineAcceptsAllTypes) {
  for (const char* op : {"read", "write", "delete", "attr", "reboot"}) {
    const Result<TraceEvent> event = ParseTraceLine(std::string("5 1 ") + op + " 2 3");
    ASSERT_TRUE(event.ok()) << op;
    EXPECT_EQ(event->timestamp, 5);
    EXPECT_EQ(event->client, 1u);
    EXPECT_EQ(event->block, (BlockId{2, 3}));
  }
}

TEST(TraceIoTest, ParseLineSkipsCommentsAndBlanks) {
  EXPECT_EQ(ParseTraceLine("# comment").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseTraceLine("").status().code(), StatusCode::kNotFound);
}

TEST(TraceIoTest, ParseLineRejectsMalformed) {
  EXPECT_EQ(ParseTraceLine("garbage").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceLine("5 1 read 2").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceLine("5 1 frobnicate 2 3").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTraceLine("-5 1 read 2 3").status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, TextReaderRejectsTimeTravel) {
  std::stringstream stream;
  stream << "100 0 read 1 0\n50 0 read 1 1\n";
  const Result<Trace> loaded = ReadTrace(stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, BinaryReaderDetectsTruncation) {
  const Trace original = MakeSampleTrace();
  std::stringstream stream;
  ASSERT_TRUE(WriteTraceBinary(original, stream).ok());
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 5);  // Chop the last record.
  std::stringstream truncated(bytes);
  const Result<Trace> loaded = ReadTrace(truncated);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(TraceIoTest, BinaryReaderRejectsBadEventType) {
  Trace one;
  one.push_back({0, {1, 0}, 0, EventType::kRead});
  std::stringstream stream;
  ASSERT_TRUE(WriteTraceBinary(one, stream).ok());
  std::string bytes = stream.str();
  bytes[bytes.size() - 1] = 99;  // Corrupt the type byte of the only record.
  std::stringstream corrupted(bytes);
  const Result<Trace> loaded = ReadTrace(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(TraceIoTest, ReadRejectsTinyStream) {
  std::stringstream stream("abc");
  EXPECT_EQ(ReadTrace(stream).status().code(), StatusCode::kDataLoss);
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = MakeSampleTrace();
  const std::string text_path = ::testing::TempDir() + "/coopfs_trace_test.txt";
  const std::string bin_path = ::testing::TempDir() + "/coopfs_trace_test.bin";
  ASSERT_TRUE(WriteTraceTextFile(original, text_path).ok());
  ASSERT_TRUE(WriteTraceBinaryFile(original, bin_path).ok());
  const Result<Trace> text_loaded = ReadTraceFile(text_path);
  const Result<Trace> bin_loaded = ReadTraceFile(bin_path);
  ASSERT_TRUE(text_loaded.ok());
  ASSERT_TRUE(bin_loaded.ok());
  EXPECT_EQ(*text_loaded, original);
  EXPECT_EQ(*bin_loaded, original);
}

TEST(TraceIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadTraceFile("/nonexistent/coopfs.trace").status().code(), StatusCode::kIoError);
}

class TraceIoRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: random traces round-trip bit-exactly through both formats.
TEST_P(TraceIoRoundTripProperty, RandomTracesRoundTrip) {
  Rng rng(GetParam());
  Trace trace;
  Micros clock = 0;
  for (int i = 0; i < 500; ++i) {
    clock += static_cast<Micros>(rng.NextBelow(10'000));
    TraceEvent event;
    event.timestamp = clock;
    event.client = static_cast<ClientId>(rng.NextBelow(64));
    event.type = static_cast<EventType>(rng.NextBelow(kMaxEventType + 1));
    event.block = BlockId{static_cast<FileId>(rng.NextBelow(1000)),
                          static_cast<BlockIndex>(rng.NextBelow(100))};
    trace.push_back(event);
  }
  for (const bool binary : {false, true}) {
    std::stringstream stream;
    ASSERT_TRUE((binary ? WriteTraceBinary(trace, stream) : WriteTraceText(trace, stream)).ok());
    const Result<Trace> loaded = ReadTrace(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(*loaded, trace) << (binary ? "binary" : "text");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoRoundTripProperty,
                         ::testing::Values(1ull, 2ull, 42ull, 1994ull));

}  // namespace
}  // namespace coopfs
