// Robustness "fuzz" tests: arbitrarily corrupted trace bytes must never
// crash the readers — every outcome is either a successful parse or a clean
// Status error.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/trace/trace_io.h"

namespace coopfs {
namespace {

Trace MakeTrace(Rng& rng, int events) {
  Trace trace;
  Micros clock = 0;
  for (int i = 0; i < events; ++i) {
    clock += static_cast<Micros>(rng.NextBelow(1000));
    TraceEvent event;
    event.timestamp = clock;
    event.client = static_cast<ClientId>(rng.NextBelow(16));
    event.type = static_cast<EventType>(rng.NextBelow(kMaxEventType + 1));
    event.block = BlockId{static_cast<FileId>(rng.NextBelow(64)),
                          static_cast<BlockIndex>(rng.NextBelow(32))};
    trace.push_back(event);
  }
  return trace;
}

class TraceCorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceCorruptionFuzz, CorruptedBinaryNeverCrashes) {
  Rng rng(GetParam());
  const Trace trace = MakeTrace(rng, 100);
  std::stringstream clean;
  ASSERT_TRUE(WriteTraceBinary(trace, clean).ok());
  const std::string original = clean.str();

  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = original;
    // Corrupt 1-8 random bytes, or truncate, or extend.
    switch (rng.NextBelow(3)) {
      case 0: {
        const std::uint64_t flips = 1 + rng.NextBelow(8);
        for (std::uint64_t f = 0; f < flips; ++f) {
          bytes[rng.NextBelow(bytes.size())] = static_cast<char>(rng.NextBelow(256));
        }
        break;
      }
      case 1:
        bytes.resize(rng.NextBelow(bytes.size() + 1));
        break;
      case 2:
        bytes.append(static_cast<std::size_t>(rng.NextBelow(64)), '\x7f');
        break;
    }
    std::stringstream stream(bytes);
    const Result<Trace> loaded = ReadTrace(stream);  // Must not crash/hang.
    if (loaded.ok()) {
      // If it parsed, the result must at least be structurally valid.
      Micros last = 0;
      for (const TraceEvent& event : *loaded) {
        ASSERT_GE(event.timestamp, last);
        last = event.timestamp;
      }
    }
  }
}

TEST_P(TraceCorruptionFuzz, CorruptedTextNeverCrashes) {
  Rng rng(GetParam() + 17);
  const Trace trace = MakeTrace(rng, 50);
  std::stringstream clean;
  ASSERT_TRUE(WriteTraceText(trace, clean).ok());
  const std::string original = clean.str();

  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = original;
    const std::uint64_t flips = 1 + rng.NextBelow(16);
    for (std::uint64_t f = 0; f < flips; ++f) {
      bytes[rng.NextBelow(bytes.size())] = static_cast<char>(rng.NextBelow(128));
    }
    std::stringstream stream(bytes);
    const Result<Trace> loaded = ReadTrace(stream);
    (void)loaded;  // Either outcome is fine; surviving is the assertion.
  }
}

TEST_P(TraceCorruptionFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() + 99);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bytes(rng.NextBelow(4096), '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.NextBelow(256));
    }
    std::stringstream stream(bytes);
    const Result<Trace> loaded = ReadTrace(stream);
    (void)loaded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceCorruptionFuzz, ::testing::Values(1ull, 7ull, 31ull));

}  // namespace
}  // namespace coopfs
