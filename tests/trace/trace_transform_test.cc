#include "src/trace/trace_transform.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TraceEvent E(Micros t, ClientId c, FileId f, EventType type = EventType::kRead) {
  TraceEvent event;
  event.timestamp = t;
  event.client = c;
  event.type = type;
  event.block = BlockId{f, 0};
  return event;
}

Trace Sample() {
  return {E(0, 0, 1), E(100, 1, 2), E(200, 0, 3), E(300, 2, 1), E(400, 1, 4)};
}

TEST(TraceTransformTest, FilterByPredicate) {
  const Trace out = FilterTrace(Sample(), [](const TraceEvent& event) {
    return event.block.file == 1;
  });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].timestamp, 0);
  EXPECT_EQ(out[1].timestamp, 300);
}

TEST(TraceTransformTest, FilterToClients) {
  const Trace out = FilterTraceToClients(Sample(), {0, 2});
  ASSERT_EQ(out.size(), 3u);
  for (const TraceEvent& event : out) {
    EXPECT_TRUE(event.client == 0 || event.client == 2);
  }
}

TEST(TraceTransformTest, SliceByTimeIsHalfOpen) {
  const Trace out = SliceTraceByTime(Sample(), 100, 300);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front().timestamp, 100);
  EXPECT_EQ(out.back().timestamp, 200);
}

TEST(TraceTransformTest, HeadClampsToSize) {
  EXPECT_EQ(TraceHead(Sample(), 2).size(), 2u);
  EXPECT_EQ(TraceHead(Sample(), 99).size(), 5u);
  EXPECT_TRUE(TraceHead(Sample(), 0).empty());
}

TEST(TraceTransformTest, CompactClientIdsRenumbersDensely) {
  Trace sparse = {E(0, 40, 1), E(1, 7, 2), E(2, 40, 3), E(3, 99, 4)};
  const Trace out = CompactClientIds(sparse);
  EXPECT_EQ(out[0].client, 0u);  // 40 -> 0 (first seen).
  EXPECT_EQ(out[1].client, 1u);  // 7 -> 1.
  EXPECT_EQ(out[2].client, 0u);  // 40 again.
  EXPECT_EQ(out[3].client, 2u);  // 99 -> 2.
}

TEST(TraceTransformTest, MergePreservesTimeOrderAndOffsetsClients) {
  Trace a = {E(0, 0, 1), E(200, 0, 2)};
  Trace b = {E(100, 0, 3), E(300, 1, 4)};
  const Trace merged = MergeTraces(a, b, 10);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(ValidateTrace(merged).ok());
  EXPECT_EQ(merged[1].client, 10u);  // b's client 0 offset to 10.
  EXPECT_EQ(merged[3].client, 11u);
}

TEST(TraceTransformTest, MergeWithEmpty) {
  const Trace a = Sample();
  EXPECT_EQ(MergeTraces(a, {}, 0), a);
  EXPECT_EQ(MergeTraces({}, a, 0), a);
}

TEST(TraceTransformTest, ValidateCatchesTimeTravel) {
  Trace bad = {E(100, 0, 1), E(50, 0, 2)};
  EXPECT_EQ(ValidateTrace(bad).code(), StatusCode::kInvalidArgument);
}

TEST(TraceTransformTest, ValidateCatchesClientOutOfRange) {
  Trace bad = {E(0, 7, 1)};
  EXPECT_EQ(ValidateTrace(bad, 4).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(ValidateTrace(bad, 8).ok());
  EXPECT_TRUE(ValidateTrace(bad).ok());  // 0 = unbounded.
}

TEST(TraceTransformTest, SliceThenCompactComposes) {
  const Trace out = CompactClientIds(SliceTraceByTime(Sample(), 300, 500));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].client, 0u);
  EXPECT_EQ(out[1].client, 1u);
}

}  // namespace
}  // namespace coopfs
