#include "src/trace/workload.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/trace/trace_stats.h"

namespace coopfs {
namespace {

TEST(WorkloadTest, DeterministicForSameConfig) {
  const WorkloadConfig config = SmallTestWorkloadConfig(123);
  const Trace a = GenerateWorkload(config);
  const Trace b = GenerateWorkload(config);
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, DifferentSeedsGiveDifferentTraces) {
  const Trace a = GenerateWorkload(SmallTestWorkloadConfig(1));
  const Trace b = GenerateWorkload(SmallTestWorkloadConfig(2));
  EXPECT_NE(a, b);
}

TEST(WorkloadTest, ProducesRequestedEventCount) {
  WorkloadConfig config = SmallTestWorkloadConfig(5);
  config.num_events = 5000;
  const Trace trace = GenerateWorkload(config);
  // Deletes are emitted in addition to the budgeted read/write accesses.
  EXPECT_GE(trace.size(), config.num_events);
  EXPECT_LE(trace.size(), config.num_events + config.num_events / 10);
}

TEST(WorkloadTest, TimestampsNonDecreasing) {
  const Trace trace = GenerateWorkload(SmallTestWorkloadConfig(7));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_LE(trace[i - 1].timestamp, trace[i].timestamp) << "at event " << i;
  }
}

TEST(WorkloadTest, ClientIdsInRange) {
  const WorkloadConfig config = SmallTestWorkloadConfig(7);
  const Trace trace = GenerateWorkload(config);
  std::unordered_set<ClientId> seen;
  for (const TraceEvent& event : trace) {
    ASSERT_LT(event.client, config.num_clients);
    seen.insert(event.client);
  }
  // All clients participate.
  EXPECT_EQ(seen.size(), config.num_clients);
}

TEST(WorkloadTest, DeletedFilesAreNeverTouchedAgain) {
  const Trace trace = GenerateWorkload(SmallTestWorkloadConfig(11));
  std::unordered_set<FileId> deleted;
  for (const TraceEvent& event : trace) {
    if (event.type == EventType::kDelete) {
      // A file is deleted at most once.
      ASSERT_TRUE(deleted.insert(event.block.file).second)
          << "double delete of file " << event.block.file;
    } else {
      ASSERT_FALSE(deleted.contains(event.block.file))
          << "file " << event.block.file << " used after delete";
    }
  }
  EXPECT_FALSE(deleted.empty()) << "temp class should produce deletes";
}

TEST(WorkloadTest, BlockIndicesWithinFileSize) {
  // Block indices for any file never exceed the maximum configured file
  // size across classes.
  WorkloadConfig config = SmallTestWorkloadConfig(13);
  std::uint32_t max_blocks = 0;
  for (const auto& cls : config.classes) {
    max_blocks = std::max(max_blocks, cls.max_blocks);
  }
  const Trace trace = GenerateWorkload(config);
  for (const TraceEvent& event : trace) {
    ASSERT_LT(event.block.block, max_blocks);
  }
}

TEST(WorkloadTest, MixContainsReadsAndWrites) {
  const TraceStats stats = ComputeTraceStats(GenerateWorkload(SmallTestWorkloadConfig(17)));
  EXPECT_GT(stats.num_reads, stats.num_writes);  // Read-dominated, like Sprite.
  EXPECT_GT(stats.num_writes, 0u);
}

TEST(WorkloadTest, ActivitySkewMakesSomeClientsMuchBusier) {
  WorkloadConfig config = SmallTestWorkloadConfig(19);
  config.num_clients = 16;
  config.num_events = 50'000;
  config.activity_zipf_s = 1.0;
  const TraceStats stats = ComputeTraceStats(GenerateWorkload(config));
  std::uint64_t busiest = 0;
  std::uint64_t quietest = ~0ull;
  for (const auto& [client, reads] : stats.reads_per_client) {
    busiest = std::max(busiest, reads);
    quietest = std::min(quietest, reads);
  }
  EXPECT_GT(busiest, quietest * 4) << "expected strong activity skew";
}

TEST(WorkloadTest, SpriteConfigMatchesPaperScale) {
  const WorkloadConfig config = SpriteWorkloadConfig();
  EXPECT_EQ(config.num_clients, 42u);
  EXPECT_EQ(config.num_events, 700'000u);
  EXPECT_EQ(config.duration, static_cast<Micros>(2) * 24 * 3600 * 1'000'000);
  EXPECT_FALSE(config.emit_read_attrs);
  EXPECT_EQ(config.snoop_filter_blocks, 0u);
}

TEST(WorkloadTest, AuspexConfigMatchesPaperScale) {
  const WorkloadConfig config = AuspexWorkloadConfig();
  EXPECT_EQ(config.num_clients, 237u);
  EXPECT_EQ(config.num_events, 5'000'000u);
  EXPECT_TRUE(config.emit_read_attrs);
  EXPECT_GT(config.snoop_filter_blocks, 0u);
}

TEST(WorkloadTest, SnoopedTraceSuppressesImmediateRereads) {
  // With a snoop filter, a read of a block never re-appears as a read until
  // the block could have left the filter (i.e. no two consecutive visible
  // reads of the same block by the same client without eviction pressure).
  WorkloadConfig config = SmallTestWorkloadConfig(23);
  config.snoop_filter_blocks = 64;
  config.emit_read_attrs = true;
  config.num_events = 10'000;
  const Trace trace = GenerateWorkload(config);

  // A visible read means the block was absent from the client's 64-block
  // local filter. Within any window of fewer than 64 filter touches (reads
  // and writes) the filter cannot have evicted, so a visible re-read inside
  // such a window would prove the filter is broken.
  struct Window {
    std::unordered_set<std::uint64_t> touched;
    int touches = 0;
  };
  std::unordered_map<ClientId, Window> windows;
  std::size_t attrs = 0;
  for (const TraceEvent& event : trace) {
    if (event.type == EventType::kReadAttr) {
      ++attrs;
      continue;
    }
    if (event.type == EventType::kDelete) {
      continue;  // Deleted files never recur (checked elsewhere).
    }
    Window& window = windows[event.client];
    if (event.type == EventType::kRead) {
      ASSERT_FALSE(window.touched.contains(event.block.Pack()))
          << "visible re-read while the snoop filter cannot have evicted";
    }
    window.touched.insert(event.block.Pack());
    if (++window.touches >= 60) {  // Just under the 64-block capacity.
      window = Window{};
    }
  }
  EXPECT_GT(attrs, 0u) << "snooped mode should surface read-attribute hints";
}

TEST(LeffWorkloadTest, DeterministicAndWellFormed) {
  LeffWorkloadConfig config;
  config.num_events = 10'000;
  const Trace a = GenerateLeffWorkload(config);
  const Trace b = GenerateLeffWorkload(config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), config.num_events);
  for (const TraceEvent& event : a) {
    ASSERT_EQ(event.type, EventType::kRead);
    ASSERT_LT(event.client, config.num_clients);
    ASSERT_LT(event.block.file, config.num_objects);
    ASSERT_EQ(event.block.block, 0u);
  }
}

TEST(LeffWorkloadTest, SharedFractionControlsOverlap) {
  // With shared_fraction = 1 every client draws from the same permutation,
  // so the most popular object overall should dominate; with 0, popularity
  // spreads across per-client favourites.
  LeffWorkloadConfig shared;
  shared.shared_fraction = 1.0;
  shared.num_events = 20'000;
  LeffWorkloadConfig private_only = shared;
  private_only.shared_fraction = 0.0;

  auto top_object_count = [](const Trace& trace) {
    std::unordered_map<FileId, std::uint64_t> counts;
    for (const TraceEvent& event : trace) {
      ++counts[event.block.file];
    }
    std::uint64_t top = 0;
    for (const auto& [file, count] : counts) {
      top = std::max(top, count);
    }
    return top;
  };

  EXPECT_GT(top_object_count(GenerateLeffWorkload(shared)),
            top_object_count(GenerateLeffWorkload(private_only)) * 2);
}

class WorkloadSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: every generated trace is well-formed regardless of seed.
TEST_P(WorkloadSeedProperty, WellFormedForAnySeed) {
  WorkloadConfig config = SmallTestWorkloadConfig(GetParam());
  config.num_events = 3000;
  const Trace trace = GenerateWorkload(config);
  EXPECT_GE(trace.size(), config.num_events);
  Micros last = 0;
  for (const TraceEvent& event : trace) {
    ASSERT_GE(event.timestamp, last);
    last = event.timestamp;
    ASSERT_LT(event.client, config.num_clients);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeedProperty,
                         ::testing::Values(0ull, 1ull, 42ull, 777ull, 123456789ull));

}  // namespace
}  // namespace coopfs
