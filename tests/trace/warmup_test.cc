#include "src/trace/warmup.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(WarmupTest, SpriteMatchesThePaper) {
  // §3: the first 400,000 of the 700,000 Sprite accesses are warm-up.
  EXPECT_EQ(SpriteWarmupEvents(700'000), 400'000u);
}

TEST(WarmupTest, AuspexMatchesThePaper) {
  // §4.4: the first million of the 5 million visible events are warm-up.
  EXPECT_EQ(AuspexWarmupEvents(5'000'000), 1'000'000u);
}

TEST(WarmupTest, ScaledRunsKeepTheFraction) {
  // Shortened benches (e.g. --events 30000 in tests) warm the same fraction.
  EXPECT_EQ(SpriteWarmupEvents(70'000), 40'000u);
  EXPECT_EQ(SpriteWarmupEvents(7), 4u);
  EXPECT_EQ(AuspexWarmupEvents(50'000), 10'000u);
  EXPECT_EQ(AuspexWarmupEvents(5), 1u);
}

TEST(WarmupTest, SmallCountsTruncateTowardZero) {
  EXPECT_EQ(SpriteWarmupEvents(0), 0u);
  EXPECT_EQ(SpriteWarmupEvents(1), 0u);
  EXPECT_EQ(AuspexWarmupEvents(0), 0u);
  EXPECT_EQ(AuspexWarmupEvents(4), 0u);
}

TEST(WarmupTest, UsableInConstantExpressions) {
  static_assert(SpriteWarmupEvents(700'000) == 400'000);
  static_assert(AuspexWarmupEvents(5'000'000) == 1'000'000);
}

}  // namespace
}  // namespace coopfs
