#include "src/trace/trace_stats.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(TraceStatsTest, EmptyTrace) {
  const TraceStats stats = ComputeTraceStats({});
  EXPECT_EQ(stats.num_events, 0u);
  EXPECT_EQ(stats.num_clients, 0u);
  EXPECT_EQ(stats.duration, 0);
  EXPECT_EQ(stats.FootprintBytes(), 0u);
}

TEST(TraceStatsTest, CountsByType) {
  Trace trace;
  trace.push_back({0, {1, 0}, 0, EventType::kRead});
  trace.push_back({10, {1, 0}, 1, EventType::kRead});
  trace.push_back({20, {1, 1}, 0, EventType::kWrite});
  trace.push_back({30, {2, 0}, 0, EventType::kDelete});
  trace.push_back({40, {3, 0}, 2, EventType::kReadAttr});
  trace.push_back({50, {0, 0}, 1, EventType::kReboot});
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.num_events, 6u);
  EXPECT_EQ(stats.num_reads, 2u);
  EXPECT_EQ(stats.num_writes, 1u);
  EXPECT_EQ(stats.num_deletes, 1u);
  EXPECT_EQ(stats.num_attrs, 1u);
  EXPECT_EQ(stats.num_reboots, 1u);
  EXPECT_EQ(stats.num_clients, 3u);
  EXPECT_EQ(stats.duration, 50);
}

TEST(TraceStatsTest, UniqueBlockAccounting) {
  Trace trace;
  trace.push_back({0, {1, 0}, 0, EventType::kRead});
  trace.push_back({1, {1, 0}, 1, EventType::kRead});   // Same block again.
  trace.push_back({2, {1, 1}, 0, EventType::kWrite});  // Write-only block.
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.unique_blocks, 2u);
  EXPECT_EQ(stats.unique_read_blocks, 1u);
  EXPECT_EQ(stats.unique_files, 1u);
  EXPECT_EQ(stats.FootprintBytes(), 2 * kBlockSizeBytes);
}

TEST(TraceStatsTest, PerClientReads) {
  Trace trace;
  trace.push_back({0, {1, 0}, 0, EventType::kRead});
  trace.push_back({1, {1, 1}, 0, EventType::kRead});
  trace.push_back({2, {1, 2}, 1, EventType::kRead});
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.ReadsFor(0), 2u);
  EXPECT_EQ(stats.ReadsFor(1), 1u);
  EXPECT_EQ(stats.ReadsFor(7), 0u);  // Never read.
}

// Regression: reads_per_client is emitted sorted by client id no matter the
// order clients appear in the trace (the accumulator is a hash map whose
// iteration order must not leak).
TEST(TraceStatsTest, PerClientReadsEmittedSortedByClientId) {
  Trace trace;
  const ClientId clients[] = {9, 3, 27, 0, 14, 3, 9, 1};
  Micros t = 0;
  for (ClientId c : clients) {
    trace.push_back({t++, {1, 0}, c, EventType::kRead});
  }
  const TraceStats stats = ComputeTraceStats(trace);
  ASSERT_EQ(stats.reads_per_client.size(), 6u);
  for (std::size_t i = 1; i < stats.reads_per_client.size(); ++i) {
    EXPECT_LT(stats.reads_per_client[i - 1].first, stats.reads_per_client[i].first);
  }
  EXPECT_EQ(stats.reads_per_client.front().first, 0u);
  EXPECT_EQ(stats.reads_per_client.back().first, 27u);
  EXPECT_EQ(stats.ReadsFor(3), 2u);
  EXPECT_EQ(stats.ReadsFor(9), 2u);
}

TEST(TraceStatsTest, ToStringMentionsCounts) {
  Trace trace;
  trace.push_back({0, {1, 0}, 0, EventType::kRead});
  const std::string text = ComputeTraceStats(trace).ToString();
  EXPECT_NE(text.find("reads 1"), std::string::npos);
}

}  // namespace
}  // namespace coopfs
