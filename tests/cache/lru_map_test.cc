#include "src/cache/lru_map.h"

#include <string>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(LruMapTest, InsertFindTouch) {
  LruMap<int, std::string> map(2);
  EXPECT_FALSE(map.Insert(1, "one").has_value());
  EXPECT_TRUE(map.Contains(1));
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), "one");
  EXPECT_EQ(map.Find(2), nullptr);
  EXPECT_EQ(map.Touch(2), nullptr);
}

TEST(LruMapTest, EvictsLruOnOverflow) {
  LruMap<int, int> map(2);
  map.Insert(1, 10);
  map.Insert(2, 20);
  const auto evicted = map.Insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
  EXPECT_EQ(evicted->second, 10);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_FALSE(map.Contains(1));
}

TEST(LruMapTest, TouchRenewsAgainstEviction) {
  LruMap<int, int> map(2);
  map.Insert(1, 10);
  map.Insert(2, 20);
  EXPECT_NE(map.Touch(1), nullptr);
  const auto evicted = map.Insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);  // 1 was renewed; 2 became LRU.
}

TEST(LruMapTest, InsertExistingReplacesAndRenews) {
  LruMap<int, int> map(2);
  map.Insert(1, 10);
  map.Insert(2, 20);
  EXPECT_FALSE(map.Insert(1, 11).has_value());
  EXPECT_EQ(*map.Find(1), 11);
  const auto evicted = map.Insert(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
}

TEST(LruMapTest, EraseRemoves) {
  LruMap<int, int> map(2);
  map.Insert(1, 10);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.size(), 0u);
}

TEST(LruMapTest, LruEntryPeeksOldest) {
  LruMap<int, int> map(3);
  EXPECT_FALSE(map.LruEntry().has_value());
  map.Insert(1, 10);
  map.Insert(2, 20);
  ASSERT_TRUE(map.LruEntry().has_value());
  EXPECT_EQ(map.LruEntry()->first, 1);
}

TEST(LruMapTest, ZeroCapacity) {
  LruMap<int, int> map(0);
  EXPECT_FALSE(map.CanInsert());
  EXPECT_TRUE(map.Full());
}

TEST(LruMapTest, EraseIfRemovesMatchesOnly) {
  LruMap<int, int> map(8);
  for (int k = 0; k < 8; ++k) {
    map.Insert(k, k % 2);  // Even keys -> value 0, odd -> 1.
  }
  const std::size_t removed = map.EraseIf([](int, int value) { return value == 1; });
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(map.size(), 4u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(map.Contains(k), k % 2 == 0) << k;
  }
  // Survivors keep working LRU links.
  map.Insert(100, 0);
  EXPECT_TRUE(map.Contains(100));
}

TEST(LruMapTest, EraseIfNothingMatches) {
  LruMap<int, int> map(4);
  map.Insert(1, 1);
  EXPECT_EQ(map.EraseIf([](int, int) { return false; }), 0u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(LruMapTest, ClearResets) {
  LruMap<int, int> map(2);
  map.Insert(1, 10);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  map.Insert(2, 20);
  EXPECT_TRUE(map.Contains(2));
}

class LruMapProperty : public ::testing::TestWithParam<std::size_t> {};

// Property: LruMap holds exactly the `capacity` most recently inserted or
// touched keys.
TEST_P(LruMapProperty, NeverExceedsCapacityAndKeepsRecency) {
  const std::size_t capacity = GetParam();
  LruMap<unsigned, unsigned> map(capacity);
  unsigned state = 77;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 2000; ++step) {
    const unsigned key = next() % 30;
    if (next() % 2 == 0) {
      map.Insert(key, key);
    } else {
      map.Touch(key);
    }
    ASSERT_LE(map.size(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruMapProperty, ::testing::Values(1, 3, 10, 29, 64));

}  // namespace
}  // namespace coopfs
