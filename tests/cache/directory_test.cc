#include "src/cache/directory.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

BlockId B(std::uint32_t file, std::uint32_t block = 0) { return BlockId{file, block}; }

TEST(DirectoryTest, StartsEmpty) {
  Directory dir;
  EXPECT_EQ(dir.HolderCount(B(1)), 0u);
  EXPECT_TRUE(dir.Holders(B(1)).empty());
  EXPECT_EQ(dir.NumTrackedBlocks(), 0u);
}

TEST(DirectoryTest, AddAndRemoveHolders) {
  Directory dir;
  dir.AddHolder(B(1), 5);
  dir.AddHolder(B(1), 9);
  EXPECT_EQ(dir.HolderCount(B(1)), 2u);
  dir.RemoveHolder(B(1), 5);
  EXPECT_EQ(dir.HolderCount(B(1)), 1u);
  EXPECT_EQ(dir.Holders(B(1)).front(), 9u);
  dir.RemoveHolder(B(1), 9);
  EXPECT_EQ(dir.HolderCount(B(1)), 0u);
}

TEST(DirectoryTest, AddHolderIsIdempotent) {
  Directory dir;
  dir.AddHolder(B(1), 5);
  dir.AddHolder(B(1), 5);
  EXPECT_EQ(dir.HolderCount(B(1)), 1u);
}

TEST(DirectoryTest, RemoveNonHolderIsNoOp) {
  Directory dir;
  dir.AddHolder(B(1), 5);
  dir.RemoveHolder(B(1), 6);
  dir.RemoveHolder(B(2), 5);
  EXPECT_EQ(dir.HolderCount(B(1)), 1u);
}

TEST(DirectoryTest, SingletDetection) {
  Directory dir;
  dir.AddHolder(B(1), 5);
  EXPECT_TRUE(dir.IsSingletHeldBy(B(1), 5));
  EXPECT_FALSE(dir.IsSingletHeldBy(B(1), 6));
  EXPECT_FALSE(dir.IsDuplicated(B(1)));
  dir.AddHolder(B(1), 6);
  EXPECT_FALSE(dir.IsSingletHeldBy(B(1), 5));
  EXPECT_TRUE(dir.IsDuplicated(B(1)));
}

TEST(DirectoryTest, PickHolderExcludesRequester) {
  Directory dir;
  Rng rng(1);
  dir.AddHolder(B(1), 3);
  EXPECT_EQ(dir.PickHolder(B(1), 3, rng), kNoClient);  // Only holder excluded.
  dir.AddHolder(B(1), 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dir.PickHolder(B(1), 3, rng), 4u);
  }
}

TEST(DirectoryTest, PickHolderOfUntrackedBlock) {
  Directory dir;
  Rng rng(1);
  EXPECT_EQ(dir.PickHolder(B(9), 0, rng), kNoClient);
}

TEST(DirectoryTest, PickHolderCoversAllEligible) {
  Directory dir;
  Rng rng(2);
  for (ClientId c = 0; c < 5; ++c) {
    dir.AddHolder(B(1), c);
  }
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 500; ++i) {
    const ClientId picked = dir.PickHolder(B(1), 2, rng);
    ASSERT_LT(picked, 5u);
    ASSERT_NE(picked, 2u);
    ++seen[picked];
  }
  for (ClientId c = 0; c < 5; ++c) {
    if (c == 2) {
      EXPECT_EQ(seen[c], 0);
    } else {
      EXPECT_GT(seen[c], 50);  // Roughly uniform over 4 eligible holders.
    }
  }
}

TEST(DirectoryTest, BlocksOfFileTracksLiveBlocks) {
  Directory dir;
  dir.AddHolder(B(7, 0), 1);
  dir.AddHolder(B(7, 1), 2);
  dir.AddHolder(B(8, 0), 1);
  std::vector<BlockId> blocks = dir.BlocksOfFile(7);
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(blocks, (std::vector<BlockId>{B(7, 0), B(7, 1)}));

  dir.RemoveHolder(B(7, 1), 2);
  blocks = dir.BlocksOfFile(7);
  EXPECT_EQ(blocks, (std::vector<BlockId>{B(7, 0)}));
}

TEST(DirectoryTest, ReAddingAfterEmptyDoesNotDuplicateFileIndex) {
  Directory dir;
  dir.AddHolder(B(7, 0), 1);
  dir.RemoveHolder(B(7, 0), 1);
  dir.AddHolder(B(7, 0), 2);
  EXPECT_EQ(dir.BlocksOfFile(7).size(), 1u);
}

TEST(DirectoryTest, EraseBlockDropsAllState) {
  Directory dir;
  dir.AddHolder(B(7, 0), 1);
  dir.AddHolder(B(7, 0), 2);
  dir.EraseBlock(B(7, 0));
  EXPECT_EQ(dir.HolderCount(B(7, 0)), 0u);
  EXPECT_TRUE(dir.BlocksOfFile(7).empty());
  dir.EraseBlock(B(7, 0));  // Idempotent.
}

TEST(DirectoryTest, ForEachBlockSkipsEmptyHolderSets) {
  Directory dir;
  dir.AddHolder(B(1), 1);
  dir.AddHolder(B(2), 2);
  dir.RemoveHolder(B(2), 2);
  int visited = 0;
  dir.ForEachBlock([&](BlockId block, const Directory::HolderList& holders) {
    EXPECT_EQ(block, B(1));
    EXPECT_EQ(holders.size(), 1u);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

class DirectoryProperty : public ::testing::TestWithParam<unsigned> {};

// Property: holder counts always equal the reference multimap's.
TEST_P(DirectoryProperty, MatchesReferenceModel) {
  Directory dir;
  std::map<std::uint64_t, std::set<ClientId>> reference;
  unsigned state = GetParam();
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 4000; ++step) {
    const BlockId block{next() % 20, next() % 4};
    const ClientId client = next() % 8;
    switch (next() % 3) {
      case 0:
        dir.AddHolder(block, client);
        reference[block.Pack()].insert(client);
        break;
      case 1:
        dir.RemoveHolder(block, client);
        reference[block.Pack()].erase(client);
        break;
      case 2:
        dir.EraseBlock(block);
        reference[block.Pack()].clear();
        break;
    }
    ASSERT_EQ(dir.HolderCount(block), reference[block.Pack()].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryProperty, ::testing::Values(1u, 17u, 333u, 9999u));

}  // namespace
}  // namespace coopfs
