#include "src/cache/block_cache.h"

#include <vector>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

BlockId B(std::uint32_t file, std::uint32_t block = 0) { return BlockId{file, block}; }

TEST(BlockCacheTest, StartsEmpty) {
  BlockCache cache(4);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_FALSE(cache.Full());
  EXPECT_FALSE(cache.Contains(B(1)));
  EXPECT_EQ(cache.Find(B(1)), nullptr);
  EXPECT_EQ(cache.Lru(), nullptr);
  EXPECT_EQ(cache.Mru(), nullptr);
}

TEST(BlockCacheTest, InsertAndFind) {
  BlockCache cache(4);
  CacheEntry& entry = cache.Insert(B(1, 2));
  EXPECT_EQ(entry.block, B(1, 2));
  EXPECT_TRUE(cache.Contains(B(1, 2)));
  EXPECT_EQ(cache.Find(B(1, 2)), &entry);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCacheTest, LruOrderFollowsInsertion) {
  BlockCache cache(3);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Insert(B(3));
  EXPECT_EQ(cache.Lru()->block, B(1));
  EXPECT_EQ(cache.Mru()->block, B(3));
}

TEST(BlockCacheTest, TouchRenews) {
  BlockCache cache(3);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Insert(B(3));
  EXPECT_NE(cache.Touch(B(1)), nullptr);
  EXPECT_EQ(cache.Mru()->block, B(1));
  EXPECT_EQ(cache.Lru()->block, B(2));
  EXPECT_EQ(cache.Touch(B(99)), nullptr);
}

TEST(BlockCacheTest, FindDoesNotRenew) {
  BlockCache cache(3);
  cache.Insert(B(1));
  cache.Insert(B(2));
  EXPECT_NE(cache.Find(B(1)), nullptr);
  EXPECT_EQ(cache.Lru()->block, B(1));
}

TEST(BlockCacheTest, EvictLruReturnsVictim) {
  BlockCache cache(2);
  cache.Insert(B(1)).recirculation_count = 2;
  cache.Insert(B(2));
  const std::optional<CacheEntry> victim = cache.EvictLru();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->block, B(1));
  EXPECT_EQ(victim->recirculation_count, 2);  // Metadata survives the copy.
  EXPECT_FALSE(cache.Contains(B(1)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCacheTest, EvictLruOnEmptyIsNullopt) {
  BlockCache cache(2);
  EXPECT_FALSE(cache.EvictLru().has_value());
}

TEST(BlockCacheTest, EraseRemoves) {
  BlockCache cache(2);
  cache.Insert(B(1));
  EXPECT_TRUE(cache.Erase(B(1)));
  EXPECT_FALSE(cache.Erase(B(1)));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCacheTest, ZeroCapacityRejectsInsertion) {
  BlockCache cache(0);
  EXPECT_FALSE(cache.CanInsert());
  EXPECT_TRUE(cache.Full());
}

TEST(BlockCacheTest, MoveToLruAndMru) {
  BlockCache cache(3);
  cache.Insert(B(1));
  CacheEntry& two = cache.Insert(B(2));
  cache.Insert(B(3));
  cache.MoveToLru(&two);
  EXPECT_EQ(cache.Lru()->block, B(2));
  cache.MoveToMru(&two);
  EXPECT_EQ(cache.Mru()->block, B(2));
}

TEST(BlockCacheTest, ScanFromLruVisitsInLruOrder) {
  BlockCache cache(4);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Insert(B(3));
  std::vector<BlockId> visited;
  cache.ScanFromLru([&](CacheEntry& entry) {
    visited.push_back(entry.block);
    return false;
  });
  EXPECT_EQ(visited, (std::vector<BlockId>{B(1), B(2), B(3)}));
}

TEST(BlockCacheTest, ScanFromLruStopsOnMatch) {
  BlockCache cache(4);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Insert(B(3));
  CacheEntry* found = cache.ScanFromLru([](CacheEntry& entry) { return entry.block == B(2); });
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->block, B(2));
}

TEST(BlockCacheTest, ScanFromLruRespectsLimit) {
  BlockCache cache(4);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Insert(B(3));
  int seen = 0;
  CacheEntry* found = cache.ScanFromLru(
      [&](CacheEntry&) {
        ++seen;
        return false;
      },
      2);
  EXPECT_EQ(found, nullptr);
  EXPECT_EQ(seen, 2);
}

TEST(BlockCacheTest, ForEachEntryVisitsAll) {
  BlockCache cache(4);
  cache.Insert(B(1));
  cache.Insert(B(2));
  int count = 0;
  cache.ForEachEntry([&count](const CacheEntry&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(BlockCacheTest, ClearEmptiesCache) {
  BlockCache cache(4);
  cache.Insert(B(1));
  cache.Insert(B(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lru(), nullptr);
  cache.Insert(B(3));  // Still usable.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCacheTest, EntryMetadataDefaults) {
  BlockCache cache(1);
  const CacheEntry& entry = cache.Insert(B(7));
  EXPECT_EQ(entry.recirculation_count, 0);
  EXPECT_FALSE(entry.singlet_flag);
  EXPECT_FALSE(entry.recirculating());
  EXPECT_EQ(entry.last_ref, 0);
}

class BlockCacheLruProperty : public ::testing::TestWithParam<std::size_t> {};

// Property: after any sequence of inserts/touches with LRU eviction, the
// cache holds exactly the `capacity` most recently used distinct blocks.
TEST_P(BlockCacheLruProperty, MatchesReferenceModel) {
  const std::size_t capacity = GetParam();
  BlockCache cache(capacity);
  std::vector<std::uint32_t> reference;  // front = MRU.
  unsigned state = 99;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 3000; ++step) {
    const std::uint32_t file = next() % 50;
    // Reference model update.
    auto it = std::find(reference.begin(), reference.end(), file);
    if (it != reference.end()) {
      reference.erase(it);
    }
    reference.insert(reference.begin(), file);
    if (reference.size() > capacity) {
      reference.pop_back();
    }
    // Cache update.
    if (cache.Touch(B(file)) == nullptr) {
      while (cache.Full()) {
        cache.EvictLru();
      }
      cache.Insert(B(file));
    }
    // Compare.
    ASSERT_EQ(cache.size(), reference.size());
    for (std::uint32_t expected : reference) {
      ASSERT_TRUE(cache.Contains(B(expected)));
    }
    ASSERT_EQ(cache.Mru()->block, B(reference.front()));
    ASSERT_EQ(cache.Lru()->block, B(reference.back()));
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BlockCacheLruProperty, ::testing::Values(1, 2, 5, 16, 49));

}  // namespace
}  // namespace coopfs
