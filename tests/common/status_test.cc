#include "src/common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no such block");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such block");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such block");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = *std::move(result);
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThrough() {
  COOPFS_RETURN_IF_ERROR(Status::DataLoss("inner"));
  return Status::Ok();
}

Status SucceedsThrough() {
  COOPFS_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kDataLoss);
  EXPECT_EQ(SucceedsThrough().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace coopfs
