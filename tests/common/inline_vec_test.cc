#include "src/common/inline_vec.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/types.h"

namespace coopfs {
namespace {

TEST(InlineVecTest, StartsEmptyAndInline) {
  InlineVec<ClientId, 4> vec;
  EXPECT_TRUE(vec.empty());
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_TRUE(vec.inlined());
  EXPECT_EQ(vec.capacity(), 4u);
}

TEST(InlineVecTest, PushWithinInlineCapacity) {
  InlineVec<ClientId, 4> vec;
  for (ClientId c = 0; c < 4; ++c) {
    vec.push_back(c * 10);
  }
  EXPECT_TRUE(vec.inlined());
  EXPECT_EQ(vec.size(), 4u);
  EXPECT_EQ(vec.front(), 0u);
  EXPECT_EQ(vec.back(), 30u);
  for (ClientId c = 0; c < 4; ++c) {
    EXPECT_EQ(vec[c], c * 10);
  }
}

TEST(InlineVecTest, SpillsToHeapAndKeepsContents) {
  InlineVec<ClientId, 4> vec;
  for (ClientId c = 0; c < 20; ++c) {
    vec.push_back(c);
  }
  EXPECT_FALSE(vec.inlined());
  EXPECT_EQ(vec.size(), 20u);
  for (ClientId c = 0; c < 20; ++c) {
    EXPECT_EQ(vec[c], c);
  }
}

TEST(InlineVecTest, RangeForIteration) {
  InlineVec<ClientId, 2> vec;
  vec.push_back(5);
  vec.push_back(6);
  vec.push_back(7);  // Spill.
  std::vector<ClientId> seen;
  for (ClientId c : vec) {
    seen.push_back(c);
  }
  EXPECT_EQ(seen, (std::vector<ClientId>{5, 6, 7}));
}

TEST(InlineVecTest, SwapRemoveSemantics) {
  InlineVec<ClientId, 4> vec;
  vec.push_back(1);
  vec.push_back(2);
  vec.push_back(3);
  EXPECT_TRUE(vec.SwapRemove(1));   // Last element (3) takes its place.
  EXPECT_EQ(vec.size(), 2u);
  EXPECT_EQ(vec[0], 3u);
  EXPECT_EQ(vec[1], 2u);
  EXPECT_FALSE(vec.SwapRemove(99));  // Absent.
  EXPECT_TRUE(vec.ContainsValue(2));
  EXPECT_FALSE(vec.ContainsValue(1));
}

TEST(InlineVecTest, CopyAndMovePreserveContents) {
  InlineVec<ClientId, 2> spilled;
  for (ClientId c = 0; c < 9; ++c) {
    spilled.push_back(c);
  }
  InlineVec<ClientId, 2> copy(spilled);
  EXPECT_EQ(copy.size(), 9u);
  for (ClientId c = 0; c < 9; ++c) {
    EXPECT_EQ(copy[c], c);
  }
  InlineVec<ClientId, 2> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 9u);
  EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move): spec'd empty.
  InlineVec<ClientId, 2> assigned;
  assigned.push_back(77);
  assigned = spilled;
  EXPECT_EQ(assigned.size(), 9u);
  EXPECT_EQ(assigned[8], 8u);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 9u);
}

TEST(InlineVecTest, ClearKeepsCapacity) {
  InlineVec<ClientId, 4> vec;
  for (ClientId c = 0; c < 10; ++c) {
    vec.push_back(c);
  }
  const std::size_t capacity = vec.capacity();
  vec.clear();
  EXPECT_TRUE(vec.empty());
  EXPECT_EQ(vec.capacity(), capacity);
  vec.push_back(3);
  EXPECT_EQ(vec[0], 3u);
}

// Randomized differential test against std::vector (push/pop/swap-remove).
class InlineVecDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InlineVecDifferential, MatchesVectorReference) {
  std::uint64_t state = GetParam() ? GetParam() : 1;
  auto next = [&state] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  InlineVec<std::uint32_t, 4> vec;
  std::vector<std::uint32_t> reference;
  for (int step = 0; step < 10'000; ++step) {
    switch (next() % 4) {
      case 0:
      case 1: {  // push_back (biased: sets should grow).
        const auto value = static_cast<std::uint32_t>(next() % 64);
        vec.push_back(value);
        reference.push_back(value);
        break;
      }
      case 2: {  // SwapRemove by value.
        const auto value = static_cast<std::uint32_t>(next() % 64);
        const auto it = std::find(reference.begin(), reference.end(), value);
        const bool ref_removed = it != reference.end();
        if (ref_removed) {
          *it = reference.back();
          reference.pop_back();
        }
        ASSERT_EQ(vec.SwapRemove(value), ref_removed);
        break;
      }
      case 3: {  // pop_back.
        if (!reference.empty()) {
          reference.pop_back();
          vec.pop_back();
        }
        break;
      }
    }
    ASSERT_EQ(vec.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(vec[i], reference[i]) << "index " << i << " at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InlineVecDifferential,
                         ::testing::Values(1u, 99u, 4096u, 123'456'789u));

}  // namespace
}  // namespace coopfs
