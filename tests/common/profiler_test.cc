// Tests for the zero-cost-when-disabled scoped-timer profiler and the
// "coopfs.profile/v1" document helpers.
//
// Profiler state is process-global, so every test runs under a fixture that
// resets the registry and restores the disabled default. Wall-clock values
// are non-deterministic; assertions target the reproducible parts: span
// names, nesting, counts, and byte-exact document round-trips.
#include "src/common/profiler.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace coopfs {
namespace {

using Node = Profiler::Node;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Enable(false);
    Profiler::Reset();
  }
  void TearDown() override {
    Profiler::Enable(false);
    Profiler::Reset();
  }
};

// Finds a root span by name, or null.
const Node* FindRoot(const std::vector<Node>& roots, const std::string& name) {
  for (const Node& node : roots) {
    if (node.name == name) {
      return &node;
    }
  }
  return nullptr;
}

TEST_F(ProfilerTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(Profiler::enabled());
  {
    COOPFS_PROFILE_SCOPE("test/ignored");
    COOPFS_PROFILE_SCOPE("test/ignored_child");
  }
  EXPECT_TRUE(Profiler::Snapshot().empty());
}

TEST_F(ProfilerTest, SpanOpenedWhileDisabledStaysUnrecorded) {
  // Enabling mid-span must not record the already-open span: the decision is
  // made at construction, so a half-timed interval can never be aggregated.
  {
    ProfileSpan span("test/opened_disabled");
    Profiler::Enable(true);
  }
  EXPECT_TRUE(Profiler::Snapshot().empty());
}

TEST_F(ProfilerTest, RecordsHierarchyWithCounts) {
  Profiler::Enable(true);
  for (int i = 0; i < 3; ++i) {
    COOPFS_PROFILE_SCOPE("test/outer");
    {
      COOPFS_PROFILE_SCOPE("test/inner");
    }
    {
      COOPFS_PROFILE_SCOPE("test/inner");
    }
  }
  {
    COOPFS_PROFILE_SCOPE("test/other_root");
  }

  const std::vector<Node> roots = Profiler::Snapshot();
  const Node* outer = FindRoot(roots, "test/outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3u);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].name, "test/inner");
  EXPECT_EQ(outer->children[0].count, 6u);
  // Inclusive parent time covers the children.
  EXPECT_GE(outer->total_ns, outer->children[0].total_ns);
  EXPECT_EQ(outer->SelfNs(), outer->total_ns - outer->ChildrenTotalNs());

  const Node* other = FindRoot(roots, "test/other_root");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->count, 1u);
  EXPECT_TRUE(other->children.empty());
}

TEST_F(ProfilerTest, SameNameNestsSeparatelyUnderDifferentParents) {
  Profiler::Enable(true);
  {
    COOPFS_PROFILE_SCOPE("test/read");
    COOPFS_PROFILE_SCOPE("test/evict");
  }
  {
    COOPFS_PROFILE_SCOPE("test/write");
    COOPFS_PROFILE_SCOPE("test/evict");
  }

  const std::vector<Node> roots = Profiler::Snapshot();
  const Node* read = FindRoot(roots, "test/read");
  const Node* write = FindRoot(roots, "test/write");
  ASSERT_NE(read, nullptr);
  ASSERT_NE(write, nullptr);
  ASSERT_EQ(read->children.size(), 1u);
  ASSERT_EQ(write->children.size(), 1u);
  EXPECT_EQ(read->children[0].name, "test/evict");
  EXPECT_EQ(read->children[0].count, 1u);
  EXPECT_EQ(write->children[0].name, "test/evict");
  EXPECT_EQ(write->children[0].count, 1u);
}

TEST_F(ProfilerTest, SnapshotIsNonDestructive) {
  Profiler::Enable(true);
  {
    COOPFS_PROFILE_SCOPE("test/stable");
  }
  const std::vector<Node> first = Profiler::Snapshot();
  const std::vector<Node> second = Profiler::Snapshot();
  EXPECT_EQ(first, second);
}

TEST_F(ProfilerTest, MergesSpansAcrossThreads) {
  Profiler::Enable(true);
  {
    COOPFS_PROFILE_SCOPE("test/worker");
  }
  // Two workers record the same spans; their trees merge into the global
  // registry at thread exit, aggregating with the calling thread's tree.
  auto work = [] {
    COOPFS_PROFILE_SCOPE("test/worker");
    COOPFS_PROFILE_SCOPE("test/worker_child");
  };
  std::thread a(work);
  std::thread b(work);
  a.join();
  b.join();

  const std::vector<Node> roots = Profiler::Snapshot();
  const Node* worker = FindRoot(roots, "test/worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, 3u);
  ASSERT_EQ(worker->children.size(), 1u);
  EXPECT_EQ(worker->children[0].name, "test/worker_child");
  EXPECT_EQ(worker->children[0].count, 2u);
}

TEST_F(ProfilerTest, ResetClearsEverything) {
  Profiler::Enable(true);
  {
    COOPFS_PROFILE_SCOPE("test/gone");
  }
  ASSERT_FALSE(Profiler::Snapshot().empty());
  Profiler::Reset();
  EXPECT_TRUE(Profiler::Snapshot().empty());
}

// Builds a small deterministic forest for the document-helper tests.
std::vector<Node> SampleForest() {
  Node evict;
  evict.name = "policy/evict";
  evict.count = 40;
  evict.total_ns = 1'000;

  Node read;
  read.name = "sim/read";
  read.count = 700;
  read.total_ns = 5'000;
  read.children.push_back(evict);

  Node run;
  run.name = "sim/run";
  run.count = 1;
  run.total_ns = 9'000;
  run.children.push_back(read);

  Node gen;
  gen.name = "trace/generate";
  gen.count = 1;
  gen.total_ns = 2'500;
  return {run, gen};
}

TEST_F(ProfilerTest, DocumentRoundTripsToIdenticalBytes) {
  const std::vector<Node> forest = SampleForest();
  const std::string json = ProfileToJson(forest);
  EXPECT_NE(json.find(kProfileSchema), std::string::npos);

  Result<std::vector<Node>> parsed = ParseProfileDocument(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, forest);
  EXPECT_EQ(ProfileToJson(*parsed), json);
  EXPECT_TRUE(ValidateProfileDocument(json).ok());
}

TEST_F(ProfilerTest, LiveSnapshotDocumentValidates) {
  Profiler::Enable(true);
  {
    COOPFS_PROFILE_SCOPE("test/exported");
    COOPFS_PROFILE_SCOPE("test/exported_child");
  }
  const std::string json = Profiler::ToJson();
  EXPECT_TRUE(ValidateProfileDocument(json).ok());
  Result<std::vector<Node>> parsed = ParseProfileDocument(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, Profiler::Snapshot());
}

TEST_F(ProfilerTest, ParserRejectsCorruptDocuments) {
  EXPECT_FALSE(ParseProfileDocument("").ok());
  EXPECT_FALSE(ParseProfileDocument("not json").ok());
  EXPECT_FALSE(ParseProfileDocument(R"({"schema": "other/v1", "roots": []})").ok());

  // self_ns is redundant with total_ns minus the children's totals; a
  // document where they disagree is corrupt and must not parse.
  const std::string json = ProfileToJson(SampleForest());
  const std::string::size_type pos = json.find("\"self_ns\": 4000");
  ASSERT_NE(pos, std::string::npos) << json;
  std::string corrupted = json;
  corrupted.replace(pos, 15, "\"self_ns\": 4001");
  EXPECT_FALSE(ParseProfileDocument(corrupted).ok());
}

TEST_F(ProfilerTest, FlattenSortsBySelfTimeAndMergesNames) {
  std::vector<Node> forest = SampleForest();
  // A second tree reusing "policy/evict" at the root: flattening merges by
  // name across positions.
  Node extra;
  extra.name = "policy/evict";
  extra.count = 2;
  extra.total_ns = 500;
  forest.push_back(extra);

  const std::vector<ProfileFlatRow> rows = FlattenProfileBySelfTime(forest);
  ASSERT_EQ(rows.size(), 4u);
  // sim/read self = 5000 - 1000 = 4000; sim/run self = 9000 - 5000 = 4000;
  // trace/generate = 2500; policy/evict = 1000 + 500 = 1500.
  EXPECT_EQ(rows[0].name, "sim/read");
  EXPECT_EQ(rows[0].self_ns, 4'000u);
  EXPECT_EQ(rows[1].name, "sim/run");
  EXPECT_EQ(rows[1].self_ns, 4'000u);
  EXPECT_EQ(rows[2].name, "trace/generate");
  EXPECT_EQ(rows[3].name, "policy/evict");
  EXPECT_EQ(rows[3].count, 42u);
  EXPECT_EQ(rows[3].self_ns, 1'500u);

  const std::string table = ProfileSelfTimeTable(forest, 2);
  EXPECT_NE(table.find("sim/read"), std::string::npos);
  EXPECT_EQ(table.find("policy/evict"), std::string::npos);
}

TEST_F(ProfilerTest, SelfNsClampsWhenChildrenExceedParent) {
  Node child;
  child.name = "child";
  child.count = 1;
  child.total_ns = 150;
  Node parent;
  parent.name = "parent";
  parent.count = 1;
  parent.total_ns = 100;  // Clock granularity can order totals this way.
  parent.children.push_back(child);
  EXPECT_EQ(parent.SelfNs(), 0u);
}

}  // namespace
}  // namespace coopfs
