#include "src/common/json.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(JsonWriterTest, CompactObject) {
  JsonWriter json(0);
  json.BeginObject()
      .Key("name")
      .Value("coopfs")
      .Key("reads")
      .Value(std::uint64_t{42})
      .Key("ok")
      .Value(true)
      .Key("nothing")
      .Null()
      .EndObject();
  EXPECT_EQ(json.str(), R"({"name":"coopfs","reads":42,"ok":true,"nothing":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter json(0);
  json.BeginObject().Key("series").BeginArray();
  json.BeginObject().Key("v").Value(1).EndObject();
  json.BeginObject().Key("v").Value(2).EndObject();
  json.EndArray().EndObject();
  EXPECT_EQ(json.str(), R"({"series":[{"v":1},{"v":2}]})");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json(2);
  json.BeginObject().Key("a").BeginArray().EndArray().Key("o").BeginObject().EndObject()
      .EndObject();
  EXPECT_EQ(json.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json(0);
  json.Value(std::string_view("a\"b\\c\nd\te\x01" "f"));
  EXPECT_EQ(json.str(), R"("a\"b\\c\nd\te\u0001f")");
}

TEST(JsonWriterTest, DoubleRoundTripsExactly) {
  const double values[] = {0.0, 1.0, -1.5, 0.1, 1e-9, 1.0 / 3.0, 6.02e23, 14800.0};
  for (const double value : values) {
    JsonWriter json(0);
    json.Value(value);
    Result<JsonValue> parsed = ParseJson(json.str());
    ASSERT_TRUE(parsed.ok()) << json.str();
    EXPECT_EQ(parsed->AsDouble(), value) << json.str();
  }
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter json(0);
  json.Value(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(json.str(), "null");
}

TEST(JsonWriterTest, IndentedOutputParsesBack) {
  JsonWriter json(2);
  json.BeginObject().Key("x").BeginArray().Value(1).Value(2).EndArray().EndObject();
  EXPECT_EQ(json.str(), "{\n  \"x\": [\n    1,\n    2\n  ]\n}");
  EXPECT_TRUE(ParseJson(json.str()).ok());
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
  EXPECT_EQ(ParseJson("-17")->AsInt(), -17);
  EXPECT_TRUE(ParseJson("-17")->IsIntegral());
  EXPECT_DOUBLE_EQ(ParseJson("2.5e3")->AsDouble(), 2500.0);
  EXPECT_FALSE(ParseJson("2.5e3")->IsIntegral());
}

TEST(JsonParseTest, ObjectLookup) {
  Result<JsonValue> doc = ParseJson(R"({"a": 1, "b": {"c": [10, 20]}})");
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("a"), nullptr);
  EXPECT_EQ(doc->Find("a")->AsInt(), 1);
  EXPECT_EQ(doc->Find("missing"), nullptr);
  const JsonValue* b = doc->FindObject("b");
  ASSERT_NE(b, nullptr);
  const JsonValue* c = b->FindArray("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->items().size(), 2u);
  EXPECT_EQ(c->items()[1].AsInt(), 20);
}

TEST(JsonParseTest, TypedFindRejectsWrongKind) {
  Result<JsonValue> doc = ParseJson(R"({"s": "text", "n": 3})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->FindNumber("s"), nullptr);
  EXPECT_EQ(doc->FindString("n"), nullptr);
  EXPECT_NE(doc->FindString("s"), nullptr);
  EXPECT_NE(doc->FindNumber("n"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  Result<JsonValue> doc = ParseJson(R"("a\"b\\c\nd\u0041")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\"b\\c\nd" "A");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "[1,]",        "{\"a\":}",      "{\"a\" 1}",
      "{'a': 1}",   "tru",         "01x",         "\"unterminated", "1 2",
      "{\"a\":1,}", "[1 2]",       "\"\\q\"",     "nul",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "should reject: " << text;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonParseTest, LargeIntegersStayExact) {
  const std::int64_t big = 9007199254740995;  // > 2^53: not representable as double.
  JsonWriter json(0);
  json.Value(big);
  Result<JsonValue> parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsIntegral());
  EXPECT_EQ(parsed->AsInt(), big);
}

TEST(JsonRoundTrip, WriterOutputIsStable) {
  // Serializing the same values twice yields identical bytes — the
  // determinism tests depend on this.
  auto render = [] {
    JsonWriter json(0);
    json.BeginObject().Key("f").Value(1.0 / 3.0).Key("g").Value(0.1 + 0.2).EndObject();
    return json.str();
  };
  EXPECT_EQ(render(), render());
}

TEST(WriteTextFileTest, WritesWithTrailingNewline) {
  const std::string path = ::testing::TempDir() + "/coopfs_json_test.txt";
  ASSERT_TRUE(WriteTextFile(path, "{\"a\":1}").ok());
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"a\":1}\n");
}

TEST(WriteTextFileTest, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y.json", "{}").ok());
}

}  // namespace
}  // namespace coopfs
