#include "src/common/types.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(BlockIdTest, PackUnpackRoundTrip) {
  const BlockId id{12345, 678};
  EXPECT_EQ(BlockId::Unpack(id.Pack()), id);
}

TEST(BlockIdTest, PackIsInjectiveOnFileAndBlock) {
  EXPECT_NE((BlockId{1, 2}.Pack()), (BlockId{2, 1}.Pack()));
  EXPECT_NE((BlockId{0, 1}.Pack()), (BlockId{1, 0}.Pack()));
}

TEST(BlockIdTest, ExtremeValuesRoundTrip) {
  const BlockId max_id{0xffffffffu, 0xffffffffu};
  EXPECT_EQ(BlockId::Unpack(max_id.Pack()), max_id);
  const BlockId zero{0, 0};
  EXPECT_EQ(BlockId::Unpack(zero.Pack()), zero);
}

TEST(BlockIdTest, OrderingIsFileMajor) {
  EXPECT_LT((BlockId{1, 99}), (BlockId{2, 0}));
  EXPECT_LT((BlockId{1, 1}), (BlockId{1, 2}));
}

TEST(BlockIdTest, ToStringIsReadable) {
  EXPECT_EQ((BlockId{3, 7}.ToString()), "f3:b7");
}

class BlockIdPackProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BlockIdPackProperty, RoundTripsAcrossBlockRange) {
  const std::uint32_t file = GetParam();
  for (std::uint32_t block : {0u, 1u, 255u, 65536u, 0xffffffffu}) {
    const BlockId id{file, block};
    EXPECT_EQ(BlockId::Unpack(id.Pack()), id);
  }
}

INSTANTIATE_TEST_SUITE_P(FileSweep, BlockIdPackProperty,
                         ::testing::Values(0u, 1u, 42u, 4096u, 0x7fffffffu, 0xffffffffu));

TEST(BlockIdHashTest, DistinctIdsRarelyCollide) {
  std::unordered_set<std::size_t> hashes;
  std::hash<BlockId> hasher;
  const int kFiles = 100;
  const int kBlocks = 100;
  for (std::uint32_t f = 0; f < kFiles; ++f) {
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      hashes.insert(hasher(BlockId{f, b}));
    }
  }
  // SplitMix64 finalization should give no collisions on 10k sequential ids.
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(kFiles * kBlocks));
}

TEST(TypesTest, BytesToBlocks) {
  EXPECT_EQ(BytesToBlocks(MiB(16)), 2048u);
  EXPECT_EQ(BytesToBlocks(MiB(128)), 16384u);
  EXPECT_EQ(BytesToBlocks(kBlockSizeBytes - 1), 0u);
  EXPECT_EQ(BytesToBlocks(kBlockSizeBytes), 1u);
}

TEST(TypesTest, CacheLevelNames) {
  EXPECT_STREQ(CacheLevelName(CacheLevel::kLocalMemory), "Local Memory");
  EXPECT_STREQ(CacheLevelName(CacheLevel::kRemoteClient), "Remote Client");
  EXPECT_STREQ(CacheLevelName(CacheLevel::kServerMemory), "Server Memory");
  EXPECT_STREQ(CacheLevelName(CacheLevel::kServerDisk), "Server Disk");
}

}  // namespace
}  // namespace coopfs
