// Unit and differential coverage for the sweep arena (src/common/arena.h).
//
// The arena's contract is narrow — bump allocation, chunk retention across
// Reset(), no per-object free — but the sweep leans on every part of it: a
// corrupted bump cursor silently cross-writes two jobs' cache slabs. The
// randomized differential test therefore mirrors every arena allocation
// with a heap reference, fills both with the same pattern, and verifies all
// blocks stay intact (any overlap between arena allocations would clobber an
// earlier pattern). The reuse tests pin the property the parallel-sweep fix
// depends on: after warmup, Reset()+reallocate touches the heap zero times.
#include "src/common/arena.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/flat_hash_map.h"
#include "src/common/inline_vec.h"
#include "src/common/rng.h"

namespace coopfs {
namespace {

bool IsAligned(const void* p, std::size_t alignment) {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndNonNull) {
  Arena arena;
  for (std::size_t alignment : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    for (std::size_t bytes : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                              std::size_t{256}}) {
      void* p = arena.Allocate(bytes, alignment);
      ASSERT_NE(p, nullptr) << "bytes=" << bytes << " align=" << alignment;
      EXPECT_TRUE(IsAligned(p, alignment)) << "bytes=" << bytes << " align=" << alignment;
    }
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinctAndNonNull) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(/*first_chunk_bytes=*/4096);
  void* small = arena.Allocate(64);
  ASSERT_NE(small, nullptr);
  // Far larger than the first chunk: must still succeed, and the small
  // allocation's bytes must survive.
  std::memset(small, 0xAB, 64);
  const std::size_t big_bytes = std::size_t{8} << 20;
  auto* big = static_cast<unsigned char*>(arena.Allocate(big_bytes));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, big_bytes);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(static_cast<unsigned char*>(small)[i], 0xAB);
  }
  EXPECT_GE(arena.stats().reserved_bytes, big_bytes);
}

TEST(ArenaTest, ResetRetainsChunksAndStopsHeapTraffic) {
  Arena arena(/*first_chunk_bytes=*/4096);
  const std::size_t kWorkingSet = 512 * 1024;
  for (std::size_t i = 0; i < kWorkingSet / 128; ++i) {
    ASSERT_NE(arena.Allocate(128), nullptr);
  }
  const Arena::Stats warm = arena.stats();
  EXPECT_GT(warm.chunks, 1u);  // 4 KiB first chunk forces growth.
  EXPECT_GE(warm.used_bytes, kWorkingSet);

  // Ten more rounds of the same working set: chunk count and heap
  // acquisitions must not move at all.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.stats().used_bytes, 0u);
    for (std::size_t i = 0; i < kWorkingSet / 128; ++i) {
      ASSERT_NE(arena.Allocate(128), nullptr);
    }
  }
  const Arena::Stats reused = arena.stats();
  EXPECT_EQ(reused.chunk_allocations, warm.chunk_allocations);
  EXPECT_EQ(reused.chunks, warm.chunks);
  EXPECT_EQ(reused.reserved_bytes, warm.reserved_bytes);
  EXPECT_EQ(reused.resets, 10u);
}

// Randomized differential test against a heap reference. Every arena block
// is filled with a pattern derived from its sequence number; if any two
// arena allocations overlapped (or Reset() failed to invalidate cleanly
// between rounds), a later fill would corrupt an earlier block's pattern
// and the final sweep would catch it.
TEST(ArenaTest, RandomizedAllocationsMatchHeapReference) {
  Rng rng(20260809);
  Arena arena(/*first_chunk_bytes=*/4096);
  for (int round = 0; round < 5; ++round) {
    struct Block {
      unsigned char* arena_ptr;
      std::unique_ptr<unsigned char[]> reference;
      std::size_t bytes;
    };
    std::vector<Block> blocks;
    for (int i = 0; i < 400; ++i) {
      const std::size_t bytes = 1 + rng.Next() % 3000;
      const std::size_t alignment = std::size_t{1} << (rng.Next() % 7);  // 1..64
      auto* p = static_cast<unsigned char*>(arena.Allocate(bytes, alignment));
      ASSERT_NE(p, nullptr);
      ASSERT_TRUE(IsAligned(p, alignment));
      Block block{p, std::make_unique<unsigned char[]>(bytes), bytes};
      for (std::size_t j = 0; j < bytes; ++j) {
        const auto value = static_cast<unsigned char>((i * 131 + j * 7 + round) & 0xFF);
        block.arena_ptr[j] = value;
        block.reference[j] = value;
      }
      blocks.push_back(std::move(block));
    }
    for (const Block& block : blocks) {
      ASSERT_EQ(std::memcmp(block.arena_ptr, block.reference.get(), block.bytes), 0);
    }
    arena.Reset();
  }
}

// ---------------------------------------------------------------------------
// ArenaAllocator: std containers drawing from the arena must behave exactly
// like their heap-backed twins.
// ---------------------------------------------------------------------------

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v;  // Default allocator: no arena.
  for (int i = 0; i < 1000; ++i) {
    v.push_back(i);
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(ArenaAllocatorTest, VectorMatchesHeapReference) {
  Arena arena;
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> arena_vec{
      ArenaAllocator<std::uint64_t>(&arena)};
  std::vector<std::uint64_t> reference;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t value = rng.Next();
    arena_vec.push_back(value);
    reference.push_back(value);
  }
  ASSERT_EQ(arena_vec.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(arena_vec[i], reference[i]);
  }
}

TEST(ArenaAllocatorTest, EqualityFollowsTheArena) {
  Arena a;
  Arena b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<long>(&a));
  EXPECT_FALSE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&b));
  EXPECT_EQ(ArenaAllocator<int>(), ArenaAllocator<int>(nullptr));
}

TEST(ArenaAllocatorTest, FlatHashMapOnArenaMatchesHeapTwin) {
  Arena arena;
  FlatHashMap<std::uint64_t, std::uint64_t> on_arena(&arena);
  FlatHashMap<std::uint64_t, std::uint64_t> on_heap;
  Rng rng(99);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.Next() % 10000;
    const std::uint64_t value = rng.Next();
    on_arena[key] = value;
    on_heap[key] = value;
    keys.push_back(key);
  }
  ASSERT_EQ(on_arena.size(), on_heap.size());
  for (const std::uint64_t key : keys) {
    auto* a = on_arena.Find(key);
    auto* h = on_heap.Find(key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(*a, *h);
  }
}

TEST(ArenaAllocatorTest, InlineVecSpillsIntoArenaAndCopiesToHeap) {
  Arena arena;
  InlineVec<std::uint32_t, 4> vec;
  for (std::uint32_t i = 0; i < 100; ++i) {
    vec.push_back(i, &arena);
  }
  ASSERT_EQ(vec.size(), 100u);
  EXPECT_TRUE(vec.arena_backed());
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_EQ(vec[i], i);
  }
  // Copies always land on the global heap so they can outlive the arena.
  InlineVec<std::uint32_t, 4> copy(vec);
  EXPECT_FALSE(copy.arena_backed());
  ASSERT_EQ(copy.size(), 100u);
  arena.Reset();  // Invalidates `vec`'s storage, not the copy's.
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_EQ(copy[i], i);
  }
}

}  // namespace
}  // namespace coopfs
