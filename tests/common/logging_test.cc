#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, DefaultThresholdIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetThreshold) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kNone);
  EXPECT_EQ(GetLogLevel(), LogLevel::kNone);
}

TEST_F(LoggingTest, SuppressedMessageDoesNotEvaluate) {
  SetLogLevel(LogLevel::kNone);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  COOPFS_LOG(kDebug) << "value: " << expensive();
  EXPECT_EQ(evaluations, 0) << "stream arguments must not run below threshold";
}

TEST_F(LoggingTest, EnabledMessageEvaluates) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  COOPFS_LOG(kError) << "value: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsStatementSafe) {
  SetLogLevel(LogLevel::kNone);
  // Must compile and behave as one statement in unbraced control flow.
  if (GetLogLevel() == LogLevel::kNone)
    COOPFS_LOG(kInfo) << "then-branch";
  else
    COOPFS_LOG(kError) << "else-branch";
  SUCCEED();
}

}  // namespace
}  // namespace coopfs
