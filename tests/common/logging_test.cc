#include "src/common/logging.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/common/json.h"

namespace coopfs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogLevel(LogLevel::kWarning);
    SetLogFormat(LogFormat::kText);
    ::unsetenv("COOPFS_LOG_LEVEL");
    ::unsetenv("COOPFS_LOG_FORMAT");
  }
};

TEST_F(LoggingTest, DefaultThresholdIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetAndGetThreshold) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kNone);
  EXPECT_EQ(GetLogLevel(), LogLevel::kNone);
}

TEST_F(LoggingTest, SuppressedMessageDoesNotEvaluate) {
  SetLogLevel(LogLevel::kNone);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  COOPFS_LOG(kDebug) << "value: " << expensive();
  EXPECT_EQ(evaluations, 0) << "stream arguments must not run below threshold";
}

TEST_F(LoggingTest, EnabledMessageEvaluates) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  COOPFS_LOG(kError) << "value: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroIsStatementSafe) {
  SetLogLevel(LogLevel::kNone);
  // Must compile and behave as one statement in unbraced control flow.
  if (GetLogLevel() == LogLevel::kNone)
    COOPFS_LOG(kInfo) << "then-branch";
  else
    COOPFS_LOG(kError) << "else-branch";
  SUCCEED();
}

TEST_F(LoggingTest, ParseLogLevelNamesAndNumbers) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kNone);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kNone);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST_F(LoggingTest, ParseLogFormatNames) {
  EXPECT_EQ(ParseLogFormat("text"), LogFormat::kText);
  EXPECT_EQ(ParseLogFormat("JSON"), LogFormat::kJson);
  EXPECT_EQ(ParseLogFormat("xml"), std::nullopt);
}

TEST_F(LoggingTest, EnvironmentOverridesLevelAndFormat) {
  ::setenv("COOPFS_LOG_LEVEL", "debug", 1);
  ::setenv("COOPFS_LOG_FORMAT", "json", 1);
  InitLoggingFromEnvironment();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
}

TEST_F(LoggingTest, InvalidEnvironmentValuesAreIgnored) {
  SetLogLevel(LogLevel::kError);
  SetLogFormat(LogFormat::kText);
  ::setenv("COOPFS_LOG_LEVEL", "shouting", 1);
  ::setenv("COOPFS_LOG_FORMAT", "yaml", 1);
  InitLoggingFromEnvironment();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
}

TEST_F(LoggingTest, TextRecordKeepsClassicShape) {
  EXPECT_EQ(FormatLogRecord(LogLevel::kInfo, "src/sim/simulator.cc", 42, "hello",
                            LogFormat::kText),
            "[I simulator.cc:42] hello");
}

TEST_F(LoggingTest, JsonRecordIsParseableWithExpectedFields) {
  const std::string record = FormatLogRecord(LogLevel::kWarning, "src/common/logging.cc", 7,
                                             "bad \"quote\"\nnewline", LogFormat::kJson);
  Result<JsonValue> parsed = ParseJson(record);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* level = parsed->FindString("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->AsString(), "warning");
  const JsonValue* src = parsed->FindString("src");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->AsString(), "logging.cc:7");
  const JsonValue* msg = parsed->FindString("msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->AsString(), "bad \"quote\"\nnewline");
}

TEST_F(LoggingTest, SetLogLevelIsAtomicallyVisible) {
  // Thread-safety smoke: concurrent Set/Get must be data-race-free (the
  // level is a std::atomic; TSan builds exercise this assertion for real).
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace coopfs
