#include "src/common/format.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(FormatTest, FormatMicrosRanges) {
  EXPECT_EQ(FormatMicros(250.0), "250 us");
  EXPECT_EQ(FormatMicros(1250.0), "1250 us");
  EXPECT_EQ(FormatMicros(15'850.0), "15.8 ms");  // 15.85 rounds down in binary fp.
  EXPECT_EQ(FormatMicros(21'700.0), "21.7 ms");
  EXPECT_EQ(FormatMicros(2'500'000.0), "2.50 s");
}

TEST(FormatTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(8 * 1024), "8 KB");
  EXPECT_EQ(FormatBytes(16ull * 1024 * 1024), "16 MB");
  EXPECT_EQ(FormatBytes(2ull * 1024 * 1024 * 1024), "2 GB");
  EXPECT_EQ(FormatBytes(1536ull * 1024), "1.5 MB");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.157), "15.7%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.734, 2), "1.73");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TableFormatterTest, AlignsColumns) {
  TableFormatter table({"Name", "Value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line has the same length (fixed column widths).
  std::size_t expected_len = out.find('\n');
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, expected_len) << "line " << lines;
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(TableFormatterTest, ShortRowsArePadded) {
  TableFormatter table({"A", "B", "C"});
  table.AddRow({"only-one"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TableFormatterTest, RuleInsertsSeparator) {
  TableFormatter table({"Name"});
  table.AddRow({"x"});
  table.AddRule();
  table.AddRow({"y"});
  const std::string out = table.ToString();
  // Two rules total: one under the header, one inserted.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("--", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(rules, 2u);
}

}  // namespace
}  // namespace coopfs
