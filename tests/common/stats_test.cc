#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 0.0);
  EXPECT_DOUBLE_EQ(stat.max(), 0.0);
}

TEST(RunningStatTest, KnownValues) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(v);
  }
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
  // Population m2 = 32, sample variance = 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-9);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.5);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 5.0;
    all.Add(v);
    (i < 40 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat stat;
  stat.Add(1.0);
  RunningStat empty;
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 1u);
  empty.Merge(stat);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat stat;
  stat.Add(10.0);
  stat.Reset();
  EXPECT_EQ(stat.count(), 0u);
}

TEST(LogHistogramTest, BucketBoundaries) {
  EXPECT_DOUBLE_EQ(LogHistogram::BucketLowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(LogHistogram::BucketLowerBound(1), 1.0);
  EXPECT_DOUBLE_EQ(LogHistogram::BucketLowerBound(2), 2.0);
  EXPECT_DOUBLE_EQ(LogHistogram::BucketLowerBound(5), 16.0);
}

TEST(LogHistogramTest, CountsAndQuantiles) {
  LogHistogram hist;
  for (int i = 0; i < 100; ++i) {
    hist.Add(10.0);  // Bucket [8,16).
  }
  EXPECT_EQ(hist.count(), 100u);
  const double median = hist.Quantile(0.5);
  EXPECT_GE(median, 8.0);
  EXPECT_LE(median, 16.0);
}

TEST(LogHistogramTest, QuantileOrdering) {
  LogHistogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Add(static_cast<double>(i));
  }
  EXPECT_LE(hist.Quantile(0.1), hist.Quantile(0.5));
  EXPECT_LE(hist.Quantile(0.5), hist.Quantile(0.9));
  EXPECT_LE(hist.Quantile(0.9), hist.Quantile(0.999));
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram hist;
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_EQ(hist.ToString(), "(empty histogram)\n");
}

TEST(LogHistogramTest, MergeAddsCounts) {
  LogHistogram a;
  LogHistogram b;
  a.Add(3.0);
  b.Add(3.0);
  b.Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LogHistogramTest, HugeValuesLandInLastBucket) {
  LogHistogram hist;
  hist.Add(1e30);
  EXPECT_EQ(hist.bucket_count(LogHistogram::kNumBuckets - 1), 1u);
}

TEST(CounterArrayTest, AddGetTotalFraction) {
  CounterArray<4> counters;
  counters.Add(0, 10);
  counters.Add(3, 30);
  EXPECT_EQ(counters.Get(0), 10u);
  EXPECT_EQ(counters.Get(1), 0u);
  EXPECT_EQ(counters.Total(), 40u);
  EXPECT_DOUBLE_EQ(counters.Fraction(3), 0.75);
}

TEST(CounterArrayTest, EmptyFractionIsZero) {
  CounterArray<2> counters;
  EXPECT_DOUBLE_EQ(counters.Fraction(0), 0.0);
}

TEST(CounterArrayTest, MergeAndReset) {
  CounterArray<2> a;
  CounterArray<2> b;
  a.Add(0, 1);
  b.Add(0, 2);
  b.Add(1, 5);
  a.Merge(b);
  EXPECT_EQ(a.Get(0), 3u);
  EXPECT_EQ(a.Get(1), 5u);
  a.Reset();
  EXPECT_EQ(a.Total(), 0u);
}

}  // namespace
}  // namespace coopfs
