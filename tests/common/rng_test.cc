#include "src/common/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  // The exact SplitMix64 stream for seed 0 is specified by the reference
  // implementation; pin the first value so the format never drifts.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafull);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBelow(kBound)];
  }
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kSamples / static_cast<int>(kBound), 600) << "value " << v;
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.01);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(6);
  int trues = 0;
  for (int i = 0; i < 50'000; ++i) {
    trues += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(trues / 50'000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextExponential(250.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 250.0, 5.0);
}

TEST(RngTest, RunLengthRespectsCapAndMinimum) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t len = rng.NextRunLength(0.5, 8);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 8u);
  }
  // p_stop = 1 always stops immediately.
  EXPECT_EQ(rng.NextRunLength(1.0, 100), 1u);
}

class ZipfProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfProperty, LowRanksDominateAndAllRanksReachable) {
  const double s = GetParam();
  Rng rng(11);
  ZipfSampler zipf(100, s);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200'000; ++i) {
    const std::size_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, 100u);
    ++counts[rank];
  }
  // Monotone-ish decrease: rank 0 strictly more popular than rank 50.
  EXPECT_GT(counts[0], counts[50]);
  // Theoretical frequency of rank 0: (1/1^s) / H_{100,s}.
  double harmonic = 0.0;
  for (int k = 1; k <= 100; ++k) {
    harmonic += 1.0 / std::pow(k, s);
  }
  EXPECT_NEAR(counts[0] / 200'000.0, 1.0 / harmonic, 0.01);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, ZipfProperty, ::testing::Values(0.5, 0.75, 1.0, 1.2));

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  Rng rng(12);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

}  // namespace
}  // namespace coopfs
