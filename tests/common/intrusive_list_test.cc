#include "src/common/intrusive_list.h"

#include <vector>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

struct Item {
  int value = 0;
  IntrusiveListNode node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

std::vector<int> Values(ItemList& list) {
  std::vector<int> out;
  for (Item& item : list) {
    out.push_back(item.value);
  }
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.Back(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_EQ(list.PopBack(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrdering) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);
  EXPECT_EQ(Values(list), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(list.Front(), &c);
  EXPECT_EQ(list.Back(), &a);
}

TEST(IntrusiveListTest, PushBackOrdering) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveListTest, RemoveMiddle) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3}));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(ItemList::IsLinked(&b));
  EXPECT_TRUE(ItemList::IsLinked(&a));
}

TEST(IntrusiveListTest, MoveToFrontImplementsLruRenewal) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.PushFront(&a);
  list.PushFront(&b);
  list.PushFront(&c);  // c b a
  list.MoveToFront(&a);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3, 2}));
  list.MoveToBack(&a);
  EXPECT_EQ(Values(list), (std::vector<int>{3, 2, 1}));
}

TEST(IntrusiveListTest, PopFrontAndBack) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.PopFront(), &a);
  EXPECT_EQ(list.PopBack(), &c);
  EXPECT_EQ(list.PopBack(), &b);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, ClearUnlinksEverything) {
  ItemList list;
  Item a{1}, b{2};
  list.PushBack(&a);
  list.PushBack(&b);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(ItemList::IsLinked(&a));
  EXPECT_FALSE(ItemList::IsLinked(&b));
  // Reusable after Clear.
  list.PushBack(&b);
  EXPECT_EQ(list.Front(), &b);
}

TEST(IntrusiveListTest, UnlinkIsIdempotent) {
  Item a{1};
  a.node.Unlink();  // Never linked: no-op.
  ItemList list;
  list.PushBack(&a);
  list.Remove(&a);
  a.node.Unlink();  // Already unlinked: no-op.
  EXPECT_TRUE(list.empty());
}

struct MultiItem {
  int value = 0;
  IntrusiveListNode lru_node;
  IntrusiveListNode dirty_node;
};

TEST(IntrusiveListTest, OneObjectOnTwoLists) {
  IntrusiveList<MultiItem, &MultiItem::lru_node> lru;
  IntrusiveList<MultiItem, &MultiItem::dirty_node> dirty;
  MultiItem a{1};
  MultiItem b{2};
  lru.PushBack(&a);
  lru.PushBack(&b);
  dirty.PushBack(&b);
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(dirty.size(), 1u);
  dirty.Remove(&b);
  EXPECT_EQ(lru.size(), 2u);  // Removing from one list leaves the other.
  EXPECT_EQ(lru.Back(), &b);
}

class ListStressProperty : public ::testing::TestWithParam<int> {};

TEST_P(ListStressProperty, RandomOpsKeepSizeConsistent) {
  const int n = GetParam();
  std::vector<Item> items(static_cast<std::size_t>(n));
  ItemList list;
  std::size_t expected = 0;
  // Deterministic pseudo-random op mix without a real RNG dependency.
  unsigned state = 12345;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int step = 0; step < 5000; ++step) {
    Item& item = items[next() % static_cast<unsigned>(n)];
    if (ItemList::IsLinked(&item)) {
      if (next() % 3 == 0) {
        list.Remove(&item);
        --expected;
      } else {
        list.MoveToFront(&item);
      }
    } else {
      if (next() % 2 == 0) {
        list.PushFront(&item);
      } else {
        list.PushBack(&item);
      }
      ++expected;
    }
    ASSERT_EQ(list.size(), expected);
  }
  // Full traversal matches size.
  EXPECT_EQ(Values(list).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ListStressProperty, ::testing::Values(1, 2, 7, 64));

}  // namespace
}  // namespace coopfs
