#include "src/common/flat_hash_map.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(FlatHashMapTest, StartsEmpty) {
  FlatHashMap<std::uint64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.Contains(1));
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_FALSE(map.Erase(1));
}

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<std::uint64_t, int> map;
  auto [value, inserted] = map.TryEmplace(7);
  EXPECT_TRUE(inserted);
  *value = 42;
  EXPECT_TRUE(map.Contains(7));
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  auto [again, inserted_again] = map.TryEmplace(7);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 42);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Contains(7));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map[5], 0u);
  map[5] = 9;
  EXPECT_EQ(map[5], 9u);
  ++map[6];
  EXPECT_EQ(map[6], 1u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMapTest, ReservePreventsRehash) {
  FlatHashMap<std::uint64_t, int> map;
  map.Reserve(1000);
  const std::size_t buckets = map.bucket_count();
  EXPECT_GE(buckets * 7 / 8, 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map.TryEmplace(k);
  }
  EXPECT_EQ(map.bucket_count(), buckets);
  EXPECT_EQ(map.Stats().rehashes, 1u);  // The reserve itself.
}

TEST(FlatHashMapTest, GrowthAcrossBoundaries) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  // Push through several growth boundaries and verify contents each time.
  for (std::uint64_t k = 0; k < 5000; ++k) {
    map[k] = k * 3;
    if ((k & (k - 1)) == 0) {  // Powers of two: spot-check everything so far.
      for (std::uint64_t j = 0; j <= k; ++j) {
        ASSERT_NE(map.Find(j), nullptr) << j << " lost at size " << k;
        ASSERT_EQ(*map.Find(j), j * 3);
      }
    }
  }
  EXPECT_EQ(map.size(), 5000u);
  EXPECT_LE(map.load_factor(), 7.0 / 8.0 + 1e-9);
}

TEST(FlatHashMapTest, ClearRemovesEverything) {
  FlatHashMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) {
    map.TryEmplace(k);
  }
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_FALSE(map.Contains(k));
  }
  map.TryEmplace(3);  // Still usable.
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, ForEachVisitsAllOnce) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 500; ++k) {
    map[k] = k;
  }
  std::vector<bool> seen(500, false);
  map.ForEach([&seen](std::uint64_t key, const std::uint64_t& value) {
    ASSERT_LT(key, 500u);
    ASSERT_EQ(key, value);
    ASSERT_FALSE(seen[key]) << "visited twice";
    seen[key] = true;
  });
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(FlatHashMapTest, NonIntegralKeys) {
  FlatHashMap<std::string, int> map;
  map["alpha"] = 1;
  map["beta"] = 2;
  EXPECT_EQ(*map.Find("alpha"), 1);
  EXPECT_TRUE(map.Erase("alpha"));
  EXPECT_FALSE(map.Contains("alpha"));
  EXPECT_EQ(*map.Find("beta"), 2);
}

TEST(FlatHashMapTest, StatsTrackOccupancy) {
  FlatHashMap<std::uint64_t, int> map;
  EXPECT_EQ(map.Stats().size, 0u);
  for (std::uint64_t k = 0; k < 64; ++k) {
    map.TryEmplace(k);
  }
  const FlatMapStats stats = map.Stats();
  EXPECT_EQ(stats.size, 64u);
  EXPECT_GT(stats.buckets, 0u);
  EXPECT_GT(stats.load_factor, 0.0);
  EXPECT_GE(stats.max_probe_length, static_cast<std::size_t>(stats.avg_probe_length));
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet<std::uint64_t> set;
  EXPECT_TRUE(set.Insert(3));
  EXPECT_FALSE(set.Insert(3));
  EXPECT_TRUE(set.Contains(3));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Erase(3));
  EXPECT_FALSE(set.Erase(3));
  EXPECT_TRUE(set.empty());
}

// Keys that all land in the same home bucket exercise long probe chains and
// the backward-shift erase path deterministically: after erasing the middle
// of a cluster, the rest must still be findable.
TEST(FlatHashMapTest, CollidingKeysSurviveMidClusterErase) {
  struct HomeBucketHash {
    std::uint64_t operator()(const std::uint64_t&) const { return 0; }  // All collide.
  };
  FlatHashMap<std::uint64_t, std::uint64_t, HomeBucketHash> map;
  for (std::uint64_t k = 0; k < 6; ++k) {
    map[k] = k + 100;
  }
  EXPECT_TRUE(map.Erase(2));
  EXPECT_TRUE(map.Erase(4));
  for (std::uint64_t k : {0ull, 1ull, 3ull, 5ull}) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k + 100);
  }
  EXPECT_EQ(map.size(), 4u);
  map[2] = 202;  // Reinsert into the shifted cluster.
  EXPECT_EQ(*map.Find(2), 202u);
}

// EraseIf with all-colliding keys hits the shifted-into-current-slot case:
// erasing slot i pulls the next cluster element into i, which must be
// re-examined, not skipped.
TEST(FlatHashMapTest, EraseIfReexaminesShiftedSlots) {
  struct HomeBucketHash {
    std::uint64_t operator()(const std::uint64_t&) const { return 0; }
  };
  FlatHashMap<std::uint64_t, std::uint64_t, HomeBucketHash> map;
  for (std::uint64_t k = 0; k < 8; ++k) {
    map[k] = k;
  }
  const std::size_t removed =
      map.EraseIf([](const std::uint64_t& key, std::uint64_t&) { return key % 2 == 0; });
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(map.size(), 4u);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(map.Contains(k), k % 2 == 1) << k;
  }
}

// ---- Randomized differential tests against the std reference ----

// Deterministic PRNG (xorshift64*) so failures reproduce.
class TestRng {
 public:
  explicit TestRng(std::uint64_t seed) : state_(seed ? seed : 1) {}
  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

class FlatHashMapDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatHashMapDifferential, MatchesUnorderedMap) {
  TestRng rng(GetParam());
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  // Small key space forces frequent hits, erases of present keys, and
  // reinsertion into shifted clusters; ops count crosses growth boundaries.
  const std::uint64_t key_space = 1 + rng.Below(400);
  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t key = rng.Below(key_space);
    switch (rng.Below(4)) {
      case 0: {  // Insert or overwrite.
        const std::uint64_t value = rng.Next();
        map[key] = value;
        reference[key] = value;
        break;
      }
      case 1: {  // TryEmplace (no overwrite).
        auto [value, inserted] = map.TryEmplace(key);
        auto [it, ref_inserted] = reference.try_emplace(key, 0);
        ASSERT_EQ(inserted, ref_inserted);
        ASSERT_EQ(*value, it->second);
        break;
      }
      case 2: {  // Erase.
        ASSERT_EQ(map.Erase(key), reference.erase(key) == 1);
        break;
      }
      case 3: {  // Lookup.
        const auto it = reference.find(key);
        std::uint64_t* found = map.Find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        ASSERT_EQ(map.Contains(key), it != reference.end());
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full-content comparison via iteration both ways.
  std::size_t visited = 0;
  map.ForEach([&](std::uint64_t key, const std::uint64_t& value) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << key;
    ASSERT_EQ(value, it->second);
    ++visited;
  });
  ASSERT_EQ(visited, reference.size());
}

TEST_P(FlatHashMapDifferential, EraseIfMatchesReference) {
  TestRng rng(GetParam() * 977 + 5);
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t key = rng.Below(2000);
      const std::uint64_t value = rng.Next();
      map[key] = value;
      reference[key] = value;
    }
    const std::uint64_t modulus = 2 + rng.Below(5);
    const std::uint64_t keep = rng.Below(modulus);
    const std::size_t removed = map.EraseIf(
        [&](const std::uint64_t& key, std::uint64_t&) { return key % modulus != keep; });
    std::size_t ref_removed = 0;
    for (auto it = reference.begin(); it != reference.end();) {
      if (it->first % modulus != keep) {
        it = reference.erase(it);
        ++ref_removed;
      } else {
        ++it;
      }
    }
    ASSERT_EQ(removed, ref_removed);
    ASSERT_EQ(map.size(), reference.size());
    for (const auto& [key, value] : reference) {
      ASSERT_NE(map.Find(key), nullptr) << key;
      ASSERT_EQ(*map.Find(key), value);
    }
  }
}

TEST_P(FlatHashMapDifferential, SetMatchesUnorderedSet) {
  TestRng rng(GetParam() * 31 + 7);
  FlatHashSet<std::uint64_t> set;
  std::unordered_set<std::uint64_t> reference;
  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t key = rng.Below(300);
    switch (rng.Below(3)) {
      case 0:
        ASSERT_EQ(set.Insert(key), reference.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(set.Erase(key), reference.erase(key) == 1);
        break;
      case 2:
        ASSERT_EQ(set.Contains(key), reference.count(key) == 1);
        break;
    }
    ASSERT_EQ(set.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatHashMapDifferential,
                         ::testing::Values(1u, 42u, 1234u, 87'654'321u));

}  // namespace
}  // namespace coopfs
