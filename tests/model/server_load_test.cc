#include "src/model/server_load.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

// §4.1: message = 1 unit, data transfer = 2 more, disk transfer = 2.
TEST(ServerLoadTest, ServerMemoryHitCostsFourUnits) {
  ServerLoadTracker tracker;
  tracker.ChargeServerMemoryHit();
  EXPECT_EQ(tracker.Units(ServerLoadKind::kHitServerMemory), 4u);
  EXPECT_EQ(tracker.TotalUnits(), 4u);
}

TEST(ServerLoadTest, RemoteClientHitCostsTwoUnits) {
  ServerLoadTracker tracker;
  tracker.ChargeRemoteClientHit();
  EXPECT_EQ(tracker.Units(ServerLoadKind::kHitRemoteClient), 2u);
}

TEST(ServerLoadTest, DiskHitCostsSixUnits) {
  ServerLoadTracker tracker;
  tracker.ChargeDiskHit();
  EXPECT_EQ(tracker.Units(ServerLoadKind::kHitDisk), 6u);
}

TEST(ServerLoadTest, SmallMessagesChargeOther) {
  ServerLoadTracker tracker;
  tracker.ChargeSmallMessages(3);
  EXPECT_EQ(tracker.Units(ServerLoadKind::kOther), 3u);
}

TEST(ServerLoadTest, TotalsAccumulate) {
  ServerLoadTracker tracker;
  tracker.ChargeServerMemoryHit();
  tracker.ChargeRemoteClientHit();
  tracker.ChargeDiskHit();
  tracker.ChargeSmallMessages(1);
  EXPECT_EQ(tracker.TotalUnits(), 4u + 2u + 6u + 1u);
}

TEST(ServerLoadTest, MergeAndReset) {
  ServerLoadTracker a;
  ServerLoadTracker b;
  a.ChargeDiskHit();
  b.ChargeDiskHit();
  b.ChargeSmallMessages(2);
  a.Merge(b);
  EXPECT_EQ(a.Units(ServerLoadKind::kHitDisk), 12u);
  EXPECT_EQ(a.Units(ServerLoadKind::kOther), 2u);
  a.Reset();
  EXPECT_EQ(a.TotalUnits(), 0u);
}

TEST(ServerLoadTest, KindNames) {
  EXPECT_STREQ(ServerLoadKindName(ServerLoadKind::kHitServerMemory), "Hit Server Memory");
  EXPECT_STREQ(ServerLoadKindName(ServerLoadKind::kHitRemoteClient), "Hit Remote Client");
  EXPECT_STREQ(ServerLoadKindName(ServerLoadKind::kHitDisk), "Hit Disk");
  EXPECT_STREQ(ServerLoadKindName(ServerLoadKind::kOther), "Other Load");
}

}  // namespace
}  // namespace coopfs
