#include "src/model/cache_model.h"

#include <numeric>

#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

TEST(ZipfProbabilitiesTest, NormalizedAndDecreasing) {
  const std::vector<double> p = ZipfProbabilities(100, 1.0);
  ASSERT_EQ(p.size(), 100u);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_GT(p[i - 1], p[i]);
  }
}

TEST(ZipfProbabilitiesTest, ZeroSkewIsUniform) {
  const std::vector<double> p = ZipfProbabilities(10, 0.0);
  for (double v : p) {
    EXPECT_NEAR(v, 0.1, 1e-12);
  }
}

TEST(CheTest, EdgeCases) {
  const std::vector<double> p = ZipfProbabilities(100, 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(p, 100), 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate(p, 200), 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRate({}, 10), 0.0);
}

TEST(CheTest, UniformPopularityApproachesProportionalHitRate) {
  // Under IRM with uniform popularity, LRU's hit rate equals C/N.
  const std::vector<double> p = ZipfProbabilities(1000, 0.0);
  EXPECT_NEAR(CheLruHitRate(p, 250), 0.25, 0.01);
  EXPECT_NEAR(CheLruHitRate(p, 500), 0.50, 0.01);
}

TEST(CheTest, MonotoneInCacheSize) {
  const std::vector<double> p = ZipfProbabilities(1000, 0.9);
  double last = 0.0;
  for (std::size_t c : {10u, 50u, 100u, 400u, 900u}) {
    const double hit = CheLruHitRate(p, c);
    EXPECT_GT(hit, last);
    last = hit;
  }
}

TEST(CheTest, SkewBeatsUniformAtSameSize) {
  const std::vector<double> uniform = ZipfProbabilities(1000, 0.0);
  const std::vector<double> skewed = ZipfProbabilities(1000, 1.0);
  EXPECT_GT(CheLruHitRate(skewed, 100), CheLruHitRate(uniform, 100) + 0.1);
}

class CheOracleValidation : public ::testing::TestWithParam<std::size_t> {};

// The paper validated its simulator against the Leff synthetic workload
// (§3); we do the analytic equivalent. A Leff trace with shared_fraction 0
// gives every client an IRM Zipf stream, so each client's *local* LRU hit
// rate must match Che's approximation for its cache size. Any drift in the
// BlockCache LRU discipline or the replay engine breaks this.
TEST_P(CheOracleValidation, SimulatedLruHitRateMatchesAnalyticPrediction) {
  const std::size_t cache_blocks = GetParam();

  LeffWorkloadConfig leff;
  leff.num_clients = 4;
  leff.num_objects = 2048;
  leff.zipf_s = 0.9;
  leff.shared_fraction = 0.0;
  leff.num_events = 400'000;
  const Trace trace = GenerateLeffWorkload(leff);

  SimulationConfig config;
  config.client_cache_blocks = cache_blocks;
  config.server_cache_blocks = 1;  // Keep the server out of the picture.
  config.warmup_events = 200'000;
  Simulator simulator(config, &trace);
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());

  const double predicted =
      CheLruHitRate(ZipfProbabilities(leff.num_objects, leff.zipf_s), cache_blocks);
  const double measured = result->LevelFraction(CacheLevel::kLocalMemory);
  EXPECT_NEAR(measured, predicted, 0.03)
      << "cache " << cache_blocks << ": simulated " << measured << " vs Che " << predicted;
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, CheOracleValidation,
                         ::testing::Values(std::size_t{64}, std::size_t{256}, std::size_t{512},
                                           std::size_t{1024}));

}  // namespace
}  // namespace coopfs
