#include "src/model/network_model.h"

#include <gtest/gtest.h>

#include "src/model/access_times.h"

namespace coopfs {
namespace {

// Figure 1: ATM remote memory = 250 (copy) + 400 (overhead) + 400 (data).
TEST(NetworkModelTest, Figure1AtmRemoteMemory) {
  const NetworkModel atm = NetworkModel::Atm155();
  EXPECT_EQ(atm.RemoteFetchTime(2), 1050);
}

// Figure 1: ATM remote disk = 1050 + 14,800.
TEST(NetworkModelTest, Figure1AtmRemoteDisk) {
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();
  EXPECT_EQ(atm.RemoteFetchTime(2) + disk.access_time, 15'850);
}

// Figure 1: Ethernet remote memory = 250 + 400 + 6250 = 6900.
TEST(NetworkModelTest, Figure1EthernetRemoteMemory) {
  const NetworkModel eth = NetworkModel::Ethernet10();
  EXPECT_EQ(eth.RemoteFetchTime(2), 6900);
}

// Figure 1: Ethernet remote disk = 6900 + 14,800 = 21,700.
TEST(NetworkModelTest, Figure1EthernetRemoteDisk) {
  const NetworkModel eth = NetworkModel::Ethernet10();
  const DiskModel disk = DiskModel::RuemmlerWilkes();
  EXPECT_EQ(eth.RemoteFetchTime(2) + disk.access_time, 21'700);
}

// §3: a server-forwarded cooperative hit takes 3 hops: 1250 us on ATM.
TEST(NetworkModelTest, ForwardedRemoteHitIs1250OnAtm) {
  EXPECT_EQ(NetworkModel::Atm155().RemoteFetchTime(3), 1250);
}

TEST(NetworkModelTest, TransferTimeExcludesMemoryCopy) {
  const NetworkModel atm = NetworkModel::Atm155();
  EXPECT_EQ(atm.TransferTime(2), 800);  // The paper's request-reply figure.
}

TEST(NetworkModelTest, WithRoundTripScalesProportionally) {
  const NetworkModel atm = NetworkModel::Atm155();
  const NetworkModel scaled = atm.WithRoundTrip(8000);  // 10x slower.
  EXPECT_EQ(scaled.TransferTime(2), 8000);
  EXPECT_EQ(scaled.per_hop, 2000);
  EXPECT_EQ(scaled.block_transfer, 4000);
  EXPECT_EQ(scaled.memory_copy, 250);  // Memory speed unaffected.
}

TEST(NetworkModelTest, WithRoundTripIdentity) {
  const NetworkModel atm = NetworkModel::Atm155();
  const NetworkModel same = atm.WithRoundTrip(atm.TransferTime(2));
  EXPECT_EQ(same.per_hop, atm.per_hop);
  EXPECT_EQ(same.block_transfer, atm.block_transfer);
}

// Figure 3 rows, exactly as printed in the paper.
TEST(AccessTimesTest, Figure3ServerForwardedAlgorithms) {
  const AccessTimes times =
      ComputeAccessTimes(NetworkModel::Atm155(), DiskModel::RuemmlerWilkes(), /*remote_hops=*/3);
  EXPECT_EQ(times.local, 250);
  EXPECT_EQ(times.remote_client, 1250);  // Greedy / Central / N-Chance.
  EXPECT_EQ(times.server_memory, 1050);
  EXPECT_EQ(times.server_disk, 15'850);
}

TEST(AccessTimesTest, Figure3DirectCooperation) {
  const AccessTimes times =
      ComputeAccessTimes(NetworkModel::Atm155(), DiskModel::RuemmlerWilkes(), /*remote_hops=*/2);
  EXPECT_EQ(times.remote_client, 1050);  // Direct: no server forward hop.
}

TEST(AccessTimesTest, ForLevelMatchesFields) {
  const AccessTimes times =
      ComputeAccessTimes(NetworkModel::Atm155(), DiskModel::RuemmlerWilkes(), 3);
  EXPECT_EQ(times.ForLevel(CacheLevel::kLocalMemory), times.local);
  EXPECT_EQ(times.ForLevel(CacheLevel::kRemoteClient), times.remote_client);
  EXPECT_EQ(times.ForLevel(CacheLevel::kServerMemory), times.server_memory);
  EXPECT_EQ(times.ForLevel(CacheLevel::kServerDisk), times.server_disk);
}

class NetworkSweepProperty : public ::testing::TestWithParam<Micros> {};

// Property (Figure 13 machinery): scaling to any round trip preserves the
// 2-hop round-trip target exactly and keeps hop/transfer ratios.
TEST_P(NetworkSweepProperty, RoundTripTargetIsExact) {
  const Micros target = GetParam();
  const NetworkModel scaled = NetworkModel::Atm155().WithRoundTrip(target);
  EXPECT_NEAR(static_cast<double>(scaled.TransferTime(2)), static_cast<double>(target),
              2.0);  // Rounding each component can cost at most 1 us each.
}

INSTANTIATE_TEST_SUITE_P(RoundTrips, NetworkSweepProperty,
                         ::testing::Values(100, 200, 400, 800, 1600, 5000, 10'000));

}  // namespace
}  // namespace coopfs
