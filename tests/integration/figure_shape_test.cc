// Golden-shape regression tests: scaled-down versions of the paper's
// figure experiments, asserting the qualitative results that EXPERIMENTS.md
// reports. If a future change silently breaks a reproduction (e.g. the
// Figure 10 plateau or the Figure 13 crossover), these fail.
#include <gtest/gtest.h>

#include "src/core/central_coord.h"
#include "src/core/nchance.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

// One shared scaled-down Sprite-like workload for all shape tests.
class FigureShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig workload = SpriteWorkloadConfig(42);
    workload.num_events = 400'000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static SimulationConfig PaperConfig() {
    SimulationConfig config;
    config.WithClientCacheMiB(16).WithServerCacheMiB(128);
    config.warmup_events = SpriteWarmupEvents(trace_->size());
    return config;
  }

  static SimulationResult Run(const SimulationConfig& config, PolicyKind kind) {
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(kind);
    auto result = simulator.Run(*policy);
    EXPECT_TRUE(result.ok());
    return *std::move(result);
  }

  static Trace* trace_;
};

Trace* FigureShapeTest::trace_ = nullptr;

// Figure 4/5: the coordinated algorithms reduce baseline disk accesses far
// more than greedy, and N-Chance barely dents the local hit rate.
TEST_F(FigureShapeTest, Figure4And5Shape) {
  const SimulationConfig config = PaperConfig();
  const SimulationResult base = Run(config, PolicyKind::kBaseline);
  const SimulationResult greedy = Run(config, PolicyKind::kGreedy);
  const SimulationResult nchance = Run(config, PolicyKind::kNChance);
  const SimulationResult best = Run(config, PolicyKind::kBestCase);

  EXPECT_GT(greedy.SpeedupOver(base), 1.05);
  EXPECT_GT(nchance.SpeedupOver(base), greedy.SpeedupOver(base));
  // N-Chance within 10% of the best case (the paper's headline).
  EXPECT_LE(best.AverageReadTime(), nchance.AverageReadTime());
  EXPECT_GT(nchance.SpeedupOver(base), best.SpeedupOver(base) * 0.9);
  // Disk-rate reduction dominates; local hit rate barely moves. (The full
  // 700k-event run roughly halves the disk rate; this scaled-down trace
  // leaves less cooperative headroom, so the bar is softer.)
  EXPECT_LT(nchance.DiskRate(), base.DiskRate() * 0.82);
  EXPECT_NEAR(nchance.LevelFraction(CacheLevel::kLocalMemory),
              base.LevelFraction(CacheLevel::kLocalMemory), 0.02);
}

// Figure 9: coordinating a moderate fraction beats both extremes.
TEST_F(FigureShapeTest, Figure9PlateauShape) {
  const SimulationConfig config = PaperConfig();
  const double at_0 = Run(config, PolicyKind::kBaseline).AverageReadTime();
  PolicyParams params;
  params.coordinated_fraction = 0.7;
  Simulator simulator(config, trace_);
  CentralCoordPolicy seventy(0.7);
  CentralCoordPolicy all(1.0);
  const double at_70 = simulator.Run(seventy)->AverageReadTime();
  const double at_100 = simulator.Run(all)->AverageReadTime();
  EXPECT_LT(at_70, at_0);
  EXPECT_LT(at_70, at_100);
}

// Figure 10: the n = 0 -> 1 jump dwarfs the n = 1 -> 2 gain, and the curve
// is flat beyond n = 2.
TEST_F(FigureShapeTest, Figure10RecirculationShape) {
  const SimulationConfig config = PaperConfig();
  Simulator simulator(config, trace_);
  NChancePolicy n0(0);
  NChancePolicy n1(1);
  NChancePolicy n2(2);
  NChancePolicy n8(8);
  const double t0 = simulator.Run(n0)->AverageReadTime();
  const double t1 = simulator.Run(n1)->AverageReadTime();
  const double t2 = simulator.Run(n2)->AverageReadTime();
  const double t8 = simulator.Run(n8)->AverageReadTime();
  EXPECT_LT(t1, t0);
  EXPECT_LE(t2, t1);
  EXPECT_GT(t0 - t1, (t1 - t2) * 2) << "0->1 must be the dominant gain";
  EXPECT_NEAR(t8, t2, t2 * 0.02) << "beyond n=2 the curve is flat";
}

// Figure 12: a server cache rivaling aggregate client memory erases the
// baseline's disadvantage.
TEST_F(FigureShapeTest, Figure12ServerCacheCrossover) {
  SimulationConfig small = PaperConfig();
  small.WithServerCacheMiB(64);
  SimulationConfig huge = PaperConfig();
  huge.WithServerCacheMiB(1024);  // > 42 x 16 MB aggregate.
  const double base_small = Run(small, PolicyKind::kBaseline).AverageReadTime();
  const double nchance_small = Run(small, PolicyKind::kNChance).AverageReadTime();
  const double base_huge = Run(huge, PolicyKind::kBaseline).AverageReadTime();
  const double nchance_huge = Run(huge, PolicyKind::kNChance).AverageReadTime();
  EXPECT_GT(base_small, nchance_small * 1.2) << "cooperation wins at small server caches";
  EXPECT_NEAR(base_huge / nchance_huge, 1.0, 0.05) << "and stops mattering at huge ones";
}

// Figure 13: on a slow (Ethernet-class) network Central Coordination loses
// its edge while N-Chance keeps a solid one.
TEST_F(FigureShapeTest, Figure13SlowNetworkShape) {
  SimulationConfig slow = PaperConfig();
  slow.network = NetworkModel::Atm155().WithRoundTrip(6400);
  const double base = Run(slow, PolicyKind::kBaseline).AverageReadTime();
  const double central = Run(slow, PolicyKind::kCentralCoord).AverageReadTime();
  const double nchance = Run(slow, PolicyKind::kNChance).AverageReadTime();
  EXPECT_GT(base, nchance * 1.04) << "N-Chance keeps winning on slow networks";
  EXPECT_GT(central, nchance * 1.10) << "Central pays for its lost local hits";
}

}  // namespace
}  // namespace coopfs
