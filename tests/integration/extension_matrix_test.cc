// Interaction coverage: the extensions (delayed writes, churn, multiple
// servers) enabled *together*, across every policy. Each feature is tested
// in isolation elsewhere; this matrix catches interactions (e.g. a reboot
// losing a dirty block whose flush is still queued, on a striped server).
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

using MatrixParam = std::tuple<PolicyKind, std::uint32_t /*servers*/>;

class ExtensionMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ExtensionMatrixTest, AllExtensionsTogetherStayConsistent) {
  const auto [kind, servers] = GetParam();

  WorkloadConfig workload = SmallTestWorkloadConfig(321);
  workload.num_events = 8000;
  workload.mean_reboots_per_client = 4.0;  // Heavy churn.
  const Trace trace = GenerateWorkload(workload);

  SimulationConfig config;
  config.client_cache_blocks = 24;
  config.server_cache_blocks = 48;
  config.warmup_events = 2000;
  config.num_servers = servers;
  config.write_policy = WritePolicy::kDelayedWrite;
  config.write_delay = 2'000'000;  // Short delay: plenty of flush traffic.
  config.timeline_interval = workload.duration / 20;

  Simulator simulator(config, &trace);
  auto policy = MakePolicy(kind);
  const auto result = simulator.Run(*policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    ASSERT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Accounting stays complete under the full feature set.
  EXPECT_EQ(result->level_counts.Total(), result->reads);
  EXPECT_GT(result->reads, 0u);
  EXPECT_GT(result->writes, 0u);
  // Write fates partition: flushed + absorbed + lost + still-dirty; the
  // first three never exceed the writes observed.
  EXPECT_LE(result->flushed_writes + result->absorbed_writes + result->lost_writes,
            result->writes);
  // Churn must produce some lost dirty data under a delayed-write policy.
  EXPECT_GT(result->lost_writes + result->flushed_writes + result->absorbed_writes, 0u);
  // Timeline still sums to the totals.
  std::uint64_t timeline_reads = 0;
  for (const auto& point : result->timeline) {
    timeline_reads += point.reads;
  }
  EXPECT_EQ(timeline_reads, result->reads);
  // Determinism under the full feature set.
  auto policy_again = MakePolicy(kind);
  const auto rerun = simulator.Run(*policy_again);
  ASSERT_TRUE(rerun.ok());
  EXPECT_NEAR(rerun->AverageReadTime(), result->AverageReadTime(), 1e-9);
  EXPECT_EQ(rerun->lost_writes, result->lost_writes);
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [kind, servers] = info.param;
  std::string name = std::string(PolicyKindName(kind)) + "_srv" + std::to_string(servers);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ExtensionMatrixTest,
                         ::testing::Combine(::testing::ValuesIn(AllPolicyKinds()),
                                            ::testing::Values(1u, 3u)),
                         MatrixName);

}  // namespace
}  // namespace coopfs
