// Golden-output tests for the paper's Figure 1 and Figure 3 tables. These
// tables are pure functions of the technology constants (no simulation), so
// their rendered output is locked down byte-for-byte: any drift in the
// constants, the access-time arithmetic, or the table formatter shows up as
// a readable diff against the paper's published numbers.
#include <string>

#include <gtest/gtest.h>

#include "src/common/format.h"
#include "src/model/access_times.h"
#include "src/model/network_model.h"

namespace coopfs {
namespace {

std::string Us(Micros value) { return std::to_string(value) + " us"; }

// Mirrors bench/fig01_technology_table.cc exactly.
std::string RenderFigure1() {
  const NetworkModel ethernet = NetworkModel::Ethernet10();
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  TableFormatter table({"", "Eth Remote Mem", "Eth Remote Disk", "ATM Remote Mem",
                        "ATM Remote Disk"});
  table.AddRow({"Mem. Copy", Us(ethernet.memory_copy), Us(ethernet.memory_copy),
                Us(atm.memory_copy), Us(atm.memory_copy)});
  table.AddRow({"Net Overhead", Us(ethernet.per_hop * 2), Us(ethernet.per_hop * 2),
                Us(atm.per_hop * 2), Us(atm.per_hop * 2)});
  table.AddRow({"Data", Us(ethernet.block_transfer), Us(ethernet.block_transfer),
                Us(atm.block_transfer), Us(atm.block_transfer)});
  table.AddRow({"Disk", "", Us(disk.access_time), "", Us(disk.access_time)});
  table.AddRule();
  table.AddRow({"Total", Us(ethernet.RemoteFetchTime(2)),
                Us(ethernet.RemoteFetchTime(2) + disk.access_time), Us(atm.RemoteFetchTime(2)),
                Us(atm.RemoteFetchTime(2) + disk.access_time)});
  return table.ToString();
}

// Mirrors bench/fig03_access_times.cc exactly.
std::string RenderFigure3() {
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  TableFormatter table({"Algorithm", "Local Mem.", "Remote Client Mem.", "Server Mem.",
                        "Server Disk"});
  auto row = [&table](const char* name, const AccessTimes& times) {
    table.AddRow({name, Us(times.local), Us(times.remote_client), Us(times.server_memory),
                  Us(times.server_disk)});
  };
  row("Direct", ComputeAccessTimes(atm, disk, /*remote_hops=*/2));
  row("Greedy", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  row("Central", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  row("N-Chance", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  return table.ToString();
}

TEST(GoldenFiguresTest, Figure1TechnologyTable) {
  const std::string golden =
      "              Eth Remote Mem  Eth Remote Disk  ATM Remote Mem  ATM Remote Disk\n"
      "------------------------------------------------------------------------------\n"
      "Mem. Copy             250 us           250 us          250 us           250 us\n"
      "Net Overhead          400 us           400 us          400 us           400 us\n"
      "Data                 6250 us          6250 us          400 us           400 us\n"
      "Disk                                 14800 us                         14800 us\n"
      "------------------------------------------------------------------------------\n"
      "Total                6900 us         21700 us         1050 us         15850 us\n";
  EXPECT_EQ(RenderFigure1(), golden);
}

TEST(GoldenFiguresTest, Figure3AccessTimesTable) {
  const std::string golden =
      "Algorithm  Local Mem.  Remote Client Mem.  Server Mem.  Server Disk\n"
      "-------------------------------------------------------------------\n"
      "Direct         250 us             1050 us      1050 us     15850 us\n"
      "Greedy         250 us             1250 us      1050 us     15850 us\n"
      "Central        250 us             1250 us      1050 us     15850 us\n"
      "N-Chance       250 us             1250 us      1050 us     15850 us\n";
  EXPECT_EQ(RenderFigure3(), golden);
}

TEST(GoldenFiguresTest, PaperConstants) {
  // Section 2.1 technology assumptions, in microseconds.
  const NetworkModel ethernet = NetworkModel::Ethernet10();
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  EXPECT_EQ(ethernet.memory_copy, 250);
  EXPECT_EQ(ethernet.per_hop, 200);
  EXPECT_EQ(ethernet.block_transfer, 6250);
  EXPECT_EQ(atm.memory_copy, 250);
  EXPECT_EQ(atm.per_hop, 200);
  EXPECT_EQ(atm.block_transfer, 400);
  EXPECT_EQ(disk.access_time, 14800);

  // Figure 1 totals: remote memory vs. remote disk for both networks.
  EXPECT_EQ(ethernet.RemoteFetchTime(2), 6900);
  EXPECT_EQ(ethernet.RemoteFetchTime(2) + disk.access_time, 21700);
  EXPECT_EQ(atm.RemoteFetchTime(2), 1050);
  EXPECT_EQ(atm.RemoteFetchTime(2) + disk.access_time, 15850);
}

TEST(GoldenFiguresTest, Figure3AccessTimeValues) {
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  // Direct cooperation reaches remote client memory in 2 hops; the
  // server-forwarded algorithms need 3.
  const AccessTimes direct = ComputeAccessTimes(atm, disk, /*remote_hops=*/2);
  EXPECT_EQ(direct.local, 250);
  EXPECT_EQ(direct.remote_client, 1050);
  EXPECT_EQ(direct.server_memory, 1050);
  EXPECT_EQ(direct.server_disk, 15850);

  const AccessTimes forwarded = ComputeAccessTimes(atm, disk, /*remote_hops=*/3);
  EXPECT_EQ(forwarded.local, 250);
  EXPECT_EQ(forwarded.remote_client, 1250);
  EXPECT_EQ(forwarded.server_memory, 1050);
  EXPECT_EQ(forwarded.server_disk, 15850);
}

}  // namespace
}  // namespace coopfs
