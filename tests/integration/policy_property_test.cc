// Cross-policy property tests: for every (policy, seed, cache-size)
// combination, full runs must satisfy structural invariants regardless of
// the workload's randomness.
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

using PropertyParam = std::tuple<PolicyKind, std::uint64_t, std::size_t>;

class PolicyPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(PolicyPropertyTest, RunSatisfiesStructuralInvariants) {
  const auto [kind, seed, cache_blocks] = GetParam();

  WorkloadConfig workload = SmallTestWorkloadConfig(seed);
  workload.num_events = 6000;
  const Trace trace = GenerateWorkload(workload);

  SimulationConfig config;
  config.client_cache_blocks = cache_blocks;
  config.server_cache_blocks = cache_blocks * 2;
  config.warmup_events = 1000;
  config.seed = seed;

  Simulator simulator(config, &trace);
  auto policy = MakePolicy(kind);
  const auto result = simulator.Run(*policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    ASSERT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Read accounting is complete and consistent.
  EXPECT_EQ(result->level_counts.Total(), result->reads);
  std::uint64_t per_client_sum = 0;
  double per_client_time = 0.0;
  for (const ClientReadStats& client : result->per_client) {
    per_client_sum += client.reads;
    per_client_time += client.total_time_us;
  }
  EXPECT_EQ(per_client_sum, result->reads);
  double level_time = 0.0;
  for (double t : result->level_time_us) {
    level_time += t;
  }
  EXPECT_NEAR(per_client_time, level_time, 1e-6);

  // Latency sanity: the average read cannot beat a pure local hit or
  // exceed a pure worst-case disk access.
  if (result->reads > 0) {
    EXPECT_GE(result->AverageReadTime(), 250.0);
    EXPECT_LE(result->AverageReadTime(), 16'050.0);
  }
}

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto [kind, seed, cache_blocks] = info.param;
  std::string name = std::string(PolicyKindName(kind)) + "_s" + std::to_string(seed) + "_c" +
                     std::to_string(cache_blocks);
  for (char& c : name) {
    if (c == '-') {
      c = '_';  // gtest parameter names must be identifiers.
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllPolicyKinds()),
                       ::testing::Values(1ull, 42ull, 1994ull),
                       ::testing::Values(std::size_t{4}, std::size_t{32})),
    ParamName);

}  // namespace
}  // namespace coopfs
