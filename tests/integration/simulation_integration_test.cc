// End-to-end integration tests: full simulations over generated workloads,
// checking the paper's qualitative results and cross-policy invariants.
#include <gtest/gtest.h>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

struct AllResults {
  SimulationResult baseline, direct, greedy, central, nchance, hash, weighted, best;
};

AllResults RunAll(const Trace& trace, SimulationConfig config) {
  Simulator simulator(config, &trace);
  AllResults results;
  auto run = [&simulator](PolicyKind kind) {
    auto policy = MakePolicy(kind);
    auto result = simulator.Run(*policy, [](SimContext& context) {
      const Status status = CheckCacheDirectoryConsistency(context);
      ASSERT_TRUE(status.ok()) << status.ToString();
    });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  };
  results.baseline = run(PolicyKind::kBaseline);
  results.direct = run(PolicyKind::kDirectCoop);
  results.greedy = run(PolicyKind::kGreedy);
  results.central = run(PolicyKind::kCentralCoord);
  results.nchance = run(PolicyKind::kNChance);
  results.hash = run(PolicyKind::kHashDistributed);
  results.weighted = run(PolicyKind::kWeightedLru);
  results.best = run(PolicyKind::kBestCase);
  return results;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig workload = SmallTestWorkloadConfig(2025);
    workload.num_events = 30'000;
    trace_ = new Trace(GenerateWorkload(workload));
    SimulationConfig config = TinyConfig(64, 128);
    config.warmup_events = 10'000;
    results_ = new AllResults(RunAll(*trace_, config));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete trace_;
    results_ = nullptr;
    trace_ = nullptr;
  }

  static const AllResults& results() { return *results_; }

  static Trace* trace_;
  static AllResults* results_;
};

Trace* IntegrationTest::trace_ = nullptr;
AllResults* IntegrationTest::results_ = nullptr;

TEST_F(IntegrationTest, EveryPolicyCountsEveryRead) {
  const std::uint64_t reads = results().baseline.reads;
  ASSERT_GT(reads, 0u);
  for (const SimulationResult* result :
       {&results().direct, &results().greedy, &results().central, &results().nchance,
        &results().hash, &results().weighted, &results().best}) {
    EXPECT_EQ(result->reads, reads) << result->policy_name;
    EXPECT_EQ(result->level_counts.Total(), reads) << result->policy_name;
  }
}

TEST_F(IntegrationTest, PerClientReadsSumToTotal) {
  for (const SimulationResult* result : {&results().baseline, &results().nchance}) {
    std::uint64_t sum = 0;
    for (const ClientReadStats& client : result->per_client) {
      sum += client.reads;
    }
    EXPECT_EQ(sum, result->reads) << result->policy_name;
  }
}

TEST_F(IntegrationTest, BaselineNeverUsesRemoteClients) {
  EXPECT_EQ(results().baseline.level_counts.Get(
                static_cast<std::size_t>(CacheLevel::kRemoteClient)),
            0u);
}

// Paper Figure 4 ordering: every cooperative algorithm beats the baseline;
// coordinated algorithms beat greedy; nothing beats the best case (within
// small tolerance, since best-case is a bound for LRU-style algorithms).
TEST_F(IntegrationTest, SpeedupOrderingMatchesPaper) {
  const double base = results().baseline.AverageReadTime();
  EXPECT_LT(results().greedy.AverageReadTime(), base);
  EXPECT_LE(results().direct.AverageReadTime(), base * 1.005);
  EXPECT_LT(results().central.AverageReadTime(), results().greedy.AverageReadTime());
  EXPECT_LT(results().nchance.AverageReadTime(), results().greedy.AverageReadTime());
  EXPECT_LE(results().best.AverageReadTime(),
            results().nchance.AverageReadTime() * 1.05);
  EXPECT_LE(results().best.AverageReadTime(),
            results().central.AverageReadTime() * 1.05);
}

// Paper Figure 5: coordinated algorithms cut the disk rate well below the
// baseline's; N-Chance barely disturbs the local hit rate while Central
// Coordination sacrifices a chunk of it.
TEST_F(IntegrationTest, HitRateShapesMatchPaper) {
  EXPECT_LT(results().nchance.DiskRate(), results().baseline.DiskRate() * 0.85);
  EXPECT_LT(results().central.DiskRate(), results().baseline.DiskRate() * 0.85);
  const double base_local = results().baseline.LevelFraction(CacheLevel::kLocalMemory);
  EXPECT_GT(results().nchance.LevelFraction(CacheLevel::kLocalMemory), base_local - 0.05);
  EXPECT_LT(results().central.LevelFraction(CacheLevel::kLocalMemory), base_local);
}

// Paper §2.2: greedy forwarding does not increase server load.
TEST_F(IntegrationTest, GreedyLoadNotAboveBaseline) {
  EXPECT_LE(results().greedy.server_load.TotalUnits(),
            results().baseline.server_load.TotalUnits());
}

// Paper §2.5: hash distribution serves cooperative hits without the server.
TEST_F(IntegrationTest, HashLoadBelowCentral) {
  EXPECT_LT(results().hash.server_load.TotalUnits(),
            results().central.server_load.TotalUnits());
}

// Paper Figure 7: N-Chance and Greedy do no harm to any client.
TEST_F(IntegrationTest, GreedyAndNChanceAreFair) {
  for (const SimulationResult* result : {&results().greedy, &results().nchance}) {
    const std::vector<double> speedups = result->PerClientSpeedup(results().baseline);
    for (std::size_t c = 0; c < speedups.size(); ++c) {
      // Allow a sliver of noise for nearly idle clients.
      EXPECT_GT(speedups[c], 0.90) << result->policy_name << " client " << c;
    }
  }
}

TEST_F(IntegrationTest, ResultsAreDeterministic) {
  SimulationConfig config = TinyConfig(64, 128);
  config.warmup_events = 10'000;
  Simulator simulator(config, trace_);
  auto policy_a = MakePolicy(PolicyKind::kNChance);
  auto policy_b = MakePolicy(PolicyKind::kNChance);
  const auto a = simulator.Run(*policy_a);
  const auto b = simulator.Run(*policy_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->level_counts.Total(), b->level_counts.Total());
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(a->level_counts.Get(level), b->level_counts.Get(level));
  }
  EXPECT_EQ(a->server_load.TotalUnits(), b->server_load.TotalUnits());
}

// The paper validated its simulator against the Leff et al. synthetic
// workload (§3). With a stationary access distribution, doubling effective
// cache through cooperation must raise the combined-memory hit rate, and
// results must be stable across runs.
TEST(LeffValidationTest, CooperationRaisesGlobalHitRate) {
  LeffWorkloadConfig leff;
  leff.num_clients = 8;
  leff.num_objects = 2048;
  leff.num_events = 60'000;
  const Trace trace = GenerateLeffWorkload(leff);
  SimulationConfig config = TinyConfig(64, 64);
  config.warmup_events = 20'000;
  Simulator simulator(config, &trace);
  auto baseline = MakePolicy(PolicyKind::kBaseline);
  auto nchance = MakePolicy(PolicyKind::kNChance);
  const auto base_result = simulator.Run(*baseline);
  const auto coop_result = simulator.Run(*nchance);
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(coop_result.ok());
  EXPECT_LT(coop_result->DiskRate(), base_result->DiskRate());
  EXPECT_LT(coop_result->AverageReadTime(), base_result->AverageReadTime());
}

// Zero-sized caches everywhere must still run (everything from disk).
TEST(DegenerateConfigTest, NoCachesMeansAllDisk) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(0, 0, 2), &builder.Build());
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kGreedy, PolicyKind::kNChance,
                          PolicyKind::kCentralCoord}) {
    auto policy = MakePolicy(kind);
    const auto result = simulator.Run(*policy);
    ASSERT_TRUE(result.ok()) << PolicyKindName(kind);
    EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kServerDisk)),
              result->reads)
        << PolicyKindName(kind);
  }
}

}  // namespace
}  // namespace coopfs
