// Event-level tracing (src/obs/trace_recorder.h, trace_sink.h).
//
// The load-bearing guarantees:
//   * Reconciliation — one run's counted spans must reproduce the
//     SimulationResult aggregates *exactly* (same counts, bit-identical
//     latency sums), so the events file is a trustworthy decomposition of
//     the metrics document, not an approximation of it.
//   * Determinism — identical (trace, config, policy) replays serialize to
//     byte-identical coopfs.events/v1 documents, across repeated runs and
//     across RunSimulationsParallel thread counts (one recorder per job).
//   * Transparency — attaching a recorder must not perturb the simulation.
//   * Round-trip — ParseEventsJsonl inverts EventsToJsonl exactly, and the
//     Perfetto export is structurally valid trace_event JSON.
#include "src/obs/trace_recorder.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/core/sweep.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/trace_sink.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

class TraceRecorderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small Sprite-like trace under tight caches, so every mechanism the
    // recorder observes (forwards, recirculations, invalidations) fires.
    WorkloadConfig workload = SmallTestWorkloadConfig();
    workload.num_events = 30'000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static SimulationConfig TestConfig() {
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = trace_->size() / 4;
    return config;
  }

  static SimulationResult RunTraced(PolicyKind kind, TraceRecorder& recorder,
                                    TraceRecorderOptions = {}) {
    SimulationConfig config = TestConfig();
    config.trace_recorder = &recorder;
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  static std::string Export(const TraceRecorder& recorder) {
    TraceExportMetadata metadata;
    metadata.seed = 7;
    metadata.trace_events = trace_->size();
    metadata.workload = "small-test";
    return EventsToJsonl(recorder.runs(), metadata);
  }

  static Trace* trace_;
};

Trace* TraceRecorderTest::trace_ = nullptr;

// ---- Reconciliation with SimulationResult ----

TEST_F(TraceRecorderTest, CountedSpansReconcileExactlyWithMetrics) {
  for (PolicyKind kind : AllPolicyKinds()) {
    TraceRecorder recorder;
    const SimulationResult result = RunTraced(kind, recorder);
    ASSERT_EQ(recorder.runs().size(), 1u);
    const TraceRun& run = recorder.runs().front();
    EXPECT_EQ(run.policy, result.policy_name);

    const TraceRecorder::LevelTotals totals = TraceRecorder::CountedTotals(run);
    EXPECT_EQ(totals.counted_reads, result.reads) << run.policy;
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      EXPECT_EQ(totals.counts[level], result.level_counts.Get(level))
          << run.policy << " level " << level;
      // Bit-exact, not EXPECT_NEAR: the recorder accumulates the same
      // doubles in the same order as Simulator::Run.
      EXPECT_EQ(totals.time_us[level], result.level_time_us[level])
          << run.policy << " level " << level;
    }
  }
}

TEST_F(TraceRecorderTest, OpRecordsReconcileWithSimCounters) {
  TraceRecorder recorder;
  const SimulationResult result = RunTraced(PolicyKind::kNChance, recorder);
  const TraceRun& run = recorder.runs().front();

  // SimulationResult.writes counts post-warm-up writes only; the recorder
  // keeps every write, so filter by the warm-up boundary.
  const std::uint64_t warmup = TestConfig().warmup_events;
  std::uint64_t counted_writes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t recirculations = 0;
  for (const OpRecord& op : run.ops) {
    counted_writes += (op.kind == TraceOpKind::kWrite && op.event_index >= warmup) ? 1 : 0;
    invalidations += op.kind == TraceOpKind::kInvalidation ? 1 : 0;
    recirculations += op.kind == TraceOpKind::kRecirculation ? 1 : 0;
  }
  EXPECT_EQ(counted_writes, result.writes);
  EXPECT_EQ(invalidations, result.counters.invalidations);
  EXPECT_EQ(recirculations, result.counters.recirculations);
  EXPECT_GT(recirculations, 0u) << "workload too small to exercise N-Chance";
}

TEST_F(TraceRecorderTest, ForwardedReadsCarryTheirHolder) {
  TraceRecorder recorder;
  const SimulationResult result = RunTraced(PolicyKind::kGreedy, recorder);
  const TraceRun& run = recorder.runs().front();

  std::uint64_t forwarded = 0;
  for (const ReadSpan& span : run.reads) {
    if (span.level == CacheLevel::kRemoteClient) {
      EXPECT_NE(span.forward_holder, kNoClient) << "remote hit without a holder";
      EXPECT_NE(span.forward_holder, span.client) << "forwarded to the requester itself";
      ++forwarded;
    } else {
      EXPECT_EQ(span.forward_holder, kNoClient);
    }
  }
  EXPECT_GT(forwarded, 0u) << "workload too small to exercise forwarding";
  EXPECT_EQ(forwarded, result.counters.remote_forwards);
}

TEST_F(TraceRecorderTest, DirectoryOpsAreOptInAndReconcile) {
  TraceRecorder without;
  RunTraced(PolicyKind::kGreedy, without);
  for (const OpRecord& op : without.runs().front().ops) {
    EXPECT_NE(op.kind, TraceOpKind::kDirectoryAdd);
    EXPECT_NE(op.kind, TraceOpKind::kDirectoryRemove);
    EXPECT_NE(op.kind, TraceOpKind::kDirectoryErase);
  }

  TraceRecorderOptions options;
  options.record_directory_ops = true;
  TraceRecorder with(options);
  const SimulationResult result = RunTraced(PolicyKind::kGreedy, with);
  std::uint64_t directory_ops = 0;
  for (const OpRecord& op : with.runs().front().ops) {
    directory_ops += (op.kind == TraceOpKind::kDirectoryAdd ||
                      op.kind == TraceOpKind::kDirectoryRemove ||
                      op.kind == TraceOpKind::kDirectoryErase)
                         ? 1
                         : 0;
  }
  EXPECT_EQ(directory_ops, result.counters.directory_ops);
  EXPECT_GT(directory_ops, 0u);
}

// ---- Transparency ----

TEST_F(TraceRecorderTest, AttachingARecorderDoesNotPerturbTheSimulation) {
  SimulationConfig config = TestConfig();
  Simulator untraced(config, trace_);
  auto policy = MakePolicy(PolicyKind::kNChance);
  Result<SimulationResult> baseline = untraced.Run(*policy);
  ASSERT_TRUE(baseline.ok());

  TraceRecorder recorder;
  const SimulationResult traced = RunTraced(PolicyKind::kNChance, recorder);
  // The serializer's shortest-round-trip doubles make equal results produce
  // equal bytes, so one comparison covers every metric.
  EXPECT_EQ(SimulationResultToJson(traced), SimulationResultToJson(*baseline));
}

// ---- Determinism ----

TEST_F(TraceRecorderTest, RepeatedRunsSerializeToIdenticalBytes) {
  TraceRecorder first;
  RunTraced(PolicyKind::kNChance, first);
  TraceRecorder second;
  RunTraced(PolicyKind::kNChance, second);
  EXPECT_EQ(first.runs(), second.runs());
  EXPECT_EQ(Export(first), Export(second));
}

TEST_F(TraceRecorderTest, SweepThreadCountDoesNotChangeTheBytes) {
  // One recorder per job: recorders are not thread-safe, and per-job
  // recording is what keeps parallel sweeps deterministic.
  auto run_sweep = [&](std::size_t threads) {
    std::vector<TraceRecorder> recorders(3);
    std::vector<SimulationJob> jobs(3);
    const PolicyKind kinds[] = {PolicyKind::kGreedy, PolicyKind::kNChance,
                                PolicyKind::kCentralCoord};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].config = TestConfig();
      jobs[i].config.trace_recorder = &recorders[i];
      jobs[i].kind = kinds[i];
    }
    auto results = RunSimulationsParallel(*trace_, jobs, threads);
    for (const auto& result : results) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
    std::string combined;
    for (const TraceRecorder& recorder : recorders) {
      combined += Export(recorder);
      combined += '\n';
    }
    return combined;
  };
  const std::string serial = run_sweep(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run_sweep(3), serial) << "3-thread sweep diverged from serial";
}

// ---- JSONL round-trip and validation ----

TEST_F(TraceRecorderTest, JsonlRoundTripsExactly) {
  TraceRecorder recorder;
  RunTraced(PolicyKind::kNChance, recorder);
  const std::string jsonl = Export(recorder);

  Result<EventsDocument> parsed = ParseEventsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->metadata.seed, 7u);
  EXPECT_EQ(parsed->metadata.trace_events, trace_->size());
  EXPECT_EQ(parsed->metadata.workload, "small-test");
  EXPECT_EQ(parsed->runs, recorder.runs());
  EXPECT_EQ(EventsToJsonl(parsed->runs, parsed->metadata), jsonl);
}

TEST_F(TraceRecorderTest, ValidationRejectsCorruptDocuments) {
  TraceRecorder recorder;
  RunTraced(PolicyKind::kGreedy, recorder);
  const std::string jsonl = Export(recorder);
  ASSERT_TRUE(ValidateEventsDocument(jsonl).ok());

  EXPECT_FALSE(ValidateEventsDocument("").ok());
  EXPECT_FALSE(ValidateEventsDocument("{\"type\":\"run\"}").ok()) << "missing header";

  std::string wrong_schema = jsonl;
  const std::string::size_type at = wrong_schema.find("coopfs.events/v1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 16, "coopfs.events/v9");
  EXPECT_FALSE(ValidateEventsDocument(wrong_schema).ok());

  std::string bad_level = jsonl;
  const std::string::size_type level_at = bad_level.find("\"server_disk\"");
  ASSERT_NE(level_at, std::string::npos);
  bad_level.replace(level_at, 13, "\"server_dusk\"");
  EXPECT_FALSE(ValidateEventsDocument(bad_level).ok());

  std::string truncated = jsonl.substr(0, jsonl.size() / 2);
  EXPECT_FALSE(ValidateEventsDocument(truncated).ok());
}

// ---- Perfetto export ----

TEST_F(TraceRecorderTest, PerfettoExportIsStructurallyValidTraceEventJson) {
  TraceRecorder recorder;
  RunTraced(PolicyKind::kNChance, recorder);
  RunTraced(PolicyKind::kGreedy, recorder);  // Multi-run: two processes.
  ASSERT_EQ(recorder.runs().size(), 2u);

  const std::string json = PerfettoTraceJson(recorder.runs());
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());

  const JsonValue* unit = parsed->FindString("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->AsString(), "ms");

  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t complete = 0;
  std::size_t instant = 0;
  std::size_t metadata = 0;
  for (const JsonValue& event : events->items()) {
    ASSERT_TRUE(event.is_object());
    const JsonValue* ph = event.FindString("ph");
    ASSERT_NE(ph, nullptr);
    const std::string phase = ph->AsString();
    if (phase == "X") {
      ++complete;
      EXPECT_NE(event.Find("ts"), nullptr);
      EXPECT_NE(event.Find("dur"), nullptr);
      EXPECT_NE(event.Find("pid"), nullptr);
      EXPECT_NE(event.Find("tid"), nullptr);
    } else if (phase == "i") {
      ++instant;
    } else {
      EXPECT_EQ(phase, "M");
      ++metadata;
    }
  }
  std::size_t spans = 0;
  std::size_t ops = 0;
  for (const TraceRun& run : recorder.runs()) {
    spans += run.reads.size();
    ops += run.ops.size();
  }
  EXPECT_EQ(complete, spans);
  EXPECT_EQ(instant, ops);
  EXPECT_GT(metadata, 0u) << "process/thread name metadata missing";
}

}  // namespace
}  // namespace coopfs
