// Selftests for the scaling-efficiency gate (src/obs/scaling_gate.h) and the
// bench_compare CLI that wires it into CI.
//
// The in-process tests pin the gate's verdicts and diagnostic wording across
// the host-aware cases: healthy curve, 2t/1t floor miss, monotonicity
// collapse, 1-core degraded floor, and documents from before host_threads
// existed. The subprocess tests run the actual bench_compare binary against
// synthetic coopfs.bench/v1 documents and assert the exit-code contract
// (0 = pass, 1 = gate failed, 2 = load error) plus the stderr messages the
// CI log greps for.
#include "src/obs/scaling_gate.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/bench_report.h"

#ifdef __unix__
#include <sys/wait.h>
#endif

namespace coopfs {
namespace {

BenchSeries Series(const std::string& name, double ops_per_sec) {
  BenchSeries series;
  series.name = name;
  series.ops_per_sec = ops_per_sec;
  series.wall_seconds = 1.0;
  series.items = 100;
  return series;
}

// host 4, 1t=100, 2t=180 (1.8x), 4t=320, 8t=310: passes floor and
// monotonicity with the default options.
BenchReport HealthyReport() {
  BenchReport report;
  report.host_threads = 4;
  report.series.push_back(Series("parallel_sweep_1t", 100.0));
  report.series.push_back(Series("parallel_sweep_2t", 180.0));
  report.series.push_back(Series("parallel_sweep_4t", 320.0));
  report.series.push_back(Series("parallel_sweep_8t", 310.0));
  return report;
}

bool AnyFailureContains(const ScalingGateResult& result, const std::string& needle) {
  for (const std::string& failure : result.failures) {
    if (failure.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ScalingGateTest, NotApplicableWithoutSweepSeries) {
  BenchReport report;
  report.host_threads = 4;
  report.series.push_back(Series("replay_serial_nchance", 100.0));
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_FALSE(result.applicable);
  EXPECT_TRUE(result.passed);
  EXPECT_TRUE(result.failures.empty());
}

TEST(ScalingGateTest, NotApplicableWithOnlySerialSweep) {
  BenchReport report;
  report.host_threads = 4;
  report.series.push_back(Series("parallel_sweep_1t", 100.0));
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_FALSE(result.applicable);
  EXPECT_TRUE(result.passed);
}

TEST(ScalingGateTest, PassesHealthyCurve) {
  const ScalingGateResult result = EvaluateScalingGate(HealthyReport());
  EXPECT_TRUE(result.applicable);
  EXPECT_TRUE(result.passed);
  EXPECT_TRUE(result.failures.empty());
}

TEST(ScalingGateTest, FailsWhenTwoThreadSpeedupMissesFloor) {
  BenchReport report = HealthyReport();
  report.series[1].ops_per_sec = 120.0;  // 1.2x < 0.85 x 2 = 1.7x.
  report.series[2].ops_per_sec = 130.0;  // Keep the curve monotonic so the
  report.series[3].ops_per_sec = 135.0;  // floor is the only violation.
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_TRUE(AnyFailureContains(result, "parallel_sweep_2t/1t"));
  EXPECT_TRUE(AnyFailureContains(result, "below the 1.70x floor"));
}

TEST(ScalingGateTest, FailsWhenWiderWidthCollapses) {
  BenchReport report = HealthyReport();
  report.series[3].ops_per_sec = 150.0;  // 8t < 0.90 x best-so-far (320).
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.passed);
  EXPECT_TRUE(AnyFailureContains(result, "parallel_sweep_8t"));
  EXPECT_TRUE(AnyFailureContains(result, "non-monotonic scaling"));
}

TEST(ScalingGateTest, FailsWithoutHostThreadsWhenApplicable) {
  BenchReport report = HealthyReport();
  report.host_threads = 0;
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.passed);
  EXPECT_TRUE(AnyFailureContains(result, "host_threads"));
}

TEST(ScalingGateTest, FailsWhenTwoThreadSeriesMissing) {
  BenchReport report;
  report.host_threads = 4;
  report.series.push_back(Series("parallel_sweep_1t", 100.0));
  report.series.push_back(Series("parallel_sweep_4t", 320.0));
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.passed);
  EXPECT_TRUE(AnyFailureContains(result, "parallel_sweep_2t"));
}

TEST(ScalingGateTest, FailsOnZeroSerialThroughput) {
  BenchReport report = HealthyReport();
  report.series[0].ops_per_sec = 0.0;
  const ScalingGateResult result = EvaluateScalingGate(report);
  EXPECT_TRUE(result.applicable);
  EXPECT_FALSE(result.passed);
}

// On a 1-core host the attainable speedup is 1, so the floor degrades to
// 0.85x serial: near-parity passes (with an explanatory note), a lock convoy
// that halves throughput still fails.
TEST(ScalingGateTest, OneCoreHostUsesDegradedFloor) {
  BenchReport report = HealthyReport();
  report.host_threads = 1;
  report.series[1].ops_per_sec = 95.0;
  report.series[2].ops_per_sec = 95.0;
  report.series[3].ops_per_sec = 94.0;
  const ScalingGateResult near_parity = EvaluateScalingGate(report);
  EXPECT_TRUE(near_parity.applicable);
  EXPECT_TRUE(near_parity.passed)
      << (near_parity.failures.empty() ? std::string() : near_parity.failures[0]);
  EXPECT_FALSE(near_parity.notes.empty());

  report.series[1].ops_per_sec = 50.0;
  const ScalingGateResult convoy = EvaluateScalingGate(report);
  EXPECT_FALSE(convoy.passed);
  EXPECT_TRUE(AnyFailureContains(convoy, "parallel_sweep_2t/1t"));
}

TEST(ScalingGateTest, OptionsOverrideFloorAndTolerance) {
  BenchReport report = HealthyReport();
  report.series[1].ops_per_sec = 120.0;  // Fails the default 1.7x floor...
  report.series[2].ops_per_sec = 130.0;
  report.series[3].ops_per_sec = 135.0;
  ScalingGateOptions lax;
  lax.efficiency_floor = 0.55;  // ...but passes a 1.1x floor.
  EXPECT_TRUE(EvaluateScalingGate(report, lax).passed);

  ScalingGateOptions strict;
  strict.monotonicity_tolerance = 1.0;
  BenchReport dip = HealthyReport();
  dip.series[2].ops_per_sec = 170.0;  // 4t within 0.90 of the 2t's 180, not 1.0.
  EXPECT_TRUE(EvaluateScalingGate(dip).passed);
  EXPECT_FALSE(EvaluateScalingGate(dip, strict).passed);
}

// Widths beyond host_threads re-measure the widest real configuration, so
// they get the looser oversubscribed tolerance — a noise-level dip at 8t on
// a 4-thread host passes, a collapse still fails.
TEST(ScalingGateTest, OversubscribedWidthsGetLooserTolerance) {
  BenchReport report = HealthyReport();
  report.series[3].ops_per_sec = 260.0;  // 0.81 of best: < 0.90, >= 0.75.
  EXPECT_TRUE(EvaluateScalingGate(report).passed);

  ScalingGateOptions strict;
  strict.oversubscribed_tolerance = 0.90;
  EXPECT_FALSE(EvaluateScalingGate(report, strict).passed);
}

// ---------------------------------------------------------------------------
// bench_compare CLI: exit codes and the messages CI greps for.
// ---------------------------------------------------------------------------

#if defined(COOPFS_BENCH_COMPARE_PATH) && defined(__unix__)

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined.
};

CommandResult RunCommand(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

std::string WriteDoc(const std::string& filename, const BenchReport& report) {
  const std::string path = ::testing::TempDir() + filename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << report.ToJson();
  EXPECT_TRUE(out.good());
  return path;
}

class BenchCompareCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::ifstream binary(COOPFS_BENCH_COMPARE_PATH);
    if (!binary.good()) {
      GTEST_SKIP() << "bench_compare not built at " << COOPFS_BENCH_COMPARE_PATH;
    }
  }

  std::string Tool() { return std::string(COOPFS_BENCH_COMPARE_PATH); }
};

TEST_F(BenchCompareCliTest, HealthyDocumentExitsZero) {
  const std::string doc = WriteDoc("bench_gate_pass.json", HealthyReport());
  const CommandResult result = RunCommand(Tool() + " " + doc);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("scaling gate passed"), std::string::npos)
      << result.output;
}

TEST_F(BenchCompareCliTest, FloorFailureExitsOneWithScalingMessage) {
  BenchReport report = HealthyReport();
  report.series[1].ops_per_sec = 120.0;
  report.series[2].ops_per_sec = 130.0;
  report.series[3].ops_per_sec = 135.0;
  const std::string doc = WriteDoc("bench_gate_floor.json", report);
  const CommandResult result = RunCommand(Tool() + " " + doc);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("bench_compare: SCALING parallel_sweep_2t/1t"),
            std::string::npos)
      << result.output;
}

TEST_F(BenchCompareCliTest, MonotonicityFailureExitsOneWithScalingMessage) {
  BenchReport report = HealthyReport();
  report.series[3].ops_per_sec = 150.0;
  const std::string doc = WriteDoc("bench_gate_mono.json", report);
  const CommandResult result = RunCommand(Tool() + " " + doc);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("non-monotonic scaling"), std::string::npos)
      << result.output;
}

TEST_F(BenchCompareCliTest, ScalingFloorFlagOverridesDefault) {
  BenchReport report = HealthyReport();
  report.series[1].ops_per_sec = 120.0;
  report.series[2].ops_per_sec = 130.0;
  report.series[3].ops_per_sec = 135.0;
  const std::string doc = WriteDoc("bench_gate_floor_flag.json", report);
  const CommandResult result =
      RunCommand(Tool() + " " + doc + " --scaling-floor 0.55");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST_F(BenchCompareCliTest, NoScalingGateFlagSkipsTheCheck) {
  BenchReport report = HealthyReport();
  report.series[1].ops_per_sec = 120.0;
  report.series[2].ops_per_sec = 130.0;
  report.series[3].ops_per_sec = 135.0;
  const std::string doc = WriteDoc("bench_gate_skip.json", report);
  const CommandResult result =
      RunCommand(Tool() + " " + doc + " " + doc + " --no-scaling-gate");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST_F(BenchCompareCliTest, CorruptDocumentExitsTwo) {
  const std::string path = ::testing::TempDir() + "bench_gate_corrupt.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{ not a bench document";
  out.close();
  const CommandResult result = RunCommand(Tool() + " " + path);
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST_F(BenchCompareCliTest, ReplayRegressionStillExitsOne) {
  BenchReport baseline;
  baseline.host_threads = 4;
  baseline.series.push_back(Series("replay_serial_nchance", 100.0));
  BenchReport regressed = baseline;
  regressed.series[0].ops_per_sec = 50.0;
  const std::string base_doc = WriteDoc("bench_gate_replay_base.json", baseline);
  const std::string cand_doc = WriteDoc("bench_gate_replay_cand.json", regressed);
  const CommandResult result = RunCommand(Tool() + " " + base_doc + " " + cand_doc);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("bench_compare: REGRESSION"), std::string::npos)
      << result.output;
}

#endif  // COOPFS_BENCH_COMPARE_PATH && __unix__

}  // namespace
}  // namespace coopfs
