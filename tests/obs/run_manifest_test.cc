#include "src/obs/run_manifest.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/common/json.h"
#include "src/common/version.h"

namespace coopfs {
namespace {

RunManifest MakeManifest() {
  RunManifest manifest;
  manifest.experiment = "fig04_read_time";
  manifest.title = "Figure 4";
  manifest.description = "average block read time by algorithm";
  manifest.workloads = {"sprite"};
  manifest.events = 700'000;
  manifest.seed = 42;
  manifest.auspex_events = 5'000'000;
  manifest.sample_interval = 3'600'000'000;
  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = 400'000;
  config.seed = 42;
  manifest.configs.push_back(config);
  manifest.num_results = 6;
  manifest.threads = 4;
  manifest.wall_time_s = 1.5;
  manifest.command = "coopfs_bench --filter fig04_read_time --events 700000 --seed 42";
  manifest.exports.push_back({"metrics", "coopfs.metrics/v1", "out/fig04.metrics.json"});
  manifest.exports.push_back({"perfetto", "", "out/fig04.perfetto.json"});
  return manifest;
}

TEST(RunManifestTest, RendersAValidatingDocument) {
  const std::string json = RunManifestToJson(MakeManifest());
  EXPECT_TRUE(ValidateRunManifestDocument(json).ok())
      << ValidateRunManifestDocument(json).ToString();
}

TEST(RunManifestTest, RoundTripsEveryField) {
  const RunManifest manifest = MakeManifest();
  Result<JsonValue> parsed = ParseJson(RunManifestToJson(manifest));
  ASSERT_TRUE(parsed.ok());
  const JsonValue& root = *parsed;
  EXPECT_EQ(root.FindString("schema")->AsString(), kRunManifestSchema);
  EXPECT_EQ(root.FindString("coopfs_version")->AsString(), kVersionString);
  EXPECT_EQ(root.FindString("experiment")->AsString(), manifest.experiment);
  EXPECT_EQ(root.FindString("title")->AsString(), manifest.title);
  EXPECT_EQ(root.FindString("description")->AsString(), manifest.description);
  ASSERT_EQ(root.FindArray("workloads")->items().size(), 1u);
  EXPECT_EQ(root.FindArray("workloads")->items()[0].AsString(), "sprite");
  const JsonValue* options = root.FindObject("options");
  ASSERT_NE(options, nullptr);
  EXPECT_EQ(options->FindNumber("events")->AsInt(), 700'000);
  EXPECT_EQ(options->FindNumber("seed")->AsInt(), 42);
  EXPECT_EQ(options->FindNumber("auspex_events")->AsInt(), 5'000'000);
  EXPECT_EQ(options->FindNumber("sample_interval_us")->AsInt(), 3'600'000'000);
  const auto& configs = root.FindArray("configs")->items();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].FindNumber("client_cache_blocks")->AsInt(),
            static_cast<std::int64_t>(manifest.configs[0].client_cache_blocks));
  EXPECT_EQ(configs[0].FindNumber("warmup_events")->AsInt(), 400'000);
  EXPECT_EQ(root.FindNumber("num_results")->AsInt(), 6);
  EXPECT_EQ(root.FindNumber("threads")->AsInt(), 4);
  EXPECT_DOUBLE_EQ(root.FindNumber("wall_time_s")->AsDouble(), 1.5);
  EXPECT_EQ(root.FindString("command")->AsString(), manifest.command);
  const auto& exports = root.FindArray("exports")->items();
  ASSERT_EQ(exports.size(), 2u);
  EXPECT_EQ(exports[0].FindString("kind")->AsString(), "metrics");
  EXPECT_EQ(exports[0].FindString("schema")->AsString(), "coopfs.metrics/v1");
  EXPECT_EQ(exports[0].FindString("path")->AsString(), "out/fig04.metrics.json");
  EXPECT_EQ(exports[1].FindString("schema")->AsString(), "");
}

TEST(RunManifestTest, JsonIsDeterministicExceptWallTime) {
  RunManifest a = MakeManifest();
  RunManifest b = MakeManifest();
  EXPECT_EQ(RunManifestToJson(a), RunManifestToJson(b));
  b.wall_time_s = 99.0;
  EXPECT_NE(RunManifestToJson(a), RunManifestToJson(b));
}

TEST(RunManifestTest, WriteFileRoundTrips) {
  const RunManifest manifest = MakeManifest();
  const std::string path = testing::TempDir() + "/manifest_roundtrip.run.json";
  ASSERT_TRUE(WriteRunManifest(manifest, path).ok());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string written = buffer.str();
  EXPECT_TRUE(ValidateRunManifestDocument(written).ok());
  // WriteTextFile appends a trailing newline to the rendered document.
  EXPECT_EQ(written, RunManifestToJson(manifest) + "\n");
}

TEST(RunManifestValidationTest, RejectsGarbage) {
  EXPECT_FALSE(ValidateRunManifestDocument("not json").ok());
  EXPECT_FALSE(ValidateRunManifestDocument("[1, 2, 3]").ok());
}

TEST(RunManifestValidationTest, RejectsWrongSchema) {
  RunManifest manifest = MakeManifest();
  std::string json = RunManifestToJson(manifest);
  const std::size_t at = json.find("coopfs.run/v1");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string("coopfs.run/v1").size(), "coopfs.run/v9");
  EXPECT_FALSE(ValidateRunManifestDocument(json).ok());
}

TEST(RunManifestValidationTest, RejectsEmptyExperiment) {
  RunManifest manifest = MakeManifest();
  manifest.experiment.clear();
  EXPECT_FALSE(ValidateRunManifestDocument(RunManifestToJson(manifest)).ok());
}

TEST(RunManifestValidationTest, RejectsExportWithEmptyPath) {
  RunManifest manifest = MakeManifest();
  manifest.exports.push_back({"metrics", "coopfs.metrics/v1", ""});
  EXPECT_FALSE(ValidateRunManifestDocument(RunManifestToJson(manifest)).ok());
}

TEST(RunManifestValidationTest, WriteRefusesInvalidManifest) {
  RunManifest manifest = MakeManifest();
  manifest.experiment.clear();
  const std::string path = testing::TempDir() + "/manifest_invalid.run.json";
  EXPECT_FALSE(WriteRunManifest(manifest, path).ok());
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "invalid manifest must not be written";
}

}  // namespace
}  // namespace coopfs
