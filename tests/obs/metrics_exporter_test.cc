// Schema round-trip coverage for the coopfs.metrics/v1 exporter: every
// exported document must parse back, carry the documented field names, and
// agree numerically with the SimulationResult it came from (so `--json`
// output can never drift from the text tables, which are computed from the
// same result object).
#include "src/obs/metrics_exporter.h"

#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/core/policy_factory.h"
#include "src/obs/bench_report.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

class MetricsExporterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(GenerateWorkload(SmallTestWorkloadConfig()));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static SimulationConfig TestConfig() {
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = trace_->size() / 4;
    config.timeline_interval = 60'000'000;
    return config;
  }

  static SimulationResult RunPolicy(PolicyKind kind) {
    SimulationConfig config = TestConfig();
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  static Trace* trace_;
};

Trace* MetricsExporterTest::trace_ = nullptr;

TEST_F(MetricsExporterTest, DocumentValidatesAndParsesBack) {
  MetricsExporter exporter;
  exporter.SetConfig(TestConfig());
  exporter.AddResult(RunPolicy(PolicyKind::kBaseline));
  exporter.AddResult(RunPolicy(PolicyKind::kNChance));
  const std::string document = exporter.ToJson();

  ASSERT_TRUE(ValidateMetricsDocument(document).ok())
      << ValidateMetricsDocument(document).ToString();
  Result<JsonValue> parsed = ParseJson(document);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->FindString("schema")->AsString(), kMetricsSchema);
  EXPECT_NE(parsed->FindString("coopfs_version"), nullptr);
  ASSERT_NE(parsed->FindArray("results"), nullptr);
  EXPECT_EQ(parsed->FindArray("results")->items().size(), 2u);
}

TEST_F(MetricsExporterTest, ExportedFieldsMatchResult) {
  const SimulationResult result = RunPolicy(PolicyKind::kNChance);
  MetricsExporter exporter;
  exporter.AddResult(result);
  Result<JsonValue> parsed = ParseJson(exporter.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue& json = parsed->FindArray("results")->items().front();

  EXPECT_EQ(json.FindString("policy")->AsString(), result.policy_name);
  EXPECT_EQ(static_cast<std::uint64_t>(json.FindNumber("reads")->AsInt()), result.reads);
  EXPECT_EQ(json.FindNumber("avg_read_time_us")->AsDouble(), result.AverageReadTime());
  EXPECT_EQ(json.FindNumber("local_miss_rate")->AsDouble(), result.LocalMissRate());
  EXPECT_EQ(json.FindNumber("disk_rate")->AsDouble(), result.DiskRate());

  const JsonValue* levels = json.FindObject("levels");
  ASSERT_NE(levels, nullptr);
  const char* level_fields[kNumCacheLevels] = {"local_memory", "remote_client", "server_memory",
                                               "server_disk"};
  for (std::size_t i = 0; i < kNumCacheLevels; ++i) {
    const JsonValue* level = levels->FindObject(level_fields[i]);
    ASSERT_NE(level, nullptr) << level_fields[i];
    EXPECT_EQ(static_cast<std::uint64_t>(level->FindNumber("count")->AsInt()),
              result.level_counts.Get(i));
    EXPECT_EQ(level->FindNumber("fraction")->AsDouble(), result.level_counts.Fraction(i));
    EXPECT_EQ(level->FindNumber("time_us")->AsDouble(), result.level_time_us[i]);
  }

  const JsonValue* load = json.FindObject("server_load");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(load->FindNumber("total_units")->AsInt()),
            result.server_load.TotalUnits());

  const JsonValue* counters = json.FindObject("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(counters->FindNumber("events_replayed")->AsInt()),
            result.counters.events_replayed);
  EXPECT_EQ(static_cast<std::uint64_t>(counters->FindNumber("recirculations")->AsInt()),
            result.counters.recirculations);
  // N-Chance on a shared workload must actually exercise the hooks.
  EXPECT_GT(result.counters.events_replayed, 0u);
  EXPECT_GT(result.counters.directory_ops, 0u);

  // Per-client array mirrors the fairness inputs (Figure 7).
  const JsonValue* per_client = json.FindArray("per_client");
  ASSERT_NE(per_client, nullptr);
  ASSERT_EQ(per_client->items().size(), result.per_client.size());
  for (std::size_t c = 0; c < result.per_client.size(); ++c) {
    EXPECT_EQ(static_cast<std::uint64_t>(
                  per_client->items()[c].FindNumber("reads")->AsInt()),
              result.per_client[c].reads);
  }

  // Timeline series present when collected.
  const JsonValue* timeline = json.FindArray("timeline");
  ASSERT_NE(timeline, nullptr);
  EXPECT_EQ(timeline->items().size(), result.timeline.size());
}

TEST_F(MetricsExporterTest, CountersDisabledExportsZeros) {
  SimulationConfig config = TestConfig();
  config.collect_counters = false;
  Simulator simulator(config, trace_);
  auto policy = MakePolicy(PolicyKind::kNChance);
  Result<SimulationResult> result = simulator.Run(*policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counters, SimCounters{});

  // Paper metrics are unaffected by the toggle.
  SimulationConfig on = TestConfig();
  Simulator simulator_on(on, trace_);
  auto policy_on = MakePolicy(PolicyKind::kNChance);
  Result<SimulationResult> with_counters = simulator_on.Run(*policy_on);
  ASSERT_TRUE(with_counters.ok());
  EXPECT_EQ(result->reads, with_counters->reads);
  EXPECT_EQ(result->AverageReadTime(), with_counters->AverageReadTime());
  EXPECT_NE(with_counters->counters, SimCounters{});
}

TEST_F(MetricsExporterTest, SerializationIsDeterministic) {
  const SimulationResult result = RunPolicy(PolicyKind::kCentralCoord);
  EXPECT_EQ(SimulationResultToJson(result), SimulationResultToJson(result));
}

TEST_F(MetricsExporterTest, OptionsTrimSections) {
  MetricsExportOptions options;
  options.include_per_client = false;
  options.include_timeline = false;
  options.include_histogram = false;
  MetricsExporter exporter(options);
  exporter.AddResult(RunPolicy(PolicyKind::kBaseline));
  const std::string document = exporter.ToJson();
  ASSERT_TRUE(ValidateMetricsDocument(document).ok());
  const Result<JsonValue> parsed = ParseJson(document);
  const JsonValue& json = parsed->FindArray("results")->items().front();
  EXPECT_EQ(json.Find("per_client"), nullptr);
  EXPECT_EQ(json.Find("timeline"), nullptr);
  EXPECT_EQ(json.Find("latency"), nullptr);
}

TEST_F(MetricsExporterTest, WriteFileProducesValidDocument) {
  MetricsExporter exporter;
  exporter.SetConfig(TestConfig());
  exporter.AddResult(RunPolicy(PolicyKind::kGreedy));
  const std::string path = ::testing::TempDir() + "/coopfs_metrics_test.json";
  ASSERT_TRUE(exporter.WriteFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_TRUE(ValidateMetricsDocument(content).ok());
}

TEST(MetricsValidationTest, RejectsWrongSchemaAndShape) {
  EXPECT_FALSE(ValidateMetricsDocument("not json").ok());
  EXPECT_FALSE(ValidateMetricsDocument("[]").ok());
  EXPECT_FALSE(ValidateMetricsDocument(R"({"results": []})").ok());
  EXPECT_FALSE(
      ValidateMetricsDocument(R"({"schema": "coopfs.metrics/v999", "results": []})").ok());
  EXPECT_FALSE(ValidateMetricsDocument(R"({"schema": "coopfs.metrics/v1"})").ok());
  // A result missing required fields fails.
  EXPECT_FALSE(ValidateMetricsDocument(
                   R"({"schema": "coopfs.metrics/v1", "results": [{"policy": "x"}]})")
                   .ok());
  // Minimal empty-results document passes.
  EXPECT_TRUE(ValidateMetricsDocument(R"({"schema": "coopfs.metrics/v1", "results": []})").ok());
}

TEST(BenchReportTest, EmptySuiteIsValid) {
  // The perf_harness --dry-run path: an empty suite must still produce a
  // valid, schema-tagged document.
  BenchReport report;
  const std::string document = report.ToJson();
  EXPECT_TRUE(ValidateBenchDocument(document).ok()) << document;
  Result<JsonValue> parsed = ParseJson(document);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->FindString("schema")->AsString(), kBenchSchema);
  EXPECT_EQ(parsed->FindArray("series")->items().size(), 0u);
}

TEST(BenchReportTest, SeriesRoundTrip) {
  BenchReport report;
  BenchSeries series;
  series.name = "replay_serial_nchance";
  series.ops_per_sec = 2.5e6;
  series.wall_seconds = 0.28;
  series.items = 700'000;
  series.peak_rss_bytes = 123 << 20;
  report.series.push_back(series);
  const std::string document = report.ToJson();
  ASSERT_TRUE(ValidateBenchDocument(document).ok()) << document;
  Result<JsonValue> parsed = ParseJson(document);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& entry = parsed->FindArray("series")->items().front();
  EXPECT_EQ(entry.FindString("name")->AsString(), "replay_serial_nchance");
  EXPECT_EQ(entry.FindNumber("ops_per_sec")->AsDouble(), 2.5e6);
  EXPECT_EQ(static_cast<std::uint64_t>(entry.FindNumber("items")->AsInt()), 700'000u);
}

TEST(BenchReportTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateBenchDocument(R"({"schema": "coopfs.bench/v1"})").ok());
  EXPECT_FALSE(ValidateBenchDocument(
                   R"({"schema": "nope", "suite": "s", "series": []})")
                   .ok());
  EXPECT_FALSE(ValidateBenchDocument(
                   R"({"schema": "coopfs.bench/v1", "suite": "s", "series": [{"name": "x"}]})")
                   .ok());
}

TEST(BenchReportTest, PeakRssIsPlausible) {
  const std::uint64_t rss = CurrentPeakRssBytes();
  // On Linux this must be nonzero and at least a couple of MB for a running
  // gtest binary.
  EXPECT_GT(rss, 1u << 20);
}

}  // namespace
}  // namespace coopfs
