// Time-series state sampling (src/obs/snapshot_sampler.h).
//
// The load-bearing guarantees:
//   * Reconciliation — per-interval counted reads (and their per-level
//     latency sums) must add up *exactly* to the SimulationResult
//     aggregates, so the timeseries is a trustworthy decomposition of the
//     metrics document, not an approximation of it.
//   * Explicit gaps — every crossed interval boundary emits a sample, so a
//     quiet window shows up as window_reads == 0 instead of a hole.
//   * Determinism — identical (trace, config, policy) replays serialize to
//     byte-identical coopfs.timeseries/v1 documents, across repeated runs
//     and across RunSimulationsParallel thread counts (one sampler per job).
//   * Transparency — attaching a sampler must not perturb the simulation.
//   * Round-trip — ParseTimeseriesJsonl inverts TimeseriesToJsonl exactly.
#include "src/obs/snapshot_sampler.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/policy_factory.h"
#include "src/core/sweep.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

class SnapshotSamplerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small Sprite-like trace under tight caches, so forwards,
    // recirculations, and evictions all fire inside the sampled windows.
    WorkloadConfig workload = SmallTestWorkloadConfig();
    workload.num_events = 30'000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static Micros TraceSpan() { return trace_->back().timestamp - trace_->front().timestamp; }

  static SimulationConfig TestConfig() {
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = trace_->size() / 4;
    return config;
  }

  static SimulationResult RunSampled(PolicyKind kind, SnapshotSampler& sampler,
                                     Micros interval) {
    SimulationConfig config = TestConfig();
    config.snapshot_sampler = &sampler;
    config.sample_interval = interval;
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }

  static std::string Export(const SnapshotSampler& sampler) {
    TraceExportMetadata metadata;
    metadata.seed = 7;
    metadata.trace_events = trace_->size();
    metadata.workload = "small-test";
    return TimeseriesToJsonl(sampler.runs(), metadata);
  }

  static Trace* trace_;
};

Trace* SnapshotSamplerTest::trace_ = nullptr;

// ---- Scripted window semantics ----

TEST(SnapshotSamplerScriptedTest, WindowsTriggersAndEventCounts) {
  // Five reads 1000 µs apart; boundaries at 2500 and run end at 4000.
  TraceBuilder builder;
  for (FileId file = 1; file <= 5; ++file) {
    builder.Read(0, file);
  }
  SnapshotSampler sampler;
  SimulationConfig config = TinyConfig(8, 8);
  config.snapshot_sampler = &sampler;
  config.sample_interval = 2500;
  Simulator simulator(config, &builder.Build());
  auto policy = MakePolicy(PolicyKind::kBaseline);
  ASSERT_TRUE(simulator.Run(*policy).ok());

  ASSERT_EQ(sampler.runs().size(), 1u);
  const SnapshotRun& run = sampler.runs()[0];
  EXPECT_EQ(run.interval, 2500);
  EXPECT_EQ(run.start_time, 0);
  ASSERT_EQ(run.samples.size(), 2u);

  // [0, 2500): reads at 0, 1000, 2000.
  EXPECT_EQ(run.samples[0].trigger, SampleTrigger::kInterval);
  EXPECT_EQ(run.samples[0].time, 2500);
  EXPECT_EQ(run.samples[0].events_replayed, 3u);
  EXPECT_EQ(run.samples[0].window_reads, 3u);
  EXPECT_EQ(run.samples[0].CountedReads(), 3u);  // warmup_events == 0.

  // Partial window closed by the trace end: reads at 3000, 4000.
  EXPECT_EQ(run.samples[1].trigger, SampleTrigger::kRunEnd);
  EXPECT_EQ(run.samples[1].time, 4000);
  EXPECT_EQ(run.samples[1].events_replayed, 5u);
  EXPECT_EQ(run.samples[1].window_reads, 2u);

  // All misses went to disk in both windows.
  const auto disk = static_cast<std::size_t>(CacheLevel::kServerDisk);
  EXPECT_EQ(run.samples[0].level_reads[disk], 3u);
  EXPECT_EQ(run.samples[1].level_reads[disk], 2u);
}

TEST(SnapshotSamplerScriptedTest, QuietWindowsEmitExplicitZeroReadSamples) {
  // Reads at t=0 and t=1000, then nothing until t=9000: boundaries 2000,
  // 4000, 6000, 8000 all fire when the t=9000 read arrives.
  TraceBuilder builder;
  for (FileId file = 1; file <= 10; ++file) {
    builder.Read(0, file);
  }
  Trace trace = builder.Build();
  trace.resize(3);
  trace[2].timestamp = 9000;

  SnapshotSampler sampler;
  SimulationConfig config = TinyConfig(8, 8);
  config.snapshot_sampler = &sampler;
  config.sample_interval = 2000;
  Simulator simulator(config, &trace);
  auto policy = MakePolicy(PolicyKind::kBaseline);
  ASSERT_TRUE(simulator.Run(*policy).ok());

  const SnapshotRun& run = sampler.runs()[0];
  ASSERT_EQ(run.samples.size(), 5u);
  EXPECT_EQ(run.samples[0].time, 2000);
  EXPECT_EQ(run.samples[0].window_reads, 2u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(run.samples[i].trigger, SampleTrigger::kInterval);
    EXPECT_EQ(run.samples[i].time, 2000 + 2000 * static_cast<Micros>(i));
    EXPECT_EQ(run.samples[i].window_reads, 0u) << "gap window " << i;
    // No events ran between the boundaries: the gauges are carried over.
    EXPECT_EQ(run.samples[i].state, run.samples[0].state);
    EXPECT_EQ(run.samples[i].events_replayed, 2u);
  }
  EXPECT_EQ(run.samples[4].trigger, SampleTrigger::kRunEnd);
  EXPECT_EQ(run.samples[4].window_reads, 1u);
}

TEST(SnapshotSamplerScriptedTest, ForwardedReadsCountAsDonationAndBenefit) {
  // Client 0 faults f1 from disk; client 1 then reads it remotely from
  // client 0's cache (a zero-block server cache forces the directory
  // forward instead of a server-memory hit).
  TraceBuilder builder;
  builder.Read(0, 1).Read(1, 1);
  SnapshotSampler sampler;
  SimulationConfig config = TinyConfig(4, 0, 2);
  config.snapshot_sampler = &sampler;
  config.sample_interval = 0;  // Run-end sample only.
  Simulator simulator(config, &builder.Build());
  auto policy = MakePolicy(PolicyKind::kNChance);
  ASSERT_TRUE(simulator.Run(*policy).ok());

  const SnapshotRun& run = sampler.runs()[0];
  ASSERT_EQ(run.samples.size(), 1u);
  const StateSample& sample = run.samples[0];
  EXPECT_EQ(sample.trigger, SampleTrigger::kRunEnd);
  const auto remote = static_cast<std::size_t>(CacheLevel::kRemoteClient);
  ASSERT_EQ(sample.level_reads[remote], 1u);
  ASSERT_EQ(sample.clients.size(), 2u);
  EXPECT_EQ(sample.clients[0].reads, 1u);
  EXPECT_EQ(sample.clients[0].donated, 1u);
  EXPECT_EQ(sample.clients[0].benefited, 0u);
  EXPECT_EQ(sample.clients[1].reads, 1u);
  EXPECT_EQ(sample.clients[1].donated, 0u);
  EXPECT_EQ(sample.clients[1].benefited, 1u);
}

// ---- Reconciliation with SimulationResult ----

TEST_F(SnapshotSamplerTest, WindowCountsReconcileExactlyWithMetrics) {
  for (PolicyKind kind : AllPolicyKinds()) {
    SnapshotSampler sampler;
    const SimulationResult result = RunSampled(kind, sampler, TraceSpan() / 7);
    ASSERT_EQ(sampler.runs().size(), 1u);
    const SnapshotRun& run = sampler.runs()[0];
    ASSERT_GE(run.samples.size(), 7u) << result.policy_name;

    std::uint64_t all_reads = 0;
    std::array<std::uint64_t, kNumCacheLevels> level_reads{};
    std::array<double, kNumCacheLevels> level_time{};
    std::uint64_t warmup_end_samples = 0;
    for (const StateSample& sample : run.samples) {
      all_reads += sample.window_reads;
      warmup_end_samples += sample.trigger == SampleTrigger::kWarmupEnd ? 1 : 0;
      for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
        level_reads[level] += sample.level_reads[level];
        level_time[level] += sample.level_time_us[level];
      }
    }
    EXPECT_EQ(warmup_end_samples, 1u) << result.policy_name;
    std::uint64_t trace_reads = 0;
    for (const TraceEvent& event : *trace_) {
      trace_reads += event.type == EventType::kRead ? 1 : 0;
    }
    EXPECT_EQ(all_reads, trace_reads) << result.policy_name;
    std::uint64_t counted_total = 0;
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      EXPECT_EQ(level_reads[level], result.level_counts.Get(level))
          << result.policy_name << " level " << level;
      // Latencies are integral µs, so double sums are exact in any order.
      EXPECT_DOUBLE_EQ(level_time[level], result.level_time_us[level])
          << result.policy_name << " level " << level;
      counted_total += level_reads[level];
    }
    EXPECT_EQ(counted_total, result.reads) << result.policy_name;
    EXPECT_EQ(run.samples.back().events_replayed, trace_->size());

    // Per-client window triplets add up to the per-client aggregates.
    std::vector<std::uint64_t> client_reads(run.num_clients, 0);
    for (const StateSample& sample : run.samples) {
      ASSERT_EQ(sample.clients.size(), run.num_clients);
      for (std::size_t c = 0; c < sample.clients.size(); ++c) {
        client_reads[c] += sample.clients[c].reads;
      }
    }
    ASSERT_EQ(result.per_client.size(), client_reads.size());
    for (std::size_t c = 0; c < client_reads.size(); ++c) {
      EXPECT_EQ(client_reads[c], result.per_client[c].reads)
          << result.policy_name << " client " << c;
    }
  }
}

TEST_F(SnapshotSamplerTest, WarmupWindowsHaveNoCountedReads) {
  SnapshotSampler sampler;
  RunSampled(PolicyKind::kNChance, sampler, TraceSpan() / 7);
  const SnapshotRun& run = sampler.runs()[0];
  bool past_warmup = false;
  for (const StateSample& sample : run.samples) {
    if (!past_warmup) {
      EXPECT_EQ(sample.CountedReads(), 0u) << "sample " << sample.index;
    }
    if (sample.trigger == SampleTrigger::kWarmupEnd) {
      past_warmup = true;
      EXPECT_EQ(sample.events_replayed, TestConfig().warmup_events);
    }
  }
  EXPECT_TRUE(past_warmup);
  EXPECT_GT(run.samples.back().CountedReads(), 0u);
}

TEST_F(SnapshotSamplerTest, RunEndGaugesMatchFinalContext) {
  SnapshotSampler sampler;
  SimulationConfig config = TestConfig();
  config.snapshot_sampler = &sampler;
  config.sample_interval = TraceSpan() / 7;
  Simulator simulator(config, trace_);
  auto policy = MakePolicy(PolicyKind::kNChance);
  StateProbe expected;
  Result<SimulationResult> result = simulator.Run(*policy, [&](SimContext& context) {
    for (ClientId c = 0; c < context.num_clients(); ++c) {
      expected.client_blocks_used += context.client_cache(c).size();
      expected.client_blocks_capacity += context.client_cache(c).capacity();
      expected.recirculating_copies += context.client_cache(c).RecirculatingCount();
      expected.dirty_blocks += context.client_cache(c).DirtyCount();
    }
    for (std::uint32_t s = 0; s < context.num_servers(); ++s) {
      expected.server_blocks_used += context.server_cache(s).size();
      expected.server_blocks_capacity += context.server_cache(s).capacity();
    }
    const Directory::DuplicationCounts dup = context.directory().CountDuplication();
    expected.singlet_blocks = dup.singlets;
    expected.duplicate_blocks = dup.duplicates;
    expected.directory_blocks = dup.singlets + dup.duplicates;
    for (std::size_t kind = 0; kind < kNumServerLoadKinds; ++kind) {
      expected.load_units[kind] =
          context.server_load().Units(static_cast<ServerLoadKind>(kind));
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const StateSample& last = sampler.runs()[0].samples.back();
  ASSERT_EQ(last.trigger, SampleTrigger::kRunEnd);
  EXPECT_EQ(last.state, expected);
  // A tight-cache cooperative run actually exercises the gauges.
  EXPECT_GT(last.state.client_blocks_used, 0u);
  EXPECT_GT(last.state.directory_blocks, 0u);
  EXPECT_GT(last.state.load_units[static_cast<std::size_t>(ServerLoadKind::kHitDisk)], 0u);
}

TEST_F(SnapshotSamplerTest, AttachingSamplerDoesNotPerturbSimulation) {
  SimulationConfig plain_config = TestConfig();
  Simulator plain(plain_config, trace_);
  auto policy = MakePolicy(PolicyKind::kNChance);
  Result<SimulationResult> baseline = plain.Run(*policy);
  ASSERT_TRUE(baseline.ok());

  SnapshotSampler sampler;
  const SimulationResult sampled = RunSampled(PolicyKind::kNChance, sampler, TraceSpan() / 7);
  EXPECT_EQ(sampled.reads, baseline->reads);
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(sampled.level_counts.Get(level), baseline->level_counts.Get(level));
    EXPECT_DOUBLE_EQ(sampled.level_time_us[level], baseline->level_time_us[level]);
  }
  EXPECT_EQ(sampled.server_load.TotalUnits(), baseline->server_load.TotalUnits());
}

// ---- Legacy timeline unification ----

TEST_F(SnapshotSamplerTest, LegacyTimelineAgreesWithSamplerWindows) {
  const Micros interval = TraceSpan() / 7;
  SnapshotSampler sampler;
  SimulationConfig config = TestConfig();
  config.snapshot_sampler = &sampler;
  config.sample_interval = interval;
  config.timeline_interval = interval;
  Simulator simulator(config, trace_);
  auto policy = MakePolicy(PolicyKind::kNChance);
  Result<SimulationResult> result = simulator.Run(*policy);
  ASSERT_TRUE(result.ok());

  // Every timeline point corresponds to a sampler window with counted reads
  // (the sampler additionally keeps zero-read windows and the warm-up-end
  // split, so it has at least as many samples).
  std::vector<const StateSample*> counted;
  for (const StateSample& sample : sampler.runs()[0].samples) {
    if (sample.trigger != SampleTrigger::kWarmupEnd && sample.CountedReads() > 0) {
      counted.push_back(&sample);
    }
  }
  // The sampler splits one interval at the warm-up boundary; merge that
  // window's counts into its interval before comparing. With warm-up at 1/4
  // of the trace and 1/7 intervals the warm-up-end sample has zero counted
  // reads, so the filtered list lines up one-to-one.
  ASSERT_EQ(result->timeline.size(), counted.size());
  for (std::size_t i = 0; i < counted.size(); ++i) {
    EXPECT_EQ(result->timeline[i].reads, counted[i]->CountedReads()) << "point " << i;
    if (counted[i]->trigger == SampleTrigger::kInterval) {
      EXPECT_EQ(result->timeline[i].end_time, counted[i]->time) << "point " << i;
    } else {
      EXPECT_GT(result->timeline[i].end_time, counted[i]->time) << "point " << i;
    }
    EXPECT_DOUBLE_EQ(result->timeline[i].avg_read_time_us,
                     counted[i]->CountedTimeUs() /
                         static_cast<double>(counted[i]->CountedReads()))
        << "point " << i;
  }
}

// ---- Determinism ----

TEST_F(SnapshotSamplerTest, RepeatedRunsExportIdenticalBytes) {
  SnapshotSampler first;
  RunSampled(PolicyKind::kNChance, first, TraceSpan() / 7);
  SnapshotSampler second;
  RunSampled(PolicyKind::kNChance, second, TraceSpan() / 7);
  const std::string bytes = Export(first);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(Export(second), bytes);
}

TEST_F(SnapshotSamplerTest, SweepThreadCountDoesNotChangeTheBytes) {
  // One sampler per job: samplers are not thread-safe, and per-job sampling
  // is what keeps parallel sweeps deterministic.
  auto run_sweep = [&](std::size_t threads) {
    std::vector<SnapshotSampler> samplers(3);
    std::vector<SimulationJob> jobs(3);
    const PolicyKind kinds[] = {PolicyKind::kGreedy, PolicyKind::kNChance,
                                PolicyKind::kCentralCoord};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].config = TestConfig();
      jobs[i].config.snapshot_sampler = &samplers[i];
      jobs[i].config.sample_interval = TraceSpan() / 7;
      jobs[i].kind = kinds[i];
    }
    auto results = RunSimulationsParallel(*trace_, jobs, threads);
    for (const auto& result : results) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
    std::string combined;
    for (const SnapshotSampler& sampler : samplers) {
      combined += Export(sampler);
      combined += '\n';
    }
    return combined;
  };
  const std::string serial = run_sweep(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run_sweep(3), serial) << "3-thread sweep diverged from serial";
}

// ---- JSONL round-trip and validation ----

TEST_F(SnapshotSamplerTest, JsonlRoundTripsExactly) {
  SnapshotSampler sampler;
  RunSampled(PolicyKind::kNChance, sampler, TraceSpan() / 7);
  const std::string jsonl = Export(sampler);

  Result<TimeseriesDocument> parsed = ParseTimeseriesJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->metadata.seed, 7u);
  EXPECT_EQ(parsed->metadata.trace_events, trace_->size());
  EXPECT_EQ(parsed->metadata.workload, "small-test");
  ASSERT_EQ(parsed->runs.size(), 1u);
  EXPECT_EQ(parsed->runs[0], sampler.runs()[0]);

  TraceExportMetadata metadata = parsed->metadata;
  EXPECT_EQ(TimeseriesToJsonl(parsed->runs, metadata), jsonl);
  EXPECT_TRUE(ValidateTimeseriesDocument(jsonl).ok());
}

TEST_F(SnapshotSamplerTest, ParserRejectsCorruptDocuments) {
  SnapshotSampler sampler;
  RunSampled(PolicyKind::kNChance, sampler, TraceSpan() / 7);
  const std::string jsonl = Export(sampler);

  EXPECT_FALSE(ParseTimeseriesJsonl("").ok());
  EXPECT_FALSE(ParseTimeseriesJsonl("{\"type\":\"sample\"}").ok());
  EXPECT_FALSE(ParseTimeseriesJsonl("not json at all").ok());

  // Drop the header: samples may not lead.
  const std::size_t first_newline = jsonl.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_FALSE(ParseTimeseriesJsonl(jsonl.substr(first_newline + 1)).ok());

  // Corrupt a consistency invariant: singlets + duplicates == dir_blocks.
  const std::size_t singlets = jsonl.find("\"singlets\":");
  ASSERT_NE(singlets, std::string::npos);
  std::string broken = jsonl;
  broken.replace(singlets, 12, "\"singlets\":9");
  // Only a no-op replacement if the count already was 9; nudge differently.
  if (broken == jsonl) {
    broken.replace(singlets, 12, "\"singlets\":8");
  }
  EXPECT_FALSE(ParseTimeseriesJsonl(broken).ok());
}

TEST(SnapshotSamplerUnitTest, TriggerNamesRoundTrip) {
  for (SampleTrigger trigger : {SampleTrigger::kInterval, SampleTrigger::kWarmupEnd,
                                SampleTrigger::kRunEnd}) {
    SampleTrigger parsed = SampleTrigger::kInterval;
    EXPECT_TRUE(SampleTriggerFromName(SampleTriggerName(trigger), parsed));
    EXPECT_EQ(parsed, trigger);
  }
  SampleTrigger parsed = SampleTrigger::kInterval;
  EXPECT_FALSE(SampleTriggerFromName("bogus", parsed));
}

}  // namespace
}  // namespace coopfs
