#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/validation.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(SimulatorTest, EmptyTraceIsInvalid) {
  const Trace empty;
  Simulator simulator(TinyConfig(2, 2), &empty);
  BaselinePolicy policy;
  EXPECT_EQ(simulator.Run(policy).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimulatorTest, InfersClientCountFromTrace) {
  TraceBuilder builder;
  builder.Read(0, 1).Read(6, 1);
  Simulator simulator(TinyConfig(2, 2), &builder.Build());
  EXPECT_EQ(simulator.num_clients(), 7u);
}

TEST(SimulatorTest, ConfiguredClientCountWins) {
  TraceBuilder builder;
  builder.Read(0, 1);
  Simulator simulator(TinyConfig(2, 2, /*num_clients=*/12), &builder.Build());
  EXPECT_EQ(simulator.num_clients(), 12u);
}

TEST(SimulatorTest, EventClientOutOfConfiguredRangeFails) {
  TraceBuilder builder;
  builder.Read(5, 1);
  Simulator simulator(TinyConfig(2, 2, /*num_clients=*/2), &builder.Build());
  BaselinePolicy policy;
  EXPECT_EQ(simulator.Run(policy).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimulatorTest, OutcomeLatencyMatchesFigure3) {
  const SimulationConfig config = TinyConfig(2, 2);  // ATM + Ruemmler-Wilkes.
  EXPECT_EQ(Simulator::OutcomeLatency({CacheLevel::kLocalMemory, 0, false}, config), 250);
  EXPECT_EQ(Simulator::OutcomeLatency({CacheLevel::kServerMemory, 2, true}, config), 1050);
  EXPECT_EQ(Simulator::OutcomeLatency({CacheLevel::kRemoteClient, 3, true}, config), 1250);
  EXPECT_EQ(Simulator::OutcomeLatency({CacheLevel::kRemoteClient, 2, true}, config), 1050);
  EXPECT_EQ(Simulator::OutcomeLatency({CacheLevel::kServerDisk, 2, true}, config), 15'850);
}

TEST(SimulatorTest, BaselineLevelsOnScriptedTrace) {
  // Client 0 reads a block twice: first from disk, then locally.
  // Client 1 then reads it: server memory (baseline cannot use client 0).
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const Result<SimulationResult> result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads, 3u);
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kServerDisk)), 1u);
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kLocalMemory)), 1u);
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kServerMemory)), 1u);
  // Time bookkeeping: 15850 + 250 + 1050.
  EXPECT_NEAR(result->AverageReadTime(), (15'850.0 + 250.0 + 1050.0) / 3.0, 1e-9);
}

TEST(SimulatorTest, WarmupReadsAreNotCounted) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(0, 1, 0);
  SimulationConfig config = TinyConfig(4, 4);
  config.warmup_events = 2;
  Simulator simulator(config, &builder.Build());
  BaselinePolicy policy;
  const Result<SimulationResult> result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reads, 1u);  // Only the post-warm-up read.
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kLocalMemory)), 1u);
  // Warm-up still warmed the cache (the counted read was a local hit), and
  // warm-up server load was not charged.
  EXPECT_EQ(result->server_load.TotalUnits(), 0u);
}

TEST(SimulatorTest, PerClientStatsAreSeparate) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(1, 2, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const Result<SimulationResult> result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_client.size(), 2u);
  EXPECT_EQ(result->per_client[0].reads, 2u);
  EXPECT_EQ(result->per_client[1].reads, 1u);
  EXPECT_NEAR(result->per_client[0].total_time_us, 15'850.0 + 250.0, 1e-9);
  EXPECT_NEAR(result->per_client[1].total_time_us, 15'850.0, 1e-9);
}

TEST(SimulatorTest, RunIsRepeatable) {
  TraceBuilder builder;
  for (int i = 0; i < 50; ++i) {
    builder.Read(static_cast<ClientId>(i % 3), static_cast<FileId>(i % 7), 0);
  }
  Simulator simulator(TinyConfig(2, 2), &builder.Build());
  BaselinePolicy policy;
  const Result<SimulationResult> a = simulator.Run(policy);
  const Result<SimulationResult> b = simulator.Run(policy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->AverageReadTime(), b->AverageReadTime(), 1e-12);
  EXPECT_EQ(a->server_load.TotalUnits(), b->server_load.TotalUnits());
}

TEST(SimulatorTest, InspectorSeesFinalContext) {
  TraceBuilder builder;
  builder.Read(0, 1, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  bool inspected = false;
  const Result<SimulationResult> result = simulator.Run(policy, [&](SimContext& context) {
    inspected = true;
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{1, 0}));
    EXPECT_TRUE(context.server_cache().Contains(BlockId{1, 0}));
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(inspected);
}

TEST(SimulatorTest, DiskFetchPopulatesServerAndClient) {
  TraceBuilder builder;
  builder.Read(0, 9, 3);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  simulator
      .Run(policy,
           [](SimContext& context) {
             EXPECT_TRUE(context.client_cache(0).Contains(BlockId{9, 3}));
             EXPECT_TRUE(context.server_cache().Contains(BlockId{9, 3}));
             EXPECT_EQ(context.directory().HolderCount(BlockId{9, 3}), 1u);
           })
      .status();
}

}  // namespace
}  // namespace coopfs
