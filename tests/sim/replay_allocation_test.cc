// Proves the steady-state replay path performs zero heap allocations once
// the per-run arena is warm.
//
// This TU overrides the global allocation operators and forwards every
// acquisition to the profiler's allocation counters
// (Profiler::RecordAllocation); the library itself never touches the global
// allocator, so the counters are exact for this process. The probe policy
// wraps a real policy and snapshots the counter at the simulator's warm-up
// boundary and after every subsequent event — the difference is the heap
// traffic of the post-warm-up replay loop alone, excluding simulator
// construction and result materialization.
//
// Two properties are pinned:
//   * with a warmed arena (one throwaway run, then Arena::Reset), the
//     post-warm-up replay loop allocates exactly zero times — the property
//     the parallel-sweep fix rests on;
//   * the arena acquires no new chunks across repeated Reset+run cycles
//     (heap traffic in Arena::stats() terms), so sweeps are allocation-free
//     from the second job onward.
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/common/profiler.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

// ---- Global allocation hooks (this TU owns the process's operator new) ----

namespace {

void* CountedAlloc(std::size_t size) {
  coopfs::Profiler::RecordAllocation(size);
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  coopfs::Profiler::RecordAllocation(size);
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, padded != 0 ? padded : alignment);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace coopfs {
namespace {

// Forwards every Policy call to the wrapped policy while watching the
// profiler's allocation counter. Tick() runs once per trace event with the
// clock already advanced, so counting ticks mirrors the simulator's own
// warm-up accounting: once `warmup_events` ticks have passed, the counter
// is snapshotted, and every later tick refreshes the end-of-window reading.
class AllocationProbePolicy : public Policy {
 public:
  AllocationProbePolicy(std::unique_ptr<Policy> inner, std::uint64_t warmup_events)
      : inner_(std::move(inner)), warmup_events_(warmup_events) {}

  std::string Name() const override { return inner_->Name(); }
  std::size_t ClientCacheBlocks(const SimulationConfig& config) const override {
    return inner_->ClientCacheBlocks(config);
  }
  std::size_t ServerCacheBlocks(const SimulationConfig& config) const override {
    return inner_->ServerCacheBlocks(config);
  }
  void Attach(SimContext& context) override { inner_->Attach(context); }
  ReadOutcome Read(ClientId client, BlockId block) override {
    return inner_->Read(client, block);
  }
  void Write(ClientId client, BlockId block) override { inner_->Write(client, block); }
  void Delete(ClientId client, FileId file) override { inner_->Delete(client, file); }
  void ReadAttr(ClientId client, FileId file) override { inner_->ReadAttr(client, file); }
  void Reboot(ClientId client) override { inner_->Reboot(client); }

  void Tick() override {
    ++events_;
    if (events_ == warmup_events_) {
      at_warmup_ = Profiler::AllocationCount();
      at_end_ = at_warmup_;
    } else if (events_ > warmup_events_) {
      at_end_ = Profiler::AllocationCount();
    }
    inner_->Tick();
  }

  bool SawWarmupBoundary() const { return events_ >= warmup_events_; }
  std::uint64_t SteadyStateAllocations() const { return at_end_ - at_warmup_; }

 private:
  std::unique_ptr<Policy> inner_;
  std::uint64_t warmup_events_;
  std::uint64_t events_ = 0;
  std::uint64_t at_warmup_ = 0;
  std::uint64_t at_end_ = 0;
};

class ReplayAllocationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Four clients keep every Directory::HolderList copy within its inline
    // capacity; spills would be heap traffic by design (copies must outlive
    // the arena).
    WorkloadConfig workload = SmallTestWorkloadConfig(11);
    workload.num_clients = 4;
    workload.num_events = 30'000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static SimulationConfig ArenaConfig(Arena* arena) {
    SimulationConfig config = TinyConfig(64, 256);
    config.warmup_events = trace_->size() / 2;
    config.arena = arena;
    return config;
  }

  static Trace* trace_;
};

Trace* ReplayAllocationTest::trace_ = nullptr;

TEST_F(ReplayAllocationTest, SteadyStateReplayIsAllocationFreeOnWarmArena) {
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kNChance}) {
    Arena arena;
    const SimulationConfig config = ArenaConfig(&arena);

    // Warm-up run: grows the arena's chunk list and faults its pages, and
    // sizes the policy's own structures for this trace.
    {
      Simulator warm(config, trace_);
      auto policy = MakePolicy(kind, {});
      const auto result = warm.Run(*policy);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    arena.Reset();

    // Measured run on the warmed arena: the post-warm-up replay loop must
    // not touch the global heap at all.
    Simulator simulator(config, trace_);
    AllocationProbePolicy probe(MakePolicy(kind, {}), config.warmup_events);
    const auto result = simulator.Run(probe);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(probe.SawWarmupBoundary());
    EXPECT_EQ(probe.SteadyStateAllocations(), 0u)
        << probe.Name() << ": post-warm-up replay hit the heap";
  }
}

TEST_F(ReplayAllocationTest, ArenaAcquiresNoChunksAfterTheFirstRun) {
  Arena arena;
  const SimulationConfig config = ArenaConfig(&arena);
  auto run_once = [&] {
    arena.Reset();
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(PolicyKind::kNChance, {});
    const auto result = simulator.Run(*policy);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };
  run_once();
  const Arena::Stats warm = arena.stats();
  for (int i = 0; i < 3; ++i) {
    run_once();
  }
  const Arena::Stats after = arena.stats();
  EXPECT_EQ(after.chunk_allocations, warm.chunk_allocations)
      << "repeat runs forced new arena chunks";
  EXPECT_EQ(after.chunks, warm.chunks);
}

}  // namespace
}  // namespace coopfs
