// Tests the PolicyBase shared machinery (write-through + write-invalidate,
// whole-file delete, read-attribute refresh) through the baseline policy.
#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(PolicyBaseTest, WriteInvalidatesOtherClientCopies) {
  // Both clients cache f1:b0; client 1's write must kill client 0's copy.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(1, 1, 0).Write(1, 1, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{1, 0}));
    EXPECT_TRUE(context.client_cache(1).Contains(BlockId{1, 0}));
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 1u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
  // One invalidation message charged ("Other" load).
  EXPECT_EQ(result->server_load.Units(ServerLoadKind::kOther), 1u);
}

TEST(PolicyBaseTest, WriteThroughPopulatesServerCache) {
  TraceBuilder builder;
  builder.Write(0, 5, 2);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.server_cache().Contains(BlockId{5, 2}));
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{5, 2}));
  });
  ASSERT_TRUE(result.ok());
  // After the write, a read by the writer is a local hit.
  EXPECT_EQ(result->reads, 0u);
}

TEST(PolicyBaseTest, WriteMakesSubsequentReadLocal) {
  TraceBuilder builder;
  builder.Write(0, 5, 2).Read(0, 5, 2);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kLocalMemory)), 1u);
}

TEST(PolicyBaseTest, DeletePurgesEverywhere) {
  TraceBuilder builder;
  builder.Read(0, 7, 0).Read(0, 7, 1).Read(1, 7, 0).Delete(2, 7);
  Simulator simulator(TinyConfig(4, 8), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{7, 0}));
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{7, 1}));
    EXPECT_FALSE(context.client_cache(1).Contains(BlockId{7, 0}));
    EXPECT_FALSE(context.server_cache().Contains(BlockId{7, 0}));
    EXPECT_EQ(context.directory().HolderCount(BlockId{7, 0}), 0u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(PolicyBaseTest, DeleteOfUnknownFileIsNoOp) {
  TraceBuilder builder;
  builder.Delete(0, 99).Read(0, 1, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  EXPECT_TRUE(simulator.Run(policy).ok());
}

TEST(PolicyBaseTest, ReadAttrRefreshesLruPosition) {
  // Client 0 caches f1:b0 then f2:b0 and f3:b0 (capacity 3). An attr on
  // file 1 renews its block, so inserting f4:b0 evicts f2:b0 instead.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 3, 0).Attr(0, 1).Read(0, 4, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(3, 8), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{1, 0}));
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{2, 0}));
  });
  ASSERT_TRUE(result.ok());
  // Final read of f1:b0 is a local hit thanks to the attr refresh.
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kLocalMemory)), 1u);
}

TEST(PolicyBaseTest, LruEvictionDropsOldest) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 3, 0);  // Capacity 2: f1 evicted.
  Simulator simulator(TinyConfig(2, 8), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{1, 0}));
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{2, 0}));
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{3, 0}));
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 0u);
  });
  ASSERT_TRUE(result.ok());
}

TEST(PolicyBaseTest, ServerCacheEvictsLru) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 3, 0);
  Simulator simulator(TinyConfig(8, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.server_cache().Contains(BlockId{1, 0}));
    EXPECT_TRUE(context.server_cache().Contains(BlockId{2, 0}));
    EXPECT_TRUE(context.server_cache().Contains(BlockId{3, 0}));
  });
  ASSERT_TRUE(result.ok());
}

TEST(PolicyBaseTest, ZeroCapacityClientCacheStillWorks) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(0, 4), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  // No local cache: second read hits server memory.
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kServerMemory)), 1u);
}

}  // namespace
}  // namespace coopfs
