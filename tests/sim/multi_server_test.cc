// Tests for the multi-server extension (SimulationConfig::num_servers).
#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(MultiServerTest, DefaultIsOneServer) {
  const SimulationConfig config = TinyConfig(4, 8, 2);
  SimContext context(config, 2, 4, 8);
  EXPECT_EQ(context.num_servers(), 1u);
  EXPECT_EQ(context.ServerFor(123), 0u);
  EXPECT_EQ(context.server_cache().capacity(), 8u);
}

TEST(MultiServerTest, MemoryDividedEvenly) {
  SimulationConfig config = TinyConfig(4, 8, 2);
  config.num_servers = 4;
  SimContext context(config, 2, 4, 8);
  EXPECT_EQ(context.num_servers(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(context.server_cache(s).capacity(), 2u);
  }
}

TEST(MultiServerTest, FilesStickToTheirServer) {
  SimulationConfig config = TinyConfig(4, 8, 2);
  config.num_servers = 3;
  SimContext context(config, 2, 4, 8);
  for (FileId file = 0; file < 100; ++file) {
    const std::uint32_t server = context.ServerFor(file);
    EXPECT_LT(server, 3u);
    EXPECT_EQ(context.ServerFor(file), server);  // Deterministic.
  }
}

TEST(MultiServerTest, StripingSpreadsFiles) {
  SimulationConfig config = TinyConfig(4, 8, 2);
  config.num_servers = 4;
  SimContext context(config, 2, 4, 8);
  std::vector<int> counts(4, 0);
  for (FileId file = 0; file < 400; ++file) {
    ++counts[context.ServerFor(file)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 50) << "hash striping should be roughly even";
  }
}

TEST(MultiServerTest, DiskFetchPopulatesOwningServerOnly) {
  SimulationConfig config = TinyConfig(4, 8, 1);
  config.num_servers = 2;
  TraceBuilder builder;
  builder.Read(0, 1, 0);
  Simulator simulator(config, &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const std::uint32_t owner = context.ServerFor(1);
    EXPECT_TRUE(context.server_cache(owner).Contains(BlockId{1, 0}));
    EXPECT_FALSE(context.server_cache(1 - owner).Contains(BlockId{1, 0}));
  });
  ASSERT_TRUE(result.ok());
}

TEST(MultiServerTest, SameTotalMemorySimilarResults) {
  // Striping the same memory across servers shifts per-server hit rates a
  // little (partition imbalance) but must not change the story.
  WorkloadConfig workload = SmallTestWorkloadConfig(55);
  workload.num_events = 10'000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig one = TinyConfig(16, 64);
  one.warmup_events = 3000;
  SimulationConfig four = one;
  four.num_servers = 4;
  Simulator sim_one(one, &trace);
  Simulator sim_four(four, &trace);
  auto policy_a = MakePolicy(PolicyKind::kNChance);
  auto policy_b = MakePolicy(PolicyKind::kNChance);
  const auto result_one = sim_one.Run(*policy_a);
  const auto result_four = sim_four.Run(*policy_b);
  ASSERT_TRUE(result_one.ok());
  ASSERT_TRUE(result_four.ok());
  EXPECT_NEAR(result_four->AverageReadTime() / result_one->AverageReadTime(), 1.0, 0.15);
}

class MultiServerConsistency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiServerConsistency, AllPoliciesStayConsistent) {
  WorkloadConfig workload = SmallTestWorkloadConfig(66);
  workload.num_events = 6000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(16, 64);
  config.num_servers = GetParam();
  config.warmup_events = 1000;
  Simulator simulator(config, &trace);
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    const auto result = simulator.Run(*policy, [](SimContext& context) {
      const Status status = CheckCacheDirectoryConsistency(context);
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
    ASSERT_TRUE(result.ok()) << PolicyKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, MultiServerConsistency, ::testing::Values(1u, 2u, 5u));

}  // namespace
}  // namespace coopfs
