#include "src/sim/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

SimulationResult MakeResult(std::uint64_t local, std::uint64_t remote, std::uint64_t server,
                            std::uint64_t disk) {
  SimulationResult result;
  result.policy_name = "test";
  result.level_counts.Add(0, local);
  result.level_counts.Add(1, remote);
  result.level_counts.Add(2, server);
  result.level_counts.Add(3, disk);
  result.level_time_us[0] = static_cast<double>(local) * 250.0;
  result.level_time_us[1] = static_cast<double>(remote) * 1250.0;
  result.level_time_us[2] = static_cast<double>(server) * 1050.0;
  result.level_time_us[3] = static_cast<double>(disk) * 15'850.0;
  result.reads = local + remote + server + disk;
  return result;
}

TEST(MetricsTest, AverageReadTime) {
  const SimulationResult result = MakeResult(78, 0, 6, 16);
  // (78*250 + 6*1050 + 16*15850) / 100 = (19500 + 6300 + 253600)/100.
  EXPECT_NEAR(result.AverageReadTime(), 2794.0, 0.01);
}

TEST(MetricsTest, EmptyResultIsZero) {
  SimulationResult result;
  EXPECT_DOUBLE_EQ(result.AverageReadTime(), 0.0);
  EXPECT_DOUBLE_EQ(result.DiskRate(), 0.0);
}

TEST(MetricsTest, LevelFractions) {
  const SimulationResult result = MakeResult(50, 25, 15, 10);
  EXPECT_DOUBLE_EQ(result.LevelFraction(CacheLevel::kLocalMemory), 0.50);
  EXPECT_DOUBLE_EQ(result.LevelFraction(CacheLevel::kRemoteClient), 0.25);
  EXPECT_DOUBLE_EQ(result.LocalMissRate(), 0.50);
  EXPECT_DOUBLE_EQ(result.DiskRate(), 0.10);
}

TEST(MetricsTest, SpeedupUsesHennessyPattersonConvention) {
  const SimulationResult slow = MakeResult(0, 0, 0, 100);   // All disk.
  const SimulationResult fast = MakeResult(100, 0, 0, 0);   // All local.
  EXPECT_NEAR(fast.SpeedupOver(slow), 15'850.0 / 250.0, 1e-9);
  EXPECT_NEAR(slow.SpeedupOver(slow), 1.0, 1e-9);
}

TEST(MetricsTest, PerClientSpeedups) {
  SimulationResult base = MakeResult(10, 0, 0, 0);
  base.per_client.resize(2);
  base.per_client[0] = {4, 4 * 500.0};
  base.per_client[1] = {6, 6 * 1000.0};
  SimulationResult mine = base;
  mine.per_client[0] = {4, 4 * 250.0};   // 2x faster.
  mine.per_client[1] = {6, 6 * 2000.0};  // 2x slower.
  const std::vector<double> speedups = mine.PerClientSpeedup(base);
  ASSERT_EQ(speedups.size(), 2u);
  EXPECT_NEAR(speedups[0], 2.0, 1e-9);
  EXPECT_NEAR(speedups[1], 0.5, 1e-9);
}

TEST(MetricsTest, PerClientSpeedupHandlesIdleClients) {
  SimulationResult base = MakeResult(1, 0, 0, 0);
  base.per_client.resize(1);
  SimulationResult mine = base;
  const std::vector<double> speedups = mine.PerClientSpeedup(base);
  ASSERT_EQ(speedups.size(), 1u);
  EXPECT_DOUBLE_EQ(speedups[0], 1.0);  // No reads either side -> neutral.
}

TEST(MetricsTest, RelativeServerLoad) {
  SimulationResult base = MakeResult(1, 0, 0, 0);
  base.server_load.ChargeDiskHit();  // 6 units.
  SimulationResult mine = base;
  mine.server_load.Reset();
  mine.server_load.ChargeRemoteClientHit();  // 2 units.
  mine.server_load.ChargeSmallMessages(1);   // 1 unit.
  EXPECT_DOUBLE_EQ(mine.RelativeServerLoad(base), 0.5);
}

TEST(StackDeletionTest, MatchesHandComputation) {
  // Visible: 20 reads, all disk. Hidden local hit rate 80% => 80 inferred
  // local hits, total 100 reads.
  const SimulationResult visible = MakeResult(0, 0, 0, 20);
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.8, 250.0);
  EXPECT_EQ(adjusted.reads, 100u);
  EXPECT_EQ(adjusted.level_counts.Get(0), 80u);
  // (80*250 + 20*15850)/100 = (20000 + 317000)/100 = 3370.
  EXPECT_NEAR(adjusted.AverageReadTime(), 3370.0, 0.01);
}

TEST(StackDeletionTest, ZeroHiddenRateIsIdentity) {
  const SimulationResult visible = MakeResult(10, 5, 3, 2);
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.0, 250.0);
  EXPECT_EQ(adjusted.reads, visible.reads);
  EXPECT_NEAR(adjusted.AverageReadTime(), visible.AverageReadTime(), 1e-9);
}

TEST(StackDeletionTest, AdjustsPerClientProportionally) {
  SimulationResult visible = MakeResult(0, 0, 0, 10);
  visible.per_client.resize(1);
  visible.per_client[0] = {10, 10 * 15'850.0};
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.5, 250.0);
  ASSERT_EQ(adjusted.per_client.size(), 1u);
  EXPECT_EQ(adjusted.per_client[0].reads, 20u);
  EXPECT_NEAR(adjusted.per_client[0].AverageReadTime(), (10 * 15'850.0 + 10 * 250.0) / 20.0,
              0.01);
}

TEST(StackDeletionTest, ZeroReadsStayZero) {
  SimulationResult visible = MakeResult(0, 0, 0, 0);
  visible.per_client.resize(2);
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.8, 250.0);
  EXPECT_EQ(adjusted.reads, 0u);
  EXPECT_EQ(adjusted.level_counts.Get(0), 0u);
  EXPECT_DOUBLE_EQ(adjusted.AverageReadTime(), 0.0);
  for (const auto& client : adjusted.per_client) {
    EXPECT_EQ(client.reads, 0u);
    EXPECT_DOUBLE_EQ(client.total_time_us, 0.0);
  }
}

TEST(StackDeletionTest, ZeroHiddenRateLeavesPerClientUntouched) {
  SimulationResult visible = MakeResult(0, 0, 0, 10);
  visible.per_client.resize(2);
  visible.per_client[0] = {4, 4 * 15'850.0};
  visible.per_client[1] = {6, 6 * 15'850.0};
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.0, 250.0);
  ASSERT_EQ(adjusted.per_client.size(), 2u);
  EXPECT_EQ(adjusted.per_client[0].reads, 4u);
  EXPECT_EQ(adjusted.per_client[1].reads, 6u);
  EXPECT_DOUBLE_EQ(adjusted.per_client[0].total_time_us, 4 * 15'850.0);
  EXPECT_DOUBLE_EQ(adjusted.per_client[1].total_time_us, 6 * 15'850.0);
}

TEST(StackDeletionTest, PerClientSharesSumExactlyToAggregate) {
  // 7 visible reads split 1/2/4; hidden rate 0.6 infers 7*0.6/0.4 = 10.5,
  // rounded to 11 hidden hits. 11 is not proportionally divisible by 1/2/4,
  // so naive per-client rounding would drop or invent a hit; the cumulative
  // rounding must hand out exactly 11 across the clients.
  SimulationResult visible = MakeResult(0, 0, 0, 7);
  visible.per_client.resize(3);
  visible.per_client[0] = {1, 1 * 15'850.0};
  visible.per_client[1] = {2, 2 * 15'850.0};
  visible.per_client[2] = {4, 4 * 15'850.0};
  const SimulationResult adjusted = ApplyStackDeletion(visible, 0.6, 250.0);
  EXPECT_EQ(adjusted.level_counts.Get(0), 11u);
  EXPECT_EQ(adjusted.reads, 18u);

  std::uint64_t client_reads = 0;
  double client_time = 0.0;
  for (const auto& client : adjusted.per_client) {
    client_reads += client.reads;
    client_time += client.total_time_us;
  }
  EXPECT_EQ(client_reads, adjusted.reads);
  EXPECT_DOUBLE_EQ(client_time, 7 * 15'850.0 + 11 * 250.0);
  // Shares stay proportional: no client's share is off by more than one
  // hit from its exact proportional entitlement.
  const double exact[] = {11.0 / 7.0, 22.0 / 7.0, 44.0 / 7.0};
  const std::uint64_t before[] = {1, 2, 4};
  for (std::size_t i = 0; i < 3; ++i) {
    const double share = static_cast<double>(adjusted.per_client[i].reads - before[i]);
    EXPECT_LT(std::abs(share - exact[i]), 1.0) << "client " << i;
  }
}

TEST(StackDeletionTest, HigherHiddenRateShrinksAlgorithmDifferences) {
  // Paper footnote 4: higher assumed local hit rates compress speedups.
  const SimulationResult base = MakeResult(0, 0, 0, 20);
  const SimulationResult coop = MakeResult(0, 15, 0, 5);
  const double speedup70 = ApplyStackDeletion(coop, 0.7, 250.0)
                               .SpeedupOver(ApplyStackDeletion(base, 0.7, 250.0));
  const double speedup90 = ApplyStackDeletion(coop, 0.9, 250.0)
                               .SpeedupOver(ApplyStackDeletion(base, 0.9, 250.0));
  EXPECT_GT(speedup70, speedup90);
  EXPECT_GT(speedup90, 1.0);
}

TEST(MetricsTest, ToStringContainsPolicyName) {
  const SimulationResult result = MakeResult(1, 1, 1, 1);
  EXPECT_NE(result.ToString().find("test"), std::string::npos);
}

}  // namespace
}  // namespace coopfs
