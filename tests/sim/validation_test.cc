#include "src/sim/validation.h"

#include <gtest/gtest.h>

#include "src/sim/config.h"

namespace coopfs {
namespace {

SimulationConfig Config() {
  SimulationConfig config;
  config.client_cache_blocks = 4;
  config.server_cache_blocks = 4;
  return config;
}

TEST(ValidationTest, FreshContextIsConsistent) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
}

TEST(ValidationTest, ConsistentStatePasses) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  context.client_cache(0).Insert(BlockId{1, 0});
  context.directory().AddHolder(BlockId{1, 0}, 0);
  EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
}

TEST(ValidationTest, DetectsCachedButUntracked) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  context.client_cache(0).Insert(BlockId{1, 0});  // No directory entry.
  const Status status = CheckCacheDirectoryConsistency(context);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("not a directory holder"), std::string::npos);
}

TEST(ValidationTest, DetectsTrackedButNotCached) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  context.directory().AddHolder(BlockId{1, 0}, 1);  // Client 1 caches nothing.
  const Status status = CheckCacheDirectoryConsistency(context);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("but it does not"), std::string::npos);
}

TEST(ValidationTest, DetectsHolderOutOfRange) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  context.directory().AddHolder(BlockId{1, 0}, 9);
  const Status status = CheckCacheDirectoryConsistency(context);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(ValidationTest, DetectsFalseSingletMarking) {
  const SimulationConfig config = Config();
  SimContext context(config, 2, 4, 4);
  CacheEntry& entry = context.client_cache(0).Insert(BlockId{1, 0});
  context.client_cache(1).Insert(BlockId{1, 0});
  context.directory().AddHolder(BlockId{1, 0}, 0);
  context.directory().AddHolder(BlockId{1, 0}, 1);
  entry.singlet_flag = true;  // Lie: the block is duplicated.
  const Status status = CheckCacheDirectoryConsistency(context);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("marked singlet"), std::string::npos);
}

}  // namespace
}  // namespace coopfs
