// Tests for the delayed-write extension (SimulationConfig::write_policy).
#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/core/nchance.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

SimulationConfig DelayedConfig(std::size_t client_blocks, std::size_t server_blocks,
                               std::uint32_t clients, Micros delay = 30'000'000) {
  SimulationConfig config = TinyConfig(client_blocks, server_blocks, clients);
  config.write_policy = WritePolicy::kDelayedWrite;
  config.write_delay = delay;
  return config;
}

TEST(DelayedWriteTest, DirtyBlockServedClientToClient) {
  // Client 0 writes f1 (held dirty). Client 1's read must be forwarded to
  // client 0 — the server's copy is stale/absent (DASH-style, paper §5) —
  // even under the baseline policy, which otherwise never forwards.
  TraceBuilder builder;
  builder.Write(0, 1, 0).Read(1, 1, 0);
  Simulator simulator(DelayedConfig(4, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 1u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 0u);
  EXPECT_EQ(result->writes, 1u);
  EXPECT_EQ(result->flushed_writes, 0u);  // Still dirty at trace end.
}

TEST(DelayedWriteTest, WriteDoesNotTouchServerUntilFlush) {
  TraceBuilder builder;
  builder.Write(0, 1, 0);
  Simulator simulator(DelayedConfig(4, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.server_cache().Contains(BlockId{1, 0}));
    const CacheEntry* entry = context.client_cache(0).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->dirty);
  });
  ASSERT_TRUE(result.ok());
}

TEST(DelayedWriteTest, FlushAfterDelay) {
  // TraceBuilder spaces events 1000 us apart; with a 2500 us delay the
  // write flushes during the later filler events.
  TraceBuilder builder;
  builder.Write(0, 1, 0).Read(1, 9, 0).Read(1, 9, 0).Read(1, 9, 0).Read(1, 9, 0);
  Simulator simulator(DelayedConfig(4, 4, 2, /*delay=*/2500), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.server_cache().Contains(BlockId{1, 0}));
    const CacheEntry* entry = context.client_cache(0).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->dirty);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flushed_writes, 1u);
  EXPECT_EQ(result->absorbed_writes, 0u);
}

TEST(DelayedWriteTest, OverwriteIsAbsorbed) {
  TraceBuilder builder;
  builder.Write(0, 1, 0).Write(0, 1, 0).Write(0, 1, 0);
  Simulator simulator(DelayedConfig(4, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->writes, 3u);
  EXPECT_EQ(result->absorbed_writes, 2u);  // Only one flush will happen.
}

TEST(DelayedWriteTest, DeleteAbsorbsDirtyData) {
  // The classic short-lived-file effect: data deleted before the delay
  // expires never costs a server write at all.
  TraceBuilder builder;
  builder.Write(0, 1, 0).Delete(0, 1);
  Simulator simulator(DelayedConfig(4, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->absorbed_writes, 1u);
  EXPECT_EQ(result->flushed_writes, 0u);
}

TEST(DelayedWriteTest, EvictionForcesFlush) {
  // Client 0 (capacity 1) writes f1 then reads f2: the eviction of dirty
  // f1 must write it back before discarding.
  TraceBuilder builder;
  builder.Write(0, 1, 0).Read(0, 2, 0);
  Simulator simulator(DelayedConfig(1, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.server_cache().Contains(BlockId{1, 0}));
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flushed_writes, 1u);
}

TEST(DelayedWriteTest, RebootLosesDirtyData) {
  TraceBuilder builder;
  builder.Write(0, 1, 0);
  TraceEvent reboot;
  reboot.timestamp = 1'000'000;
  reboot.client = 0;
  reboot.type = EventType::kReboot;
  Trace trace = builder.Build();
  trace.push_back(reboot);
  Simulator simulator(DelayedConfig(4, 4, 2), &trace);
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->lost_writes, 1u);
  EXPECT_EQ(result->flushed_writes, 0u);
}

TEST(DelayedWriteTest, NChanceEvictionFlushesBeforeRecirculation) {
  // Client 0 (capacity 1) writes singlet f1, then reads f2: f1 must be
  // flushed and then recirculated to the peer as a clean copy.
  TraceBuilder builder;
  builder.Read(1, 9, 0).Write(0, 1, 0).Read(0, 2, 0);
  Simulator simulator(DelayedConfig(1, 8, 2), &builder.Build());
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.server_cache().Contains(BlockId{1, 0}));
    const CacheEntry* entry = context.client_cache(1).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->recirculating());
    EXPECT_FALSE(entry->dirty);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flushed_writes, 1u);
}

TEST(DelayedWriteTest, WriteThroughCountsNoDelayedStats) {
  TraceBuilder builder;
  builder.Write(0, 1, 0).Write(0, 1, 0);
  Simulator simulator(TinyConfig(4, 4, 2), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->writes, 2u);
  EXPECT_EQ(result->flushed_writes, 0u);
  EXPECT_EQ(result->absorbed_writes, 0u);
}

class WritePolicyInvarianceProperty : public ::testing::TestWithParam<PolicyKind> {};

// The paper's §3 claim: "Since we focus on read performance, a delayed
// write or write back policy would not affect our results." Read response
// under delayed writes must be close to write-through for every policy.
TEST_P(WritePolicyInvarianceProperty, ReadResultsBarelyChange) {
  WorkloadConfig workload = SmallTestWorkloadConfig(77);
  workload.num_events = 12'000;
  const Trace trace = GenerateWorkload(workload);

  SimulationConfig through = TinyConfig(32, 64);
  through.warmup_events = 4000;
  SimulationConfig delayed = through;
  delayed.write_policy = WritePolicy::kDelayedWrite;

  Simulator sim_through(through, &trace);
  Simulator sim_delayed(delayed, &trace);
  auto policy_a = MakePolicy(GetParam());
  auto policy_b = MakePolicy(GetParam());
  const auto result_through = sim_through.Run(*policy_a);
  const auto result_delayed = sim_delayed.Run(*policy_b);
  ASSERT_TRUE(result_through.ok());
  ASSERT_TRUE(result_delayed.ok());
  EXPECT_NEAR(result_delayed->AverageReadTime() / result_through->AverageReadTime(), 1.0, 0.08)
      << result_through->ToString() << "\nvs\n"
      << result_delayed->ToString();
  // And the delayed run must stay structurally consistent.
  EXPECT_EQ(result_delayed->level_counts.Total(), result_delayed->reads);
}

INSTANTIATE_TEST_SUITE_P(Policies, WritePolicyInvarianceProperty,
                         ::testing::Values(PolicyKind::kBaseline, PolicyKind::kGreedy,
                                           PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                           PolicyKind::kHashDistributed));

}  // namespace
}  // namespace coopfs
