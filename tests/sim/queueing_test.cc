#include "src/sim/queueing.h"

#include <cmath>

#include <gtest/gtest.h>

namespace coopfs {
namespace {

SimulationResult MakeResult(std::uint64_t local, std::uint64_t disk, std::uint64_t load_units) {
  SimulationResult result;
  result.level_counts.Add(0, local);
  result.level_counts.Add(3, disk);
  result.level_time_us[0] = static_cast<double>(local) * 250.0;
  result.level_time_us[3] = static_cast<double>(disk) * 15'850.0;
  result.reads = local + disk;
  result.server_load.ChargeSmallMessages(load_units);
  return result;
}

TEST(QueueingTest, InflationFormula) {
  EXPECT_DOUBLE_EQ(Mm1Inflation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Mm1Inflation(0.5), 2.0);
  EXPECT_DOUBLE_EQ(Mm1Inflation(0.9), 10.0);
  EXPECT_TRUE(std::isinf(Mm1Inflation(1.0)));
  EXPECT_DOUBLE_EQ(Mm1Inflation(-0.5), 1.0);
}

TEST(QueueingTest, OfferedLoadRate) {
  const SimulationResult result = MakeResult(0, 0, 500);
  EXPECT_DOUBLE_EQ(OfferedLoadUnitsPerSecond(result, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(OfferedLoadUnitsPerSecond(result, 0.0), 0.0);
}

TEST(QueueingTest, RejectsBadInputs) {
  const SimulationResult result = MakeResult(1, 1, 10);
  EXPECT_FALSE(ApplyServerQueueing(result, 0.0, 10.0).ok());
  EXPECT_FALSE(ApplyServerQueueing(result, 10.0, 0.0).ok());
  EXPECT_FALSE(ApplyServerQueueing(result, -1.0, 10.0).ok());
}

TEST(QueueingTest, GenerousCapacityBarelyChangesLatency) {
  const SimulationResult result = MakeResult(50, 50, 100);
  const auto adjusted = ApplyServerQueueing(result, 10.0, 1'000'000.0);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_FALSE(adjusted->saturated);
  EXPECT_NEAR(adjusted->adjusted_read_time, result.AverageReadTime(),
              result.AverageReadTime() * 0.001);
}

TEST(QueueingTest, HalfUtilizationDoublesServerTime) {
  const SimulationResult result = MakeResult(50, 50, 100);
  // Offered: 10 units/s; capacity 20 => rho = 0.5 => inflation 2.
  const auto adjusted = ApplyServerQueueing(result, 10.0, 20.0);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_NEAR(adjusted->utilization, 0.5, 1e-12);
  const double reads = 100.0;
  const double local = 50.0 * 250.0 / reads;
  const double server = result.AverageReadTime() - local;
  EXPECT_NEAR(adjusted->adjusted_read_time, local + 2.0 * server, 1e-9);
}

TEST(QueueingTest, SaturationDetected) {
  const SimulationResult result = MakeResult(1, 1, 1000);
  const auto adjusted = ApplyServerQueueing(result, 1.0, 500.0);  // rho = 2.
  ASSERT_TRUE(adjusted.ok());
  EXPECT_TRUE(adjusted->saturated);
  EXPECT_TRUE(std::isinf(adjusted->adjusted_read_time));
}

TEST(QueueingTest, LocalOnlyWorkloadUnaffected) {
  const SimulationResult result = MakeResult(100, 0, 10);
  const auto adjusted = ApplyServerQueueing(result, 10.0, 2.0);  // rho = 0.5.
  ASSERT_TRUE(adjusted.ok());
  EXPECT_NEAR(adjusted->adjusted_read_time, 250.0, 1e-9);
}

}  // namespace
}  // namespace coopfs
