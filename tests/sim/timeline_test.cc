// Tests for the timeline (time-series metrics) facility.
#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/core/nchance.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(TimelineTest, DisabledByDefault) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(4, 4), &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timeline.empty());
}

TEST(TimelineTest, BucketsScriptedReads) {
  // Events are spaced 1000 us apart; a 2500 us interval puts reads 0-2 in
  // the first bucket (timestamps 0,1000,2000) and reads 3-4 in the second.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(0, 1, 0).Read(0, 2, 0).Read(0, 2, 0);
  SimulationConfig config = TinyConfig(4, 4);
  config.timeline_interval = 2500;
  Simulator simulator(config, &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->timeline.size(), 2u);
  EXPECT_EQ(result->timeline[0].reads, 3u);
  EXPECT_EQ(result->timeline[1].reads, 2u);
  EXPECT_LT(result->timeline[0].end_time, result->timeline[1].end_time);
  // First bucket: disk + 2 local hits.
  EXPECT_NEAR(result->timeline[0].avg_read_time_us, (15'850.0 + 250.0 + 250.0) / 3.0, 1e-9);
  EXPECT_NEAR(result->timeline[0].disk_rate, 1.0 / 3.0, 1e-12);
}

TEST(TimelineTest, BucketsSumToTotals) {
  WorkloadConfig workload = SmallTestWorkloadConfig(21);
  workload.num_events = 8000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(32, 64);
  config.warmup_events = 2000;
  config.timeline_interval = workload.duration / 50;
  Simulator simulator(config, &trace);
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->timeline.empty());
  std::uint64_t reads = 0;
  double time = 0.0;
  Micros last_end = 0;
  for (const auto& point : result->timeline) {
    EXPECT_GT(point.end_time, last_end);
    last_end = point.end_time;
    reads += point.reads;
    time += point.avg_read_time_us * static_cast<double>(point.reads);
  }
  EXPECT_EQ(reads, result->reads);
  EXPECT_NEAR(time / static_cast<double>(reads), result->AverageReadTime(), 1e-6);
}

TEST(TimelineTest, WarmupExcludedFromTimeline) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0).Read(0, 1, 0);
  SimulationConfig config = TinyConfig(4, 4);
  config.warmup_events = 2;
  config.timeline_interval = 500;
  Simulator simulator(config, &builder.Build());
  BaselinePolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  std::uint64_t reads = 0;
  for (const auto& point : result->timeline) {
    reads += point.reads;
  }
  EXPECT_EQ(reads, 1u);
}

}  // namespace
}  // namespace coopfs
