// Tests for the client-reboot (churn) extension.
#include <gtest/gtest.h>

#include "src/core/central_coord.h"
#include "src/core/direct_coop.h"
#include "src/core/hash_distributed.h"
#include "src/core/nchance.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/trace_stats.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

Trace WithReboot(TraceBuilder& builder, ClientId client) {
  Trace trace = builder.Build();
  TraceEvent reboot;
  reboot.timestamp = trace.empty() ? 0 : trace.back().timestamp + 1000;
  reboot.client = client;
  reboot.type = EventType::kReboot;
  trace.push_back(reboot);
  return trace;
}

TEST(RebootTest, PurgesLocalCacheAndDirectory) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);
  const Trace trace = WithReboot(builder, 0);
  Simulator simulator(TinyConfig(4, 8, 2), &trace);
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_EQ(context.client_cache(0).size(), 0u);
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 0u);
    EXPECT_EQ(context.directory().HolderCount(BlockId{2, 0}), 0u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(RebootTest, OtherClientsUnaffected) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(1, 2, 0);
  const Trace trace = WithReboot(builder, 0);
  Simulator simulator(TinyConfig(4, 8, 2), &trace);
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.client_cache(1).Contains(BlockId{2, 0}));
  });
  ASSERT_TRUE(result.ok());
}

TEST(RebootTest, DirectCoopLosesPrivateRemoteCache) {
  // Client 0 spills f1 to its private remote cache, then reboots: the
  // re-read must miss the remote cache (server cap 1 holds f2).
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);
  Trace trace = WithReboot(builder, 0);
  TraceEvent read;
  read.timestamp = trace.back().timestamp + 1000;
  read.client = 0;
  read.type = EventType::kRead;
  read.block = BlockId{1, 0};
  trace.push_back(read);
  Simulator simulator(TinyConfig(1, 1, 2), &trace);
  DirectCoopPolicy policy(4);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kRemoteClient)), 0u);
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kServerDisk)), 3u);
}

TEST(RebootTest, CentralLosesHostedGlobalEntries) {
  // With one client, every globally managed entry is hosted by client 0;
  // its reboot empties the global cache, so the re-read goes to disk.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);  // Server cap 1: f1 -> global cache.
  Trace trace = WithReboot(builder, 0);
  TraceEvent read;
  read.timestamp = trace.back().timestamp + 1000;
  read.client = 0;
  read.type = EventType::kRead;
  read.block = BlockId{1, 0};
  trace.push_back(read);
  Simulator simulator(TinyConfig(10, 1, 1), &trace);
  CentralCoordPolicy policy(0.8);
  const auto result = simulator.Run(policy, [&policy](SimContext&) {
    EXPECT_FALSE(policy.GlobalCacheContains(BlockId{1, 0}));
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->level_counts.Get(static_cast<std::size_t>(CacheLevel::kRemoteClient)), 0u);
}

TEST(RebootTest, HashPartitionCleared) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);  // Server cap 1: f1 -> its partition.
  const Trace trace = WithReboot(builder, 0);  // Single client: partition 0.
  Simulator simulator(TinyConfig(10, 1, 1), &trace);
  HashDistributedPolicy policy(0.8);
  const auto result = simulator.Run(policy, [&policy](SimContext&) {
    EXPECT_FALSE(policy.PartitionContains(BlockId{1, 0}));
  });
  ASSERT_TRUE(result.ok());
}

TEST(RebootWorkloadTest, GeneratorEmitsRequestedChurn) {
  WorkloadConfig config = SmallTestWorkloadConfig(9);
  config.num_events = 30'000;
  config.mean_reboots_per_client = 3.0;
  const TraceStats stats = ComputeTraceStats(GenerateWorkload(config));
  // Expected total: 3 per client x 6 clients = 18; allow generous slack.
  EXPECT_GT(stats.num_reboots, 5u);
  EXPECT_LT(stats.num_reboots, 60u);
}

TEST(RebootWorkloadTest, ZeroChurnByDefault) {
  const TraceStats stats =
      ComputeTraceStats(GenerateWorkload(SmallTestWorkloadConfig(9)));
  EXPECT_EQ(stats.num_reboots, 0u);
}

class ChurnConsistencyProperty : public ::testing::TestWithParam<PolicyKind> {};

// Every policy must stay structurally consistent under heavy churn.
TEST_P(ChurnConsistencyProperty, InvariantsHoldUnderChurn) {
  WorkloadConfig workload = SmallTestWorkloadConfig(13);
  workload.num_events = 10'000;
  workload.mean_reboots_per_client = 5.0;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(16, 32);
  config.warmup_events = 2000;
  Simulator simulator(config, &trace);
  auto policy = MakePolicy(GetParam());
  const auto result = simulator.Run(*policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok()) << PolicyKindName(GetParam());
  EXPECT_EQ(result->level_counts.Total(), result->reads);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChurnConsistencyProperty,
                         ::testing::ValuesIn(AllPolicyKinds()));

}  // namespace
}  // namespace coopfs
