// Hash-index capacity must never change simulation results.
//
// The replay hot path runs on open-addressing FlatHashMaps whose iteration
// order changes with bucket count. Every consumer of map iteration is
// required to aggregate order-independently, sort on emit, or walk a
// capacity-independent structure (the LRU list) instead — so replaying the
// same trace with default-sized, minimally-sized, and hugely over-reserved
// indexes must serialize to byte-identical coopfs.metrics/v1,
// coopfs.events/v1, and coopfs.timeseries/v1 documents. The workload enables
// reboots: PolicyBase::Reboot drains a whole cache at once, historically the
// easiest place for iteration order to leak into directory holder order and
// from there into PickHolder's RNG-visible choices.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sweep.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

class CapacityDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig workload = SmallTestWorkloadConfig();
    workload.num_events = 30'000;
    // Reboots exercise the bulk cache-drain path (see file comment).
    workload.mean_reboots_per_client = 2.0;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  // One policy's full observable output (metrics + events + timeseries)
  // with the given index reserve hint, as one serialized blob.
  static std::string RunSerialized(PolicyKind kind, std::size_t index_reserve_blocks) {
    TraceRecorder recorder;
    SnapshotSampler sampler;
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = trace_->size() / 4;
    config.index_reserve_blocks = index_reserve_blocks;
    config.trace_recorder = &recorder;
    config.snapshot_sampler = &sampler;
    config.sample_interval = (trace_->back().timestamp - trace_->front().timestamp) / 7;
    Simulator simulator(config, trace_);
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) {
      return {};
    }
    TraceExportMetadata metadata;
    metadata.seed = config.seed;
    metadata.trace_events = trace_->size();
    metadata.workload = "small-test-reboots";
    std::string combined = SimulationResultToJson(*result);
    combined += '\n';
    combined += EventsToJsonl(recorder.runs(), metadata);
    combined += '\n';
    combined += TimeseriesToJsonl(sampler.runs(), metadata);
    return combined;
  }

  static Trace* trace_;
};

Trace* CapacityDeterminismTest::trace_ = nullptr;

TEST_F(CapacityDeterminismTest, ExportsAreByteIdenticalAcrossIndexCapacities) {
  for (PolicyKind kind : AllPolicyKinds()) {
    // Default hint (derived from cache sizes).
    const std::string baseline = RunSerialized(kind, 0);
    ASSERT_FALSE(baseline.empty());
    // Minimal hint: every index starts at the smallest table and grows
    // through many rehashes during replay.
    EXPECT_EQ(RunSerialized(kind, 1), baseline)
        << PolicyKindName(kind) << ": minimally-sized indexes diverged";
    // Over-reserved: no index ever rehashes.
    EXPECT_EQ(RunSerialized(kind, 1u << 18), baseline)
        << PolicyKindName(kind) << ": over-reserved indexes diverged";
  }
}

TEST_F(CapacityDeterminismTest, RepeatRunsAreByteIdentical) {
  const std::string first = RunSerialized(PolicyKind::kNChance, 0);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(RunSerialized(PolicyKind::kNChance, 0), first);
}

}  // namespace
}  // namespace coopfs
