// Shared helpers for hand-scripted simulation tests.
#ifndef COOPFS_TESTS_TESTING_SCRIPTED_H_
#define COOPFS_TESTS_TESTING_SCRIPTED_H_

#include "src/sim/config.h"
#include "src/trace/event.h"

namespace coopfs {

// Builds a time-ordered trace from terse Read/Write/Delete calls.
class TraceBuilder {
 public:
  TraceBuilder& Read(ClientId client, FileId file, BlockIndex block = 0) {
    return Push(client, EventType::kRead, file, block);
  }
  TraceBuilder& Write(ClientId client, FileId file, BlockIndex block = 0) {
    return Push(client, EventType::kWrite, file, block);
  }
  TraceBuilder& Delete(ClientId client, FileId file) {
    return Push(client, EventType::kDelete, file, 0);
  }
  TraceBuilder& Attr(ClientId client, FileId file) {
    return Push(client, EventType::kReadAttr, file, 0);
  }

  const Trace& Build() const { return trace_; }

 private:
  TraceBuilder& Push(ClientId client, EventType type, FileId file, BlockIndex block) {
    TraceEvent event;
    event.timestamp = clock_;
    clock_ += 1000;
    event.client = client;
    event.type = type;
    event.block = BlockId{file, block};
    trace_.push_back(event);
    return *this;
  }

  Micros clock_ = 0;
  Trace trace_;
};

// A configuration with block-denominated cache sizes and no warm-up, for
// scripted tests that assert exact outcomes.
inline SimulationConfig TinyConfig(std::size_t client_blocks, std::size_t server_blocks,
                                   std::uint32_t num_clients = 0) {
  SimulationConfig config;
  config.client_cache_blocks = client_blocks;
  config.server_cache_blocks = server_blocks;
  config.num_clients = num_clients;
  config.warmup_events = 0;
  return config;
}

}  // namespace coopfs

#endif  // COOPFS_TESTS_TESTING_SCRIPTED_H_
