// Registry-wide coverage: every registered experiment runs end to end on a
// tiny trace, produces non-empty output and a valid manifest + metrics
// export, and the registered set matches what EXPERIMENTS.md documents.
#include "src/exp/experiment.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/exp/context.h"
#include "src/exp/driver.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/run_manifest.h"

namespace coopfs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- GlobMatch ----

TEST(GlobMatchTest, LiteralAndStar) {
  EXPECT_TRUE(GlobMatch("fig04_read_time", "fig04_read_time"));
  EXPECT_FALSE(GlobMatch("fig04_read_time", "fig05_hit_rates"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("fig*", "fig04_read_time"));
  EXPECT_FALSE(GlobMatch("fig*", "sec25_other_algorithms"));
  EXPECT_TRUE(GlobMatch("*read*", "fig04_read_time"));
  EXPECT_TRUE(GlobMatch("*time", "fig04_read_time"));
  EXPECT_FALSE(GlobMatch("*times", "fig04_read_time"));
}

TEST(GlobMatchTest, QuestionMark) {
  EXPECT_TRUE(GlobMatch("fig0?_read_time", "fig04_read_time"));
  EXPECT_FALSE(GlobMatch("fig0?_read_time", "fig0_read_time"));
  EXPECT_TRUE(GlobMatch("???", "abc"));
  EXPECT_FALSE(GlobMatch("???", "ab"));
}

TEST(GlobMatchTest, CharacterClasses) {
  EXPECT_TRUE(GlobMatch("fig0[456]*", "fig04_read_time"));
  EXPECT_TRUE(GlobMatch("fig0[456]*", "fig05_hit_rates"));
  EXPECT_TRUE(GlobMatch("fig0[456]*", "fig06_server_load"));
  EXPECT_FALSE(GlobMatch("fig0[456]*", "fig07_fairness"));
  EXPECT_TRUE(GlobMatch("fig0[4-6]*", "fig05_hit_rates"));
  EXPECT_FALSE(GlobMatch("fig0[4-6]*", "fig09_central_fraction"));
  EXPECT_TRUE(GlobMatch("fig0[!456]*", "fig07_fairness"));
  EXPECT_FALSE(GlobMatch("fig0[!456]*", "fig04_read_time"));
  // An unterminated class can match nothing.
  EXPECT_FALSE(GlobMatch("fig0[45", "fig04_read_time"));
}

TEST(GlobMatchTest, StarBacktracks) {
  EXPECT_TRUE(GlobMatch("a*b*c", "axxbyybzc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "axxbyyb"));
  EXPECT_TRUE(GlobMatch("**", "x"));
}

// ---- registry ----

TEST(RegistryTest, BuiltinRegistrationIsIdempotent) {
  RegisterBuiltinExperiments();
  const std::size_t count = ExperimentRegistry::Instance().specs().size();
  RegisterBuiltinExperiments();
  EXPECT_EQ(ExperimentRegistry::Instance().specs().size(), count);
  EXPECT_EQ(count, 20u);
}

TEST(RegistryTest, FindAndMatchFollowRegistrationOrder) {
  RegisterBuiltinExperiments();
  const ExperimentRegistry& registry = ExperimentRegistry::Instance();
  const ExperimentSpec* fig04 = registry.Find("fig04_read_time");
  ASSERT_NE(fig04, nullptr);
  EXPECT_EQ(fig04->title, "Figure 4");
  EXPECT_EQ(registry.Find("no_such_experiment"), nullptr);

  const auto figures = registry.Match("fig0[456]*");
  ASSERT_EQ(figures.size(), 3u);
  EXPECT_EQ(figures[0]->name, "fig04_read_time");
  EXPECT_EQ(figures[1]->name, "fig05_hit_rates");
  EXPECT_EQ(figures[2]->name, "fig06_server_load");

  std::set<std::string> names;
  for (const ExperimentSpec& spec : registry.specs()) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_TRUE(spec.run != nullptr) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
  }
}

TEST(RegistryTest, RegisteredSetMatchesExperimentsDoc) {
  RegisterBuiltinExperiments();
  const std::string doc = ReadFileOrEmpty(std::string(COOPFS_SOURCE_DIR) + "/EXPERIMENTS.md");
  ASSERT_FALSE(doc.empty()) << "EXPERIMENTS.md not found under " << COOPFS_SOURCE_DIR;
  for (const ExperimentSpec& spec : ExperimentRegistry::Instance().specs()) {
    EXPECT_NE(doc.find("`" + spec.name + "`"), std::string::npos)
        << "EXPERIMENTS.md does not mention experiment `" << spec.name << "`";
  }
}

// ---- every experiment end to end on a tiny trace ----

TEST(RegistryTest, EveryExperimentRunsOnATinyTrace) {
  RegisterBuiltinExperiments();
  const std::string scratch = testing::TempDir() + "/registry_tiny";
  std::filesystem::remove_all(scratch);

  DriverOptions options;
  options.threads = 2;
  options.out_dir.clear();  // RunExperiments returns manifests unwritten.
  options.bench.events = 4'000;
  options.bench.auspex_events = 15'000;
  options.bench.json_out = scratch + "/metrics";

  const auto specs = ExperimentRegistry::Instance().Match("*");
  ASSERT_EQ(specs.size(), 20u);
  const auto outcomes = RunExperiments(specs, options);
  ASSERT_EQ(outcomes.size(), specs.size());

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ExperimentOutcome& outcome = outcomes[i];
    const std::string& name = specs[i]->name;
    ASSERT_TRUE(outcome.status.ok()) << name << ": " << outcome.status.ToString();
    // Non-empty tables: every experiment prints its banner and at least one
    // table row.
    EXPECT_GT(outcome.output.size(), 100u) << name;
    EXPECT_NE(outcome.output.find("==="), std::string::npos) << name;

    // The accumulated manifest renders as a valid coopfs.run/v1 document.
    const std::string manifest_json = RunManifestToJson(outcome.manifest);
    EXPECT_TRUE(ValidateRunManifestDocument(manifest_json).ok())
        << name << ": " << ValidateRunManifestDocument(manifest_json).ToString();
    EXPECT_EQ(outcome.manifest.experiment, name);

    // Each experiment wrote a valid coopfs.metrics/v1 document.
    const std::string metrics =
        ReadFileOrEmpty(scratch + "/metrics/" + name + ".metrics.json");
    ASSERT_FALSE(metrics.empty()) << name;
    EXPECT_TRUE(ValidateMetricsDocument(metrics).ok())
        << name << ": " << ValidateMetricsDocument(metrics).ToString();

    // Simulation-backed experiments recorded results and configs.
    if (specs[i]->trace != TraceKind::kNone) {
      EXPECT_GT(outcome.manifest.num_results, 0u) << name;
      EXPECT_FALSE(outcome.manifest.configs.empty()) << name;
      EXPECT_FALSE(outcome.manifest.workloads.empty() &&
                   specs[i]->trace != TraceKind::kCustom)
          << name;
    }
  }
}

// ---- driver determinism: thread count must not change the bytes ----

TEST(DriverDeterminismTest, ThreadCountDoesNotChangeTheBytes) {
  RegisterBuiltinExperiments();
  // A mix that exercises serial replays, a RunJobs sweep (fig11), and
  // multi-config loops (fig10) under the shared memoized trace.
  const auto specs = ExperimentRegistry::Instance().Match("fig1[01]*");
  ASSERT_EQ(specs.size(), 2u);

  DriverOptions serial;
  serial.threads = 1;
  serial.bench.events = 4'000;
  DriverOptions wide = serial;
  wide.threads = 8;

  const auto a = RunExperiments(specs, serial);
  const auto b = RunExperiments(specs, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok()) << a[i].status.ToString();
    ASSERT_TRUE(b[i].status.ok()) << b[i].status.ToString();
    EXPECT_EQ(a[i].output, b[i].output) << specs[i]->name;
    // Manifests agree on everything except wall time and thread count.
    RunManifest ma = a[i].manifest;
    RunManifest mb = b[i].manifest;
    ma.wall_time_s = mb.wall_time_s = 0.0;
    ma.threads = mb.threads = 1;
    EXPECT_EQ(RunManifestToJson(ma), RunManifestToJson(mb)) << specs[i]->name;
  }
}

}  // namespace
}  // namespace coopfs
