// Multi-thread determinism of the full export pipeline.
//
// sweep_determinism_test already pins the per-result metrics bytes; this
// suite pins the three *documents* an experiment run actually ships —
// "coopfs.metrics/v1", "coopfs.run/v1", and the "coopfs.timeseries/v1"
// JSONL — byte for byte across RunSimulationsParallel at 1, 2, 4, and 8
// threads. Each concurrent job attaches its own SnapshotSampler (they are
// not thread-safe by contract), and the manifest's informational
// `threads`/`wall_time_s` fields are pinned to fixed values, because the
// claim under test is that the *measured* content is identical no matter
// how the sweep was scheduled.
//
// This suite runs under the tsan preset next to SweepDeterminismTest: the
// per-job observer fan-out plus the per-worker arenas are exactly the state
// a racy sweep would corrupt first.
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sweep.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/run_manifest.h"
#include "src/obs/snapshot_sampler.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

constexpr std::uint64_t kSeed = 4242;
constexpr std::uint64_t kEvents = 15'000;

class SweepExportDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig workload = SmallTestWorkloadConfig(kSeed);
    workload.num_events = kEvents;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static SimulationConfig BaseConfig() {
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = kEvents / 4;
    config.sample_interval = 200'000'000;  // Simulated us: ~18 windows over the 1h trace.
    return config;
  }

  // One sweep at `threads`, every job with its own sampler; returns the
  // three serialized documents.
  struct Exports {
    std::string metrics;
    std::string manifest;
    std::string timeseries;
  };

  static Exports RunAndExport(std::size_t threads) {
    const SimulationConfig base = BaseConfig();
    const std::vector<PolicyKind> kinds = AllPolicyKinds();
    std::vector<std::unique_ptr<SnapshotSampler>> samplers;
    std::vector<SimulationJob> jobs;
    for (PolicyKind kind : kinds) {
      samplers.push_back(std::make_unique<SnapshotSampler>());
      SimulationJob job;
      job.config = base;
      job.config.snapshot_sampler = samplers.back().get();
      job.kind = kind;
      jobs.push_back(job);
    }

    const std::vector<Result<SimulationResult>> results =
        RunSimulationsParallel(*trace_, jobs, threads);
    EXPECT_EQ(results.size(), jobs.size());

    Exports exports;

    MetricsExporter exporter;
    exporter.SetConfig(base);
    for (const Result<SimulationResult>& result : results) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) {
        exporter.AddResult(*result);
      }
    }
    exports.metrics = exporter.ToJson();
    EXPECT_TRUE(ValidateMetricsDocument(exports.metrics).ok());

    RunManifest manifest;
    manifest.experiment = "sweep_export_determinism";
    manifest.title = "Sweep export determinism";
    manifest.description = "all-policy sweep for the thread-count byte test";
    manifest.workloads = {"small_test"};
    manifest.events = kEvents;
    manifest.seed = kSeed;
    manifest.sample_interval = base.sample_interval;
    manifest.configs = {base};
    manifest.num_results = results.size();
    // Informational scheduling fields pinned: the document must not encode
    // how wide the sweep that produced it happened to run.
    manifest.threads = 1;
    manifest.wall_time_s = 0.0;
    manifest.command = "sweep_export_determinism_test";
    exports.manifest = RunManifestToJson(manifest);
    EXPECT_TRUE(ValidateRunManifestDocument(exports.manifest).ok());

    std::vector<SnapshotRun> runs;
    for (const auto& sampler : samplers) {
      for (const SnapshotRun& run : sampler->runs()) {
        runs.push_back(run);
      }
    }
    EXPECT_FALSE(runs.empty());
    TraceExportMetadata metadata;
    metadata.seed = kSeed;
    metadata.trace_events = trace_->size();
    metadata.workload = "small_test";
    exports.timeseries = TimeseriesToJsonl(runs, metadata);
    EXPECT_TRUE(ValidateTimeseriesDocument(exports.timeseries).ok());

    return exports;
  }

  static Trace* trace_;
};

Trace* SweepExportDeterminismTest::trace_ = nullptr;

TEST_F(SweepExportDeterminismTest, SweepThreadCountDoesNotChangeTheBytes) {
  const Exports serial = RunAndExport(1);
  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_FALSE(serial.manifest.empty());
  ASSERT_FALSE(serial.timeseries.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Exports wide = RunAndExport(threads);
    EXPECT_EQ(wide.metrics, serial.metrics) << threads << " threads: metrics diverged";
    EXPECT_EQ(wide.manifest, serial.manifest) << threads << " threads: manifest diverged";
    EXPECT_EQ(wide.timeseries, serial.timeseries)
        << threads << " threads: timeseries diverged";
  }
}

TEST_F(SweepExportDeterminismTest, RepeatedWideRunsExportIdenticalBytes) {
  const Exports first = RunAndExport(4);
  const Exports second = RunAndExport(4);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.manifest, second.manifest);
  EXPECT_EQ(first.timeseries, second.timeseries);
}

}  // namespace
}  // namespace coopfs
