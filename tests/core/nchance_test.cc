#include "src/core/nchance.h"

#include <gtest/gtest.h>

#include "src/core/greedy.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

TEST(NChanceTest, NameReflectsParameter) {
  EXPECT_EQ(NChancePolicy(2).Name(), "N-Chance (n=2)");
  EXPECT_EQ(NChancePolicy(0).Name(), "N-Chance (n=0)");
}

TEST(NChanceTest, EvictedSingletRecirculatesToPeer) {
  // Two clients. Client 0 (capacity 1) reads f1 then f2; the evicted f1 is
  // the last cached copy, so it must be forwarded to client 1 with the full
  // recirculation count.
  TraceBuilder builder;
  builder.Read(1, 9, 0)  // Client 1 exists and caches something.
      .Read(0, 1, 0)
      .Read(0, 2, 0);
  Simulator simulator(TinyConfig(1, 8, /*num_clients=*/2), &builder.Build());
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const CacheEntry* entry = context.client_cache(1).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr) << "singlet should have recirculated to the peer";
    EXPECT_EQ(entry->recirculation_count, 2);
    EXPECT_TRUE(entry->singlet_flag);
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 1u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(NChanceTest, DuplicatedBlockIsDroppedNotForwarded) {
  // Both clients cache f1. Client 0's eviction of f1 finds a duplicate:
  // dropped, not recirculated (client 1 keeps the only remaining copy).
  TraceBuilder builder;
  builder.Read(1, 1, 0)   // Client 1 caches f1 (from disk).
      .Read(0, 1, 0)      // Client 0 caches f1 too (from server memory).
      .Read(0, 2, 0);     // Client 0 (capacity 1) evicts f1: duplicated.
  Simulator simulator(TinyConfig(1, 8, 2), &builder.Build());
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 1u);
    const CacheEntry* entry = context.client_cache(1).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->recirculating()) << "client 1's own copy must not recirculate";
  });
  ASSERT_TRUE(result.ok());
}

TEST(NChanceTest, FetchingRecirculatingSingletMovesIt) {
  // f1 recirculates to client 1; the server cache (capacity 1) has since
  // moved on, so client 0's re-read is forwarded to client 1 — which must
  // discard its cooperative copy while client 0 caches it normally.
  TraceBuilder builder;
  builder.Read(1, 9, 0)
      .Read(0, 1, 0)
      .Read(0, 2, 0)   // f1 recirculates to client 1. Server cache: {f2}.
      .Read(0, 1, 0);  // Remote hit at client 1.
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_FALSE(context.client_cache(1).Contains(BlockId{1, 0}))
        << "holder must discard a fetched recirculating singlet";
    const CacheEntry* entry = context.client_cache(0).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->recirculating()) << "requester caches it as normal data";
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 1u);
}

TEST(NChanceTest, LocalReferenceResetsRecirculation) {
  // Client 1 references the singlet recirculating in its own cache: the
  // copy becomes normal local data (count reset), no forwarding.
  TraceBuilder builder;
  builder.Read(1, 9, 0)
      .Read(0, 1, 0)
      .Read(0, 2, 0)   // f1 recirculates to client 1 (displacing f9).
      .Read(1, 1, 0);  // Client 1's local hit on the recirculating copy.
  Simulator simulator(TinyConfig(1, 8, 2), &builder.Build());
  NChancePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const CacheEntry* entry = context.client_cache(1).Find(BlockId{1, 0});
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->recirculation_count, 0);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kLocalMemory), 1u);
}

TEST(NChanceTest, ServerHitDemotesRecirculatingCopy) {
  // f1 recirculates to an idle client but is still in the big server cache;
  // client 0 re-reads it from server memory. The block is now duplicated,
  // so the holder's recirculating copy must be demoted to normal data.
  //
  // Client 2 pre-caches f2 so that client 0's final insertion evicts a
  // *duplicate* (dropped quietly) rather than recirculating anything into
  // the cache under inspection. The random forward target is client 1 or 2;
  // assert whenever it landed on the empty client 1.
  TraceBuilder builder;
  builder.Read(2, 2, 0)   // c2 caches f2; server caches f2.
      .Read(0, 1, 0)      // c0 caches f1; server caches f1.
      .Read(0, 2, 0)      // c0 evicts singlet f1 -> recirculates to 1 or 2.
      .Read(0, 1, 0);     // Server-memory hit on f1: duplicated again.
  SimulationConfig config = TinyConfig(1, 8, 3);
  bool verified = false;
  for (std::uint64_t seed = 0; seed < 16 && !verified; ++seed) {
    config.seed = seed;
    Simulator simulator(config, &builder.Build());
    NChancePolicy policy(2);
    const auto result = simulator.Run(policy, [&](SimContext& context) {
      const CacheEntry* entry = context.client_cache(1).Find(BlockId{1, 0});
      if (entry == nullptr) {
        return;  // This seed forwarded f1 to client 2 instead.
      }
      verified = true;
      EXPECT_FALSE(entry->recirculating());
      EXPECT_FALSE(entry->singlet_flag);
      const Status status = CheckCacheDirectoryConsistency(context);
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Level(*result, CacheLevel::kServerMemory), 2u);  // f2 and f1.
  }
  EXPECT_TRUE(verified);
}

TEST(NChanceTest, RipplePreventionDropsInsteadOfForwarding) {
  // Three clients, capacity 1 each. Client 2's cache holds its own singlet
  // f9. When f1 recirculates into client 2, the displaced f9 must be
  // dropped (receiving clients may not forward), not recirculated to
  // client 0 or 1.
  TraceBuilder builder;
  builder.Read(2, 9, 0).Read(0, 1, 0).Read(0, 2, 0);
  // Force determinism of the peer choice: with 3 clients the random peer of
  // client 0 is 1 or 2; run many seeds and only assert the invariant.
  SimulationConfig config = TinyConfig(1, 8, 3);
  bool saw_forward_to_2 = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    config.seed = seed;
    Simulator simulator(config, &builder.Build());
    NChancePolicy policy(2);
    const auto result = simulator.Run(policy, [&](SimContext& context) {
      if (context.client_cache(2).Contains(BlockId{1, 0})) {
        saw_forward_to_2 = true;
        // f9 was displaced from client 2: it must be gone everywhere
        // (a ripple would have pushed it into client 0 or 1).
        EXPECT_FALSE(context.client_cache(0).Contains(BlockId{9, 0}));
        EXPECT_FALSE(context.client_cache(1).Contains(BlockId{9, 0}));
        EXPECT_EQ(context.directory().HolderCount(BlockId{9, 0}), 0u);
      }
      EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
    });
    ASSERT_TRUE(result.ok());
  }
  EXPECT_TRUE(saw_forward_to_2) << "expected at least one seed to forward to client 2";
}

TEST(NChanceTest, ModifiedReplacementPrefersDuplicates) {
  // Client 2 (capacity 2) holds f9 (its own singlet, the LRU entry) and f8
  // (duplicated at client 1, the MRU entry). A recirculated block arriving
  // at client 2 must displace the *duplicated* f8 — plain LRU would have
  // discarded the singlet f9 (paper §2.4 modified replacement).
  TraceBuilder builder;
  builder.Read(1, 8, 0)   // Client 1 caches f8.
      .Read(2, 9, 0)      // Client 2 caches f9 (singlet).
      .Read(2, 8, 0)      // Client 2 caches f8 (duplicate), f8 is MRU.
      .Read(0, 1, 0)
      .Read(0, 2, 0)
      .Read(0, 3, 0);     // Client 0 (cap 2) evicts singlet f1 -> recirculates.
  SimulationConfig config = TinyConfig(2, 8, 3);
  // Client 1 capacity is shared; keep it simple: find a seed that forwards
  // f1 to client 2 and check the duplicate was chosen.
  bool verified = false;
  for (std::uint64_t seed = 0; seed < 16 && !verified; ++seed) {
    config.seed = seed;
    Simulator simulator(config, &builder.Build());
    NChancePolicy policy(2);
    const auto result = simulator.Run(policy, [&](SimContext& context) {
      if (!context.client_cache(2).Contains(BlockId{1, 0})) {
        return;  // Forwarded to client 1 under this seed.
      }
      verified = true;
      EXPECT_FALSE(context.client_cache(2).Contains(BlockId{8, 0}))
          << "the duplicated block must be the victim";
      EXPECT_TRUE(context.client_cache(2).Contains(BlockId{9, 0}))
          << "the singlet must survive";
    });
    ASSERT_TRUE(result.ok());
  }
  EXPECT_TRUE(verified);
}

TEST(NChanceTest, ZeroChanceEqualsGreedyOnScriptedTrace) {
  TraceBuilder builder;
  builder.Read(1, 9, 0).Read(0, 1, 0).Read(0, 2, 0).Read(0, 1, 0).Read(1, 2, 0);
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  GreedyPolicy greedy;
  NChancePolicy zero(0);
  const auto greedy_result = simulator.Run(greedy);
  const auto zero_result = simulator.Run(zero);
  ASSERT_TRUE(greedy_result.ok());
  ASSERT_TRUE(zero_result.ok());
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(greedy_result->level_counts.Get(level), zero_result->level_counts.Get(level));
  }
  EXPECT_EQ(greedy_result->server_load.TotalUnits(), zero_result->server_load.TotalUnits());
}

class NChanceGreedyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// Property (paper §2.4): "Greedy forwarding is simply the degenerate case of
// this algorithm with n = 0" — identical hit counts and server load on any
// workload.
TEST_P(NChanceGreedyEquivalence, ZeroChanceEqualsGreedy) {
  WorkloadConfig workload = SmallTestWorkloadConfig(GetParam());
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(TinyConfig(24, 48), &trace);
  GreedyPolicy greedy;
  NChancePolicy zero(0);
  const auto greedy_result = simulator.Run(greedy);
  const auto zero_result = simulator.Run(zero);
  ASSERT_TRUE(greedy_result.ok());
  ASSERT_TRUE(zero_result.ok());
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(greedy_result->level_counts.Get(level), zero_result->level_counts.Get(level))
        << "level " << level;
  }
  EXPECT_EQ(greedy_result->server_load.TotalUnits(), zero_result->server_load.TotalUnits());
  EXPECT_NEAR(greedy_result->AverageReadTime(), zero_result->AverageReadTime(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NChanceGreedyEquivalence,
                         ::testing::Values(2ull, 13ull, 77ull, 1001ull));

class NChanceInvariantProperty : public ::testing::TestWithParam<int> {};

// Property: after any workload, every recirculating or flag-marked copy
// really is the only client copy (checked inside the validator), and the
// directory matches the caches exactly.
TEST_P(NChanceInvariantProperty, MetadataStaysCoherent) {
  const int n = GetParam();
  WorkloadConfig workload = SmallTestWorkloadConfig(91);
  workload.num_events = 8000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(TinyConfig(16, 16), &trace);
  NChancePolicy policy(n);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(RecirculationCounts, NChanceInvariantProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 10));

}  // namespace
}  // namespace coopfs
