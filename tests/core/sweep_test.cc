#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(SweepTest, EmptyJobsGiveEmptyResults) {
  TraceBuilder builder;
  builder.Read(0, 1, 0);
  EXPECT_TRUE(RunSimulationsParallel(builder.Build(), {}).empty());
}

TEST(SweepTest, ResultsInJobOrder) {
  WorkloadConfig workload = SmallTestWorkloadConfig(5);
  workload.num_events = 3000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (std::size_t blocks : {4, 8, 16, 32}) {
    SimulationJob job;
    job.config = TinyConfig(blocks, 64);
    job.kind = PolicyKind::kBaseline;
    jobs.push_back(job);
  }
  const auto results = RunSimulationsParallel(trace, jobs, 4);
  ASSERT_EQ(results.size(), 4u);
  double last = 1e18;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Bigger caches help the baseline (tiny tolerance: the composed
    // client+server hierarchy is not a strict stack algorithm).
    EXPECT_LE(result->AverageReadTime(), last * 1.02);
    last = result->AverageReadTime();
  }
}

TEST(SweepTest, ParallelMatchesSerialExactly) {
  WorkloadConfig workload = SmallTestWorkloadConfig(15);
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (PolicyKind kind : AllPolicyKinds()) {
    SimulationJob job;
    job.config = TinyConfig(16, 32);
    job.kind = kind;
    jobs.push_back(job);
  }
  const auto serial = RunSimulationsParallel(trace, jobs, 1);
  const auto parallel = RunSimulationsParallel(trace, jobs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(serial[i]->policy_name, parallel[i]->policy_name);
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      EXPECT_EQ(serial[i]->level_counts.Get(level), parallel[i]->level_counts.Get(level))
          << serial[i]->policy_name << " level " << level;
    }
    EXPECT_EQ(serial[i]->server_load.TotalUnits(), parallel[i]->server_load.TotalUnits());
  }
}

TEST(SweepTest, FailedJobCarriesStatus) {
  const Trace empty;
  SimulationJob job;
  job.config = TinyConfig(4, 4);
  const auto results = RunSimulationsParallel(empty, {job}, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepTest, MoreThreadsThanJobsIsFine) {
  WorkloadConfig workload = SmallTestWorkloadConfig(25);
  workload.num_events = 2000;
  const Trace trace = GenerateWorkload(workload);
  SimulationJob job;
  job.config = TinyConfig(8, 16);
  job.kind = PolicyKind::kNChance;
  const auto results = RunSimulationsParallel(trace, {job}, 64);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

TEST(SweepCallbackTest, FiresOncePerJobWithMatchingResult) {
  WorkloadConfig workload = SmallTestWorkloadConfig(10);
  workload.num_events = 3000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (PolicyKind kind : AllPolicyKinds()) {
    SimulationJob job;
    job.config = TinyConfig(16, 32);
    job.kind = kind;
    jobs.push_back(job);
  }
  // Callback invocations are serialized, so plain containers need no lock.
  std::vector<std::size_t> seen;
  std::vector<std::string> names(jobs.size());
  const auto results = RunSimulationsParallel(
      trace, jobs, 8, [&](std::size_t index, const Result<SimulationResult>& result) {
        seen.push_back(index);
        ASSERT_TRUE(result.ok());
        names[index] = result->policy_name;
      });
  // Exactly one invocation per job, each with a distinct index.
  ASSERT_EQ(seen.size(), jobs.size());
  EXPECT_EQ(std::set<std::size_t>(seen.begin(), seen.end()).size(), jobs.size());
  // The callback saw the same result the job-ordered return value carries.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(names[i], results[i]->policy_name);
  }
}

TEST(SweepCallbackTest, ErrorStatusReachesCallbackAndResults) {
  WorkloadConfig workload = SmallTestWorkloadConfig(10);
  workload.num_events = 1000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs(3);
  for (SimulationJob& job : jobs) {
    job.config = TinyConfig(8, 16);
  }
  // Invalid: the workload has 6 clients, so capping the simulated client
  // count at 1 trips the event-range check mid-replay for this job only.
  jobs[1].config.num_clients = 1;
  std::size_t callback_errors = 0;
  std::size_t callback_calls = 0;
  const auto results = RunSimulationsParallel(
      trace, jobs, 2, [&](std::size_t index, const Result<SimulationResult>& result) {
        ++callback_calls;
        if (!result.ok()) {
          ++callback_errors;
          EXPECT_EQ(index, 1u);
        }
      });
  // One job failed; the other two still ran and the callback saw all three.
  EXPECT_EQ(callback_calls, 3u);
  EXPECT_EQ(callback_errors, 1u);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
}

TEST(SweepCallbackTest, InputOrderPreservedWithMoreThreadsThanJobs) {
  WorkloadConfig workload = SmallTestWorkloadConfig(8);
  workload.num_events = 2000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (std::size_t blocks : {4, 32, 8}) {
    SimulationJob job;
    job.config = TinyConfig(blocks, 64);
    job.kind = PolicyKind::kBaseline;
    jobs.push_back(job);
  }
  std::vector<std::size_t> completion_order;
  const auto wide = RunSimulationsParallel(
      trace, jobs, 16,
      [&](std::size_t index, const Result<SimulationResult>&) {
        completion_order.push_back(index);
      });
  const auto serial = RunSimulationsParallel(trace, jobs, 1);
  // Whatever order the workers finished in, the returned vector is in input
  // order and matches the serial run bit for bit on its counters.
  ASSERT_EQ(completion_order.size(), jobs.size());
  ASSERT_EQ(wide.size(), serial.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(wide[i].ok());
    ASSERT_TRUE(serial[i].ok());
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      EXPECT_EQ(wide[i]->level_counts.Get(level), serial[i]->level_counts.Get(level));
    }
    EXPECT_EQ(wide[i]->server_load.TotalUnits(), serial[i]->server_load.TotalUnits());
  }
}

}  // namespace
}  // namespace coopfs
