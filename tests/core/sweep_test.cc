#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(SweepTest, EmptyJobsGiveEmptyResults) {
  TraceBuilder builder;
  builder.Read(0, 1, 0);
  EXPECT_TRUE(RunSimulationsParallel(builder.Build(), {}).empty());
}

TEST(SweepTest, ResultsInJobOrder) {
  WorkloadConfig workload = SmallTestWorkloadConfig(5);
  workload.num_events = 3000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (std::size_t blocks : {4, 8, 16, 32}) {
    SimulationJob job;
    job.config = TinyConfig(blocks, 64);
    job.kind = PolicyKind::kBaseline;
    jobs.push_back(job);
  }
  const auto results = RunSimulationsParallel(trace, jobs, 4);
  ASSERT_EQ(results.size(), 4u);
  double last = 1e18;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Bigger caches help the baseline (tiny tolerance: the composed
    // client+server hierarchy is not a strict stack algorithm).
    EXPECT_LE(result->AverageReadTime(), last * 1.02);
    last = result->AverageReadTime();
  }
}

TEST(SweepTest, ParallelMatchesSerialExactly) {
  WorkloadConfig workload = SmallTestWorkloadConfig(15);
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  std::vector<SimulationJob> jobs;
  for (PolicyKind kind : AllPolicyKinds()) {
    SimulationJob job;
    job.config = TinyConfig(16, 32);
    job.kind = kind;
    jobs.push_back(job);
  }
  const auto serial = RunSimulationsParallel(trace, jobs, 1);
  const auto parallel = RunSimulationsParallel(trace, jobs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(serial[i]->policy_name, parallel[i]->policy_name);
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      EXPECT_EQ(serial[i]->level_counts.Get(level), parallel[i]->level_counts.Get(level))
          << serial[i]->policy_name << " level " << level;
    }
    EXPECT_EQ(serial[i]->server_load.TotalUnits(), parallel[i]->server_load.TotalUnits());
  }
}

TEST(SweepTest, FailedJobCarriesStatus) {
  const Trace empty;
  SimulationJob job;
  job.config = TinyConfig(4, 4);
  const auto results = RunSimulationsParallel(empty, {job}, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepTest, MoreThreadsThanJobsIsFine) {
  WorkloadConfig workload = SmallTestWorkloadConfig(25);
  workload.num_events = 2000;
  const Trace trace = GenerateWorkload(workload);
  SimulationJob job;
  job.config = TinyConfig(8, 16);
  job.kind = PolicyKind::kNChance;
  const auto results = RunSimulationsParallel(trace, {job}, 64);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

}  // namespace
}  // namespace coopfs
