// Bit-for-bit determinism of RunSimulationsParallel: for every policy, the
// serialized metrics must be byte-identical across thread counts (1, 2,
// hardware) and across repeated runs. The comparison goes through the
// coopfs.metrics/v1 serializer, whose shortest-round-trip double formatting
// makes equal values produce equal bytes — so a single string comparison
// covers every counter, latency, and derived rate at full precision.
//
// This test is also the TSan target in CI: the sweep's only shared state is
// the read-only trace, the atomic job index, and disjoint result slots, so a
// data-race report here means the parallel dispatch itself regressed.
#include "src/core/sweep.h"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics_exporter.h"
#include "src/trace/workload.h"

namespace coopfs {
namespace {

class SweepDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small Sprite-like trace: big enough that every policy forwards,
    // recirculates, and invalidates; small enough for sanitizer runs.
    WorkloadConfig workload = SmallTestWorkloadConfig();
    workload.num_events = 40'000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static std::vector<SimulationJob> AllPolicyJobs() {
    SimulationConfig config;
    config.WithClientCacheMiB(1).WithServerCacheMiB(4);
    config.warmup_events = trace_->size() / 4;
    std::vector<SimulationJob> jobs;
    for (PolicyKind kind : AllPolicyKinds()) {
      SimulationJob job;
      job.config = config;
      job.kind = kind;
      jobs.push_back(job);
    }
    return jobs;
  }

  // Runs the sweep and flattens every result into one serialized document.
  static std::string RunSerialized(const std::vector<SimulationJob>& jobs, std::size_t threads) {
    std::vector<Result<SimulationResult>> results =
        RunSimulationsParallel(*trace_, jobs, threads);
    EXPECT_EQ(results.size(), jobs.size());
    std::string combined;
    for (const Result<SimulationResult>& result : results) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (result.ok()) {
        combined += SimulationResultToJson(*result);
        combined += '\n';
      }
    }
    return combined;
  }

  static Trace* trace_;
};

Trace* SweepDeterminismTest::trace_ = nullptr;

TEST_F(SweepDeterminismTest, IdenticalAcrossThreadCounts) {
  const std::vector<SimulationJob> jobs = AllPolicyJobs();
  const std::string serial = RunSerialized(jobs, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunSerialized(jobs, 2), serial) << "2 threads diverged from serial";
  EXPECT_EQ(RunSerialized(jobs, 0), serial) << "hardware-concurrency run diverged from serial";
}

TEST_F(SweepDeterminismTest, IdenticalAcrossRepeatedRuns) {
  const std::vector<SimulationJob> jobs = AllPolicyJobs();
  EXPECT_EQ(RunSerialized(jobs, 2), RunSerialized(jobs, 2));
  EXPECT_EQ(RunSerialized(jobs, 0), RunSerialized(jobs, 0));
}

TEST_F(SweepDeterminismTest, ResultsStayInJobOrder) {
  const std::vector<SimulationJob> jobs = AllPolicyJobs();
  std::vector<Result<SimulationResult>> results = RunSimulationsParallel(*trace_, jobs, 0);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i]->policy_name, MakePolicy(jobs[i].kind, jobs[i].params)->Name())
        << "slot " << i;
  }
}

TEST_F(SweepDeterminismTest, CountersMatchSerialRun) {
  // The tracing counters ride along with the paper metrics: they must be
  // deterministic under parallel dispatch too.
  const std::vector<SimulationJob> jobs = AllPolicyJobs();
  std::vector<Result<SimulationResult>> serial = RunSimulationsParallel(*trace_, jobs, 1);
  std::vector<Result<SimulationResult>> parallel = RunSimulationsParallel(*trace_, jobs, 0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(serial[i]->counters, parallel[i]->counters)
        << serial[i]->policy_name << " counters diverged";
    EXPECT_GT(serial[i]->counters.events_replayed, 0u) << serial[i]->policy_name;
  }
}

}  // namespace
}  // namespace coopfs
