#include "src/core/weighted_lru.h"

#include <gtest/gtest.h>

#include "src/core/nchance.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(WeightedLruTest, Name) { EXPECT_EQ(WeightedLruPolicy().Name(), "Weighted LRU"); }

TEST(WeightedLruTest, EvictsLowValueDuplicateOverOldSinglet) {
  // Client 0 (capacity 2) holds the singlet f1 (older) and the duplicated
  // f2 (newer, also held by client 1). Plain LRU/N-Chance would pick f1 as
  // the victim; Weighted LRU must keep the singlet (disk-priced) and drop
  // the duplicate (network-priced), even though it is more recent.
  TraceBuilder builder;
  builder.Read(1, 2, 0)   // Client 1 caches f2.
      .Read(0, 1, 0)      // Client 0 caches singlet f1.
      .Read(0, 2, 0)      // Client 0 caches duplicate f2 (MRU).
      .Read(0, 3, 0);     // Insertion forces a weighted eviction.
  Simulator simulator(TinyConfig(2, 8, 2), &builder.Build());
  WeightedLruPolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{1, 0}))
        << "the singlet must survive the weighted eviction";
    EXPECT_FALSE(context.client_cache(0).Contains(BlockId{2, 0}))
        << "the duplicated block is the cheap victim";
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(WeightedLruTest, EvictedSingletStillRecirculates) {
  // When every candidate is a singlet, the weighted victim recirculates
  // exactly as under N-Chance.
  TraceBuilder builder;
  builder.Read(1, 9, 0).Read(0, 1, 0).Read(0, 2, 0);
  Simulator simulator(TinyConfig(1, 8, 2), &builder.Build());
  WeightedLruPolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.client_cache(1).Contains(BlockId{1, 0}))
        << "evicted singlet should recirculate to the peer";
  });
  ASSERT_TRUE(result.ok());
}

TEST(WeightedLruTest, ChargesGlobalStateQueries) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);  // One weighted eviction decision.
  Simulator simulator(TinyConfig(1, 8, 2), &builder.Build());
  WeightedLruPolicy weighted;
  const auto result = simulator.Run(weighted);
  ASSERT_TRUE(result.ok());
  // At least the eviction-decision query (2 messages) was charged.
  EXPECT_GE(result->server_load.Units(ServerLoadKind::kOther), 2u);
}

class WeightedLruProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property (paper §2.5/§4.5): Weighted LRU performs similarly to N-Chance
// but with higher server load (its global-state queries).
TEST_P(WeightedLruProperty, SimilarToNChanceWithMoreLoad) {
  WorkloadConfig workload = SmallTestWorkloadConfig(GetParam());
  workload.num_events = 12'000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(32, 16);
  config.warmup_events = 4000;
  Simulator simulator(config, &trace);
  NChancePolicy nchance(2);
  WeightedLruPolicy weighted(2);
  const auto nchance_result = simulator.Run(nchance);
  const auto weighted_result = simulator.Run(weighted);
  ASSERT_TRUE(nchance_result.ok());
  ASSERT_TRUE(weighted_result.ok());
  // Within 15% on response time.
  EXPECT_NEAR(weighted_result->AverageReadTime() / nchance_result->AverageReadTime(), 1.0, 0.15);
  EXPECT_GE(weighted_result->server_load.Units(ServerLoadKind::kOther),
            nchance_result->server_load.Units(ServerLoadKind::kOther));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedLruProperty, ::testing::Values(8ull, 88ull, 888ull));

// Consistency of metadata under weighted eviction.
TEST(WeightedLruTest, InvariantsHoldOnWorkload) {
  WorkloadConfig workload = SmallTestWorkloadConfig(101);
  workload.num_events = 8000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(TinyConfig(16, 16), &trace);
  WeightedLruPolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace coopfs
