#include "src/core/policy_factory.h"

#include <gtest/gtest.h>

namespace coopfs {
namespace {

TEST(PolicyFactoryTest, MakesEveryKind) {
  for (PolicyKind kind : AllPolicyKinds()) {
    const auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr) << PolicyKindName(kind);
    EXPECT_FALSE(policy->Name().empty());
  }
}

TEST(PolicyFactoryTest, ParamsAreApplied) {
  PolicyParams params;
  params.nchance_recirculation = 5;
  params.coordinated_fraction = 0.5;
  EXPECT_EQ(MakePolicy(PolicyKind::kNChance, params)->Name(), "N-Chance (n=5)");
  EXPECT_EQ(MakePolicy(PolicyKind::kCentralCoord, params)->Name(), "Central Coordination (50%)");
  EXPECT_EQ(MakePolicy(PolicyKind::kHashDistributed, params)->Name(), "Hash Distributed (50%)");
}

TEST(PolicyFactoryTest, ParseRoundTripsKindNames) {
  for (PolicyKind kind : AllPolicyKinds()) {
    const Result<PolicyKind> parsed = ParsePolicyKind(PolicyKindName(kind));
    ASSERT_TRUE(parsed.ok()) << PolicyKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(PolicyFactoryTest, ParseAliases) {
  EXPECT_EQ(*ParsePolicyKind("base"), PolicyKind::kBaseline);
  EXPECT_EQ(*ParsePolicyKind("n-chance"), PolicyKind::kNChance);
  EXPECT_EQ(*ParsePolicyKind("weighted-lru"), PolicyKind::kWeightedLru);
  EXPECT_EQ(*ParsePolicyKind("best-case"), PolicyKind::kBestCase);
}

TEST(PolicyFactoryTest, ParseRejectsUnknown) {
  EXPECT_EQ(ParsePolicyKind("frobnicate").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParsePolicyKind("").status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyFactoryTest, Figure4OrderMatchesPaper) {
  const std::vector<PolicyKind> kinds = Figure4PolicyKinds();
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds.front(), PolicyKind::kBaseline);
  EXPECT_EQ(kinds.back(), PolicyKind::kBestCase);
}

}  // namespace
}  // namespace coopfs
