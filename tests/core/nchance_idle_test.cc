#include "src/core/nchance_idle.h"

#include <gtest/gtest.h>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

TEST(NChanceIdleTest, NameAndFactory) {
  EXPECT_EQ(NChanceIdleAwarePolicy(2).Name(), "N-Chance idle-aware (n=2)");
  EXPECT_EQ(MakePolicy(PolicyKind::kNChanceIdle)->Name(), "N-Chance idle-aware (n=2)");
  EXPECT_EQ(*ParsePolicyKind("nchance-idle"), PolicyKind::kNChanceIdle);
}

TEST(NChanceIdleTest, ForwardsToLeastRecentlyActiveClient) {
  // Clients 1 and 2 both exist; client 2 was active recently, client 1 has
  // been idle longer. Client 0's evicted singlet must land on client 1.
  TraceBuilder builder;
  builder.Read(1, 8, 0)   // Client 1 active (early).
      .Read(2, 9, 0)      // Client 2 active (later).
      .Read(0, 1, 0)
      .Read(0, 2, 0);     // Client 0 (cap 1) evicts singlet f1.
  Simulator simulator(TinyConfig(1, 8, 3), &builder.Build());
  NChanceIdleAwarePolicy policy(2);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_TRUE(context.client_cache(1).Contains(BlockId{1, 0}))
        << "the singlet must go to the most idle peer (client 1)";
    EXPECT_FALSE(context.client_cache(2).Contains(BlockId{1, 0}));
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(NChanceIdleTest, TargetingIsDeterministic) {
  // Unlike random forwarding, idle targeting gives identical placements for
  // any simulation seed.
  WorkloadConfig workload = SmallTestWorkloadConfig(3);
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config_a = TinyConfig(8, 16);
  SimulationConfig config_b = config_a;
  config_a.seed = 1;
  config_b.seed = 999;
  Simulator sim_a(config_a, &trace);
  Simulator sim_b(config_b, &trace);
  NChanceIdleAwarePolicy a(2);
  NChanceIdleAwarePolicy b(2);
  const auto result_a = sim_a.Run(a);
  const auto result_b = sim_b.Run(b);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(result_a->level_counts.Get(level), result_b->level_counts.Get(level));
  }
}

class IdleVsRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The enhancement's purpose (§2.4): do not disturb active clients. Global
// response must stay comparable to random forwarding.
TEST_P(IdleVsRandomProperty, ComparableResponseTime) {
  WorkloadConfig workload = SmallTestWorkloadConfig(GetParam());
  workload.num_events = 12'000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(32, 32);
  config.warmup_events = 4000;
  Simulator simulator(config, &trace);
  NChancePolicy random_forwarding(2);
  NChanceIdleAwarePolicy idle_forwarding(2);
  const auto random_result = simulator.Run(random_forwarding);
  const auto idle_result = simulator.Run(idle_forwarding);
  ASSERT_TRUE(random_result.ok());
  ASSERT_TRUE(idle_result.ok());
  EXPECT_NEAR(idle_result->AverageReadTime() / random_result->AverageReadTime(), 1.0, 0.10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdleVsRandomProperty, ::testing::Values(5ull, 50ull, 500ull));

}  // namespace
}  // namespace coopfs
