#include "src/core/central_coord.h"

#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

TEST(CentralCoordTest, SplitsClientCache) {
  CentralCoordPolicy policy(0.8);
  SimulationConfig config = TinyConfig(10, 4);
  EXPECT_EQ(policy.ClientCacheBlocks(config), 2u);  // 20% locally managed.
  CentralCoordPolicy half(0.5);
  EXPECT_EQ(half.ClientCacheBlocks(config), 5u);
  CentralCoordPolicy none(0.0);
  EXPECT_EQ(none.ClientCacheBlocks(config), 10u);
  CentralCoordPolicy all(1.0);
  EXPECT_EQ(all.ClientCacheBlocks(config), 0u);
}

TEST(CentralCoordTest, NameIncludesFraction) {
  EXPECT_EQ(CentralCoordPolicy(0.8).Name(), "Central Coordination (80%)");
}

TEST(CentralCoordTest, ServerEvictionFeedsGlobalCache) {
  // Server capacity 1: fetching f2 evicts f1 into the global distributed
  // cache; a later read of f1 by client 1 is a remote-client hit.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(10, 1, 2), &builder.Build());
  CentralCoordPolicy policy(0.8);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 1u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 2u);
  // Forwarded global hit: 3 hops = 1250 us.
  EXPECT_NEAR(result->level_time_us[static_cast<std::size_t>(CacheLevel::kRemoteClient)],
              1250.0, 1e-9);
}

TEST(CentralCoordTest, GlobalCacheHitRenewsEntry) {
  // Local section 1 block, server cache 1 block, global cache 2 blocks
  // (2 clients x 1 coordinated block at fraction 0.5). The global cache
  // fills with [f2, f1]; the read of f1 renews it, so the next overflow
  // evicts f2 — f1 survives to serve a second global hit while f2 must be
  // re-fetched from disk.
  TraceBuilder builder;
  builder.Read(0, 1, 0)   // Disk. Server {f1}.
      .Read(0, 2, 0)      // Disk. Global [f1].
      .Read(0, 3, 0)      // Disk. Global [f2, f1].
      .Read(0, 1, 0)      // Global hit on f1: renewed -> [f1, f2].
      .Read(0, 4, 0)      // Disk. Global [f3, f1, f2] -> evict f2.
      .Read(0, 1, 0)      // Global hit: f1 survived thanks to the renewal.
      .Read(0, 2, 0);     // Disk: f2 was the LRU victim.
  Simulator simulator(TinyConfig(2, 1, 2), &builder.Build());
  CentralCoordPolicy policy(0.5);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 2u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 5u);
}

TEST(CentralCoordTest, WriteInvalidatesGlobalCopy) {
  TraceBuilder builder;
  builder.Read(0, 1, 0)    // Disk; server = {f1}.
      .Read(0, 2, 0)       // Disk; server = {f2}; global gains stale f1.
      .Write(1, 1, 0);     // Must purge the stale global f1.
  Simulator simulator(TinyConfig(10, 1, 2), &builder.Build());
  CentralCoordPolicy policy(0.8);
  const auto result = simulator.Run(policy, [&policy](SimContext& context) {
    EXPECT_FALSE(policy.GlobalCacheContains(BlockId{1, 0}))
        << "stale globally managed copy must be invalidated by the write";
    // The fresh copy went write-through into the server cache, displacing
    // f2 into the global cache.
    EXPECT_TRUE(context.server_cache().Contains(BlockId{1, 0}));
    EXPECT_TRUE(policy.GlobalCacheContains(BlockId{2, 0}));
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(CentralCoordTest, DeletePurgesGlobalCopy) {
  TraceBuilder builder;
  builder.Read(0, 1, 0)
      .Read(0, 2, 0)   // Global cache now holds f1.
      .Delete(1, 1)
      .Read(0, 1, 0);  // Must come from disk, not the global cache.
  Simulator simulator(TinyConfig(10, 1, 2), &builder.Build());
  CentralCoordPolicy policy(0.8);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 3u);
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
}

TEST(CentralCoordTest, ZeroLocalFractionStillServesReads) {
  // 100% coordinated: clients have no local sections at all.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(4, 2, 2), &builder.Build());
  CentralCoordPolicy policy(1.0);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kLocalMemory), 0u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerMemory), 1u);  // Second read.
}

TEST(BestCaseTest, DoublesClientMemory) {
  BestCasePolicy policy;
  SimulationConfig config = TinyConfig(10, 4);
  // Locally managed half is a full-size private cache.
  EXPECT_EQ(policy.ClientCacheBlocks(config), 10u);
  EXPECT_EQ(policy.Name(), "Best Case");
}

TEST(BestCaseTest, LocalHitsMatchBaselineGreedyManagement) {
  // The best case's local sections are managed exactly like the baseline's
  // full-size caches, so local hit counts must match the baseline's.
  WorkloadConfig workload = SmallTestWorkloadConfig(31);
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(TinyConfig(16, 8), &trace);
  BestCasePolicy best;
  const auto best_result = simulator.Run(best);
  ASSERT_TRUE(best_result.ok());

  BaselinePolicy baseline;
  const auto base_result = simulator.Run(baseline);
  ASSERT_TRUE(base_result.ok());
  EXPECT_EQ(Level(*best_result, CacheLevel::kLocalMemory),
            Level(*base_result, CacheLevel::kLocalMemory));
}

class CentralFractionProperty : public ::testing::TestWithParam<double> {};

// Property: capacities always partition the configured cache exactly, and
// runs stay internally consistent for any coordinated fraction.
TEST_P(CentralFractionProperty, PartitionIsExactAndRunsAreConsistent) {
  const double fraction = GetParam();
  CentralCoordPolicy policy(fraction);
  SimulationConfig config = TinyConfig(20, 8);
  const std::size_t local = policy.ClientCacheBlocks(config);
  EXPECT_LE(local, 20u);

  WorkloadConfig workload = SmallTestWorkloadConfig(47);
  workload.num_events = 4000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(config, &trace);
  const auto result = simulator.Run(policy, [](SimContext& context) {
    const Status status = CheckCacheDirectoryConsistency(context);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fractions, CentralFractionProperty,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace coopfs
