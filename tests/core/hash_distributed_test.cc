#include "src/core/hash_distributed.h"

#include <gtest/gtest.h>

#include "src/core/central_coord.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

TEST(HashDistributedTest, SplitsClientCacheLikeCentral) {
  HashDistributedPolicy policy(0.8);
  SimulationConfig config = TinyConfig(10, 4);
  EXPECT_EQ(policy.ClientCacheBlocks(config), 2u);
  EXPECT_EQ(policy.Name(), "Hash Distributed (80%)");
}

TEST(HashDistributedTest, ServerEvictionLandsInHashPartition) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0);  // Server cap 1: f1 drops to its partition.
  Simulator simulator(TinyConfig(10, 1, 3), &builder.Build());
  HashDistributedPolicy policy(0.8);
  const auto result = simulator.Run(policy, [&policy](SimContext&) {
    EXPECT_TRUE(policy.PartitionContains(BlockId{1, 0}));
    EXPECT_FALSE(policy.PartitionContains(BlockId{2, 0}));  // Still at server.
  });
  ASSERT_TRUE(result.ok());
}

TEST(HashDistributedTest, PartitionHitBypassesServer) {
  TraceBuilder builder;
  builder.Read(0, 1, 0)
      .Read(0, 2, 0)    // f1 now in its hash partition; server = {f2}.
      .Read(1, 1, 0);   // Served by the partition, no server involvement.
  Simulator simulator(TinyConfig(10, 1, 3), &builder.Build());
  HashDistributedPolicy policy(0.8);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  // The partition hit is either a remote-client hit (target != requester)
  // or a free local hit (target == requester); never disk.
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 2u);
  // Either way the server did no forwarding work for it.
  EXPECT_EQ(result->server_load.Units(ServerLoadKind::kHitRemoteClient), 0u);
}

TEST(HashDistributedTest, SelfTargetHitCostsNothing) {
  // Force the self-target case: with one client every block hashes to it.
  TraceBuilder builder;
  builder.Read(0, 1, 0)
      .Read(0, 2, 0)    // f1 drops into client 0's own partition.
      .Read(0, 1, 0);   // Self-partition hit: local-level, zero hops.
  Simulator simulator(TinyConfig(10, 1, 1), &builder.Build());
  HashDistributedPolicy policy(0.8);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kLocalMemory), 1u);
  EXPECT_NEAR(result->level_time_us[static_cast<std::size_t>(CacheLevel::kLocalMemory)], 250.0,
              1e-9);
}

TEST(HashDistributedTest, PartitionMissForwardsToServerWithExtraHop) {
  // Two clients; pick a block whose hash target is the *other* client so
  // the miss path is requester -> hash client -> server -> requester.
  HashDistributedPolicy probe(0.8);
  // Find a file id whose block hashes to client 1 out of 2.
  FileId file = 1;
  while (std::hash<BlockId>{}(BlockId{file, 0}) % 2 != 1) {
    ++file;
  }
  TraceBuilder builder;
  builder.Read(0, file, 0);  // Cold miss: partition miss -> server -> disk.
  Simulator simulator(TinyConfig(10, 4, 2), &builder.Build());
  const auto result = simulator.Run(probe);
  ASSERT_TRUE(result.ok());
  // Disk with one extra hop: 250 + 400 + 3*200 + 14800 = 16050.
  EXPECT_NEAR(result->level_time_us[static_cast<std::size_t>(CacheLevel::kServerDisk)], 16'050.0,
              1e-9);
}

TEST(HashDistributedTest, WriteInvalidatesPartitionCopy) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Write(1, 1, 0);
  Simulator simulator(TinyConfig(10, 1, 3), &builder.Build());
  HashDistributedPolicy policy(0.8);
  const auto result = simulator.Run(policy, [&policy](SimContext&) {
    EXPECT_FALSE(policy.PartitionContains(BlockId{1, 0}));
  });
  ASSERT_TRUE(result.ok());
}

class HashVsCentralProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property (paper §2.5): Hash-Distributed hit rates are close to Centrally
// Coordinated ones while its server load is lower.
TEST_P(HashVsCentralProperty, SimilarHitsLowerLoad) {
  WorkloadConfig workload = SmallTestWorkloadConfig(GetParam());
  workload.num_events = 12'000;
  const Trace trace = GenerateWorkload(workload);
  SimulationConfig config = TinyConfig(32, 16);
  config.warmup_events = 4000;
  Simulator simulator(config, &trace);
  CentralCoordPolicy central(0.8);
  HashDistributedPolicy hash(0.8);
  const auto central_result = simulator.Run(central);
  const auto hash_result = simulator.Run(hash);
  ASSERT_TRUE(central_result.ok());
  ASSERT_TRUE(hash_result.ok());
  // "Nearly identical hit rates": disk rates within 3 percentage points.
  EXPECT_NEAR(hash_result->DiskRate(), central_result->DiskRate(), 0.03);
  // "Significantly reduces server load".
  EXPECT_LT(static_cast<double>(hash_result->server_load.TotalUnits()),
            static_cast<double>(central_result->server_load.TotalUnits()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashVsCentralProperty, ::testing::Values(6ull, 66ull, 666ull));

}  // namespace
}  // namespace coopfs
