// Randomized stress coverage for RunSimulationsParallel.
//
// The sweep's rewrite (per-worker arenas, padded result slots, lock-free
// completion ring) moved failure modes from "slow" to "subtle": a
// mis-published slot or a dropped ring entry shows up as a wrong result
// index, a lost callback, or a hang. This suite drives randomized job mixes
// — varying cache sizes, all policies, and deliberately failing jobs
// interleaved at random positions — across thread widths from serial to
// more-threads-than-jobs, and asserts the full contract every time:
//
//   * results come back in submission order, one per job;
//   * failing jobs carry their status without disturbing neighbors;
//   * the callback fires exactly once per job, on the calling thread, in
//     submission order, with the same result the return vector carries.
//
// The asan/tsan presets run this suite; the arena-backed context makes any
// cross-job memory reuse bug an immediate sanitizer report.
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/sweep.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

class SweepStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig workload = SmallTestWorkloadConfig(77);
    workload.num_events = 4000;
    trace_ = new Trace(GenerateWorkload(workload));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  // A randomized mix of valid jobs (random policy, random cache geometry)
  // and failing jobs. A failing job caps num_clients at 1 against the
  // multi-client workload, which trips the simulator's event-range check
  // mid-replay — a real mid-run failure, not a constructor rejection.
  static std::vector<SimulationJob> RandomJobs(Rng& rng, std::size_t count,
                                               std::set<std::size_t>* failing) {
    const std::vector<PolicyKind> kinds = AllPolicyKinds();
    std::vector<SimulationJob> jobs;
    for (std::size_t i = 0; i < count; ++i) {
      SimulationJob job;
      job.config = TinyConfig(4 + rng.Next() % 60, 16 + rng.Next() % 112);
      job.kind = kinds[rng.Next() % kinds.size()];
      if (rng.Next() % 4 == 0) {
        job.config.num_clients = 1;
        failing->insert(i);
      }
      jobs.push_back(job);
    }
    return jobs;
  }

  static Trace* trace_;
};

Trace* SweepStressTest::trace_ = nullptr;

TEST_F(SweepStressTest, RandomMixesAcrossThreadWidths) {
  Rng rng(20260809);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}, std::size_t{16}}) {
    std::set<std::size_t> failing;
    const std::vector<SimulationJob> jobs = RandomJobs(rng, 24, &failing);
    const auto results = RunSimulationsParallel(*trace_, jobs, threads);
    ASSERT_EQ(results.size(), jobs.size()) << threads << " threads";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (failing.count(i) != 0) {
        EXPECT_FALSE(results[i].ok()) << threads << " threads, job " << i;
        EXPECT_EQ(results[i].status().code(), StatusCode::kInvalidArgument)
            << threads << " threads, job " << i;
      } else {
        ASSERT_TRUE(results[i].ok())
            << threads << " threads, job " << i << ": "
            << results[i].status().ToString();
        EXPECT_EQ(results[i]->policy_name,
                  MakePolicy(jobs[i].kind, jobs[i].params)->Name())
            << threads << " threads, job " << i;
      }
    }
  }
}

TEST_F(SweepStressTest, ParallelMixMatchesSerialReference) {
  Rng rng(99);
  std::set<std::size_t> failing;
  const std::vector<SimulationJob> jobs = RandomJobs(rng, 20, &failing);
  const auto serial = RunSimulationsParallel(*trace_, jobs, 1);
  for (std::size_t threads : {std::size_t{4}, std::size_t{16}}) {
    const auto parallel = RunSimulationsParallel(*trace_, jobs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].ok(), parallel[i].ok()) << "job " << i;
      if (!serial[i].ok()) {
        EXPECT_EQ(serial[i].status().code(), parallel[i].status().code());
        continue;
      }
      EXPECT_EQ(serial[i]->policy_name, parallel[i]->policy_name);
      for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
        EXPECT_EQ(serial[i]->level_counts.Get(level),
                  parallel[i]->level_counts.Get(level))
            << "job " << i << " level " << level;
      }
      EXPECT_EQ(serial[i]->server_load.TotalUnits(),
                parallel[i]->server_load.TotalUnits())
          << "job " << i;
    }
  }
}

TEST_F(SweepStressTest, CallbacksFireInSubmissionOrderOnTheCallingThread) {
  Rng rng(1234);
  const std::thread::id caller = std::this_thread::get_id();
  for (int round = 0; round < 6; ++round) {
    std::set<std::size_t> failing;
    const std::size_t count = 5 + rng.Next() % 28;
    const std::size_t threads = 1 + rng.Next() % 12;
    const std::vector<SimulationJob> jobs = RandomJobs(rng, count, &failing);
    std::vector<std::size_t> order;
    std::vector<bool> ok_seen(jobs.size(), false);
    const auto results = RunSimulationsParallel(
        *trace_, jobs, threads,
        [&](std::size_t index, const Result<SimulationResult>& result) {
          EXPECT_EQ(std::this_thread::get_id(), caller);
          order.push_back(index);
          ok_seen[index] = result.ok();
        });
    // Exactly one callback per job, delivered 0, 1, 2, ... regardless of
    // which worker finished first.
    ASSERT_EQ(order.size(), jobs.size()) << "round " << round;
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i) << "round " << round << " (submission order broken)";
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(ok_seen[i], results[i].ok()) << "round " << round << " job " << i;
      EXPECT_EQ(results[i].ok(), failing.count(i) == 0)
          << "round " << round << " job " << i;
    }
  }
}

TEST_F(SweepStressTest, AllJobsFailingStillCompletes) {
  std::vector<SimulationJob> jobs(8);
  for (SimulationJob& job : jobs) {
    job.config = TinyConfig(8, 16);
    job.config.num_clients = 1;  // Every job trips the event-range check.
  }
  std::vector<std::size_t> order;
  const auto results = RunSimulationsParallel(
      *trace_, jobs, 4,
      [&](std::size_t index, const Result<SimulationResult>& result) {
        EXPECT_FALSE(result.ok());
        order.push_back(index);
      });
  ASSERT_EQ(results.size(), jobs.size());
  ASSERT_EQ(order.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_FALSE(results[i].ok());
    EXPECT_EQ(results[i].status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace coopfs
