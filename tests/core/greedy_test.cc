#include "src/core/greedy.h"

#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

TEST(GreedyTest, ForwardsToCachingClientWhenServerMisses) {
  // Server cache capacity 1: client 0's fetch of f2 evicts f1 from the
  // server, so client 1's read of f1 can only be satisfied by client 0.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(4, 1), &builder.Build());
  GreedyPolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    // Both clients now hold f1:b0.
    EXPECT_TRUE(context.client_cache(0).Contains(BlockId{1, 0}));
    EXPECT_TRUE(context.client_cache(1).Contains(BlockId{1, 0}));
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 2u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 1u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 2u);
  // Forwarded hit: 3 hops = 1250 us on ATM.
  EXPECT_NEAR(result->level_time_us[static_cast<std::size_t>(CacheLevel::kRemoteClient)],
              1250.0, 1e-9);
  // Server load for the forward: receive + forward = 2 units.
  EXPECT_EQ(result->server_load.Units(ServerLoadKind::kHitRemoteClient), 2u);
}

TEST(GreedyTest, PrefersServerMemoryOverForwarding) {
  // f1 still in the big server cache: client 1 reads from server memory
  // even though client 0 caches it (paper: server checked first).
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(4, 8), &builder.Build());
  GreedyPolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kServerMemory), 1u);
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
}

TEST(GreedyTest, EvictionUpdatesDirectory) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 3, 0);  // Capacity 2.
  Simulator simulator(TinyConfig(2, 8), &builder.Build());
  GreedyPolicy policy;
  const auto result = simulator.Run(policy, [](SimContext& context) {
    EXPECT_EQ(context.directory().HolderCount(BlockId{1, 0}), 0u);
    EXPECT_TRUE(CheckCacheDirectoryConsistency(context).ok());
  });
  ASSERT_TRUE(result.ok());
}

TEST(GreedyTest, NoForwardingFromSelf) {
  // A client never forwards to itself: with one client and a cold server,
  // every miss goes to disk.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 3, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(2, 1), &builder.Build());
  GreedyPolicy policy;
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
}

class GreedyEquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: with a single client, Greedy degenerates to the baseline
// (no peer can serve forwarded requests).
TEST_P(GreedyEquivalenceProperty, SingleClientGreedyEqualsBaseline) {
  WorkloadConfig config = SmallTestWorkloadConfig(GetParam());
  config.num_clients = 1;
  config.num_events = 4000;
  const Trace trace = GenerateWorkload(config);
  Simulator simulator(TinyConfig(32, 64), &trace);
  BaselinePolicy baseline;
  GreedyPolicy greedy;
  const auto base_result = simulator.Run(baseline);
  const auto greedy_result = simulator.Run(greedy);
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(greedy_result.ok());
  for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
    EXPECT_EQ(base_result->level_counts.Get(level), greedy_result->level_counts.Get(level))
        << "level " << level;
  }
  EXPECT_EQ(base_result->server_load.TotalUnits(), greedy_result->server_load.TotalUnits());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyEquivalenceProperty, ::testing::Values(1ull, 7ull, 99ull));

class GreedyDominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property (paper §4.2.2): Greedy converts disk accesses into remote hits.
// (Not exactly monotone in theory — forwarded hits bypass the server cache,
// so its contents drift from the baseline's — but on cache-pressured
// workloads greedy must not be meaningfully worse.)
TEST_P(GreedyDominanceProperty, GreedyNeverIncreasesDiskRate) {
  WorkloadConfig config = SmallTestWorkloadConfig(GetParam());
  config.num_events = 6000;
  const Trace trace = GenerateWorkload(config);
  Simulator simulator(TinyConfig(16, 32), &trace);
  BaselinePolicy baseline;
  GreedyPolicy greedy;
  const auto base_result = simulator.Run(baseline);
  const auto greedy_result = simulator.Run(greedy);
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(greedy_result.ok());
  EXPECT_LE(greedy_result->DiskRate(), base_result->DiskRate() + 0.02);
  // Local behaviour is untouched by greedy forwarding.
  EXPECT_EQ(greedy_result->level_counts.Get(0), base_result->level_counts.Get(0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyDominanceProperty,
                         ::testing::Values(3ull, 21ull, 555ull, 2024ull));

}  // namespace
}  // namespace coopfs
