#include "src/core/direct_coop.h"

#include <gtest/gtest.h>

#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/trace/workload.h"
#include "tests/testing/scripted.h"

namespace coopfs {
namespace {

std::uint64_t Level(const SimulationResult& result, CacheLevel level) {
  return result.level_counts.Get(static_cast<std::size_t>(level));
}

TEST(DirectCoopTest, EvictionsSpillIntoPrivateRemoteCache) {
  // Capacity 1 local + 1 private remote. f1 spills on the second read and
  // is recovered from the remote cache (2 hops = 1050 us) on the third.
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 1, 0);
  // Server cache capacity 1 so the spilled f1 is not in server memory when
  // re-read (f2 displaced it).
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  DirectCoopPolicy policy(/*remote_cache_blocks=*/1);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 1u);
  EXPECT_NEAR(result->level_time_us[static_cast<std::size_t>(CacheLevel::kRemoteClient)],
              1050.0, 1e-9);
  // Private remote hits never touch the server.
  EXPECT_EQ(result->server_load.Units(ServerLoadKind::kHitRemoteClient), 0u);
}

TEST(DirectCoopTest, RemoteHitMigratesBlockBackToLocal) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(0, 1, 0).Read(0, 1, 0);
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  DirectCoopPolicy policy(1);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  // Fourth read: f1 migrated back into the local cache on the third.
  EXPECT_EQ(Level(*result, CacheLevel::kLocalMemory), 1u);
}

TEST(DirectCoopTest, OtherClientsCannotUseThePrivateCache) {
  // Client 0 spills f1 into its private remote cache; the server cache has
  // moved on. Client 1's read of f1 must go to disk — Direct Client
  // Cooperation gives no access to other clients' remote caches (§2.1).
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Read(1, 1, 0);
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  DirectCoopPolicy policy(1);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 3u);
}

TEST(DirectCoopTest, WriteInvalidatesSpilledCopies) {
  TraceBuilder builder;
  builder.Read(0, 1, 0)
      .Read(0, 2, 0)    // f1 spilled to client 0's private remote cache.
      .Write(1, 1, 0)   // Stale spilled copy must die.
      .Read(0, 3, 0)    // Push f2 out of the server cache... (server cap 1:
                        // the write already replaced it). Keep pressure on.
      .Read(0, 1, 0);   // Must not be served by the stale remote copy.
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  DirectCoopPolicy policy(4);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  // The final read: server cache holds f3 (last fetch), so f1 comes from
  // disk — never from the invalidated remote copy.
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
}

TEST(DirectCoopTest, DeletePurgesSpilledCopies) {
  TraceBuilder builder;
  builder.Read(0, 1, 0).Read(0, 2, 0).Delete(1, 1).Read(0, 1, 0);
  Simulator simulator(TinyConfig(1, 1, 2), &builder.Build());
  DirectCoopPolicy policy(4);
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 0u);
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 3u);
}

TEST(DirectCoopTest, DefaultRemoteCacheEqualsLocalSize) {
  // With remote_cache_blocks = 0 the private cache matches the local cache,
  // "effectively doubling" it (paper §4.1): a working set of twice the
  // local capacity stays fully in (local + remote) memory.
  TraceBuilder builder;
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t f = 1; f <= 4; ++f) {
      builder.Read(0, f, 0);
    }
  }
  Simulator simulator(TinyConfig(2, 1, 2), &builder.Build());
  DirectCoopPolicy policy;  // Default: remote = local = 2 blocks.
  const auto result = simulator.Run(policy);
  ASSERT_TRUE(result.ok());
  // Rounds 2-3 (8 reads) are all local or private-remote hits.
  EXPECT_EQ(Level(*result, CacheLevel::kServerDisk), 4u);
  EXPECT_EQ(Level(*result, CacheLevel::kRemoteClient), 8u);
}

class DirectDominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: Direct Cooperation's local hit counts match the baseline's (the
// local cache is managed identically; the remote cache only catches what
// would otherwise leave).
TEST_P(DirectDominanceProperty, LocalBehaviourMatchesBaseline) {
  WorkloadConfig workload = SmallTestWorkloadConfig(GetParam());
  workload.num_events = 5000;
  const Trace trace = GenerateWorkload(workload);
  Simulator simulator(TinyConfig(16, 32), &trace);
  BaselinePolicy baseline;
  DirectCoopPolicy direct(16);
  const auto base_result = simulator.Run(baseline);
  const auto direct_result = simulator.Run(direct);
  ASSERT_TRUE(base_result.ok());
  ASSERT_TRUE(direct_result.ok());
  EXPECT_EQ(base_result->level_counts.Get(0), direct_result->level_counts.Get(0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectDominanceProperty, ::testing::Values(4ull, 44ull, 444ull));

}  // namespace
}  // namespace coopfs
