#include "src/sim/policy.h"

#include <vector>

#include "src/common/profiler.h"

namespace coopfs {

void PolicyBase::CacheLocally(ClientId client, BlockId block) {
  BlockCache& cache = ctx().client_cache(client);
  if (!cache.CanInsert()) {
    return;
  }
  if (CacheEntry* existing = cache.Touch(block); existing != nullptr) {
    existing->last_ref = ctx().now();
    return;
  }
  // The miss request that fetched this block already updated the server's
  // directory (the paper's piggybacked update, §2.4), so the new holder is
  // registered *before* eviction runs: is-singlet queries issued while
  // making space must see the incoming copy.
  ctx().directory().AddHolder(block, client);
  if (cache.Full()) {
    COOPFS_PROFILE_SCOPE("policy/evict");
    while (cache.Full()) {
      EvictForInsert(client);
    }
  }
  cache.Insert(block).last_ref = ctx().now();
}

void PolicyBase::EvictForInsert(ClientId client) {
  BlockCache& cache = ctx().client_cache(client);
  CacheEntry* victim = cache.Lru();
  if (victim == nullptr) {
    return;
  }
  FlushIfDirty(client, victim->block);
  DropLocal(client, victim->block);
}

void PolicyBase::FlushIfDirty(ClientId client, BlockId block) {
  CacheEntry* entry = ctx().client_cache(client).Find(block);
  if (entry == nullptr || !entry->dirty) {
    return;
  }
  entry->dirty = false;
  ctx().CountFlush();
  InstallInServerCache(block);
}

void PolicyBase::Tick() {
  if (flush_queue_.empty()) {
    return;
  }
  const Micros now = ctx().now();
  while (!flush_queue_.empty() && flush_queue_.front().due <= now) {
    const PendingFlush pending = flush_queue_.front();
    flush_queue_.pop_front();
    // The entry may be gone, clean, or re-dirtied by a newer write (whose
    // own flush is queued behind this one); only flush if this write is
    // still the one pending.
    CacheEntry* entry = ctx().client_cache(pending.client).Find(pending.block);
    if (entry != nullptr && entry->dirty) {
      FlushIfDirty(pending.client, pending.block);
    }
  }
}

std::optional<ReadOutcome> PolicyBase::MaybeServeFromDirtyHolder(ClientId client, BlockId block) {
  if (!delayed_writes()) {
    return std::nullopt;
  }
  for (ClientId holder : ctx().directory().Holders(block)) {
    if (holder == client) {
      continue;
    }
    const CacheEntry* entry = ctx().client_cache(holder).Find(block);
    if (entry != nullptr && entry->dirty) {
      // The server recalls/forwards from the dirty client: request to
      // server, forward to holder, data to requester (3 hops) — exactly
      // the DASH dirty-line forwarding of paper §5.
      ctx().ChargeRemoteClientHit(holder);
      CacheLocally(client, block);
      return ReadOutcome{CacheLevel::kRemoteClient, 3, true};
    }
  }
  return std::nullopt;
}

void PolicyBase::DropLocal(ClientId client, BlockId block) {
  ctx().client_cache(client).Erase(block);
  ctx().directory().RemoveHolder(block, client);
}

void PolicyBase::InstallInServerCache(BlockId block) {
  BlockCache& server = ctx().server_cache_for(block);
  if (!server.CanInsert()) {
    return;
  }
  if (CacheEntry* existing = server.Touch(block); existing != nullptr) {
    existing->last_ref = ctx().now();
    return;
  }
  while (server.Full()) {
    std::optional<CacheEntry> victim = server.EvictLru();
    if (!victim.has_value()) {
      break;
    }
    OnServerEvict(victim->block);
  }
  server.Insert(block).last_ref = ctx().now();
}

void PolicyBase::Write(ClientId client, BlockId block) {
  ctx().NoteBlock(block);
  ctx().CountWrite();
  ctx().TraceWrite(client, block);

  // Write-invalidate: every other client copy dies; one small invalidation
  // message per copy is charged to the server ("Other" in Figure 6). A
  // dying dirty copy was superseded before it flushed: absorbed.
  const Directory::HolderList holders = ctx().directory().Holders(block);  // Copy: we mutate.
  for (ClientId holder : holders) {
    if (holder == client) {
      continue;
    }
    if (const CacheEntry* entry = ctx().client_cache(holder).Find(block);
        entry != nullptr && entry->dirty) {
      ctx().CountAbsorbedWrite();
    }
    DropLocal(holder, block);
    ctx().CountInvalidation();
    ctx().TraceInvalidation(block, holder, client);
    ctx().ChargeSmallMessages(1);
  }
  OnInvalidateExtra(block, client);

  if (!delayed_writes()) {
    // Write-through: the server receives and caches the new data. (Write
    // load itself is excluded from the Figure 6 comparison, as in the
    // paper.) The writer keeps a local copy, inserted normally.
    InstallInServerCache(block);
    CacheLocally(client, block);
    return;
  }

  // Delayed write: the data stays dirty in the writer's cache; the server's
  // and disk's copies are now stale, so the server cache entry must go.
  ctx().server_cache_for(block).Erase(block);
  CacheLocally(client, block);
  CacheEntry* entry = ctx().client_cache(client).Find(block);
  if (entry == nullptr) {
    // No local cache to hold dirty data (zero-capacity local section):
    // degenerate to write-through.
    InstallInServerCache(block);
    return;
  }
  if (entry->dirty) {
    // Overwrite of a still-dirty block: the earlier write is absorbed and
    // the already-queued flush will cover this one.
    ctx().CountAbsorbedWrite();
  } else {
    entry->dirty = true;
    flush_queue_.push_back({ctx().now() + ctx().config().write_delay, client, block});
  }
  entry->dirty_since = ctx().now();
}

void PolicyBase::Delete(ClientId client, FileId file) {
  (void)client;
  // Purge every cached copy of every known block of the file. Unflushed
  // dirty blocks die with it: their writes are absorbed (never reach disk —
  // the short-lived-file effect delayed writes exploit).
  for (const BlockId& block : ctx().KnownBlocksOfFile(file)) {
    const Directory::HolderList holders = ctx().directory().Holders(block);  // Copy.
    for (ClientId holder : holders) {
      if (const CacheEntry* entry = ctx().client_cache(holder).Find(block);
          entry != nullptr && entry->dirty) {
        ctx().CountAbsorbedWrite();
      }
      ctx().client_cache(holder).Erase(block);
      ctx().CountInvalidation();
      ctx().TraceInvalidation(block, holder, kNoClient);
      ctx().ChargeSmallMessages(1);
    }
    ctx().directory().EraseBlock(block);
    ctx().server_cache_for(block).Erase(block);
    OnInvalidateExtra(block, kNoClient);
  }
  ctx().ForgetFile(file);
}

void PolicyBase::Reboot(ClientId client) {
  BlockCache& cache = ctx().client_cache(client);
  // Collect first: DropLocal mutates the cache being iterated. Scanning the
  // LRU list (not the hash index) keeps the drop order — and with it the
  // directory's holder-list order, which PickHolder randomness observes —
  // independent of index capacity. Dirty blocks die with the machine's
  // memory — the delayed-write reliability cost.
  std::vector<BlockId> cached;
  cached.reserve(cache.size());
  cache.ScanFromLru([this, &cached](const CacheEntry& entry) {
    if (entry.dirty) {
      ctx().CountLostWrite();
    }
    cached.push_back(entry.block);
    return false;
  });
  for (const BlockId& block : cached) {
    DropLocal(client, block);
  }
  // The server learns of the reboot when the client re-registers: one
  // message, after which it can prune its directory ("Other" load).
  ctx().ChargeSmallMessages(1);
  OnClientReboot(client);
}

void PolicyBase::ReadAttr(ClientId client, FileId file) {
  BlockCache& cache = ctx().client_cache(client);
  for (const BlockId& block : ctx().KnownBlocksOfFile(file)) {
    if (CacheEntry* entry = cache.Touch(block); entry != nullptr) {
      entry->last_ref = ctx().now();
    }
  }
}

}  // namespace coopfs
