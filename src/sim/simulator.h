// Trace-replay simulation engine (paper §3).
//
// Replays a block-level trace against a policy: reads are dispatched to the
// policy and their outcomes converted to latency using the technology model;
// writes, deletes, and read-attribute events update cache state. The first
// `warmup_events` events warm the caches without being counted.
#ifndef COOPFS_SRC_SIM_SIMULATOR_H_
#define COOPFS_SRC_SIM_SIMULATOR_H_

#include <functional>

#include "src/common/status.h"
#include "src/sim/config.h"
#include "src/sim/metrics.h"
#include "src/sim/policy.h"
#include "src/trace/event.h"

namespace coopfs {

class Simulator {
 public:
  // Called with the final context after the last event, before teardown.
  using ContextInspector = std::function<void(SimContext&)>;

  // `trace` must outlive the simulator and be time-ordered.
  Simulator(SimulationConfig config, const Trace* trace);

  // Runs `policy` over the trace in a fresh context and returns its metrics.
  // Returns kInvalidArgument for configurations that cannot run (e.g. an
  // empty trace). `inspect`, if given, sees the end-of-run context (used by
  // the invariant-checking tests in tests/).
  Result<SimulationResult> Run(Policy& policy, const ContextInspector& inspect = nullptr);

  // Number of clients (from the config, or inferred from the trace).
  std::uint32_t num_clients() const { return num_clients_; }

  const SimulationConfig& config() const { return config_; }

  // Latency charged for one read outcome under `config` (exposed for tests
  // and for reporting the Figure 3 table).
  static Micros OutcomeLatency(const ReadOutcome& outcome, const SimulationConfig& config);

 private:
  SimulationConfig config_;
  const Trace* trace_;
  std::uint32_t num_clients_ = 0;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_SIMULATOR_H_
