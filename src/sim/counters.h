// Lightweight replay counters (observability extension).
//
// The paper's metrics (hit levels, load units) describe *what* an algorithm
// achieved; these counters describe *what the simulator did* to get there:
// events replayed, server-forwarded reads, N-Chance recirculations,
// write/delete invalidations, directory mutations. They are cheap enough to
// leave on (one branch + increment per event) and can be disabled entirely
// via SimulationConfig::collect_counters, in which case no counter is
// touched on any path. Unlike the paper metrics they are NOT gated on
// warm-up: they count the whole run, including the warm-up prefix.
#ifndef COOPFS_SRC_SIM_COUNTERS_H_
#define COOPFS_SRC_SIM_COUNTERS_H_

#include <cstdint>

namespace coopfs {

struct SimCounters {
  // Trace events dispatched by Simulator::Run (all types, warm-up included).
  std::uint64_t events_replayed = 0;

  // Reads the server forwarded to a caching client (paper §2: the
  // cooperative hit path; Figure 6's "Hit Remote Client" segment counts the
  // same requests in load units).
  std::uint64_t remote_forwards = 0;

  // Evicted singlets recirculated to a random peer instead of discarded
  // (N-Chance, paper §2.4; zero for every other policy).
  std::uint64_t recirculations = 0;

  // Per-copy invalidations sent for writes and whole-file deletes
  // (write-invalidate consistency, paper §3).
  std::uint64_t invalidations = 0;

  // Server directory mutations: holder additions/removals and block erasures
  // (the bookkeeping the paper's piggybacked updates amortize, §2.4).
  std::uint64_t directory_ops = 0;

  friend bool operator==(const SimCounters&, const SimCounters&) = default;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_COUNTERS_H_
