#include "src/sim/metrics.h"

#include <cassert>
#include <sstream>

#include "src/common/format.h"

namespace coopfs {

double SimulationResult::AverageReadTime() const {
  if (reads == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (double t : level_time_us) {
    total += t;
  }
  return total / static_cast<double>(reads);
}

double SimulationResult::LevelFraction(CacheLevel level) const {
  return level_counts.Fraction(static_cast<std::size_t>(level));
}

double SimulationResult::LocalMissRate() const {
  return 1.0 - LevelFraction(CacheLevel::kLocalMemory);
}

double SimulationResult::DiskRate() const { return LevelFraction(CacheLevel::kServerDisk); }

double SimulationResult::SpeedupOver(const SimulationResult& baseline) const {
  const double mine = AverageReadTime();
  if (mine <= 0.0) {
    return 1.0;
  }
  return baseline.AverageReadTime() / mine;
}

std::vector<double> SimulationResult::PerClientSpeedup(const SimulationResult& baseline) const {
  const std::size_t n = std::max(per_client.size(), baseline.per_client.size());
  std::vector<double> speedups(n, 1.0);
  for (std::size_t c = 0; c < n; ++c) {
    const double mine =
        c < per_client.size() ? per_client[c].AverageReadTime() : 0.0;
    const double base =
        c < baseline.per_client.size() ? baseline.per_client[c].AverageReadTime() : 0.0;
    if (mine > 0.0 && base > 0.0) {
      speedups[c] = base / mine;
    }
  }
  return speedups;
}

double SimulationResult::RelativeServerLoad(const SimulationResult& baseline) const {
  const auto base_units = baseline.server_load.TotalUnits();
  if (base_units == 0) {
    return 0.0;
  }
  return static_cast<double>(server_load.TotalUnits()) / static_cast<double>(base_units);
}

std::string SimulationResult::ToString() const {
  std::ostringstream out;
  out << policy_name << ": " << reads << " reads, avg " << FormatDouble(AverageReadTime(), 1)
      << " us (";
  for (std::size_t i = 0; i < kNumCacheLevels; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << CacheLevelName(static_cast<CacheLevel>(i)) << " "
        << FormatPercent(level_counts.Fraction(i));
  }
  out << ")";
  return out.str();
}

SimulationResult ApplyStackDeletion(const SimulationResult& result,
                                    double hidden_local_hit_rate, double local_time_us) {
  assert(hidden_local_hit_rate >= 0.0 && hidden_local_hit_rate < 1.0);
  SimulationResult adjusted = result;
  const double visible = static_cast<double>(result.reads);
  const double hidden = visible * hidden_local_hit_rate / (1.0 - hidden_local_hit_rate);
  const auto hidden_count = static_cast<std::uint64_t>(hidden + 0.5);

  adjusted.reads += hidden_count;
  adjusted.level_counts.Add(static_cast<std::size_t>(CacheLevel::kLocalMemory), hidden_count);
  adjusted.level_time_us[static_cast<std::size_t>(CacheLevel::kLocalMemory)] +=
      static_cast<double>(hidden_count) * local_time_us;
  // Per-client inferred hits: distribute proportionally to visible reads.
  // Cumulative rounding (each client gets the increment of the running
  // target) guarantees the per-client shares sum exactly to `hidden_count`,
  // which independently rounding each share does not.
  std::uint64_t visible_sum = 0;
  for (const auto& client : adjusted.per_client) {
    visible_sum += client.reads;
  }
  std::uint64_t cumulative_reads = 0;
  std::uint64_t assigned = 0;
  for (auto& client : adjusted.per_client) {
    cumulative_reads += client.reads;
    const std::uint64_t cumulative_target =
        visible_sum == 0 ? 0 : hidden_count * cumulative_reads / visible_sum;
    const std::uint64_t share = cumulative_target - assigned;
    assigned = cumulative_target;
    client.reads += share;
    client.total_time_us += static_cast<double>(share) * local_time_us;
  }
  adjusted.policy_name = result.policy_name;
  return adjusted;
}

}  // namespace coopfs
