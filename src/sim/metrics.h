// Simulation result metrics.
//
// The paper's methodology (§3): response time = per-level hit counts
// multiplied by constant per-level access times; no queueing. Metrics
// therefore records, for reads issued after warm-up, how many were satisfied
// at each level, the latency charged to each, per-client breakdowns, and the
// abstract server-load units of Figure 6.
#ifndef COOPFS_SRC_SIM_METRICS_H_
#define COOPFS_SRC_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/model/server_load.h"
#include "src/sim/counters.h"

namespace coopfs {

// Per-client read accounting.
struct ClientReadStats {
  std::uint64_t reads = 0;
  double total_time_us = 0.0;

  double AverageReadTime() const {
    return reads == 0 ? 0.0 : total_time_us / static_cast<double>(reads);
  }
};

// Complete result of one simulation run.
struct SimulationResult {
  std::string policy_name;

  // Post-warm-up reads by satisfying level, and time attributed to each.
  CounterArray<kNumCacheLevels> level_counts;
  std::array<double, kNumCacheLevels> level_time_us{};

  std::vector<ClientReadStats> per_client;

  ServerLoadTracker server_load;

  // Replay counters for the whole run, warm-up included (zeroed when
  // SimulationConfig::collect_counters is false). See counters.h.
  SimCounters counters;

  // Distribution of per-read latencies (log-bucketed). The paper reports
  // means; the histogram exposes tails (a disk access is ~60x a local hit,
  // so p99 tells a very different story than the average).
  LogHistogram latency_histogram;

  // Total reads counted (post-warm-up).
  std::uint64_t reads = 0;

  // Write-path accounting (delayed-write extension; all post-warm-up).
  std::uint64_t writes = 0;            // Write operations.
  std::uint64_t flushed_writes = 0;    // Dirty blocks written back.
  std::uint64_t absorbed_writes = 0;   // Died before flushing (overwrite or
                                       // delete) — saved server write traffic.
  std::uint64_t lost_writes = 0;       // Lost to client reboots (the delayed-
                                       // write reliability cost).

  // Optional time series (SimulationConfig::timeline_interval > 0): one
  // point per elapsed interval of simulated time that saw at least one
  // counted read. Useful for warm-up inspection and diurnal-pattern plots.
  // Derived from an internal SnapshotSampler pass; for zero-read intervals,
  // state gauges, and per-client fairness use the full coopfs.timeseries/v1
  // export (SimulationConfig::snapshot_sampler).
  struct TimelinePoint {
    Micros end_time = 0;         // Exclusive end of the interval.
    std::uint64_t reads = 0;     // Counted reads inside it.
    double avg_read_time_us = 0; // Their mean latency.
    double disk_rate = 0;        // Fraction that reached disk.
  };
  std::vector<TimelinePoint> timeline;

  // ---- Derived quantities ----

  double AverageReadTime() const;

  // Fraction of counted reads satisfied at `level`.
  double LevelFraction(CacheLevel level) const;

  // 1 - local fraction (height of the Figure 5 bars).
  double LocalMissRate() const;

  // Fraction of reads that reached the disk (bottom Figure 5 segment).
  double DiskRate() const;

  // Speedup of this run relative to `baseline` (paper [Henn90] convention:
  // baseline time / this time).
  double SpeedupOver(const SimulationResult& baseline) const;

  // Per-client speedup vs. the same client in `baseline`; clients with no
  // reads in either run yield 1.0.
  std::vector<double> PerClientSpeedup(const SimulationResult& baseline) const;

  // Server load relative to a baseline run (Figure 6's y-axis).
  double RelativeServerLoad(const SimulationResult& baseline) const;

  std::string ToString() const;
};

// Stack-deletion adjustment for snooped traces (paper §4.4, [Smit77]).
//
// A network-snooped trace misses reads that hit in client caches. Simulating
// the reduced trace still yields correct *counts* of remote/server/disk hits
// (Smith: omitting small-cache hits barely changes larger-cache faults), but
// the denominator must be the estimated full reference count. Given an
// assumed hidden local hit rate h, every visible read implies h/(1-h)
// invisible local hits. Returns a copy of `result` with the inferred local
// hits added at `local_time_us` each (paper: 250 µs).
SimulationResult ApplyStackDeletion(const SimulationResult& result, double hidden_local_hit_rate,
                                    double local_time_us);

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_METRICS_H_
