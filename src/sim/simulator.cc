#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace coopfs {

Simulator::Simulator(SimulationConfig config, const Trace* trace)
    : config_(config), trace_(trace) {
  assert(trace_ != nullptr);
  num_clients_ = config.num_clients;
  if (num_clients_ == 0) {
    for (const TraceEvent& event : *trace_) {
      num_clients_ = std::max(num_clients_, event.client + 1);
    }
  }
}

Micros Simulator::OutcomeLatency(const ReadOutcome& outcome, const SimulationConfig& config) {
  const NetworkModel& net = config.network;
  Micros latency = net.memory_copy;
  latency += net.per_hop * outcome.hops;
  if (outcome.data_transfer) {
    latency += net.block_transfer;
  }
  if (outcome.level == CacheLevel::kServerDisk) {
    latency += config.disk.access_time;
  }
  return latency;
}

Result<SimulationResult> Simulator::Run(Policy& policy, const ContextInspector& inspect) {
  if (trace_->empty()) {
    return Status::InvalidArgument("empty trace");
  }
  if (num_clients_ == 0) {
    return Status::InvalidArgument("no clients");
  }

  SimContext context(config_, num_clients_, policy.ClientCacheBlocks(config_),
                     policy.ServerCacheBlocks(config_));
  policy.Attach(context);

  // Event-level tracing (src/obs/trace_recorder.h). The simulator opens and
  // closes read spans itself; policies annotate them through SimContext.
  TraceRecorder* tracer = config_.trace_recorder;
  if (tracer != nullptr) {
    tracer->BeginRun(policy.Name(), num_clients_);
  }

  SimulationResult result;
  result.policy_name = policy.Name();
  result.per_client.resize(num_clients_);

  // Timeline bucketing state (config_.timeline_interval > 0 only).
  const Micros interval = config_.timeline_interval;
  Micros bucket_end = interval > 0 && !trace_->empty()
                          ? trace_->front().timestamp + interval
                          : 0;
  std::uint64_t bucket_reads = 0;
  std::uint64_t bucket_disk = 0;
  double bucket_time = 0.0;
  auto close_bucket = [&](Micros end_time) {
    if (bucket_reads > 0) {
      SimulationResult::TimelinePoint point;
      point.end_time = end_time;
      point.reads = bucket_reads;
      point.avg_read_time_us = bucket_time / static_cast<double>(bucket_reads);
      point.disk_rate = static_cast<double>(bucket_disk) / static_cast<double>(bucket_reads);
      result.timeline.push_back(point);
    }
    bucket_reads = 0;
    bucket_disk = 0;
    bucket_time = 0.0;
  };

  std::uint64_t index = 0;
  for (const TraceEvent& event : *trace_) {
    context.set_now(event.timestamp);
    context.set_accounting(index >= config_.warmup_events);
    context.CountEvent();
    if (tracer != nullptr) {
      tracer->SetEventContext(index, event.timestamp);
    }
    if (event.client >= num_clients_) {
      return Status::InvalidArgument("event client id out of range at event " +
                                     std::to_string(index));
    }
    if (interval > 0) {
      while (event.timestamp >= bucket_end) {
        close_bucket(bucket_end);
        bucket_end += interval;
      }
    }
    policy.Tick();
    switch (event.type) {
      case EventType::kRead: {
        context.NoteBlock(event.block);
        if (tracer != nullptr) {
          tracer->BeginRead(event.client, event.block, context.accounting());
        }
        const ReadOutcome outcome = policy.Read(event.client, event.block);
        if (tracer != nullptr) {
          tracer->EndRead(outcome.level, outcome.hops, outcome.data_transfer,
                          OutcomeLatency(outcome, config_));
        }
        if (context.accounting()) {
          const Micros latency = OutcomeLatency(outcome, config_);
          const auto level = static_cast<std::size_t>(outcome.level);
          result.level_counts.Add(level);
          result.level_time_us[level] += static_cast<double>(latency);
          ++result.reads;
          ClientReadStats& client_stats = result.per_client[event.client];
          ++client_stats.reads;
          client_stats.total_time_us += static_cast<double>(latency);
          result.latency_histogram.Add(static_cast<double>(latency));
          if (interval > 0) {
            ++bucket_reads;
            bucket_time += static_cast<double>(latency);
            if (outcome.level == CacheLevel::kServerDisk) {
              ++bucket_disk;
            }
          }
        }
        break;
      }
      case EventType::kWrite:
        policy.Write(event.client, event.block);
        break;
      case EventType::kDelete:
        policy.Delete(event.client, event.block.file);
        break;
      case EventType::kReadAttr:
        policy.ReadAttr(event.client, event.block.file);
        break;
      case EventType::kReboot:
        policy.Reboot(event.client);
        break;
    }
    ++index;
  }

  if (interval > 0) {
    close_bucket(bucket_end);
  }
  result.server_load = context.server_load();
  result.counters = context.counters();
  result.writes = context.write_stats().writes;
  result.flushed_writes = context.write_stats().flushed;
  result.absorbed_writes = context.write_stats().absorbed;
  result.lost_writes = context.write_stats().lost;
  if (inspect) {
    inspect(context);
  }
  COOPFS_LOG(kInfo) << result.ToString();
  return result;
}

}  // namespace coopfs
