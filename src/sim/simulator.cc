#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/obs/snapshot_sampler.h"

namespace coopfs {

namespace {

// Reads the instantaneous StateProbe gauges off the live context. O(cached
// blocks); runs only at sample boundaries, never per event.
StateProbe BuildStateProbe(SimContext& context) {
  StateProbe probe;
  for (ClientId c = 0; c < context.num_clients(); ++c) {
    const BlockCache& cache = context.client_cache(c);
    probe.client_blocks_used += cache.size();
    probe.client_blocks_capacity += cache.capacity();
    probe.recirculating_copies += cache.RecirculatingCount();
    probe.dirty_blocks += cache.DirtyCount();
  }
  for (std::uint32_t s = 0; s < context.num_servers(); ++s) {
    const BlockCache& cache = context.server_cache(s);
    probe.server_blocks_used += cache.size();
    probe.server_blocks_capacity += cache.capacity();
  }
  const Directory::DuplicationCounts dup = context.directory().CountDuplication();
  probe.singlet_blocks = dup.singlets;
  probe.duplicate_blocks = dup.duplicates;
  probe.directory_blocks = dup.singlets + dup.duplicates;
  for (std::size_t kind = 0; kind < kNumServerLoadKinds; ++kind) {
    probe.load_units[kind] = context.server_load().Units(static_cast<ServerLoadKind>(kind));
  }
  return probe;
}

}  // namespace

Simulator::Simulator(SimulationConfig config, const Trace* trace)
    : config_(config), trace_(trace) {
  assert(trace_ != nullptr);
  num_clients_ = config.num_clients;
  if (num_clients_ == 0) {
    for (const TraceEvent& event : *trace_) {
      num_clients_ = std::max(num_clients_, event.client + 1);
    }
  }
}

Micros Simulator::OutcomeLatency(const ReadOutcome& outcome, const SimulationConfig& config) {
  const NetworkModel& net = config.network;
  Micros latency = net.memory_copy;
  latency += net.per_hop * outcome.hops;
  if (outcome.data_transfer) {
    latency += net.block_transfer;
  }
  if (outcome.level == CacheLevel::kServerDisk) {
    latency += config.disk.access_time;
  }
  return latency;
}

Result<SimulationResult> Simulator::Run(Policy& policy, const ContextInspector& inspect) {
  COOPFS_PROFILE_SCOPE("sim/run");
  if (trace_->empty()) {
    return Status::InvalidArgument("empty trace");
  }
  if (num_clients_ == 0) {
    return Status::InvalidArgument("no clients");
  }

  SimContext context(config_, num_clients_, policy.ClientCacheBlocks(config_),
                     policy.ServerCacheBlocks(config_));
  policy.Attach(context);

  // Event-level tracing (src/obs/trace_recorder.h). The simulator opens and
  // closes read spans itself; policies annotate them through SimContext.
  TraceRecorder* tracer = config_.trace_recorder;
  if (tracer != nullptr) {
    tracer->BeginRun(policy.Name(), num_clients_);
  }

  // State sampling (src/obs/snapshot_sampler.h). Up to two samplers ride one
  // replay: the externally attached config_.snapshot_sampler (full samples
  // with gauges and per-client triplets) and an internal lean one that feeds
  // the legacy SimulationResult::timeline. They can use different intervals,
  // so each tracks its own boundaries.
  SnapshotSampler* sampler = config_.snapshot_sampler;
  if (sampler != nullptr) {
    sampler->BeginRun(policy.Name(), num_clients_, config_.sample_interval,
                      trace_->front().timestamp);
  }
  SnapshotSamplerOptions lean;
  lean.include_per_client = false;
  lean.capture_state = false;
  lean.sample_warmup_end = false;
  SnapshotSampler timeline_sampler(lean);
  SnapshotSampler* timeline = nullptr;
  if (config_.timeline_interval > 0) {
    timeline = &timeline_sampler;
    timeline->BeginRun(policy.Name(), num_clients_, config_.timeline_interval,
                       trace_->front().timestamp);
  }

  SimulationResult result;
  result.policy_name = policy.Name();
  result.per_client.resize(num_clients_);

  std::uint64_t index = 0;
  for (const TraceEvent& event : *trace_) {
    context.set_now(event.timestamp);
    context.set_accounting(index >= config_.warmup_events);
    context.CountEvent();
    if (tracer != nullptr) {
      tracer->SetEventContext(index, event.timestamp);
    }
    if (event.client >= num_clients_) {
      return Status::InvalidArgument("event client id out of range at event " +
                                     std::to_string(index));
    }
    // Sample boundaries fire before the event that crosses them: the emitted
    // windows cover [previous boundary, boundary) in event time.
    const bool sampler_due = sampler != nullptr && sampler->SampleDue(event.timestamp);
    if (sampler_due || (timeline != nullptr && timeline->SampleDue(event.timestamp))) {
      StateProbe probe;
      if (sampler_due && sampler->options().capture_state) {
        COOPFS_PROFILE_SCOPE("sim/sample_state");
        probe = BuildStateProbe(context);
      }
      if (sampler_due) {
        sampler->CaptureDue(event.timestamp, probe);
      }
      if (timeline != nullptr) {
        timeline->CaptureDue(event.timestamp, StateProbe{});
      }
    }
    if (sampler != nullptr && index == config_.warmup_events && index > 0 &&
        sampler->options().sample_warmup_end) {
      COOPFS_PROFILE_SCOPE("sim/sample_state");
      sampler->CaptureWarmupEnd(
          event.timestamp,
          sampler->options().capture_state ? BuildStateProbe(context) : StateProbe{});
    }
    if (sampler != nullptr) {
      sampler->OnEvent();
    }
    if (timeline != nullptr) {
      timeline->OnEvent();
    }
    policy.Tick();
    switch (event.type) {
      case EventType::kRead: {
        COOPFS_PROFILE_SCOPE("sim/read");
        context.NoteBlock(event.block);
        if (tracer != nullptr) {
          tracer->BeginRead(event.client, event.block, context.accounting());
        }
        const ReadOutcome outcome = policy.Read(event.client, event.block);
        const Micros latency = OutcomeLatency(outcome, config_);
        if (tracer != nullptr) {
          tracer->EndRead(outcome.level, outcome.hops, outcome.data_transfer, latency);
        }
        const bool counted = context.accounting();
        if (sampler != nullptr) {
          sampler->RecordRead(event.client, outcome.level, latency, counted);
        }
        if (timeline != nullptr) {
          timeline->RecordRead(event.client, outcome.level, latency, counted);
        }
        if (counted) {
          const auto level = static_cast<std::size_t>(outcome.level);
          result.level_counts.Add(level);
          result.level_time_us[level] += static_cast<double>(latency);
          ++result.reads;
          ClientReadStats& client_stats = result.per_client[event.client];
          ++client_stats.reads;
          client_stats.total_time_us += static_cast<double>(latency);
          result.latency_histogram.Add(static_cast<double>(latency));
        }
        break;
      }
      case EventType::kWrite: {
        COOPFS_PROFILE_SCOPE("sim/write");
        policy.Write(event.client, event.block);
        break;
      }
      case EventType::kDelete: {
        COOPFS_PROFILE_SCOPE("sim/delete");
        policy.Delete(event.client, event.block.file);
        break;
      }
      case EventType::kReadAttr: {
        COOPFS_PROFILE_SCOPE("sim/readattr");
        policy.ReadAttr(event.client, event.block.file);
        break;
      }
      case EventType::kReboot: {
        COOPFS_PROFILE_SCOPE("sim/reboot");
        policy.Reboot(event.client);
        break;
      }
    }
    ++index;
  }

  // Close the final (partial) windows at the last trace timestamp.
  if (sampler != nullptr) {
    StateProbe probe;
    if (sampler->options().capture_state) {
      COOPFS_PROFILE_SCOPE("sim/sample_state");
      probe = BuildStateProbe(context);
    }
    sampler->CaptureRunEnd(trace_->back().timestamp, probe);
  }
  if (timeline != nullptr) {
    timeline->CaptureRunEnd(trace_->back().timestamp, StateProbe{});
  }

  COOPFS_PROFILE_SCOPE("sim/finalize");

  // The legacy avg_read_time_us timeline is the sampler's counted-read view:
  // one point per sample that saw counted reads (zero-read windows are
  // dropped here but kept in coopfs.timeseries/v1 exports). The run-end
  // sample's partial window closes at the first unreached boundary, keeping
  // end times strictly increasing.
  if (timeline != nullptr) {
    const SnapshotRun& run = timeline->runs().back();
    constexpr auto kDisk = static_cast<std::size_t>(CacheLevel::kServerDisk);
    for (const StateSample& sample : run.samples) {
      const std::uint64_t reads = sample.CountedReads();
      if (reads == 0) {
        continue;
      }
      SimulationResult::TimelinePoint point;
      point.end_time = sample.trigger == SampleTrigger::kRunEnd ? timeline->next_boundary()
                                                                : sample.time;
      point.reads = reads;
      point.avg_read_time_us = sample.CountedTimeUs() / static_cast<double>(reads);
      point.disk_rate =
          static_cast<double>(sample.level_reads[kDisk]) / static_cast<double>(reads);
      result.timeline.push_back(point);
    }
  }

  result.server_load = context.server_load();
  result.counters = context.counters();
  result.writes = context.write_stats().writes;
  result.flushed_writes = context.write_stats().flushed;
  result.absorbed_writes = context.write_stats().absorbed;
  result.lost_writes = context.write_stats().lost;
  if (inspect) {
    inspect(context);
  }
  COOPFS_LOG(kInfo) << result.ToString();
  return result;
}

}  // namespace coopfs
