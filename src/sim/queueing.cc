#include "src/sim/queueing.h"

#include <cmath>

namespace coopfs {

double Mm1Inflation(double rho) {
  if (rho >= 1.0) {
    return HUGE_VAL;
  }
  if (rho <= 0.0) {
    return 1.0;
  }
  return 1.0 / (1.0 - rho);
}

double OfferedLoadUnitsPerSecond(const SimulationResult& result, double span_seconds) {
  if (span_seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(result.server_load.TotalUnits()) / span_seconds;
}

Result<QueueingAdjustment> ApplyServerQueueing(const SimulationResult& result,
                                               double span_seconds,
                                               double capacity_units_per_second) {
  if (span_seconds <= 0.0) {
    return Status::InvalidArgument("span must be positive");
  }
  if (capacity_units_per_second <= 0.0) {
    return Status::InvalidArgument("capacity must be positive");
  }
  QueueingAdjustment adjustment;
  adjustment.utilization =
      OfferedLoadUnitsPerSecond(result, span_seconds) / capacity_units_per_second;
  if (adjustment.utilization >= 1.0) {
    adjustment.saturated = true;
    adjustment.inflation = HUGE_VAL;
    adjustment.adjusted_read_time = HUGE_VAL;
    return adjustment;
  }
  adjustment.inflation = Mm1Inflation(adjustment.utilization);
  if (result.reads == 0) {
    return adjustment;
  }
  const double reads = static_cast<double>(result.reads);
  const double local_time =
      result.level_time_us[static_cast<std::size_t>(CacheLevel::kLocalMemory)] / reads;
  const double server_involved_time = result.AverageReadTime() - local_time;
  adjustment.adjusted_read_time = local_time + server_involved_time * adjustment.inflation;
  return adjustment;
}

}  // namespace coopfs
