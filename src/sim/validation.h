// Post-run invariant checks over a SimContext (used by the property tests
// and available to embedders as a debugging aid).
#ifndef COOPFS_SRC_SIM_VALIDATION_H_
#define COOPFS_SRC_SIM_VALIDATION_H_

#include "src/common/status.h"
#include "src/sim/context.h"

namespace coopfs {

// Verifies that the server directory and the client caches agree:
//   * every cached block at client c has c in its directory holder set;
//   * every directory holder entry corresponds to a cached block;
//   * no cache exceeds its capacity;
//   * N-Chance metadata is coherent: a copy that is recirculating or
//     flag-marked singlet really is the only client copy.
// Returns the first violation found.
Status CheckCacheDirectoryConsistency(SimContext& context);

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_VALIDATION_H_
