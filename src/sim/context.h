// Shared simulation state operated on by cooperative caching policies.
//
// SimContext owns the simulated machines' caches (one BlockCache per client
// plus the server cache), the server's directory of client cache contents,
// policy randomness, the simulation clock, and the server-load tracker. The
// Simulator builds a fresh context per run; policies manipulate it through
// the hooks in policy.h.
#ifndef COOPFS_SRC_SIM_CONTEXT_H_
#define COOPFS_SRC_SIM_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "src/cache/block_cache.h"
#include "src/cache/directory.h"
#include "src/common/arena.h"
#include "src/common/flat_hash_map.h"
#include "src/common/inline_vec.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/model/server_load.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/sim/config.h"
#include "src/sim/counters.h"

namespace coopfs {

class SimContext {
 public:
  // Known blocks of one file (learned from the trace). Spills past the
  // inline capacity draw from the config's arena when one is attached.
  using KnownBlockList = InlineVec<BlockId, 4>;

  SimContext(const SimulationConfig& config, std::uint32_t num_clients,
             std::size_t client_cache_blocks, std::size_t server_cache_blocks)
      : config_(config),
        num_clients_(num_clients),
        arena_(config.arena),
        directory_(config.arena),
        rng_(config.seed),
        counters_enabled_(config.collect_counters),
        tracer_(config.trace_recorder),
        sampler_(config.snapshot_sampler),
        seen_blocks_(config.arena),
        file_blocks_(config.arena) {
    if (counters_enabled_) {
      directory_.set_op_counter(&counters_.directory_ops);
    }
    if (tracer_ != nullptr) {
      directory_.set_observer(tracer_);
    }
    client_caches_.reserve(num_clients);
    for (std::uint32_t c = 0; c < num_clients; ++c) {
      client_caches_.push_back(MakeCache(client_cache_blocks));
    }
    // The configured server memory is divided evenly among the servers.
    const std::uint32_t servers = std::max<std::uint32_t>(1, config.num_servers);
    server_caches_.reserve(servers);
    for (std::uint32_t s = 0; s < servers; ++s) {
      server_caches_.push_back(MakeCache(server_cache_blocks / servers));
    }
    // Pre-size the replay hash indexes so steady-state replay rarely (in
    // practice never) rehashes. The directory tracks at most the aggregate
    // client cache contents, but duplication and partially filled caches
    // keep real occupancy well below that bound, so the derived default
    // targets half of it: measured end-of-replay occupancy sits around a
    // third of aggregate capacity, and a workload that does exceed the hint
    // pays one amortized table growth, visible in the "flat_map/rehash"
    // profiler span. An explicit hint is honored exactly.
    const std::size_t reserve_blocks =
        config.index_reserve_blocks != 0
            ? config.index_reserve_blocks
            : (num_clients * client_cache_blocks + server_cache_blocks) / 2;
    directory_.Reserve(reserve_blocks, reserve_blocks / 8 + 1);
    seen_blocks_.Reserve(reserve_blocks);
    file_blocks_.Reserve(reserve_blocks / 8 + 1);
  }

  const SimulationConfig& config() const { return config_; }
  std::uint32_t num_clients() const { return num_clients_; }
  std::uint32_t num_servers() const { return static_cast<std::uint32_t>(server_caches_.size()); }

  BlockCache& client_cache(ClientId c) { return *client_caches_[c]; }

  // The server responsible for `file` (files are hash-striped; with one
  // server this is always server 0, the paper's configuration).
  std::uint32_t ServerFor(FileId file) const {
    return num_servers() == 1
               ? 0u
               : static_cast<std::uint32_t>(
                     std::hash<coopfs::BlockId>{}(BlockId{file, 0}) % num_servers());
  }

  BlockCache& server_cache_for(BlockId block) { return *server_caches_[ServerFor(block.file)]; }
  BlockCache& server_cache(std::uint32_t server = 0) { return *server_caches_[server]; }
  Directory& directory() { return directory_; }
  Rng& rng() { return rng_; }

  Micros now() const { return now_; }
  void set_now(Micros now) { now_ = now; }

  // Metrics are collected only after warm-up; load charges before that are
  // dropped.
  bool accounting() const { return accounting_; }
  void set_accounting(bool on) { accounting_ = on; }

  ServerLoadTracker& server_load() { return server_load_; }

  // ---- Replay counters (tracing extension; see counters.h) ----
  // Unlike the server-load charges below, these are NOT warm-up gated: they
  // trace simulator work over the whole run.
  const SimCounters& counters() const { return counters_; }
  bool counters_enabled() const { return counters_enabled_; }
  void CountEvent() {
    if (counters_enabled_) {
      ++counters_.events_replayed;
    }
  }
  void CountRemoteForward() {
    if (counters_enabled_) {
      ++counters_.remote_forwards;
    }
  }
  void CountRecirculation() {
    if (counters_enabled_) {
      ++counters_.recirculations;
    }
  }
  void CountInvalidation() {
    if (counters_enabled_) {
      ++counters_.invalidations;
    }
  }

  // ---- Event-level tracing (no-ops unless a recorder is attached) ----
  // The Simulator drives span open/close directly on the recorder; these
  // hooks are the policy-facing annotation points. See trace_recorder.h.
  TraceRecorder* tracer() { return tracer_; }

  // Annotates the open read span with the remote client whose memory
  // supplied the data. Policies with remote hits the server never sees
  // (private remote caches, hash partitions) call this directly; server-
  // forwarded hits go through ChargeRemoteClientHit below.
  void TraceForward(ClientId holder) {
    if (tracer_ != nullptr) {
      tracer_->AnnotateForward(holder);
    }
    if (sampler_ != nullptr) {
      sampler_->NoteForward(holder);
    }
  }
  void TraceWrite(ClientId writer, BlockId block) {
    if (tracer_ != nullptr) {
      tracer_->RecordWrite(writer, block);
    }
  }
  // `writer` is kNoClient for whole-file deletes.
  void TraceInvalidation(BlockId block, ClientId holder, ClientId writer) {
    if (tracer_ != nullptr) {
      tracer_->RecordInvalidation(block, holder, writer);
    }
  }
  // `count` is the recirculation count remaining on the forwarded copy.
  void TraceRecirculation(ClientId from, ClientId to, BlockId block, int count) {
    if (tracer_ != nullptr) {
      tracer_->RecordRecirculation(from, to, block, count);
    }
  }

  // ---- Server-load charging (no-ops during warm-up) ----
  void ChargeServerMemoryHit() {
    if (accounting_) {
      server_load_.ChargeServerMemoryHit();
    }
  }
  // `holder` is the client the server forwarded the read to (recorded on the
  // open trace span; pass kNoClient only if genuinely unknown).
  void ChargeRemoteClientHit(ClientId holder) {
    CountRemoteForward();
    TraceForward(holder);
    if (accounting_) {
      server_load_.ChargeRemoteClientHit();
    }
  }
  void ChargeDiskHit() {
    if (accounting_) {
      server_load_.ChargeDiskHit();
    }
  }
  void ChargeSmallMessages(std::uint64_t messages) {
    if (accounting_) {
      server_load_.ChargeSmallMessages(messages);
    }
  }

  // ---- Delayed-write accounting (extension) ----
  struct WriteStats {
    std::uint64_t writes = 0;     // Write operations observed.
    std::uint64_t flushed = 0;    // Dirty blocks written back to the server.
    std::uint64_t absorbed = 0;   // Writes that died before flushing
                                  // (overwritten or file deleted).
    std::uint64_t lost = 0;       // Dirty blocks lost to a client reboot.
  };
  WriteStats& write_stats() { return write_stats_; }
  void CountWrite() {
    if (accounting_) {
      ++write_stats_.writes;
    }
  }
  void CountFlush() {
    if (accounting_) {
      ++write_stats_.flushed;
    }
  }
  void CountAbsorbedWrite() {
    if (accounting_) {
      ++write_stats_.absorbed;
    }
  }
  void CountLostWrite() {
    if (accounting_) {
      ++write_stats_.lost;
    }
  }

  // ---- Known-blocks index ----
  // The simulator has no file metadata beyond the trace, so it learns each
  // file's blocks as they appear. Whole-file deletes and read-attribute
  // refreshes iterate this index instead of scanning caches.
  void NoteBlock(BlockId block) {
    if (seen_blocks_.Insert(block.Pack())) {
      file_blocks_[block.file].push_back(block, arena_);
    }
  }

  // The reference is invalidated by the next NoteBlock/ForgetFile (flat-map
  // storage) — consume before mutating.
  const KnownBlockList& KnownBlocksOfFile(FileId file) const {
    static const KnownBlockList kEmpty;
    const KnownBlockList* blocks = file_blocks_.Find(file);
    return blocks == nullptr ? kEmpty : *blocks;
  }

  // Forgets a deleted file's blocks (ids are never reused by the workloads).
  void ForgetFile(FileId file) {
    KnownBlockList* blocks = file_blocks_.Find(file);
    if (blocks == nullptr) {
      return;
    }
    for (const BlockId& block : *blocks) {
      seen_blocks_.Erase(block.Pack());
    }
    file_blocks_.Erase(file);
  }

 private:
  // Caches live either on the heap (no arena) or placement-constructed in
  // the arena, in which case the deleter runs the destructor but leaves the
  // memory for the arena to reclaim wholesale.
  struct CacheDeleter {
    bool arena_backed = false;
    void operator()(BlockCache* cache) const {
      if (arena_backed) {
        cache->~BlockCache();
      } else {
        delete cache;
      }
    }
  };
  using CachePtr = std::unique_ptr<BlockCache, CacheDeleter>;

  CachePtr MakeCache(std::size_t capacity_blocks) {
    if (arena_ == nullptr) {
      return CachePtr(new BlockCache(capacity_blocks), CacheDeleter{false});
    }
    void* memory = arena_->Allocate(sizeof(BlockCache), alignof(BlockCache));
    return CachePtr(new (memory) BlockCache(capacity_blocks, arena_), CacheDeleter{true});
  }

  const SimulationConfig& config_;
  std::uint32_t num_clients_;
  Arena* arena_ = nullptr;
  std::vector<CachePtr> client_caches_;
  std::vector<CachePtr> server_caches_;
  Directory directory_;
  Rng rng_;
  Micros now_ = 0;
  bool accounting_ = false;
  ServerLoadTracker server_load_;
  WriteStats write_stats_;
  SimCounters counters_;
  bool counters_enabled_ = true;
  TraceRecorder* tracer_ = nullptr;
  SnapshotSampler* sampler_ = nullptr;

  FlatHashSet<std::uint64_t> seen_blocks_;
  FlatHashMap<FileId, KnownBlockList> file_blocks_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_CONTEXT_H_
