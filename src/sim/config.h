// Simulation configuration (paper §3-4.1 defaults).
#ifndef COOPFS_SRC_SIM_CONFIG_H_
#define COOPFS_SRC_SIM_CONFIG_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/model/network_model.h"

namespace coopfs {

class Arena;
class SnapshotSampler;
class TraceRecorder;

// How client writes reach the server (extension; the paper assumes
// write-through, §3, and argues the choice does not affect read results).
enum class WritePolicy {
  // Every write is immediately sent to the server (paper's assumption).
  kWriteThrough,
  // Writes are held dirty in the writer's cache and flushed after
  // `write_delay`, on eviction, or never (if deleted/overwritten first —
  // the write is absorbed, or lost if the machine reboots). Reads by other
  // clients are served client-to-client from the dirty copy, the DASH-style
  // optimization the paper points to in §5.
  kDelayedWrite,
};

struct SimulationConfig {
  // Per-client cache capacity. Paper default: 16 MB (§4.1).
  std::size_t client_cache_blocks = BytesToBlocks(MiB(16));

  // Total central server cache capacity. Paper default: 128 MB (§4.1).
  // With multiple servers this memory is divided evenly among them.
  std::size_t server_cache_blocks = BytesToBlocks(MiB(128));

  // Number of file servers (extension). The paper's study uses the main
  // Sprite server only (§3 footnote 1); Sprite itself had several, and the
  // paper's xFS direction distributes the server entirely. Files are
  // assigned to servers by hashing the file id.
  std::uint32_t num_servers = 1;

  // Number of clients. 0 = infer from the trace (max client id + 1).
  std::uint32_t num_clients = 0;

  // Events consumed to warm the caches before metrics are collected. The
  // paper uses the first 400,000 of the Sprite accesses (§3) and the first
  // million Auspex events (§4.4).
  std::uint64_t warmup_events = 400'000;

  // Technology (paper §3: ATM numbers by default; Figure 13 sweeps this).
  NetworkModel network = NetworkModel::Atm155();
  DiskModel disk = DiskModel::RuemmlerWilkes();

  // Seed for policy-internal randomness (e.g. N-Chance peer choice).
  std::uint64_t seed = 1;

  // Write handling (extension; see WritePolicy).
  WritePolicy write_policy = WritePolicy::kWriteThrough;
  Micros write_delay = 30'000'000;  // Sprite's classic 30 s delay.

  // If > 0, collect a time series of read metrics bucketed into intervals
  // of this many simulated microseconds (SimulationResult::timeline).
  Micros timeline_interval = 0;

  // Collect the lightweight replay counters (SimulationResult::counters:
  // events replayed, forwards, recirculations, invalidations, directory
  // ops). When false no counter is touched on any path.
  bool collect_counters = true;

  // Event-level trace recording (src/obs/trace_recorder.h): when non-null,
  // the run appends one ReadSpan per replayed read plus discrete op records
  // to this recorder. Null (the default) compiles every hook down to a
  // pointer check. The recorder is not synchronized: configs of jobs that
  // run concurrently (RunSimulationsParallel) must each point at their own
  // recorder, or at null.
  TraceRecorder* trace_recorder = nullptr;

  // Periodic state sampling (src/obs/snapshot_sampler.h): when non-null and
  // `sample_interval` > 0, the run emits one StateSample per crossing of an
  // interval boundary in simulated time, plus warm-up-end and run-end
  // samples. Null (the default) compiles every hook down to a pointer
  // check. Like the recorder, the sampler is not synchronized: concurrent
  // jobs (RunSimulationsParallel) must each attach their own sampler.
  SnapshotSampler* snapshot_sampler = nullptr;

  // Interval between snapshot_sampler boundaries, in simulated
  // microseconds; <= 0 restricts the sampler to warm-up-end and run-end
  // samples only.
  Micros sample_interval = 0;

  // Bulk-allocation arena for the run's context (src/common/arena.h): when
  // non-null, the per-client/server BlockCaches, the directory, and the
  // known-blocks indexes draw their storage from it instead of the global
  // heap. The arena must outlive the run and is NOT reset by the simulator —
  // the owner resets it between runs. Not synchronized: concurrent jobs
  // (RunSimulationsParallel) must each use their own arena, or null. Null
  // (the default) keeps everything on the global heap.
  Arena* arena = nullptr;

  // Capacity hint for the replay hash indexes (directory, known-blocks).
  // 0 (the default) derives the hint from the aggregate cache capacity
  // (clients x client_cache_blocks + server_cache_blocks) so steady-state
  // replay runs rehash-free. Results are identical for any value — the
  // capacity-determinism ctest holds that line — only rehash timing moves.
  std::size_t index_reserve_blocks = 0;

  SimulationConfig& WithClientCacheMiB(std::size_t mib) {
    client_cache_blocks = BytesToBlocks(MiB(mib));
    return *this;
  }
  SimulationConfig& WithServerCacheMiB(std::size_t mib) {
    server_cache_blocks = BytesToBlocks(MiB(mib));
    return *this;
  }
  SimulationConfig& WithWarmup(std::uint64_t events) {
    warmup_events = events;
    return *this;
  }
  SimulationConfig& WithNetwork(const NetworkModel& model) {
    network = model;
    return *this;
  }
};

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_CONFIG_H_
