// Cooperative caching policy interface and shared base behaviour.
//
// A Policy implements the read path of one cooperative caching algorithm
// (paper §2) over the shared SimContext, and reports where each read was
// satisfied. Write-through + write-invalidate consistency (§3), whole-file
// deletes, and NFS read-attribute refresh are shared in PolicyBase; policies
// override the hooks that differ (victim selection, server-cache eviction
// destination, extra invalidation targets).
#ifndef COOPFS_SRC_SIM_POLICY_H_
#define COOPFS_SRC_SIM_POLICY_H_

#include <deque>
#include <optional>
#include <string>

#include "src/sim/context.h"

namespace coopfs {

// Where and how one read was satisfied. The simulator converts this to
// latency: memory_copy + (block transfer if data crossed the network) +
// hops x per-hop + (disk access if the read reached disk).
struct ReadOutcome {
  CacheLevel level = CacheLevel::kLocalMemory;
  int hops = 0;               // Small-packet network hops on the read path.
  bool data_transfer = false;  // Did the 8 KB block cross the network?
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string Name() const = 0;

  // Client/server cache capacities this policy wants (the best case doubles
  // client memory; Centrally Coordinated shrinks the locally managed part).
  virtual std::size_t ClientCacheBlocks(const SimulationConfig& config) const {
    return config.client_cache_blocks;
  }
  virtual std::size_t ServerCacheBlocks(const SimulationConfig& config) const {
    return config.server_cache_blocks;
  }

  // Binds the policy to a fresh context before a run.
  virtual void Attach(SimContext& context) = 0;

  virtual ReadOutcome Read(ClientId client, BlockId block) = 0;
  virtual void Write(ClientId client, BlockId block) = 0;
  virtual void Delete(ClientId client, FileId file) = 0;
  virtual void ReadAttr(ClientId client, FileId file) = 0;

  // Client machine restart: everything it cached is lost. Extension beyond
  // the paper (workstation churn); the default in PolicyBase handles the
  // local cache + directory, with OnClientReboot for policy-private state.
  virtual void Reboot(ClientId client) = 0;

  // Called once per trace event, before dispatch, with the clock already
  // advanced. Policies with time-driven behaviour (delayed-write flushing)
  // override this.
  virtual void Tick() {}
};

// Shared machinery. Concrete policies implement Read and override hooks.
class PolicyBase : public Policy {
 public:
  void Attach(SimContext& context) override {
    ctx_ = &context;
    flush_queue_.clear();
    OnAttach();
  }

  // Write-through + write-invalidate (paper §3): invalidate every other
  // client copy (one small invalidation message each, Figure 6 "Other"),
  // install the new data in the server cache, then cache it at the writer
  // through the policy's normal insertion path.
  void Write(ClientId client, BlockId block) override;

  // Whole-file delete: purge every cached copy and all directory state.
  void Delete(ClientId client, FileId file) override;

  // NFS read-attribute hint (paper §4.4): refresh the LRU position of the
  // file's blocks cached at this client, approximating the local hits the
  // snooped trace cannot show.
  void ReadAttr(ClientId client, FileId file) override;

  // Drops everything the rebooting client cached (cache + directory), then
  // calls OnClientReboot for policy-private structures. Dirty (unflushed)
  // blocks are lost — the delayed-write reliability trade-off.
  void Reboot(ClientId client) override;

  // Flushes delayed writes whose hold time has expired.
  void Tick() override;

 protected:
  SimContext& ctx() { return *ctx_; }

  // Called once per run after ctx() is available.
  virtual void OnAttach() {}

  // Makes room (if needed) and inserts `block` at the MRU position of
  // `client`'s cache, registering the copy in the directory. No-op if the
  // local cache has zero capacity; touches instead if already present.
  void CacheLocally(ClientId client, BlockId block);

  // Evicts one block from `client`'s full cache to admit a new one.
  // Default: plain LRU discard (+ directory update). N-Chance recirculates
  // singlets; Weighted-LRU picks a different victim.
  virtual void EvictForInsert(ClientId client);

  // Ensures `block` is resident in the server cache (after a disk fetch or
  // a write-through), evicting LRU server blocks as needed through
  // OnServerEvict. No-op if the server cache has zero capacity.
  void InstallInServerCache(BlockId block);

  // Destination of blocks evicted from the server cache. Default: dropped
  // (the disk always has every block). Centrally Coordinated forwards the
  // victim into the globally managed client memory (paper §2.3).
  virtual void OnServerEvict(BlockId block) { (void)block; }

  // Invalidation hook for policy-private stores (private remote caches,
  // the coordinated global cache). `writer` is kNoClient for deletes.
  virtual void OnInvalidateExtra(BlockId block, ClientId writer) {
    (void)block;
    (void)writer;
  }

  // Reboot hook for policy-private stores hosted at `client` (its private
  // remote cache, its hash partition, its share of the global cache).
  virtual void OnClientReboot(ClientId client) { (void)client; }

  // Removes `block` from `client`'s cache and the directory.
  void DropLocal(ClientId client, BlockId block);

  // Delayed writes: if `client`'s copy of `block` is dirty, write it back
  // to the server now. Call before discarding or forwarding a copy.
  void FlushIfDirty(ClientId client, BlockId block);

  // Delayed writes: if another client holds a dirty copy of `block`, the
  // read must be served from that client (the server's/disk's data is
  // stale). Policies without general forwarding (Baseline, Direct, Central,
  // Hash) call this before falling through to disk; returns the outcome of
  // the client-to-client transfer, or nullopt if no dirty copy exists.
  // Under write-through this never fires.
  std::optional<ReadOutcome> MaybeServeFromDirtyHolder(ClientId client, BlockId block);

  bool delayed_writes() const {
    return ctx_->config().write_policy == WritePolicy::kDelayedWrite;
  }

 private:
  // One scheduled write-back.
  struct PendingFlush {
    Micros due;
    ClientId client;
    BlockId block;
  };

  SimContext* ctx_ = nullptr;
  std::deque<PendingFlush> flush_queue_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_POLICY_H_
