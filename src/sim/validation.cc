#include "src/sim/validation.h"

#include <string>

namespace coopfs {

Status CheckCacheDirectoryConsistency(SimContext& context) {
  // Caches -> directory, capacity, and N-Chance metadata.
  for (std::uint32_t c = 0; c < context.num_clients(); ++c) {
    BlockCache& cache = context.client_cache(c);
    if (cache.size() > cache.capacity()) {
      return Status::Internal("client " + std::to_string(c) + " over capacity: " +
                              std::to_string(cache.size()) + " > " +
                              std::to_string(cache.capacity()));
    }
    Status status = Status::Ok();
    cache.ForEachEntry([&](const CacheEntry& entry) {
      if (!status.ok()) {
        return;
      }
      const auto& holders = context.directory().Holders(entry.block);
      bool found = false;
      for (ClientId holder : holders) {
        found = found || holder == c;
      }
      if (!found) {
        status = Status::Internal("client " + std::to_string(c) + " caches " +
                                  entry.block.ToString() + " but is not a directory holder");
        return;
      }
      if ((entry.recirculating() || entry.singlet_flag) && holders.size() != 1) {
        status = Status::Internal("client " + std::to_string(c) + " holds " +
                                  entry.block.ToString() +
                                  " marked singlet but it has " +
                                  std::to_string(holders.size()) + " holders");
      }
    });
    if (!status.ok()) {
      return status;
    }
  }

  // Directory -> caches.
  Status status = Status::Ok();
  context.directory().ForEachBlock([&](BlockId block, const Directory::HolderList& holders) {
    if (!status.ok()) {
      return;
    }
    for (ClientId holder : holders) {
      if (holder >= context.num_clients()) {
        status = Status::Internal("directory holder out of range for " + block.ToString());
        return;
      }
      if (!context.client_cache(holder).Contains(block)) {
        status = Status::Internal("directory says client " + std::to_string(holder) +
                                  " caches " + block.ToString() + " but it does not");
        return;
      }
    }
  });
  if (!status.ok()) {
    return status;
  }

  for (std::uint32_t server = 0; server < context.num_servers(); ++server) {
    if (context.server_cache(server).size() > context.server_cache(server).capacity()) {
      return Status::Internal("server " + std::to_string(server) + " cache over capacity");
    }
  }
  return Status::Ok();
}

}  // namespace coopfs
