// Server queueing model (extension; paper §3 caveat).
//
// The paper reports response times with no queueing, arguing (via Figure 6)
// that the attractive algorithms do not raise server load. This module
// makes that argument quantitative with the standard M/M/1 correction: a
// server of capacity C load-units/second offered lambda units/second has
// utilization rho = lambda/C, and its service latencies inflate by
// 1/(1 - rho). ApplyServerQueueing inflates the server-involved portion of
// a simulation result accordingly, so benches and embedders can ask "at
// what server capacity does Central Coordination stop making sense?"
#ifndef COOPFS_SRC_SIM_QUEUEING_H_
#define COOPFS_SRC_SIM_QUEUEING_H_

#include "src/common/status.h"
#include "src/sim/metrics.h"

namespace coopfs {

// M/M/1 latency inflation factor at utilization `rho` in [0, 1).
// Returns +inf (HUGE_VAL) at or beyond saturation.
double Mm1Inflation(double rho);

// Offered server load in units/second for a result measured over
// `span_seconds` of simulated time.
double OfferedLoadUnitsPerSecond(const SimulationResult& result, double span_seconds);

struct QueueingAdjustment {
  double utilization = 0.0;        // rho.
  double inflation = 1.0;          // 1 / (1 - rho).
  double adjusted_read_time = 0.0; // Average read including queueing delay.
  bool saturated = false;          // rho >= 1: the server cannot keep up.
};

// Adjusts `result`'s average read time for a server able to process
// `capacity_units_per_second`, given the simulated time span. Latency at
// the local level is unaffected; all server-involved time inflates.
// Returns kInvalidArgument for non-positive capacity or span.
Result<QueueingAdjustment> ApplyServerQueueing(const SimulationResult& result,
                                               double span_seconds,
                                               double capacity_units_per_second);

}  // namespace coopfs

#endif  // COOPFS_SRC_SIM_QUEUEING_H_
