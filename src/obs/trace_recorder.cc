#include "src/obs/trace_recorder.h"

#include <cassert>
#include <utility>

namespace coopfs {

void TraceRecorder::BeginRun(std::string policy_name, std::uint32_t num_clients) {
  assert(!span_open_ && "previous run ended mid-read");
  TraceRun run;
  run.policy = std::move(policy_name);
  run.num_clients = num_clients;
  runs_.push_back(std::move(run));
  event_index_ = 0;
  timestamp_ = 0;
  next_seq_ = 0;
  span_open_ = false;
}

TraceRun& TraceRecorder::current_run() {
  assert(!runs_.empty() && "record before BeginRun");
  return runs_.back();
}

void TraceRecorder::BeginRead(ClientId client, BlockId block, bool counted) {
  if (!options_.record_reads) {
    return;
  }
  assert(!span_open_ && "nested read spans");
  open_span_ = ReadSpan{};
  open_span_.event_index = event_index_;
  open_span_.timestamp = timestamp_;
  open_span_.block = block;
  open_span_.client = client;
  open_span_.counted = counted;
  span_open_ = true;
}

void TraceRecorder::AnnotateForward(ClientId holder) {
  if (span_open_) {
    open_span_.forward_holder = holder;
  }
}

void TraceRecorder::EndRead(CacheLevel level, int hops, bool data_transfer, Micros latency) {
  if (!span_open_) {
    return;
  }
  // The span's sequence number is assigned at completion, after any records
  // its eviction chain produced, so a chronological merge of reads and ops
  // by seq shows causes before effects (Chrome trace "X" event convention).
  open_span_.seq = next_seq_++;
  open_span_.level = level;
  open_span_.hops = static_cast<std::uint8_t>(hops);
  open_span_.data_transfer = data_transfer;
  open_span_.latency_us = latency;
  current_run().reads.push_back(open_span_);
  span_open_ = false;
}

void TraceRecorder::RecordWrite(ClientId writer, BlockId block) {
  if (!options_.record_writes) {
    return;
  }
  OpRecord op;
  op.seq = next_seq_++;
  op.event_index = event_index_;
  op.timestamp = timestamp_;
  op.block = block;
  op.client = writer;
  op.kind = TraceOpKind::kWrite;
  current_run().ops.push_back(op);
}

void TraceRecorder::RecordInvalidation(BlockId block, ClientId holder, ClientId writer) {
  if (!options_.record_invalidations) {
    return;
  }
  OpRecord op;
  op.seq = next_seq_++;
  op.event_index = event_index_;
  op.timestamp = timestamp_;
  op.block = block;
  op.client = holder;
  op.peer = writer;
  op.kind = TraceOpKind::kInvalidation;
  current_run().ops.push_back(op);
}

void TraceRecorder::RecordRecirculation(ClientId from, ClientId to, BlockId block, int count) {
  if (span_open_) {
    ++open_span_.recirculations;
  }
  if (!options_.record_recirculations) {
    return;
  }
  OpRecord op;
  op.seq = next_seq_++;
  op.event_index = event_index_;
  op.timestamp = timestamp_;
  op.block = block;
  op.client = from;
  op.peer = to;
  op.kind = TraceOpKind::kRecirculation;
  op.detail = static_cast<std::uint8_t>(count);
  current_run().ops.push_back(op);
}

void TraceRecorder::OnDirectoryOp(DirectoryOpKind kind, BlockId block, ClientId client) {
  if (!options_.record_directory_ops) {
    return;
  }
  OpRecord op;
  op.seq = next_seq_++;
  op.event_index = event_index_;
  op.timestamp = timestamp_;
  op.block = block;
  op.client = client;
  switch (kind) {
    case DirectoryOpKind::kAddHolder:
      op.kind = TraceOpKind::kDirectoryAdd;
      break;
    case DirectoryOpKind::kRemoveHolder:
      op.kind = TraceOpKind::kDirectoryRemove;
      break;
    case DirectoryOpKind::kEraseBlock:
      op.kind = TraceOpKind::kDirectoryErase;
      break;
  }
  current_run().ops.push_back(op);
}

TraceRecorder::LevelTotals TraceRecorder::CountedTotals(const TraceRun& run) {
  LevelTotals totals;
  for (const ReadSpan& span : run.reads) {
    if (!span.counted) {
      continue;
    }
    const auto level = static_cast<std::size_t>(span.level);
    ++totals.counts[level];
    totals.time_us[level] += static_cast<double>(span.latency_us);
    ++totals.counted_reads;
  }
  return totals;
}

}  // namespace coopfs
