#include "src/obs/bench_report.h"

#include "src/common/json.h"
#include "src/common/version.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif

namespace coopfs {

std::string BenchReport::ToJson(int indent) const {
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("schema").Value(kBenchSchema);
  json.Key("coopfs_version").Value(kVersionString);
  json.Key("suite").Value(suite);
  json.Key("host_threads").Value(static_cast<std::uint64_t>(host_threads));
  json.Key("series").BeginArray();
  for (const BenchSeries& s : series) {
    json.BeginObject();
    json.Key("name").Value(s.name);
    json.Key("unit").Value(s.unit);
    json.Key("ops_per_sec").Value(s.ops_per_sec);
    json.Key("wall_s").Value(s.wall_seconds);
    json.Key("items").Value(s.items);
    json.Key("peak_rss_bytes").Value(s.peak_rss_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status BenchReport::WriteFile(const std::string& path) const {
  const std::string document = ToJson();
  COOPFS_RETURN_IF_ERROR(ValidateBenchDocument(document));
  return WriteTextFile(path, document);
}

Status ValidateBenchDocument(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::DataLoss("bench document root is not an object");
  }
  const JsonValue* schema = root.FindString("schema");
  if (schema == nullptr) {
    return Status::DataLoss("bench document missing 'schema'");
  }
  if (schema->AsString() != kBenchSchema) {
    return Status::DataLoss("unsupported bench schema '" + schema->AsString() + "'");
  }
  if (root.FindString("suite") == nullptr) {
    return Status::DataLoss("bench document missing 'suite'");
  }
  const JsonValue* series = root.FindArray("series");
  if (series == nullptr) {
    return Status::DataLoss("bench document missing 'series' array");
  }
  for (std::size_t i = 0; i < series->items().size(); ++i) {
    const JsonValue& entry = series->items()[i];
    const std::string where = "series[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return Status::DataLoss(where + " is not an object");
    }
    if (entry.FindString("name") == nullptr || entry.FindString("unit") == nullptr) {
      return Status::DataLoss(where + " missing 'name'/'unit'");
    }
    for (const char* field : {"ops_per_sec", "wall_s", "items", "peak_rss_bytes"}) {
      if (entry.FindNumber(field) == nullptr) {
        return Status::DataLoss(where + " missing numeric '" + field + "'");
      }
    }
  }
  return Status::Ok();
}

Result<BenchReport> ParseBenchDocument(std::string_view json) {
  COOPFS_RETURN_IF_ERROR(ValidateBenchDocument(json));
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  BenchReport report;
  report.suite = root.FindString("suite")->AsString();
  if (const JsonValue* host = root.FindNumber("host_threads"); host != nullptr) {
    report.host_threads = static_cast<std::uint32_t>(host->AsDouble());
  }
  for (const JsonValue& entry : root.FindArray("series")->items()) {
    BenchSeries series;
    series.name = entry.FindString("name")->AsString();
    series.unit = entry.FindString("unit")->AsString();
    series.ops_per_sec = entry.FindNumber("ops_per_sec")->AsDouble();
    series.wall_seconds = entry.FindNumber("wall_s")->AsDouble();
    series.items = static_cast<std::uint64_t>(entry.FindNumber("items")->AsDouble());
    series.peak_rss_bytes =
        static_cast<std::uint64_t>(entry.FindNumber("peak_rss_bytes")->AsDouble());
    report.series.push_back(std::move(series));
  }
  return report;
}

std::uint64_t CurrentPeakRssBytes() {
#if defined(__linux__)
  // Prefer VmHWM over getrusage: writing "5" to /proc/self/clear_refs (see
  // TryResetPeakRssCounter) rewinds VmHWM but not ru_maxrss, and the
  // rewindable counter is what gives per-series attribution.
  if (std::FILE* status = std::fopen("/proc/self/status", "re"); status != nullptr) {
    char line[256];
    std::uint64_t hwm_kib = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      if (std::sscanf(line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long*>(&hwm_kib)) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(status);
    if (found) {
      return hwm_kib * 1024;
    }
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB.
#endif
#else
  return 0;
#endif
}

bool TryResetPeakRssCounter() {
#if defined(__linux__)
  // "5" resets the peak-RSS high-watermark (VmHWM) for the calling process.
  std::FILE* clear_refs = std::fopen("/proc/self/clear_refs", "we");
  if (clear_refs == nullptr) {
    return false;
  }
  const bool ok = std::fputs("5", clear_refs) >= 0;
  return std::fclose(clear_refs) == 0 && ok;
#else
  return false;
#endif
}

}  // namespace coopfs
