#include "src/obs/bench_report.h"

#include "src/common/json.h"
#include "src/common/version.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace coopfs {

std::string BenchReport::ToJson(int indent) const {
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("schema").Value(kBenchSchema);
  json.Key("coopfs_version").Value(kVersionString);
  json.Key("suite").Value(suite);
  json.Key("series").BeginArray();
  for (const BenchSeries& s : series) {
    json.BeginObject();
    json.Key("name").Value(s.name);
    json.Key("unit").Value(s.unit);
    json.Key("ops_per_sec").Value(s.ops_per_sec);
    json.Key("wall_s").Value(s.wall_seconds);
    json.Key("items").Value(s.items);
    json.Key("peak_rss_bytes").Value(s.peak_rss_bytes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status BenchReport::WriteFile(const std::string& path) const {
  const std::string document = ToJson();
  COOPFS_RETURN_IF_ERROR(ValidateBenchDocument(document));
  return WriteTextFile(path, document);
}

Status ValidateBenchDocument(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::DataLoss("bench document root is not an object");
  }
  const JsonValue* schema = root.FindString("schema");
  if (schema == nullptr) {
    return Status::DataLoss("bench document missing 'schema'");
  }
  if (schema->AsString() != kBenchSchema) {
    return Status::DataLoss("unsupported bench schema '" + schema->AsString() + "'");
  }
  if (root.FindString("suite") == nullptr) {
    return Status::DataLoss("bench document missing 'suite'");
  }
  const JsonValue* series = root.FindArray("series");
  if (series == nullptr) {
    return Status::DataLoss("bench document missing 'series' array");
  }
  for (std::size_t i = 0; i < series->items().size(); ++i) {
    const JsonValue& entry = series->items()[i];
    const std::string where = "series[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return Status::DataLoss(where + " is not an object");
    }
    if (entry.FindString("name") == nullptr || entry.FindString("unit") == nullptr) {
      return Status::DataLoss(where + " missing 'name'/'unit'");
    }
    for (const char* field : {"ops_per_sec", "wall_s", "items", "peak_rss_bytes"}) {
      if (entry.FindNumber(field) == nullptr) {
        return Status::DataLoss(where + " missing numeric '" + field + "'");
      }
    }
  }
  return Status::Ok();
}

std::uint64_t CurrentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB.
#endif
#else
  return 0;
#endif
}

}  // namespace coopfs
