// Scaling-efficiency gate for the parallel_sweep_<T>t bench series.
//
// The paper's figures are produced by sweeping many simulator configurations
// (sweep.h), and the ROADMAP's larger scenario matrices are only affordable
// if adding sweep threads adds throughput. This gate turns that requirement
// into a CI check over a "coopfs.bench/v1" document:
//
//   * 2t/1t floor — the 2-thread sweep must reach at least
//     `efficiency_floor x min(2, host_threads)` times the 1-thread
//     throughput. On a multi-core host with the default floor of 0.85 that
//     is the 1.7x requirement; on a 1-core host (where 2 threads cannot
//     physically beat 1) the attainable speedup is 1 and the floor degrades
//     to "within 15% of serial", catching regressions like a reintroduced
//     lock convoy without demanding impossible speedups.
//   * monotonicity — throughput must not collapse as threads are added:
//     each wider parallel_sweep series must stay within
//     `monotonicity_tolerance` of the best narrower one. Widths beyond
//     host_threads cannot go faster, but they must not fall off a cliff.
//
// The gate is host-aware through the document's `host_threads` field, so
// the same committed baseline passes on the 1-core box that produced it and
// the multi-core CI runner re-measuring it. tools/bench_compare wires this
// next to the replay-regression gate; docs/performance.md describes the
// methodology.
#ifndef COOPFS_SRC_OBS_SCALING_GATE_H_
#define COOPFS_SRC_OBS_SCALING_GATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/bench_report.h"

namespace coopfs {

struct ScalingGateOptions {
  // Fraction of the attainable speedup the 2-thread sweep must reach:
  // ops(2t) >= floor x min(2, host_threads) x ops(1t).
  double efficiency_floor = 0.85;

  // Widening the sweep may not lose more than this fraction of the best
  // narrower width's throughput: ops(T) >= tolerance x max(ops(T') : T'<T).
  double monotonicity_tolerance = 0.90;

  // Tolerance applied instead of `monotonicity_tolerance` to widths beyond
  // the document's host_threads. The sweep clamps workers to the core
  // count, so those series re-measure the widest real configuration — pure
  // run-to-run noise, not scaling — and need more headroom. Still tight
  // enough to catch a genuine collapse (the pre-arena lock convoy measured
  // 0.69x).
  double oversubscribed_tolerance = 0.75;
};

struct ScalingGateResult {
  // False when the document has no parallel_sweep_1t series or no wider
  // companion — nothing to gate (e.g. a --dry-run document).
  bool applicable = false;
  bool passed = true;
  std::vector<std::string> failures;  // One line per violated check.
  std::vector<std::string> notes;     // Skipped/degraded checks, context.
};

// Evaluates the scaling gate over `report`'s parallel_sweep_<T>t series.
// A document without `host_threads` (0) fails the gate when it is
// applicable: the check cannot be interpreted without knowing the host.
ScalingGateResult EvaluateScalingGate(const BenchReport& report,
                                      const ScalingGateOptions& options = {});

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_SCALING_GATE_H_
