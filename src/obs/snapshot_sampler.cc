#include "src/obs/snapshot_sampler.h"

#include <algorithm>
#include <cassert>

#include "src/common/json.h"
#include "src/common/version.h"

namespace coopfs {

namespace {

// Schema trigger names, index-aligned with SampleTrigger.
constexpr const char* kTriggerNames[] = {"interval", "warmup_end", "run_end"};

}  // namespace

const char* SampleTriggerName(SampleTrigger trigger) {
  return kTriggerNames[static_cast<std::size_t>(trigger)];
}

bool SampleTriggerFromName(std::string_view name, SampleTrigger& trigger) {
  for (std::size_t i = 0; i < std::size(kTriggerNames); ++i) {
    if (name == kTriggerNames[i]) {
      trigger = static_cast<SampleTrigger>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t StateSample::CountedReads() const {
  std::uint64_t total = 0;
  for (std::uint64_t count : level_reads) {
    total += count;
  }
  return total;
}

double StateSample::CountedTimeUs() const {
  double total = 0.0;
  for (double time : level_time_us) {
    total += time;
  }
  return total;
}

void SnapshotSampler::BeginRun(std::string policy, std::uint32_t num_clients, Micros interval,
                               Micros start_time) {
  SnapshotRun run;
  run.policy = std::move(policy);
  run.num_clients = num_clients;
  run.interval = interval > 0 ? interval : 0;
  run.start_time = start_time;
  runs_.push_back(std::move(run));

  interval_ = runs_.back().interval;
  next_boundary_ = interval_ > 0 ? start_time + interval_ : 0;
  events_replayed_ = 0;
  window_reads_ = 0;
  level_reads_ = {};
  level_time_us_ = {};
  clients_.assign(options_.include_per_client ? num_clients : 0, ClientWindowStats{});
  pending_holder_ = kNoClient;
}

void SnapshotSampler::CaptureDue(Micros timestamp, const StateProbe& probe) {
  // One sample per crossed boundary: the first carries the window's
  // accumulators, the rest are explicit zero-read intervals (the gauges are
  // identical — no event ran in between).
  while (interval_ > 0 && timestamp >= next_boundary_) {
    Emit(SampleTrigger::kInterval, next_boundary_, probe);
    next_boundary_ += interval_;
  }
}

void SnapshotSampler::CaptureWarmupEnd(Micros timestamp, const StateProbe& probe) {
  if (!options_.sample_warmup_end) {
    return;
  }
  Emit(SampleTrigger::kWarmupEnd, timestamp, probe);
}

void SnapshotSampler::CaptureRunEnd(Micros timestamp, const StateProbe& probe) {
  Emit(SampleTrigger::kRunEnd, timestamp, probe);
}

void SnapshotSampler::RecordRead(ClientId client, CacheLevel level, Micros latency,
                                 bool counted) {
  ++window_reads_;
  const ClientId holder = pending_holder_;
  pending_holder_ = kNoClient;
  if (!counted) {
    return;
  }
  const auto level_index = static_cast<std::size_t>(level);
  ++level_reads_[level_index];
  level_time_us_[level_index] += static_cast<double>(latency);
  if (clients_.empty()) {
    return;
  }
  if (client < clients_.size()) {
    ++clients_[client].reads;
    if (holder != kNoClient && holder < clients_.size()) {
      ++clients_[client].benefited;
      ++clients_[holder].donated;
    }
  }
}

void SnapshotSampler::Emit(SampleTrigger trigger, Micros time, const StateProbe& probe) {
  assert(!runs_.empty() && "Emit before BeginRun");
  SnapshotRun& run = runs_.back();
  StateSample sample;
  sample.index = run.samples.size();
  sample.trigger = trigger;
  sample.time = time;
  sample.events_replayed = events_replayed_;
  sample.window_reads = window_reads_;
  sample.level_reads = level_reads_;
  sample.level_time_us = level_time_us_;
  sample.clients = clients_;
  sample.state = probe;
  run.samples.push_back(std::move(sample));

  window_reads_ = 0;
  level_reads_ = {};
  level_time_us_ = {};
  std::fill(clients_.begin(), clients_.end(), ClientWindowStats{});
}

// ---- JSONL serialization ----

namespace {

void AppendLine(std::string& out, const JsonWriter& json) {
  if (!out.empty()) {
    out += '\n';
  }
  out += json.str();
}

void WriteSampleLine(std::string& out, std::size_t run_index, const StateSample& sample) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").Value("sample");
  json.Key("run").Value(static_cast<std::uint64_t>(run_index));
  json.Key("i").Value(sample.index);
  json.Key("trigger").Value(SampleTriggerName(sample.trigger));
  json.Key("ts").Value(static_cast<std::int64_t>(sample.time));
  json.Key("events").Value(sample.events_replayed);
  json.Key("reads").Value(sample.window_reads);
  json.Key("counted").BeginArray();
  for (std::uint64_t count : sample.level_reads) {
    json.Value(count);
  }
  json.EndArray();
  json.Key("time_us").BeginArray();
  for (double time : sample.level_time_us) {
    json.Value(time);
  }
  json.EndArray();
  json.Key("client_blocks").BeginArray();
  json.Value(sample.state.client_blocks_used).Value(sample.state.client_blocks_capacity);
  json.EndArray();
  json.Key("server_blocks").BeginArray();
  json.Value(sample.state.server_blocks_used).Value(sample.state.server_blocks_capacity);
  json.EndArray();
  json.Key("dir_blocks").Value(sample.state.directory_blocks);
  json.Key("singlets").Value(sample.state.singlet_blocks);
  json.Key("duplicates").Value(sample.state.duplicate_blocks);
  json.Key("recirc").Value(sample.state.recirculating_copies);
  json.Key("dirty").Value(sample.state.dirty_blocks);
  json.Key("load").BeginArray();
  for (std::uint64_t units : sample.state.load_units) {
    json.Value(units);
  }
  json.EndArray();
  if (!sample.clients.empty()) {
    json.Key("clients").BeginArray();
    for (const ClientWindowStats& client : sample.clients) {
      json.BeginArray();
      json.Value(client.reads).Value(client.donated).Value(client.benefited);
      json.EndArray();
    }
    json.EndArray();
  }
  json.EndObject();
  AppendLine(out, json);
}

}  // namespace

std::string TimeseriesToJsonl(const std::vector<SnapshotRun>& runs,
                              const TraceExportMetadata& metadata) {
  std::string out;
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("type").Value("header");
    json.Key("schema").Value(kTimeseriesSchema);
    json.Key("coopfs_version").Value(kVersionString);
    json.Key("seed").Value(metadata.seed);
    json.Key("trace_events").Value(metadata.trace_events);
    if (!metadata.workload.empty()) {
      json.Key("workload").Value(metadata.workload);
    }
    json.EndObject();
    AppendLine(out, json);
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const SnapshotRun& run = runs[r];
    {
      JsonWriter json;
      json.BeginObject();
      json.Key("type").Value("run");
      json.Key("run").Value(static_cast<std::uint64_t>(r));
      json.Key("policy").Value(run.policy);
      json.Key("num_clients").Value(static_cast<std::uint64_t>(run.num_clients));
      json.Key("interval_us").Value(static_cast<std::int64_t>(run.interval));
      json.Key("start_ts").Value(static_cast<std::int64_t>(run.start_time));
      json.EndObject();
      AppendLine(out, json);
    }
    for (const StateSample& sample : run.samples) {
      WriteSampleLine(out, r, sample);
    }
  }
  return out;
}

Status WriteTimeseriesJsonl(const std::vector<SnapshotRun>& runs,
                            const TraceExportMetadata& metadata, const std::string& path) {
  const std::string document = TimeseriesToJsonl(runs, metadata);
  COOPFS_RETURN_IF_ERROR(ValidateTimeseriesDocument(document));
  return WriteTextFile(path, document);
}

// ---- JSONL parsing ----

namespace {

Status LineError(std::size_t line_number, const std::string& message) {
  return Status::DataLoss("timeseries line " + std::to_string(line_number) + ": " + message);
}

// Fetches a required non-negative integral field.
bool GetUint(const JsonValue& value, std::string_view key, std::uint64_t& out) {
  const JsonValue* field = value.FindNumber(key);
  if (field == nullptr || !field->IsIntegral() || field->AsInt() < 0) {
    return false;
  }
  out = static_cast<std::uint64_t>(field->AsInt());
  return true;
}

// Fetches a fixed-length array of non-negative integers.
template <std::size_t N>
bool GetUintArray(const JsonValue& value, std::string_view key,
                  std::array<std::uint64_t, N>& out) {
  const JsonValue* field = value.FindArray(key);
  if (field == nullptr || field->size() != N) {
    return false;
  }
  for (std::size_t i = 0; i < N; ++i) {
    const JsonValue& item = field->items()[i];
    if (!item.IsIntegral() || item.AsInt() < 0) {
      return false;
    }
    out[i] = static_cast<std::uint64_t>(item.AsInt());
  }
  return true;
}

Status ParseSampleLine(const JsonValue& value, std::size_t line_number, SnapshotRun& run) {
  StateSample sample;
  std::uint64_t index = 0;
  if (!GetUint(value, "i", index) || !GetUint(value, "events", sample.events_replayed) ||
      !GetUint(value, "reads", sample.window_reads)) {
    return LineError(line_number, "sample missing integral field");
  }
  if (index != run.samples.size()) {
    return LineError(line_number, "sample index out of order");
  }
  sample.index = index;
  const JsonValue* trigger = value.FindString("trigger");
  if (trigger == nullptr || !SampleTriggerFromName(trigger->AsString(), sample.trigger)) {
    return LineError(line_number, "sample has unknown 'trigger'");
  }
  const JsonValue* ts = value.FindNumber("ts");
  if (ts == nullptr || !ts->IsIntegral()) {
    return LineError(line_number, "sample missing 'ts'");
  }
  sample.time = ts->AsInt();
  if (!GetUintArray(value, "counted", sample.level_reads)) {
    return LineError(line_number, "sample 'counted' must have one entry per cache level");
  }
  const JsonValue* times = value.FindArray("time_us");
  if (times == nullptr || times->size() != kNumCacheLevels) {
    return LineError(line_number, "sample 'time_us' must have one entry per cache level");
  }
  for (std::size_t i = 0; i < kNumCacheLevels; ++i) {
    const JsonValue& item = times->items()[i];
    if (!item.is_number()) {
      return LineError(line_number, "sample 'time_us' entries must be numbers");
    }
    sample.level_time_us[i] = item.AsDouble();
  }
  std::array<std::uint64_t, 2> client_blocks{};
  std::array<std::uint64_t, 2> server_blocks{};
  if (!GetUintArray(value, "client_blocks", client_blocks) ||
      !GetUintArray(value, "server_blocks", server_blocks)) {
    return LineError(line_number, "sample missing occupancy pair");
  }
  sample.state.client_blocks_used = client_blocks[0];
  sample.state.client_blocks_capacity = client_blocks[1];
  sample.state.server_blocks_used = server_blocks[0];
  sample.state.server_blocks_capacity = server_blocks[1];
  if (!GetUint(value, "dir_blocks", sample.state.directory_blocks) ||
      !GetUint(value, "singlets", sample.state.singlet_blocks) ||
      !GetUint(value, "duplicates", sample.state.duplicate_blocks) ||
      !GetUint(value, "recirc", sample.state.recirculating_copies) ||
      !GetUint(value, "dirty", sample.state.dirty_blocks)) {
    return LineError(line_number, "sample missing state gauge");
  }
  if (sample.state.singlet_blocks + sample.state.duplicate_blocks !=
      sample.state.directory_blocks) {
    return LineError(line_number, "singlets + duplicates != dir_blocks");
  }
  if (!GetUintArray(value, "load", sample.state.load_units)) {
    return LineError(line_number, "sample 'load' must have one entry per load kind");
  }
  if (sample.CountedReads() > sample.window_reads) {
    return LineError(line_number, "counted reads exceed window reads");
  }
  if (const JsonValue* clients = value.FindArray("clients"); clients != nullptr) {
    sample.clients.reserve(clients->size());
    for (const JsonValue& entry : clients->items()) {
      if (!entry.is_array() || entry.size() != 3) {
        return LineError(line_number, "client entries must be [reads, donated, benefited]");
      }
      ClientWindowStats stats;
      for (std::size_t i = 0; i < 3; ++i) {
        const JsonValue& item = entry.items()[i];
        if (!item.IsIntegral() || item.AsInt() < 0) {
          return LineError(line_number, "client entries must be non-negative integers");
        }
        (i == 0 ? stats.reads : i == 1 ? stats.donated : stats.benefited) =
            static_cast<std::uint64_t>(item.AsInt());
      }
      sample.clients.push_back(stats);
    }
  }
  run.samples.push_back(std::move(sample));
  return Status::Ok();
}

}  // namespace

Result<TimeseriesDocument> ParseTimeseriesJsonl(std::string_view text) {
  TimeseriesDocument document;
  bool saw_header = false;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return LineError(line_number, parsed.status().ToString());
    }
    const JsonValue* type = parsed->FindString("type");
    if (type == nullptr) {
      return LineError(line_number, "missing 'type'");
    }
    if (type->AsString() == "header") {
      if (saw_header) {
        return LineError(line_number, "duplicate header");
      }
      const JsonValue* schema = parsed->FindString("schema");
      if (schema == nullptr || schema->AsString() != kTimeseriesSchema) {
        return LineError(line_number, "missing schema tag '" + std::string(kTimeseriesSchema) +
                                          "'");
      }
      const JsonValue* version = parsed->FindString("coopfs_version");
      if (version == nullptr || !GetUint(*parsed, "seed", document.metadata.seed) ||
          !GetUint(*parsed, "trace_events", document.metadata.trace_events)) {
        return LineError(line_number, "header missing version/seed/trace_events");
      }
      document.coopfs_version = version->AsString();
      if (const JsonValue* workload = parsed->FindString("workload"); workload != nullptr) {
        document.metadata.workload = workload->AsString();
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return LineError(line_number, "document must start with a header line");
    }
    std::uint64_t run_index = 0;
    if (!GetUint(*parsed, "run", run_index)) {
      return LineError(line_number, "missing 'run'");
    }
    if (type->AsString() == "run") {
      if (run_index != document.runs.size()) {
        return LineError(line_number, "run index out of order");
      }
      SnapshotRun run;
      const JsonValue* policy = parsed->FindString("policy");
      std::uint64_t num_clients = 0;
      if (policy == nullptr || !GetUint(*parsed, "num_clients", num_clients)) {
        return LineError(line_number, "run missing 'policy' or 'num_clients'");
      }
      const JsonValue* interval = parsed->FindNumber("interval_us");
      const JsonValue* start = parsed->FindNumber("start_ts");
      if (interval == nullptr || !interval->IsIntegral() || interval->AsInt() < 0 ||
          start == nullptr || !start->IsIntegral()) {
        return LineError(line_number, "run missing 'interval_us' or 'start_ts'");
      }
      run.policy = policy->AsString();
      run.num_clients = static_cast<std::uint32_t>(num_clients);
      run.interval = interval->AsInt();
      run.start_time = start->AsInt();
      document.runs.push_back(std::move(run));
      continue;
    }
    if (type->AsString() == "sample") {
      if (document.runs.empty() || run_index != document.runs.size() - 1) {
        return LineError(line_number, "sample outside its run");
      }
      COOPFS_RETURN_IF_ERROR(ParseSampleLine(*parsed, line_number, document.runs.back()));
      continue;
    }
    return LineError(line_number, "unknown line type '" + type->AsString() + "'");
  }
  if (!saw_header) {
    return Status::DataLoss("timeseries document has no header line");
  }
  return document;
}

Status ValidateTimeseriesDocument(std::string_view text) {
  return ParseTimeseriesJsonl(text).status();
}

}  // namespace coopfs
