#include "src/obs/trace_sink.h"

#include <string>

#include "src/common/json.h"
#include "src/common/version.h"

namespace coopfs {

namespace {

// Schema type tag per op kind, index-aligned with TraceOpKind.
constexpr const char* kOpTypeNames[] = {
    "write", "inval", "recirc", "dir_add", "dir_remove", "dir_erase",
};

constexpr const char* kLevelNames[kNumCacheLevels] = {
    "local_memory",
    "remote_client",
    "server_memory",
    "server_disk",
};

}  // namespace

const char* CacheLevelSchemaName(CacheLevel level) {
  return kLevelNames[static_cast<std::size_t>(level)];
}

bool CacheLevelFromSchemaName(std::string_view name, CacheLevel& level) {
  for (std::size_t i = 0; i < kNumCacheLevels; ++i) {
    if (name == kLevelNames[i]) {
      level = static_cast<CacheLevel>(i);
      return true;
    }
  }
  return false;
}

namespace {

bool OpKindFromTypeName(std::string_view name, TraceOpKind& kind) {
  for (std::size_t i = 0; i < std::size(kOpTypeNames); ++i) {
    if (name == kOpTypeNames[i]) {
      kind = static_cast<TraceOpKind>(i);
      return true;
    }
  }
  return false;
}

void AppendLine(std::string& out, const JsonWriter& json) {
  if (!out.empty()) {
    out += '\n';
  }
  out += json.str();
}

void WriteReadLine(std::string& out, std::size_t run_index, const ReadSpan& span) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").Value("read");
  json.Key("run").Value(static_cast<std::uint64_t>(run_index));
  json.Key("seq").Value(span.seq);
  json.Key("i").Value(span.event_index);
  json.Key("ts").Value(static_cast<std::int64_t>(span.timestamp));
  json.Key("client").Value(static_cast<std::uint64_t>(span.client));
  json.Key("file").Value(static_cast<std::uint64_t>(span.block.file));
  json.Key("block").Value(static_cast<std::uint64_t>(span.block.block));
  json.Key("level").Value(CacheLevelSchemaName(span.level));
  json.Key("hops").Value(static_cast<std::uint64_t>(span.hops));
  json.Key("xfer").Value(span.data_transfer);
  json.Key("lat_us").Value(static_cast<std::int64_t>(span.latency_us));
  json.Key("counted").Value(span.counted);
  if (span.forward_holder != kNoClient) {
    json.Key("holder").Value(static_cast<std::uint64_t>(span.forward_holder));
  }
  if (span.recirculations != 0) {
    json.Key("recirc").Value(static_cast<std::uint64_t>(span.recirculations));
  }
  json.EndObject();
  AppendLine(out, json);
}

void WriteOpLine(std::string& out, std::size_t run_index, const OpRecord& op) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").Value(kOpTypeNames[static_cast<std::size_t>(op.kind)]);
  json.Key("run").Value(static_cast<std::uint64_t>(run_index));
  json.Key("seq").Value(op.seq);
  json.Key("i").Value(op.event_index);
  json.Key("ts").Value(static_cast<std::int64_t>(op.timestamp));
  if (op.client != kNoClient) {
    json.Key("client").Value(static_cast<std::uint64_t>(op.client));
  }
  json.Key("file").Value(static_cast<std::uint64_t>(op.block.file));
  json.Key("block").Value(static_cast<std::uint64_t>(op.block.block));
  if (op.kind == TraceOpKind::kInvalidation && op.peer != kNoClient) {
    json.Key("writer").Value(static_cast<std::uint64_t>(op.peer));
  }
  if (op.kind == TraceOpKind::kRecirculation) {
    json.Key("peer").Value(static_cast<std::uint64_t>(op.peer));
    json.Key("count").Value(static_cast<std::uint64_t>(op.detail));
  }
  json.EndObject();
  AppendLine(out, json);
}

}  // namespace

std::string EventsToJsonl(const std::vector<TraceRun>& runs,
                          const TraceExportMetadata& metadata) {
  std::string out;
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("type").Value("header");
    json.Key("schema").Value(kEventsSchema);
    json.Key("coopfs_version").Value(kVersionString);
    json.Key("seed").Value(metadata.seed);
    json.Key("trace_events").Value(metadata.trace_events);
    if (!metadata.workload.empty()) {
      json.Key("workload").Value(metadata.workload);
    }
    json.EndObject();
    AppendLine(out, json);
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const TraceRun& run = runs[r];
    {
      JsonWriter json;
      json.BeginObject();
      json.Key("type").Value("run");
      json.Key("run").Value(static_cast<std::uint64_t>(r));
      json.Key("policy").Value(run.policy);
      json.Key("num_clients").Value(static_cast<std::uint64_t>(run.num_clients));
      json.EndObject();
      AppendLine(out, json);
    }
    // Reads and ops are each seq-sorted (append order); merge to one
    // chronological stream.
    std::size_t ri = 0;
    std::size_t oi = 0;
    while (ri < run.reads.size() || oi < run.ops.size()) {
      const bool take_read =
          oi >= run.ops.size() ||
          (ri < run.reads.size() && run.reads[ri].seq < run.ops[oi].seq);
      if (take_read) {
        WriteReadLine(out, r, run.reads[ri++]);
      } else {
        WriteOpLine(out, r, run.ops[oi++]);
      }
    }
  }
  return out;
}

Status WriteEventsJsonl(const std::vector<TraceRun>& runs, const TraceExportMetadata& metadata,
                        const std::string& path) {
  const std::string document = EventsToJsonl(runs, metadata);
  COOPFS_RETURN_IF_ERROR(ValidateEventsDocument(document));
  return WriteTextFile(path, document);
}

namespace {

Status LineError(std::size_t line_number, const std::string& message) {
  return Status::DataLoss("events line " + std::to_string(line_number) + ": " + message);
}

// Fetches a required non-negative integral field.
bool GetUint(const JsonValue& value, std::string_view key, std::uint64_t& out) {
  const JsonValue* field = value.FindNumber(key);
  if (field == nullptr || !field->IsIntegral() || field->AsInt() < 0) {
    return false;
  }
  out = static_cast<std::uint64_t>(field->AsInt());
  return true;
}

Status ParseReadLine(const JsonValue& value, std::size_t line_number, TraceRun& run) {
  ReadSpan span;
  std::uint64_t seq = 0;
  std::uint64_t index = 0;
  std::uint64_t client = 0;
  std::uint64_t file = 0;
  std::uint64_t block = 0;
  std::uint64_t hops = 0;
  if (!GetUint(value, "seq", seq) || !GetUint(value, "i", index) ||
      !GetUint(value, "client", client) || !GetUint(value, "file", file) ||
      !GetUint(value, "block", block) || !GetUint(value, "hops", hops)) {
    return LineError(line_number, "read missing integral field");
  }
  const JsonValue* ts = value.FindNumber("ts");
  const JsonValue* lat = value.FindNumber("lat_us");
  if (ts == nullptr || !ts->IsIntegral() || lat == nullptr || !lat->IsIntegral()) {
    return LineError(line_number, "read missing 'ts' or 'lat_us'");
  }
  const JsonValue* level = value.FindString("level");
  if (level == nullptr || !CacheLevelFromSchemaName(level->AsString(), span.level)) {
    return LineError(line_number, "read has unknown 'level'");
  }
  const JsonValue* xfer = value.Find("xfer");
  const JsonValue* counted = value.Find("counted");
  if (xfer == nullptr || !xfer->is_bool() || counted == nullptr || !counted->is_bool()) {
    return LineError(line_number, "read missing boolean 'xfer' or 'counted'");
  }
  span.seq = seq;
  span.event_index = index;
  span.timestamp = ts->AsInt();
  span.latency_us = lat->AsInt();
  span.client = static_cast<ClientId>(client);
  span.block = BlockId{static_cast<FileId>(file), static_cast<BlockIndex>(block)};
  span.hops = static_cast<std::uint8_t>(hops);
  span.data_transfer = xfer->AsBool();
  span.counted = counted->AsBool();
  if (std::uint64_t holder = 0; GetUint(value, "holder", holder)) {
    span.forward_holder = static_cast<ClientId>(holder);
  }
  if (std::uint64_t recirc = 0; GetUint(value, "recirc", recirc)) {
    span.recirculations = static_cast<std::uint32_t>(recirc);
  }
  run.reads.push_back(span);
  return Status::Ok();
}

Status ParseOpLine(const JsonValue& value, TraceOpKind kind, std::size_t line_number,
                   TraceRun& run) {
  OpRecord op;
  op.kind = kind;
  std::uint64_t seq = 0;
  std::uint64_t index = 0;
  std::uint64_t file = 0;
  std::uint64_t block = 0;
  if (!GetUint(value, "seq", seq) || !GetUint(value, "i", index) ||
      !GetUint(value, "file", file) || !GetUint(value, "block", block)) {
    return LineError(line_number, "op missing integral field");
  }
  const JsonValue* ts = value.FindNumber("ts");
  if (ts == nullptr || !ts->IsIntegral()) {
    return LineError(line_number, "op missing 'ts'");
  }
  op.seq = seq;
  op.event_index = index;
  op.timestamp = ts->AsInt();
  op.block = BlockId{static_cast<FileId>(file), static_cast<BlockIndex>(block)};
  if (std::uint64_t client = 0; GetUint(value, "client", client)) {
    op.client = static_cast<ClientId>(client);
  }
  if (kind == TraceOpKind::kInvalidation) {
    if (std::uint64_t writer = 0; GetUint(value, "writer", writer)) {
      op.peer = static_cast<ClientId>(writer);
    }
  }
  if (kind == TraceOpKind::kRecirculation) {
    std::uint64_t peer = 0;
    std::uint64_t count = 0;
    if (!GetUint(value, "peer", peer) || !GetUint(value, "count", count)) {
      return LineError(line_number, "recirc missing 'peer' or 'count'");
    }
    op.peer = static_cast<ClientId>(peer);
    op.detail = static_cast<std::uint8_t>(count);
  }
  run.ops.push_back(op);
  return Status::Ok();
}

}  // namespace

Result<EventsDocument> ParseEventsJsonl(std::string_view text) {
  EventsDocument document;
  bool saw_header = false;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? std::string_view::npos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return LineError(line_number, parsed.status().ToString());
    }
    const JsonValue& value = *parsed;
    const JsonValue* type = value.FindString("type");
    if (type == nullptr) {
      return LineError(line_number, "missing 'type'");
    }
    const std::string& type_name = type->AsString();
    if (type_name == "header") {
      if (saw_header) {
        return LineError(line_number, "duplicate header");
      }
      const JsonValue* schema = value.FindString("schema");
      if (schema == nullptr) {
        return LineError(line_number, "header missing 'schema'");
      }
      if (schema->AsString() != kEventsSchema) {
        return LineError(line_number, "unsupported schema '" + schema->AsString() + "'");
      }
      if (const JsonValue* version = value.FindString("coopfs_version"); version != nullptr) {
        document.coopfs_version = version->AsString();
      }
      GetUint(value, "seed", document.metadata.seed);
      GetUint(value, "trace_events", document.metadata.trace_events);
      if (const JsonValue* workload = value.FindString("workload"); workload != nullptr) {
        document.metadata.workload = workload->AsString();
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return LineError(line_number, "first line must be the header");
    }
    if (type_name == "run") {
      std::uint64_t run_index = 0;
      std::uint64_t num_clients = 0;
      const JsonValue* policy = value.FindString("policy");
      if (policy == nullptr || !GetUint(value, "run", run_index) ||
          !GetUint(value, "num_clients", num_clients)) {
        return LineError(line_number, "run missing 'run', 'policy', or 'num_clients'");
      }
      if (run_index != document.runs.size()) {
        return LineError(line_number, "run index out of order");
      }
      TraceRun run;
      run.policy = policy->AsString();
      run.num_clients = static_cast<std::uint32_t>(num_clients);
      document.runs.push_back(std::move(run));
      continue;
    }
    if (document.runs.empty()) {
      return LineError(line_number, "record before any run line");
    }
    std::uint64_t run_index = 0;
    if (!GetUint(value, "run", run_index) || run_index != document.runs.size() - 1) {
      return LineError(line_number, "record 'run' does not match current run");
    }
    TraceRun& run = document.runs.back();
    if (type_name == "read") {
      COOPFS_RETURN_IF_ERROR(ParseReadLine(value, line_number, run));
      continue;
    }
    if (TraceOpKind kind; OpKindFromTypeName(type_name, kind)) {
      COOPFS_RETURN_IF_ERROR(ParseOpLine(value, kind, line_number, run));
      continue;
    }
    return LineError(line_number, "unknown record type '" + type_name + "'");
  }
  if (!saw_header) {
    return Status::DataLoss("events document has no header line");
  }
  return document;
}

Status ValidateEventsDocument(std::string_view text) {
  return ParseEventsJsonl(text).status();
}

std::string PerfettoTraceJson(const std::vector<TraceRun>& runs) {
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit").Value("ms");
  json.Key("traceEvents").BeginArray();
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const TraceRun& run = runs[r];
    json.BeginObject();
    json.Key("name").Value("process_name");
    json.Key("ph").Value("M");
    json.Key("pid").Value(static_cast<std::uint64_t>(r));
    json.Key("args").BeginObject().Key("name").Value(run.policy).EndObject();
    json.EndObject();
    for (std::uint32_t c = 0; c < run.num_clients; ++c) {
      json.BeginObject();
      json.Key("name").Value("thread_name");
      json.Key("ph").Value("M");
      json.Key("pid").Value(static_cast<std::uint64_t>(r));
      json.Key("tid").Value(static_cast<std::uint64_t>(c));
      json.Key("args")
          .BeginObject()
          .Key("name")
          .Value("client " + std::to_string(c))
          .EndObject();
      json.EndObject();
    }
    std::size_t ri = 0;
    std::size_t oi = 0;
    while (ri < run.reads.size() || oi < run.ops.size()) {
      const bool take_read =
          oi >= run.ops.size() ||
          (ri < run.reads.size() && run.reads[ri].seq < run.ops[oi].seq);
      if (take_read) {
        const ReadSpan& span = run.reads[ri++];
        json.BeginObject();
        json.Key("name").Value("read " + span.block.ToString());
        json.Key("cat").Value(std::string("read,") + CacheLevelSchemaName(span.level));
        json.Key("ph").Value("X");
        json.Key("ts").Value(static_cast<std::int64_t>(span.timestamp));
        json.Key("dur").Value(static_cast<std::int64_t>(span.latency_us));
        json.Key("pid").Value(static_cast<std::uint64_t>(r));
        json.Key("tid").Value(static_cast<std::uint64_t>(span.client));
        json.Key("args").BeginObject();
        json.Key("level").Value(CacheLevelSchemaName(span.level));
        json.Key("hops").Value(static_cast<std::uint64_t>(span.hops));
        json.Key("event_index").Value(span.event_index);
        json.Key("counted").Value(span.counted);
        if (span.forward_holder != kNoClient) {
          json.Key("holder").Value(static_cast<std::uint64_t>(span.forward_holder));
        }
        if (span.recirculations != 0) {
          json.Key("recirculations").Value(static_cast<std::uint64_t>(span.recirculations));
        }
        json.EndObject();
        json.EndObject();
      } else {
        const OpRecord& op = run.ops[oi++];
        const char* kind_name = kOpTypeNames[static_cast<std::size_t>(op.kind)];
        json.BeginObject();
        json.Key("name").Value(std::string(kind_name) + " " + op.block.ToString());
        json.Key("cat").Value(kind_name);
        json.Key("ph").Value("i");
        json.Key("ts").Value(static_cast<std::int64_t>(op.timestamp));
        json.Key("pid").Value(static_cast<std::uint64_t>(r));
        if (op.client != kNoClient) {
          json.Key("tid").Value(static_cast<std::uint64_t>(op.client));
          json.Key("s").Value("t");
        } else {
          json.Key("tid").Value(std::uint64_t{0});
          json.Key("s").Value("p");
        }
        json.Key("args").BeginObject();
        json.Key("event_index").Value(op.event_index);
        if (op.kind == TraceOpKind::kInvalidation && op.peer != kNoClient) {
          json.Key("writer").Value(static_cast<std::uint64_t>(op.peer));
        }
        if (op.kind == TraceOpKind::kRecirculation) {
          json.Key("peer").Value(static_cast<std::uint64_t>(op.peer));
          json.Key("count").Value(static_cast<std::uint64_t>(op.detail));
        }
        json.EndObject();
        json.EndObject();
      }
    }
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WritePerfettoTrace(const std::vector<TraceRun>& runs, const std::string& path) {
  return WriteTextFile(path, PerfettoTraceJson(runs));
}

}  // namespace coopfs
