// Per-event trace recording (observability subsystem).
//
// SimCounters (src/sim/counters.h) says how often each replay mechanism
// fired; TraceRecorder says *which* event fired it. When a recorder is
// attached via SimulationConfig::trace_recorder, the simulator opens one
// ReadSpan per replayed read — requester, block, hit level, forward target,
// N-Chance recirculations triggered, latency charged — and the policy layer
// appends discrete OpRecords for writes, invalidations, recirculations, and
// (optionally) server-directory mutations. With no recorder attached every
// hook is a null-pointer check, preserving the "zero cost when disabled"
// property the perf harness quantifies (replay_serial_* vs. replay_traced_*).
//
// Recording is strictly per-run deterministic: records are appended in
// replay order and carry a per-run sequence number, so two replays of the
// same (trace, config, policy) produce byte-identical exports regardless of
// wall-clock time or sweep thread count. A recorder must therefore not be
// shared between concurrently executing simulations; give each parallel job
// its own recorder (see the sweep-determinism tests).
//
// Serialization lives in src/obs/trace_sink.h ("coopfs.events/v1" JSONL and
// Chrome trace_event / Perfetto JSON); offline analysis in
// tools/coopfs_inspect.
#ifndef COOPFS_SRC_OBS_TRACE_RECORDER_H_
#define COOPFS_SRC_OBS_TRACE_RECORDER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/directory.h"
#include "src/common/types.h"

namespace coopfs {

// One completed read, from dispatch to satisfied request.
struct ReadSpan {
  std::uint64_t seq = 0;          // Per-run record order (shared with ops).
  std::uint64_t event_index = 0;  // Position of the read in the trace.
  Micros timestamp = 0;           // Simulated time of the request.
  Micros latency_us = 0;          // Latency charged by the technology model.
  BlockId block;
  ClientId client = 0;            // Requester.
  ClientId forward_holder = kNoClient;  // Remote client that supplied the
                                        // data (kNoClient if none did).
  std::uint32_t recirculations = 0;     // N-Chance recirculations triggered
                                        // by this read's eviction chain.
  CacheLevel level = CacheLevel::kLocalMemory;
  std::uint8_t hops = 0;
  bool data_transfer = false;
  bool counted = false;           // Post-warm-up (contributes to metrics).

  friend bool operator==(const ReadSpan&, const ReadSpan&) = default;
};

// Discrete non-read record kinds.
enum class TraceOpKind : std::uint8_t {
  kWrite = 0,            // Client wrote a block.
  kInvalidation = 1,     // A holder's copy was invalidated (write or delete).
  kRecirculation = 2,    // N-Chance forwarded an evicted singlet to a peer.
  kDirectoryAdd = 3,     // Server directory: holder registered.
  kDirectoryRemove = 4,  // Server directory: holder dropped.
  kDirectoryErase = 5,   // Server directory: all state for a block erased.
};

constexpr const char* TraceOpKindName(TraceOpKind kind) {
  switch (kind) {
    case TraceOpKind::kWrite:
      return "write";
    case TraceOpKind::kInvalidation:
      return "inval";
    case TraceOpKind::kRecirculation:
      return "recirc";
    case TraceOpKind::kDirectoryAdd:
      return "dir_add";
    case TraceOpKind::kDirectoryRemove:
      return "dir_remove";
    case TraceOpKind::kDirectoryErase:
      return "dir_erase";
  }
  return "unknown";
}

// One discrete record. Field meaning by kind:
//   kWrite          client = writer
//   kInvalidation   client = invalidated holder, peer = writer (kNoClient
//                   for whole-file deletes)
//   kRecirculation  client = evicting client, peer = receiving peer,
//                   detail = recirculation count remaining on the copy
//   kDirectory*     client = affected holder (kNoClient for erase)
struct OpRecord {
  std::uint64_t seq = 0;
  std::uint64_t event_index = 0;  // Trace event being replayed when recorded.
  Micros timestamp = 0;
  BlockId block;
  ClientId client = kNoClient;
  ClientId peer = kNoClient;
  TraceOpKind kind = TraceOpKind::kWrite;
  std::uint8_t detail = 0;

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

// Everything recorded for one Simulator::Run.
struct TraceRun {
  std::string policy;
  std::uint32_t num_clients = 0;
  std::vector<ReadSpan> reads;
  std::vector<OpRecord> ops;

  friend bool operator==(const TraceRun&, const TraceRun&) = default;
};

// Category switches. Directory mutations are the highest-volume category
// (several per event on the cooperative policies), so they default off;
// everything else defaults on.
struct TraceRecorderOptions {
  bool record_reads = true;
  bool record_writes = true;
  bool record_invalidations = true;
  bool record_recirculations = true;
  bool record_directory_ops = false;
};

class TraceRecorder : public DirectoryObserver {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {}) : options_(options) {}

  const TraceRecorderOptions& options() const { return options_; }

  // ---- Run lifecycle (driven by Simulator::Run) ----

  // Starts a new run; subsequent records append to it.
  void BeginRun(std::string policy_name, std::uint32_t num_clients);

  // Sets the (event index, simulated time) attributed to records made while
  // replaying this trace event. Called once per event before dispatch.
  void SetEventContext(std::uint64_t event_index, Micros timestamp) {
    event_index_ = event_index;
    timestamp_ = timestamp;
  }

  // ---- Read spans ----

  // Opens the span for the read being dispatched. `counted` marks post-warm-
  // up reads whose latency feeds SimulationResult.
  void BeginRead(ClientId client, BlockId block, bool counted);

  // Annotates the open span with the remote client that supplied the data.
  void AnnotateForward(ClientId holder);

  // Closes the span with the policy's outcome and the latency charged.
  void EndRead(CacheLevel level, int hops, bool data_transfer, Micros latency);

  // ---- Discrete records (policy hooks through SimContext) ----

  void RecordWrite(ClientId writer, BlockId block);
  void RecordInvalidation(BlockId block, ClientId holder, ClientId writer);
  void RecordRecirculation(ClientId from, ClientId to, BlockId block, int count);

  // DirectoryObserver: server-directory mutations (option-gated).
  void OnDirectoryOp(DirectoryOpKind op, BlockId block, ClientId client) override;

  // ---- Recorded data ----

  const std::vector<TraceRun>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }

  // Per-level aggregates over one run's *counted* spans, in replay order.
  // Latencies are accumulated exactly as the simulator accumulates
  // SimulationResult::level_time_us, so the reconciliation tests can demand
  // bit-for-bit equality, not approximate agreement.
  struct LevelTotals {
    std::array<std::uint64_t, kNumCacheLevels> counts{};
    std::array<double, kNumCacheLevels> time_us{};
    std::uint64_t counted_reads = 0;
  };
  static LevelTotals CountedTotals(const TraceRun& run);

 private:
  TraceRun& current_run();

  TraceRecorderOptions options_;
  std::vector<TraceRun> runs_;
  std::uint64_t event_index_ = 0;
  Micros timestamp_ = 0;
  std::uint64_t next_seq_ = 0;
  bool span_open_ = false;
  ReadSpan open_span_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_TRACE_RECORDER_H_
