#include "src/obs/metrics_exporter.h"

#include "src/common/version.h"

namespace coopfs {

namespace {

// Stable snake_case field name per cache level, index-aligned with
// CacheLevel. These are schema names: do not reword without a version bump.
constexpr const char* kLevelFields[kNumCacheLevels] = {
    "local_memory",
    "remote_client",
    "server_memory",
    "server_disk",
};

constexpr const char* kLoadFields[kNumServerLoadKinds] = {
    "hit_server_memory",
    "hit_remote_client",
    "hit_disk",
    "other",
};

}  // namespace

void WriteSimulationConfigJson(JsonWriter& json, const SimulationConfig& config) {
  json.BeginObject();
  json.Key("client_cache_blocks").Value(static_cast<std::uint64_t>(config.client_cache_blocks));
  json.Key("server_cache_blocks").Value(static_cast<std::uint64_t>(config.server_cache_blocks));
  json.Key("block_size_bytes").Value(static_cast<std::uint64_t>(kBlockSizeBytes));
  json.Key("num_servers").Value(static_cast<std::uint64_t>(config.num_servers));
  json.Key("num_clients").Value(static_cast<std::uint64_t>(config.num_clients));
  json.Key("warmup_events").Value(config.warmup_events);
  json.Key("seed").Value(config.seed);
  json.Key("write_policy")
      .Value(config.write_policy == WritePolicy::kWriteThrough ? "write_through"
                                                               : "delayed_write");
  json.Key("network").BeginObject();
  json.Key("memory_copy_us").Value(static_cast<std::int64_t>(config.network.memory_copy));
  json.Key("per_hop_us").Value(static_cast<std::int64_t>(config.network.per_hop));
  json.Key("block_transfer_us").Value(static_cast<std::int64_t>(config.network.block_transfer));
  json.EndObject();
  json.Key("disk_access_us").Value(static_cast<std::int64_t>(config.disk.access_time));
  json.EndObject();
}

namespace {

void WriteResult(JsonWriter& json, const SimulationResult& result,
                 const MetricsExportOptions& options) {
  json.BeginObject();
  json.Key("policy").Value(result.policy_name);
  json.Key("reads").Value(result.reads);
  json.Key("avg_read_time_us").Value(result.AverageReadTime());
  json.Key("local_miss_rate").Value(result.LocalMissRate());
  json.Key("disk_rate").Value(result.DiskRate());

  // Hit-level breakdown (Figures 4-5): count, fraction of counted reads,
  // and total latency attributed to the level.
  json.Key("levels").BeginObject();
  for (std::size_t i = 0; i < kNumCacheLevels; ++i) {
    json.Key(kLevelFields[i]).BeginObject();
    json.Key("count").Value(result.level_counts.Get(i));
    json.Key("fraction").Value(result.level_counts.Fraction(i));
    json.Key("time_us").Value(result.level_time_us[i]);
    json.EndObject();
  }
  json.EndObject();

  // Server load units (Figure 6).
  json.Key("server_load").BeginObject();
  for (std::size_t i = 0; i < kNumServerLoadKinds; ++i) {
    json.Key(kLoadFields[i]).Value(result.server_load.Units(static_cast<ServerLoadKind>(i)));
  }
  json.Key("total_units").Value(result.server_load.TotalUnits());
  json.EndObject();

  // Write-path accounting (delayed-write extension).
  json.Key("writes").BeginObject();
  json.Key("writes").Value(result.writes);
  json.Key("flushed").Value(result.flushed_writes);
  json.Key("absorbed").Value(result.absorbed_writes);
  json.Key("lost").Value(result.lost_writes);
  json.EndObject();

  // Replay counters (whole run, warm-up included; see counters.h).
  json.Key("counters").BeginObject();
  json.Key("events_replayed").Value(result.counters.events_replayed);
  json.Key("remote_forwards").Value(result.counters.remote_forwards);
  json.Key("recirculations").Value(result.counters.recirculations);
  json.Key("invalidations").Value(result.counters.invalidations);
  json.Key("directory_ops").Value(result.counters.directory_ops);
  json.EndObject();

  if (options.include_histogram) {
    json.Key("latency").BeginObject();
    json.Key("count").Value(result.latency_histogram.count());
    json.Key("p50_us").Value(result.latency_histogram.Quantile(0.5));
    json.Key("p90_us").Value(result.latency_histogram.Quantile(0.9));
    json.Key("p99_us").Value(result.latency_histogram.Quantile(0.99));
    json.Key("buckets").BeginArray();
    for (std::size_t b = 0; b < LogHistogram::kNumBuckets; ++b) {
      const std::uint64_t count = result.latency_histogram.bucket_count(b);
      if (count == 0) {
        continue;
      }
      json.BeginObject();
      json.Key("ge_us").Value(LogHistogram::BucketLowerBound(b));
      json.Key("count").Value(count);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  if (options.include_per_client) {
    json.Key("per_client").BeginArray();
    for (const ClientReadStats& client : result.per_client) {
      json.BeginObject();
      json.Key("reads").Value(client.reads);
      json.Key("total_time_us").Value(client.total_time_us);
      json.Key("avg_read_time_us").Value(client.AverageReadTime());
      json.EndObject();
    }
    json.EndArray();
  }

  if (options.include_timeline && !result.timeline.empty()) {
    json.Key("timeline").BeginArray();
    for (const SimulationResult::TimelinePoint& point : result.timeline) {
      json.BeginObject();
      json.Key("end_time_us").Value(static_cast<std::int64_t>(point.end_time));
      json.Key("reads").Value(point.reads);
      json.Key("avg_read_time_us").Value(point.avg_read_time_us);
      json.Key("disk_rate").Value(point.disk_rate);
      json.EndObject();
    }
    json.EndArray();
  }

  json.EndObject();
}

}  // namespace

void MetricsExporter::SetConfig(const SimulationConfig& config) {
  config_ = config;
  have_config_ = true;
}

void MetricsExporter::AddResult(const SimulationResult& result) { results_.push_back(result); }

std::string MetricsExporter::ToJson() const {
  JsonWriter json(options_.indent);
  json.BeginObject();
  json.Key("schema").Value(kMetricsSchema);
  json.Key("coopfs_version").Value(kVersionString);
  if (have_config_) {
    json.Key("config");
    WriteSimulationConfigJson(json, config_);
  }
  json.Key("results").BeginArray();
  for (const SimulationResult& result : results_) {
    WriteResult(json, result, options_);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status MetricsExporter::WriteFile(const std::string& path) const {
  const std::string document = ToJson();
  // Exporting an invalid document would silently poison every downstream
  // consumer; re-parse before writing (documents are small).
  COOPFS_RETURN_IF_ERROR(ValidateMetricsDocument(document));
  return WriteTextFile(path, document);
}

std::string SimulationResultToJson(const SimulationResult& result,
                                   const MetricsExportOptions& options) {
  JsonWriter json(options.indent);
  WriteResult(json, result, options);
  return json.str();
}

namespace {

Status CheckResultObject(const JsonValue& result, std::size_t index) {
  const std::string where = "results[" + std::to_string(index) + "]";
  if (!result.is_object()) {
    return Status::DataLoss(where + " is not an object");
  }
  if (result.FindString("policy") == nullptr) {
    return Status::DataLoss(where + " missing string field 'policy'");
  }
  for (const char* field : {"reads", "avg_read_time_us", "local_miss_rate", "disk_rate"}) {
    if (result.FindNumber(field) == nullptr) {
      return Status::DataLoss(where + " missing numeric field '" + field + "'");
    }
  }
  const JsonValue* levels = result.FindObject("levels");
  if (levels == nullptr) {
    return Status::DataLoss(where + " missing object field 'levels'");
  }
  for (const char* level : kLevelFields) {
    const JsonValue* entry = levels->FindObject(level);
    if (entry == nullptr) {
      return Status::DataLoss(where + ".levels missing '" + level + "'");
    }
    for (const char* field : {"count", "fraction", "time_us"}) {
      if (entry->FindNumber(field) == nullptr) {
        return Status::DataLoss(where + ".levels." + level + " missing numeric '" + field + "'");
      }
    }
  }
  const JsonValue* load = result.FindObject("server_load");
  if (load == nullptr) {
    return Status::DataLoss(where + " missing object field 'server_load'");
  }
  for (const char* field : kLoadFields) {
    if (load->FindNumber(field) == nullptr) {
      return Status::DataLoss(where + ".server_load missing numeric '" + field + "'");
    }
  }
  if (load->FindNumber("total_units") == nullptr) {
    return Status::DataLoss(where + ".server_load missing numeric 'total_units'");
  }
  const JsonValue* counters = result.FindObject("counters");
  if (counters == nullptr) {
    return Status::DataLoss(where + " missing object field 'counters'");
  }
  for (const char* field :
       {"events_replayed", "remote_forwards", "recirculations", "invalidations",
        "directory_ops"}) {
    if (counters->FindNumber(field) == nullptr) {
      return Status::DataLoss(where + ".counters missing numeric '" + field + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateMetricsDocument(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::DataLoss("metrics document root is not an object");
  }
  const JsonValue* schema = root.FindString("schema");
  if (schema == nullptr) {
    return Status::DataLoss("metrics document missing 'schema'");
  }
  if (schema->AsString() != kMetricsSchema) {
    return Status::DataLoss("unsupported metrics schema '" + schema->AsString() + "'");
  }
  const JsonValue* results = root.FindArray("results");
  if (results == nullptr) {
    return Status::DataLoss("metrics document missing 'results' array");
  }
  for (std::size_t i = 0; i < results->items().size(); ++i) {
    COOPFS_RETURN_IF_ERROR(CheckResultObject(results->items()[i], i));
  }
  return Status::Ok();
}

}  // namespace coopfs
