#include "src/obs/run_manifest.h"

#include "src/common/json.h"
#include "src/common/version.h"
#include "src/obs/metrics_exporter.h"

namespace coopfs {

std::string RunManifestToJson(const RunManifest& manifest) {
  JsonWriter json(2);
  json.BeginObject();
  json.Key("schema").Value(kRunManifestSchema);
  json.Key("coopfs_version").Value(kVersionString);
  json.Key("experiment").Value(manifest.experiment);
  json.Key("title").Value(manifest.title);
  json.Key("description").Value(manifest.description);
  json.Key("workloads").BeginArray();
  for (const std::string& workload : manifest.workloads) {
    json.Value(workload);
  }
  json.EndArray();
  json.Key("options").BeginObject();
  json.Key("events").Value(manifest.events);
  json.Key("seed").Value(manifest.seed);
  json.Key("auspex_events").Value(manifest.auspex_events);
  json.Key("sample_interval_us").Value(static_cast<std::int64_t>(manifest.sample_interval));
  json.EndObject();
  json.Key("configs").BeginArray();
  for (const SimulationConfig& config : manifest.configs) {
    WriteSimulationConfigJson(json, config);
  }
  json.EndArray();
  json.Key("num_results").Value(manifest.num_results);
  json.Key("threads").Value(manifest.threads);
  json.Key("wall_time_s").Value(manifest.wall_time_s);
  json.Key("command").Value(manifest.command);
  json.Key("exports").BeginArray();
  for (const RunExport& entry : manifest.exports) {
    json.BeginObject();
    json.Key("kind").Value(entry.kind);
    json.Key("schema").Value(entry.schema);
    json.Key("path").Value(entry.path);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WriteRunManifest(const RunManifest& manifest, const std::string& path) {
  const std::string document = RunManifestToJson(manifest);
  COOPFS_RETURN_IF_ERROR(ValidateRunManifestDocument(document));
  return WriteTextFile(path, document);
}

Status ValidateRunManifestDocument(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::DataLoss("run manifest root is not an object");
  }
  const JsonValue* schema = root.FindString("schema");
  if (schema == nullptr) {
    return Status::DataLoss("run manifest missing 'schema'");
  }
  if (schema->AsString() != kRunManifestSchema) {
    return Status::DataLoss("unsupported run manifest schema '" + schema->AsString() + "'");
  }
  for (const char* field : {"coopfs_version", "experiment", "title", "description", "command"}) {
    if (root.FindString(field) == nullptr) {
      return Status::DataLoss(std::string("run manifest missing string field '") + field + "'");
    }
  }
  if (root.FindString("experiment")->AsString().empty()) {
    return Status::DataLoss("run manifest 'experiment' is empty");
  }
  const JsonValue* workloads = root.FindArray("workloads");
  if (workloads == nullptr) {
    return Status::DataLoss("run manifest missing 'workloads' array");
  }
  for (const JsonValue& workload : workloads->items()) {
    if (!workload.is_string()) {
      return Status::DataLoss("run manifest 'workloads' entries must be strings");
    }
  }
  const JsonValue* options = root.FindObject("options");
  if (options == nullptr) {
    return Status::DataLoss("run manifest missing 'options' object");
  }
  for (const char* field : {"events", "seed", "auspex_events", "sample_interval_us"}) {
    if (options->FindNumber(field) == nullptr) {
      return Status::DataLoss(std::string("run manifest options missing numeric '") + field +
                              "'");
    }
  }
  const JsonValue* configs = root.FindArray("configs");
  if (configs == nullptr) {
    return Status::DataLoss("run manifest missing 'configs' array");
  }
  for (std::size_t i = 0; i < configs->items().size(); ++i) {
    const JsonValue& config = configs->items()[i];
    const std::string where = "configs[" + std::to_string(i) + "]";
    if (!config.is_object()) {
      return Status::DataLoss("run manifest " + where + " is not an object");
    }
    for (const char* field : {"client_cache_blocks", "server_cache_blocks", "block_size_bytes",
                              "num_servers", "num_clients", "warmup_events", "seed"}) {
      if (config.FindNumber(field) == nullptr) {
        return Status::DataLoss("run manifest " + where + " missing numeric '" + field + "'");
      }
    }
    if (config.FindString("write_policy") == nullptr) {
      return Status::DataLoss("run manifest " + where + " missing string 'write_policy'");
    }
    if (config.FindObject("network") == nullptr) {
      return Status::DataLoss("run manifest " + where + " missing object 'network'");
    }
  }
  for (const char* field : {"num_results", "threads", "wall_time_s"}) {
    if (root.FindNumber(field) == nullptr) {
      return Status::DataLoss(std::string("run manifest missing numeric '") + field + "'");
    }
  }
  const JsonValue* exports = root.FindArray("exports");
  if (exports == nullptr) {
    return Status::DataLoss("run manifest missing 'exports' array");
  }
  for (std::size_t i = 0; i < exports->items().size(); ++i) {
    const JsonValue& entry = exports->items()[i];
    const std::string where = "exports[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return Status::DataLoss("run manifest " + where + " is not an object");
    }
    for (const char* field : {"kind", "schema", "path"}) {
      if (entry.FindString(field) == nullptr) {
        return Status::DataLoss("run manifest " + where + " missing string '" + field + "'");
      }
    }
    if (entry.FindString("path")->AsString().empty()) {
      return Status::DataLoss("run manifest " + where + " has an empty path");
    }
  }
  return Status::Ok();
}

}  // namespace coopfs
