// Serialization sinks for recorded event traces ("coopfs.events/v1").
//
// Two export formats for TraceRecorder data (see trace_recorder.h):
//
//   * JSONL — one JSON object per line: a header line (schema tag, version,
//     workload provenance), then per run a run line followed by its read
//     spans and op records merged in sequence order. Line-oriented so
//     multi-hundred-MB traces can be grepped and streamed without a DOM.
//     The canonical machine format; tools/coopfs_inspect consumes it.
//
//   * Chrome trace_event JSON — the "traceEvents" array format understood by
//     ui.perfetto.dev and chrome://tracing. Each run becomes a process
//     (named after the policy), each client a thread; reads are complete
//     ("X") events with their charged latency as duration, discrete records
//     are instant ("i") events.
//
// Both serializations are deterministic: identical recorded runs produce
// identical bytes (fixed key order, shortest round-trip doubles), so the
// determinism tests compare exports bit-for-bit. ParseEventsJsonl inverts
// the JSONL writer exactly, which the round-trip tests also exploit.
#ifndef COOPFS_SRC_OBS_TRACE_SINK_H_
#define COOPFS_SRC_OBS_TRACE_SINK_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace_recorder.h"

namespace coopfs {

// Schema identifier on the JSONL header line. Bump on any backward-
// incompatible change; additive fields keep the version.
inline constexpr std::string_view kEventsSchema = "coopfs.events/v1";

// Snake_case schema name per cache level (index-aligned with CacheLevel and
// identical to the level field names of "coopfs.metrics/v1").
const char* CacheLevelSchemaName(CacheLevel level);

// Inverse of CacheLevelSchemaName; false if `name` is not a level name.
bool CacheLevelFromSchemaName(std::string_view name, CacheLevel& level);

// Provenance recorded on the header line.
struct TraceExportMetadata {
  std::uint64_t seed = 0;          // Workload seed.
  std::uint64_t trace_events = 0;  // Events in the replayed trace.
  std::string workload;            // Free-form workload label ("" = omitted).
};

// A parsed events document: header metadata plus the recorded runs.
struct EventsDocument {
  std::string coopfs_version;
  TraceExportMetadata metadata;
  std::vector<TraceRun> runs;
};

// ---- JSONL ("coopfs.events/v1") ----

std::string EventsToJsonl(const std::vector<TraceRun>& runs,
                          const TraceExportMetadata& metadata);

// Renders, self-validates by re-parsing, and writes to `path`.
Status WriteEventsJsonl(const std::vector<TraceRun>& runs, const TraceExportMetadata& metadata,
                        const std::string& path);

// Parses a complete JSONL document, validating structure as it goes (schema
// tag, line types, required fields, known levels/kinds). The returned runs
// re-serialize to the input bytes exactly.
Result<EventsDocument> ParseEventsJsonl(std::string_view text);

// Structural validation only (parse + discard).
Status ValidateEventsDocument(std::string_view text);

// ---- Chrome trace_event / Perfetto ----

std::string PerfettoTraceJson(const std::vector<TraceRun>& runs);

Status WritePerfettoTrace(const std::vector<TraceRun>& runs, const std::string& path);

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_TRACE_SINK_H_
