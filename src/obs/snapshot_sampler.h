// Periodic simulation-state sampling ("coopfs.timeseries/v1").
//
// The middle tier of the observability stack: coopfs.metrics/v1 gives one
// aggregate per run, coopfs.events/v1 one record per event; the sampler
// gives one snapshot per N microseconds of *simulated* time, capturing what
// the aggregates average away — how cache occupancy fills, how N-Chance
// keeps the duplicate fraction down, how server load and fairness drift as
// client memory absorbs reads (the paper's §2.4/§4 dynamics).
//
// The Simulator drives the sampler exactly like the TraceRecorder: attach
// one through SimulationConfig::snapshot_sampler and every crossing of an
// interval boundary (plus warm-up end and run end) emits a StateSample. A
// sample combines:
//
//   * window accumulators — reads observed since the previous sample,
//     per-level counted reads and their charged latency (accumulated in the
//     same order as SimulationResult, so per-window counts sum exactly to
//     the run aggregates), and per-client read/donated/benefited triplets
//     for fairness plots;
//   * instantaneous gauges (StateProbe) — cache occupancy, directory size,
//     singlet vs. duplicate block counts, recirculating copies, dirty
//     blocks, cumulative server-load units — computed from live simulation
//     state by the Simulator at the boundary.
//
// Zero-read intervals are emitted explicitly (one sample per crossed
// boundary) so downstream plots never interpolate across gaps.
//
// Sampling is deterministic: boundaries are anchored at the first trace
// timestamp, all state derives from the simulated replay, and the JSONL
// serialization uses fixed key order with shortest-round-trip doubles —
// identical runs export identical bytes regardless of wall clock or
// RunSimulationsParallel thread count (each concurrent job must use its own
// sampler, as with TraceRecorder).
#ifndef COOPFS_SRC_OBS_SNAPSHOT_SAMPLER_H_
#define COOPFS_SRC_OBS_SNAPSHOT_SAMPLER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/model/server_load.h"
#include "src/obs/trace_sink.h"

namespace coopfs {

// Schema identifier on the JSONL header line. Bump on any backward-
// incompatible change; additive fields keep the version.
inline constexpr std::string_view kTimeseriesSchema = "coopfs.timeseries/v1";

// Instantaneous gauges read off the live simulation state at a sample
// boundary. Occupancy covers the caches the simulation context owns (client
// local caches and the server cache); policy-private structures (e.g.
// Direct Cooperation's remote sections) are not visible here.
struct StateProbe {
  std::uint64_t client_blocks_used = 0;       // Across all client caches.
  std::uint64_t client_blocks_capacity = 0;
  std::uint64_t server_blocks_used = 0;       // Across all server caches.
  std::uint64_t server_blocks_capacity = 0;
  std::uint64_t directory_blocks = 0;         // Blocks with >= 1 client copy.
  std::uint64_t singlet_blocks = 0;           // Exactly one client copy.
  std::uint64_t duplicate_blocks = 0;         // Two or more client copies.
  std::uint64_t recirculating_copies = 0;     // N-Chance copies in flight.
  std::uint64_t dirty_blocks = 0;             // Delayed-write dirty copies.
  // Cumulative post-warm-up server load units per Figure 6 segment; diff
  // consecutive samples for per-window load.
  std::array<std::uint64_t, kNumServerLoadKinds> load_units{};

  friend bool operator==(const StateProbe&, const StateProbe&) = default;
};

// Why a sample was captured.
enum class SampleTrigger : std::uint8_t {
  kInterval = 0,   // An interval boundary was crossed.
  kWarmupEnd = 1,  // Metrics accounting switched on.
  kRunEnd = 2,     // The trace ended (closes the final partial window).
};

const char* SampleTriggerName(SampleTrigger trigger);
bool SampleTriggerFromName(std::string_view name, SampleTrigger& trigger);

// Per-client window accounting (fairness: the paper's Figure 7 concern that
// cooperation taxes some clients for others' benefit). Post-warm-up only.
struct ClientWindowStats {
  std::uint64_t reads = 0;      // Counted reads this client issued.
  std::uint64_t donated = 0;    // Reads this client's cache served for others.
  std::uint64_t benefited = 0;  // This client's reads served by a peer cache.

  friend bool operator==(const ClientWindowStats&, const ClientWindowStats&) = default;
};

struct StateSample {
  std::uint64_t index = 0;  // Sample number within the run.
  SampleTrigger trigger = SampleTrigger::kInterval;
  // Interval boundary (kInterval, exclusive window end) or the timestamp of
  // the triggering event (kWarmupEnd / kRunEnd).
  Micros time = 0;
  // Trace events replayed strictly before this sample was captured.
  std::uint64_t events_replayed = 0;

  // ---- Window accumulators (since the previous sample) ----
  std::uint64_t window_reads = 0;  // All reads, warm-up included.
  // Counted (post-warm-up) reads by satisfying level and the latency charged
  // to each, accumulated exactly as SimulationResult accumulates them.
  std::array<std::uint64_t, kNumCacheLevels> level_reads{};
  std::array<double, kNumCacheLevels> level_time_us{};
  // Per-client triplets; empty unless SnapshotSamplerOptions::include_per_client.
  std::vector<ClientWindowStats> clients;

  // ---- Instantaneous gauges ----
  StateProbe state;

  std::uint64_t CountedReads() const;
  double CountedTimeUs() const;

  friend bool operator==(const StateSample&, const StateSample&) = default;
};

// One simulation run's samples.
struct SnapshotRun {
  std::string policy;
  std::uint32_t num_clients = 0;
  Micros interval = 0;    // 0 = no interval boundaries (warm-up/run end only).
  Micros start_time = 0;  // First trace timestamp; boundaries anchor here.
  std::vector<StateSample> samples;

  friend bool operator==(const SnapshotRun&, const SnapshotRun&) = default;
};

struct SnapshotSamplerOptions {
  bool include_per_client = true;  // Collect ClientWindowStats triplets.
  bool capture_state = true;       // Expect StateProbe gauges from the driver.
  bool sample_warmup_end = true;   // Emit the kWarmupEnd sample.
};

// Not synchronized: concurrently executing runs (RunSimulationsParallel)
// must each attach their own sampler, or none.
class SnapshotSampler {
 public:
  explicit SnapshotSampler(SnapshotSamplerOptions options = {}) : options_(options) {}

  const SnapshotSamplerOptions& options() const { return options_; }

  // ---- Driver interface (called by the Simulator) ----

  // Starts a new run and resets window state. `interval` <= 0 disables
  // interval boundaries; warm-up-end and run-end samples still fire.
  void BeginRun(std::string policy, std::uint32_t num_clients, Micros interval,
                Micros start_time);

  // True if `timestamp` has reached the next interval boundary (the caller
  // then builds a StateProbe and calls CaptureDue).
  bool SampleDue(Micros timestamp) const {
    return interval_ > 0 && !runs_.empty() && timestamp >= next_boundary_;
  }

  // Emits one kInterval sample per boundary crossed up to `timestamp`. All
  // emitted samples share `probe` (no events ran between the boundaries).
  void CaptureDue(Micros timestamp, const StateProbe& probe);

  // Closes the current window at warm-up end / run end. CaptureWarmupEnd is
  // a no-op unless options().sample_warmup_end.
  void CaptureWarmupEnd(Micros timestamp, const StateProbe& probe);
  void CaptureRunEnd(Micros timestamp, const StateProbe& probe);

  // Called once per replayed trace event, after the boundary check.
  void OnEvent() { ++events_replayed_; }

  // Annotates the in-flight read with the remote client whose cache supplies
  // the data (mirrors TraceRecorder::AnnotateForward); consumed by the next
  // RecordRead.
  void NoteForward(ClientId holder) { pending_holder_ = holder; }

  // Accumulates one replayed read into the current window.
  void RecordRead(ClientId client, CacheLevel level, Micros latency, bool counted);

  // Exclusive end of the currently open window (first unreached boundary).
  Micros next_boundary() const { return next_boundary_; }

  const std::vector<SnapshotRun>& runs() const { return runs_; }

 private:
  void Emit(SampleTrigger trigger, Micros time, const StateProbe& probe);

  SnapshotSamplerOptions options_;
  std::vector<SnapshotRun> runs_;

  // Open-window state of the current run.
  Micros interval_ = 0;
  Micros next_boundary_ = 0;
  std::uint64_t events_replayed_ = 0;
  std::uint64_t window_reads_ = 0;
  std::array<std::uint64_t, kNumCacheLevels> level_reads_{};
  std::array<double, kNumCacheLevels> level_time_us_{};
  std::vector<ClientWindowStats> clients_;
  ClientId pending_holder_ = kNoClient;
};

// A parsed timeseries document: header metadata plus the sampled runs.
struct TimeseriesDocument {
  std::string coopfs_version;
  TraceExportMetadata metadata;
  std::vector<SnapshotRun> runs;
};

// ---- JSONL ("coopfs.timeseries/v1") ----

std::string TimeseriesToJsonl(const std::vector<SnapshotRun>& runs,
                              const TraceExportMetadata& metadata);

// Renders, self-validates by re-parsing, and writes to `path`.
Status WriteTimeseriesJsonl(const std::vector<SnapshotRun>& runs,
                            const TraceExportMetadata& metadata, const std::string& path);

// Parses a complete JSONL document, validating structure as it goes. The
// returned runs re-serialize to the input bytes exactly.
Result<TimeseriesDocument> ParseTimeseriesJsonl(std::string_view text);

// Structural validation only (parse + discard).
Status ValidateTimeseriesDocument(std::string_view text);

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_SNAPSHOT_SAMPLER_H_
