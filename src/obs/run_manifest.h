// Reproducible run manifests ("coopfs.run/v1", see docs/metrics_schema.md).
//
// Every `coopfs_bench` experiment run emits one manifest document recording
// everything needed to re-run it exactly: the experiment name, the resolved
// run options (events, seeds, sample interval), the fully resolved base
// SimulationConfig(s), the library version, the wall time and thread count of
// the run, an equivalent re-run command line, and the sibling export files
// (metrics/events/timeseries/profile) with their schema versions. A table in
// EXPERIMENTS.md is reproducible from its manifest alone:
//
//   coopfs_inspect manifest run/fig04_read_time.run.json   # shows the command
//
// Wall time and thread count are informational: re-running the manifest's
// command at any thread count reproduces the tables and exports byte for
// byte (replay is deterministic; the parallel-determinism ctest holds that
// line).
#ifndef COOPFS_SRC_OBS_RUN_MANIFEST_H_
#define COOPFS_SRC_OBS_RUN_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/sim/config.h"

namespace coopfs {

// Schema identifier embedded in every manifest. Bump on any
// backward-incompatible change; purely additive fields keep the version.
inline constexpr std::string_view kRunManifestSchema = "coopfs.run/v1";

// One export file written alongside the run.
struct RunExport {
  std::string kind;    // "metrics" | "events" | "perfetto" | "timeseries" | "profile"
  std::string schema;  // e.g. "coopfs.metrics/v1"; empty for schema-less formats
  std::string path;    // as written (absolute, or relative to the run's cwd)
};

struct RunManifest {
  std::string experiment;   // registered spec name, e.g. "fig04_read_time"
  std::string title;        // banner title, e.g. "Figure 4"
  std::string description;  // one-line spec description
  std::vector<std::string> workloads;  // trace kinds consumed: "sprite", "auspex"

  // Resolved run options (BenchOptions after flags + environment overrides).
  std::uint64_t events = 0;
  std::uint64_t seed = 0;
  std::uint64_t auspex_events = 0;
  Micros sample_interval = 0;

  // Fully resolved base configuration(s) the experiment ran under. Sweeps
  // record the base config; the swept axis is part of the spec itself and is
  // re-derived from (experiment, options) on re-run.
  std::vector<SimulationConfig> configs;

  std::uint64_t num_results = 0;  // simulation results produced
  std::uint64_t threads = 1;      // driver fan-out width (informational)
  double wall_time_s = 0.0;       // wall clock of the run (informational)
  std::string command;            // equivalent re-run command line
  std::vector<RunExport> exports;
};

// Renders the manifest as a deterministic coopfs.run/v1 JSON document
// (wall_time_s excepted — it reflects the actual run).
std::string RunManifestToJson(const RunManifest& manifest);

// Renders, validates, and writes the manifest to `path`; any validation or
// I/O failure is returned (never written silently broken).
Status WriteRunManifest(const RunManifest& manifest, const std::string& path);

// Validates that `json` parses and structurally conforms to coopfs.run/v1:
// schema tag, experiment name, options block, configs array with the
// documented config fields, and well-formed exports entries.
Status ValidateRunManifestDocument(std::string_view json);

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_RUN_MANIFEST_H_
