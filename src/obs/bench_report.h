// Perf-harness result reporting ("coopfs.bench/v1").
//
// bench/perf_harness measures wall-clock throughput of the hot paths (trace
// generation, serial replay per policy, parallel sweep scaling) and writes
// the series to BENCH_coopfs.json through this module, giving every commit a
// machine-comparable perf baseline. The schema is documented in
// docs/metrics_schema.md alongside the metrics schema.
#ifndef COOPFS_SRC_OBS_BENCH_REPORT_H_
#define COOPFS_SRC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace coopfs {

inline constexpr std::string_view kBenchSchema = "coopfs.bench/v1";

// One named measurement: `items` work units processed in `wall_seconds`.
struct BenchSeries {
  std::string name;
  std::string unit = "events/s";    // What ops_per_sec counts.
  double ops_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t items = 0;          // Work units processed (e.g. trace events).
  std::uint64_t peak_rss_bytes = 0; // Peak RSS observed after the run. When
                                    // the harness can reset the kernel's
                                    // high-watermark (TryResetPeakRssCounter)
                                    // this is per-series; otherwise it is the
                                    // monotonic process-lifetime peak.
};

struct BenchReport {
  std::string suite = "perf_harness";
  // Hardware concurrency of the machine that produced the document. The
  // scaling gate needs this to know how much speedup was physically
  // attainable: a 2-thread sweep cannot beat 1 thread on a 1-core host.
  // 0 = not recorded (documents from before the field existed).
  std::uint32_t host_threads = 0;
  std::vector<BenchSeries> series;

  std::string ToJson(int indent = 2) const;

  // Renders, self-validates, and writes to `path`.
  Status WriteFile(const std::string& path) const;
};

// Structural validation of a "coopfs.bench/v1" document: schema tag, series
// array, and per-series required fields. Used by perf_harness after writing
// (--dry-run included) and by the round-trip tests. `host_threads` is
// optional (older documents predate it).
Status ValidateBenchDocument(std::string_view json);

// Validates and parses a "coopfs.bench/v1" document back into a BenchReport
// (tools-side consumption: bench_compare, the scaling gate).
Result<BenchReport> ParseBenchDocument(std::string_view json);

// Peak resident set size of this process in bytes, or 0 where unsupported.
// On Linux this reads VmHWM, which TryResetPeakRssCounter can rewind.
std::uint64_t CurrentPeakRssBytes();

// Resets the kernel's peak-RSS high-watermark for this process so the next
// CurrentPeakRssBytes() reflects only memory touched after this call
// (per-series attribution in perf_harness). Returns false where
// unsupported; callers fall back to the monotonic process peak.
bool TryResetPeakRssCounter();

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_BENCH_REPORT_H_
