#include "src/obs/scaling_gate.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/format.h"

namespace coopfs {
namespace {

struct SweepPoint {
  std::size_t threads = 0;
  double ops_per_sec = 0.0;
};

// Parses "parallel_sweep_<T>t" into T; returns 0 for any other name.
std::size_t SweepThreadsOf(const std::string& name) {
  constexpr const char kPrefix[] = "parallel_sweep_";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.rfind(kPrefix, 0) != 0 || name.size() < kPrefixLen + 2 ||
      name.back() != 't') {
    return 0;
  }
  const std::string digits = name.substr(kPrefixLen, name.size() - kPrefixLen - 1);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return static_cast<std::size_t>(std::strtoull(digits.c_str(), nullptr, 10));
}

std::string Ratio(double numerator, double denominator) {
  return FormatDouble(denominator > 0.0 ? numerator / denominator : 0.0, 2) + "x";
}

}  // namespace

ScalingGateResult EvaluateScalingGate(const BenchReport& report,
                                      const ScalingGateOptions& options) {
  ScalingGateResult result;

  std::vector<SweepPoint> points;
  for (const BenchSeries& series : report.series) {
    if (const std::size_t threads = SweepThreadsOf(series.name); threads > 0) {
      points.push_back({threads, series.ops_per_sec});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const SweepPoint& a, const SweepPoint& b) { return a.threads < b.threads; });

  const auto at = [&points](std::size_t threads) -> const SweepPoint* {
    for (const SweepPoint& point : points) {
      if (point.threads == threads) {
        return &point;
      }
    }
    return nullptr;
  };
  const SweepPoint* serial = at(1);
  if (serial == nullptr || points.size() < 2) {
    result.notes.push_back(
        "no parallel_sweep_1t series with a wider companion; scaling gate not applicable");
    return result;
  }
  result.applicable = true;

  if (report.host_threads == 0) {
    result.passed = false;
    result.failures.push_back(
        "document lacks 'host_threads'; cannot interpret sweep speedups "
        "(re-baseline with the current perf_harness)");
    return result;
  }
  if (serial->ops_per_sec <= 0.0) {
    result.passed = false;
    result.failures.push_back("parallel_sweep_1t reports zero throughput");
    return result;
  }

  // 2t/1t efficiency floor, host-aware.
  if (const SweepPoint* two = at(2); two != nullptr) {
    const double attainable =
        static_cast<double>(std::min<std::size_t>(2, report.host_threads));
    const double required = options.efficiency_floor * attainable;
    const double ratio = two->ops_per_sec / serial->ops_per_sec;
    if (ratio < required) {
      result.passed = false;
      result.failures.push_back(
          "parallel_sweep_2t/1t = " + Ratio(two->ops_per_sec, serial->ops_per_sec) +
          ", below the " + FormatDouble(required, 2) + "x floor (efficiency " +
          FormatDouble(options.efficiency_floor, 2) + " x attainable speedup " +
          FormatDouble(attainable, 0) + " on a " +
          std::to_string(report.host_threads) + "-thread host)");
    }
    if (report.host_threads < 2) {
      result.notes.push_back(
          "host_threads=" + std::to_string(report.host_threads) +
          ": 2t floor degraded to " + FormatDouble(required, 2) +
          "x (no parallel speedup attainable)");
    }
  } else {
    result.passed = false;
    result.failures.push_back(
        "parallel_sweep_2t series missing; 2t/1t floor cannot be checked");
  }

  // Monotonicity with tolerance: each wider width vs the best narrower one.
  double best_so_far = serial->ops_per_sec;
  std::size_t best_threads = serial->threads;
  for (const SweepPoint& point : points) {
    if (point.threads == 1) {
      continue;
    }
    const double tolerance = point.threads <= report.host_threads
                                 ? options.monotonicity_tolerance
                                 : options.oversubscribed_tolerance;
    const double required = tolerance * best_so_far;
    if (point.ops_per_sec < required) {
      result.passed = false;
      result.failures.push_back(
          "parallel_sweep_" + std::to_string(point.threads) + "t = " +
          Ratio(point.ops_per_sec, serial->ops_per_sec) + " of 1t, dropping below " +
          FormatDouble(tolerance, 2) + " x the " +
          std::to_string(best_threads) + "t throughput (non-monotonic scaling)");
    }
    if (point.ops_per_sec > best_so_far) {
      best_so_far = point.ops_per_sec;
      best_threads = point.threads;
    }
  }

  return result;
}

}  // namespace coopfs
