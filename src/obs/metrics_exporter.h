// Structured export of simulation metrics (observability subsystem).
//
// Everything the paper's evaluation reports — per-level hit counts and
// latencies (Figures 4-5), abstract server-load units (Figure 6), per-client
// response times (Figure 7) — lives in SimulationResult. MetricsExporter
// serializes one or more results, plus the configuration that produced them,
// to a stable versioned JSON document ("coopfs.metrics/v1", see
// docs/metrics_schema.md) so external tooling can diff runs across commits
// without scraping text tables.
//
// The serialization is deterministic: identical results produce identical
// bytes (keys in fixed order, doubles in shortest round-trip form). The
// parallel-sweep determinism tests rely on this to compare runs bit-for-bit.
#ifndef COOPFS_SRC_OBS_METRICS_EXPORTER_H_
#define COOPFS_SRC_OBS_METRICS_EXPORTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/sim/config.h"
#include "src/sim/metrics.h"

namespace coopfs {

// Schema identifier embedded in every exported document. Bump the version
// suffix on any backward-incompatible change (field removal/rename or
// meaning change); purely additive fields keep the version.
inline constexpr std::string_view kMetricsSchema = "coopfs.metrics/v1";

struct MetricsExportOptions {
  int indent = 2;                  // 0 = compact single-line JSON.
  bool include_per_client = true;  // Per-client read stats (Figure 7 input).
  bool include_timeline = true;    // TimelinePoint series, if collected.
  bool include_histogram = true;   // Non-empty latency histogram buckets.
};

class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExportOptions options = {}) : options_(options) {}

  // Records the configuration block to embed (optional but recommended:
  // downstream tooling uses it to group comparable runs).
  void SetConfig(const SimulationConfig& config);

  // Adds one result series to the document, in call order.
  void AddResult(const SimulationResult& result);

  std::size_t num_results() const { return results_.size(); }

  // Renders the full document.
  std::string ToJson() const;

  // Renders and writes the document to `path` (with a trailing newline).
  Status WriteFile(const std::string& path) const;

 private:
  MetricsExportOptions options_;
  bool have_config_ = false;
  SimulationConfig config_;
  std::vector<SimulationResult> results_;
};

// Serializes a single result as a standalone JSON object (the element shape
// of the document's "results" array). Used directly by tests and by the
// determinism harness to fingerprint runs.
std::string SimulationResultToJson(const SimulationResult& result,
                                   const MetricsExportOptions& options = {});

// Writes `config` as the document's "config" object shape. Shared between
// the metrics exporter and the coopfs.run/v1 manifest writer so a manifest's
// resolved configs are field-for-field comparable with metrics documents.
void WriteSimulationConfigJson(JsonWriter& json, const SimulationConfig& config);

// Validates that `json` parses and structurally conforms to
// "coopfs.metrics/v1": schema tag, results array, and per-result required
// fields with the documented types. Returns the first violation found.
Status ValidateMetricsDocument(std::string_view json);

}  // namespace coopfs

#endif  // COOPFS_SRC_OBS_METRICS_EXPORTER_H_
