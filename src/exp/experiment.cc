#include "src/exp/experiment.h"

#include <cstdio>
#include <cstdlib>

namespace coopfs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kNone:
      return "none";
    case TraceKind::kSprite:
      return "sprite";
    case TraceKind::kAuspex:
      return "auspex";
    case TraceKind::kBoth:
      return "sprite+auspex";
    case TraceKind::kCustom:
      return "custom";
  }
  return "unknown";
}

ExperimentRegistry& ExperimentRegistry::Instance() {
  static auto* registry = new ExperimentRegistry();
  return *registry;
}

void ExperimentRegistry::Register(ExperimentSpec spec) {
  if (spec.name.empty() || !spec.run) {
    std::fprintf(stderr, "experiment spec '%s' is incomplete (missing name or run function)\n",
                 spec.name.c_str());
    std::abort();
  }
  if (Find(spec.name) != nullptr) {
    std::fprintf(stderr, "duplicate experiment spec '%s'\n", spec.name.c_str());
    std::abort();
  }
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::Find(std::string_view name) const {
  for (const ExperimentSpec& spec : specs_) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::Match(std::string_view glob) const {
  std::vector<const ExperimentSpec*> matches;
  for (const ExperimentSpec& spec : specs_) {
    if (GlobMatch(glob, spec.name)) {
      matches.push_back(&spec);
    }
  }
  return matches;
}

namespace {

// Matches one '[...]' class starting at pattern[0] == '['. On success sets
// `consumed` to the class length (including brackets) and returns whether
// `c` is in the class. A malformed class (no closing ']') matches nothing.
bool MatchClass(std::string_view pattern, char c, std::size_t* consumed) {
  std::size_t i = 1;  // past '['
  bool negate = false;
  if (i < pattern.size() && (pattern[i] == '!' || pattern[i] == '^')) {
    negate = true;
    ++i;
  }
  bool matched = false;
  bool first = true;
  while (i < pattern.size() && (first || pattern[i] != ']')) {
    first = false;
    char lo = pattern[i];
    char hi = lo;
    if (i + 2 < pattern.size() && pattern[i + 1] == '-' && pattern[i + 2] != ']') {
      hi = pattern[i + 2];
      i += 3;
    } else {
      ++i;
    }
    if (lo <= c && c <= hi) {
      matched = true;
    }
  }
  if (i >= pattern.size()) {
    return false;  // unterminated class
  }
  *consumed = i + 1;  // past ']'
  return matched != negate;
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative matcher with single-star backtracking (the classic greedy
  // algorithm): remember the position of the last '*' and retry from there,
  // consuming one more text character each time.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    bool advanced = false;
    if (p < pattern.size()) {
      if (pattern[p] == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      if (pattern[p] == '?') {
        ++p;
        ++t;
        advanced = true;
      } else if (pattern[p] == '[') {
        std::size_t consumed = 0;
        if (MatchClass(pattern.substr(p), text[t], &consumed)) {
          p += consumed;
          ++t;
          advanced = true;
        }
      } else if (pattern[p] == text[t]) {
        ++p;
        ++t;
        advanced = true;
      }
    }
    if (!advanced) {
      if (star_p == std::string_view::npos) {
        return false;
      }
      p = star_p + 1;
      t = ++star_t;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace coopfs
