#include "src/exp/experiment.h"
#include "src/exp/specs.h"

namespace coopfs {

// Explicit registration (not static initializers, which static libraries
// drop): every entry point calls this before touching the registry.
void RegisterBuiltinExperiments() {
  static const bool registered = [] {
    ExperimentRegistry& registry = ExperimentRegistry::Instance();
    registry.Register(Fig01TechnologyTableSpec());
    registry.Register(Fig03AccessTimesSpec());
    registry.Register(Fig04ReadTimeSpec());
    registry.Register(Fig05HitRatesSpec());
    registry.Register(Fig06ServerLoadSpec());
    registry.Register(Fig07FairnessSpec());
    registry.Register(Fig08DirectSweepSpec());
    registry.Register(Fig09CentralFractionSpec());
    registry.Register(Fig10NChanceNSpec());
    registry.Register(Fig11ClientCacheSpec());
    registry.Register(Fig12ServerCacheSpec());
    registry.Register(Fig13NetworkSpeedSpec());
    registry.Register(Fig14AuspexSpec());
    registry.Register(Sec25OtherAlgorithmsSpec());
    registry.Register(Sec45MemoryPlacementSpec());
    registry.Register(ExtChurnSpec());
    registry.Register(ExtIdleTargetingSpec());
    registry.Register(ExtMultiServerSpec());
    registry.Register(ExtQueueingSpec());
    registry.Register(ExtWritePolicySpec());
    return true;
  }();
  (void)registered;
}

}  // namespace coopfs
