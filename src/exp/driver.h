// The coopfs_bench driver and the standalone-binary entry point.
//
// `coopfs_bench` executes registered experiments (src/exp/experiment.h):
//
//   coopfs_bench --list                     # enumerate experiments
//   coopfs_bench --filter 'fig0[456]*'      # run a glob-selected subset
//   coopfs_bench --threads 8 --filter '*'   # fan out across experiments
//   coopfs_bench --out-dir runs ...         # where run manifests land
//
// plus every BenchOptions flag (--events, --seed, --json, ...). Each
// experiment's stdout is buffered and printed in registration order, so the
// driver's output for a selection is byte-identical to running the
// corresponding standalone binaries in that order. Driver chrome (progress,
// manifest paths) goes to stderr only. Every experiment run through the
// driver writes a coopfs.run/v1 manifest (src/obs/run_manifest.h) into
// --out-dir.
//
// The per-figure bench binaries are one-line wrappers over ExperimentMain,
// which runs exactly one spec with legacy-compatible behavior (no manifest,
// sweeps at hardware concurrency).
#ifndef COOPFS_SRC_EXP_DRIVER_H_
#define COOPFS_SRC_EXP_DRIVER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exp/experiment.h"
#include "src/exp/options.h"
#include "src/obs/run_manifest.h"

namespace coopfs {

struct DriverOptions {
  BenchOptions bench;
  bool list = false;
  bool help = false;
  std::string filter = "*";
  std::size_t threads = 0;            // 0 = hardware concurrency
  std::string out_dir = "coopfs_runs";  // where run manifests are written

  // Parses the full coopfs_bench command line (driver flags + BenchOptions
  // flags); unknown flags are an error here, unlike BenchOptions::FromArgs.
  static Result<DriverOptions> Parse(int argc, char** argv);
};

// Outcome of one experiment executed by the driver.
struct ExperimentOutcome {
  const ExperimentSpec* spec = nullptr;
  Status status = Status::Ok();
  std::string output;    // buffered stdout, printed in registration order
  RunManifest manifest;  // fully populated (threads, wall time, command)
};

// Runs `specs` on a pool of up to `options.threads` workers (see the header
// comment for how the budget is split between experiments and inner sweeps).
// Pure with respect to stdout: outputs are returned buffered, manifests are
// returned unwritten. `on_done(index, outcome)` — optional — fires as each
// experiment completes, serialized under an internal mutex, for
// progress/streaming.
using ExperimentDoneCallback = std::function<void(std::size_t, const ExperimentOutcome&)>;
std::vector<ExperimentOutcome> RunExperiments(
    const std::vector<const ExperimentSpec*>& specs, const DriverOptions& options,
    const ExperimentDoneCallback& on_done = nullptr);

// main() of coopfs_bench.
int DriverMain(int argc, char** argv);

// main() of a standalone single-experiment binary: runs the named registered
// spec with BenchOptions parsed from the command line, prints its buffered
// output, and returns non-zero on failure. Writes no manifest.
int ExperimentMain(const char* name, int argc, char** argv);

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_DRIVER_H_
