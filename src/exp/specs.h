// Factory functions for the built-in experiment specs (src/exp/specs/*.cc),
// one per figure/section/extension of the paper reproduction. Collected into
// the process-wide registry by RegisterBuiltinExperiments() in figure order —
// the canonical order for --list and multi-experiment output.
#ifndef COOPFS_SRC_EXP_SPECS_H_
#define COOPFS_SRC_EXP_SPECS_H_

#include "src/exp/experiment.h"

namespace coopfs {

ExperimentSpec Fig01TechnologyTableSpec();
ExperimentSpec Fig03AccessTimesSpec();
ExperimentSpec Fig04ReadTimeSpec();
ExperimentSpec Fig05HitRatesSpec();
ExperimentSpec Fig06ServerLoadSpec();
ExperimentSpec Fig07FairnessSpec();
ExperimentSpec Fig08DirectSweepSpec();
ExperimentSpec Fig09CentralFractionSpec();
ExperimentSpec Fig10NChanceNSpec();
ExperimentSpec Fig11ClientCacheSpec();
ExperimentSpec Fig12ServerCacheSpec();
ExperimentSpec Fig13NetworkSpeedSpec();
ExperimentSpec Fig14AuspexSpec();
ExperimentSpec Sec25OtherAlgorithmsSpec();
ExperimentSpec Sec45MemoryPlacementSpec();
ExperimentSpec ExtChurnSpec();
ExperimentSpec ExtIdleTargetingSpec();
ExperimentSpec ExtMultiServerSpec();
ExperimentSpec ExtQueueingSpec();
ExperimentSpec ExtWritePolicySpec();

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_SPECS_H_
