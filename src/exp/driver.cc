#include "src/exp/driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>

#include "src/common/format.h"
#include "src/common/profiler.h"
#include "src/exp/context.h"

namespace coopfs {

namespace {

constexpr const char kUsage[] =
    "usage: coopfs_bench [--list] [--filter GLOB] [--threads N] [--out-dir DIR]\n"
    "                    [--events N] [--seed S] [--auspex-events N]\n"
    "                    [--json PATH] [--trace-events PATH] [--trace-perfetto PATH]\n"
    "                    [--timeseries PATH] [--sample-interval N] [--profile PATH]\n"
    "\n"
    "Runs registered coopfs experiments (figures, sections, extensions).\n"
    "  --list          list experiments and exit\n"
    "  --filter GLOB   run experiments whose name matches GLOB (default '*';\n"
    "                  supports *, ?, and [...] classes, e.g. 'fig0[456]*')\n"
    "  --threads N     worker threads shared across experiments and their\n"
    "                  internal sweeps (default: hardware concurrency)\n"
    "  --out-dir DIR   directory for coopfs.run/v1 manifests (default\n"
    "                  'coopfs_runs'); one <experiment>.run.json per run\n"
    "\n"
    "Export flags (--json, --trace-events, --trace-perfetto, --timeseries,\n"
    "--profile) name a file when one experiment is selected; with several,\n"
    "they name a directory that receives one file per experiment.\n";

// Flags consumed by the driver itself; everything else must be a BenchOptions
// flag or the parse fails (the standalone binaries stay permissive, the
// driver catches typos).
bool IsDriverFlag(const char* arg) {
  return std::strcmp(arg, "--filter") == 0 || std::strcmp(arg, "--threads") == 0 ||
         std::strcmp(arg, "--out-dir") == 0;
}

bool IsBenchFlag(const char* arg) {
  return std::strcmp(arg, "--events") == 0 || std::strcmp(arg, "--seed") == 0 ||
         std::strcmp(arg, "--auspex-events") == 0 || std::strcmp(arg, "--json") == 0 ||
         std::strcmp(arg, "--trace-events") == 0 || std::strcmp(arg, "--trace-perfetto") == 0 ||
         std::strcmp(arg, "--timeseries") == 0 || std::strcmp(arg, "--sample-interval") == 0 ||
         std::strcmp(arg, "--profile") == 0;
}

// Equivalent re-run command line for the manifest: standalone flags that
// reproduce this experiment's tables and exports at any thread count.
std::string BuildCommand(const ExperimentSpec& spec, const BenchOptions& bench) {
  std::string command = "coopfs_bench --filter " + spec.name;
  command += " --events " + std::to_string(bench.events);
  command += " --seed " + std::to_string(bench.seed);
  command += " --auspex-events " + std::to_string(bench.auspex_events);
  if (bench.sample_interval != BenchOptions().sample_interval) {
    command += " --sample-interval " + std::to_string(bench.sample_interval);
  }
  if (!bench.json_out.empty()) {
    command += " --json " + bench.json_out;
  }
  if (!bench.trace_events_out.empty()) {
    command += " --trace-events " + bench.trace_events_out;
  }
  if (!bench.trace_perfetto_out.empty()) {
    command += " --trace-perfetto " + bench.trace_perfetto_out;
  }
  if (!bench.timeseries_out.empty()) {
    command += " --timeseries " + bench.timeseries_out;
  }
  if (!bench.profile_out.empty()) {
    command += " --profile " + bench.profile_out;
  }
  return command;
}

// With several experiments selected, a shared export path would be
// overwritten by each in turn; treat it as a directory instead and give each
// experiment its own file.
void SplitExportPaths(BenchOptions& bench, const std::string& name) {
  const auto join = [&name](const std::string& dir, const char* suffix) {
    return dir + "/" + name + suffix;
  };
  if (!bench.json_out.empty()) {
    bench.json_out = join(bench.json_out, ".metrics.json");
  }
  if (!bench.trace_events_out.empty()) {
    bench.trace_events_out = join(bench.trace_events_out, ".events.jsonl");
  }
  if (!bench.trace_perfetto_out.empty()) {
    bench.trace_perfetto_out = join(bench.trace_perfetto_out, ".perfetto.json");
  }
  if (!bench.timeseries_out.empty()) {
    bench.timeseries_out = join(bench.timeseries_out, ".timeseries.jsonl");
  }
  if (!bench.profile_out.empty()) {
    bench.profile_out = join(bench.profile_out, ".profile.json");
  }
}

Status EnsureParentDirs(const BenchOptions& bench, const std::string& out_dir) {
  std::error_code ec;
  for (const std::string* path :
       {&bench.json_out, &bench.trace_events_out, &bench.trace_perfetto_out,
        &bench.timeseries_out, &bench.profile_out}) {
    if (path->empty()) {
      continue;
    }
    const std::filesystem::path parent = std::filesystem::path(*path).parent_path();
    if (!parent.empty()) {
      std::filesystem::create_directories(parent, ec);
      if (ec) {
        return Status::IoError("cannot create directory " + parent.string() + ": " +
                               ec.message());
      }
    }
  }
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      return Status::IoError("cannot create directory " + out_dir + ": " + ec.message());
    }
  }
  return Status::Ok();
}

void PrintList(const ExperimentRegistry& registry) {
  TableFormatter table({"Experiment", "Trace", "Description"});
  for (const ExperimentSpec& spec : registry.specs()) {
    table.AddRow({spec.name, TraceKindName(spec.trace), spec.description});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%zu experiments. Run a subset with --filter GLOB.\n",
              registry.specs().size());
}

}  // namespace

Result<DriverOptions> DriverOptions::Parse(int argc, char** argv) {
  DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      options.list = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      options.help = true;
    } else if (IsDriverFlag(arg) || IsBenchFlag(arg)) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(std::string(arg) + " requires a value");
      }
      if (std::strcmp(arg, "--filter") == 0) {
        options.filter = argv[i + 1];
      } else if (std::strcmp(arg, "--threads") == 0) {
        options.threads = std::strtoull(argv[i + 1], nullptr, 10);
      } else if (std::strcmp(arg, "--out-dir") == 0) {
        options.out_dir = argv[i + 1];
      }
      ++i;  // BenchOptions flags are re-parsed below.
    } else {
      return Status::InvalidArgument(std::string("unknown flag '") + arg + "'");
    }
  }
  options.bench = BenchOptions::FromArgs(argc, argv);
  return options;
}

std::vector<ExperimentOutcome> RunExperiments(
    const std::vector<const ExperimentSpec*>& specs, const DriverOptions& options,
    const ExperimentDoneCallback& on_done) {
  std::vector<ExperimentOutcome> outcomes(specs.size());

  std::size_t budget = options.threads;
  if (budget == 0) {
    budget = std::max(1u, std::thread::hardware_concurrency());
  }
  // The profiler aggregates process-wide; concurrent experiments would blur
  // span attribution, so --profile serializes everything.
  if (!options.bench.profile_out.empty()) {
    budget = 1;
  }
  const std::size_t pool = std::max<std::size_t>(1, std::min(budget, specs.size()));
  // Split the budget: `pool` experiments run concurrently, each fanning its
  // internal sweeps (fig11-13) out over its share of the remaining threads.
  const std::size_t sweep_threads = std::max<std::size_t>(1, budget / pool);

  const bool multiple = specs.size() > 1;

  std::mutex mutex;
  std::size_t next = 0;

  const auto worker = [&]() {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (next >= specs.size()) {
          return;
        }
        index = next++;
      }
      const ExperimentSpec& spec = *specs[index];
      BenchOptions bench = options.bench;
      if (multiple) {
        SplitExportPaths(bench, spec.name);
      }
      ExperimentOutcome& outcome = outcomes[index];
      outcome.spec = &spec;

      ExperimentContext context(spec, bench);
      context.set_sweep_threads(sweep_threads);
      const auto start = std::chrono::steady_clock::now();
      outcome.status = EnsureParentDirs(bench, "");
      if (outcome.status.ok()) {
        outcome.status = spec.run(context);
      }
      const auto end = std::chrono::steady_clock::now();

      outcome.output = context.output();
      outcome.manifest = context.manifest();
      outcome.manifest.threads = budget;
      outcome.manifest.wall_time_s =
          std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
      outcome.manifest.command = BuildCommand(spec, bench);
      // Profiled runs are serialized (pool == 1): reset between experiments
      // so each profile document covers only its own run.
      if (!bench.profile_out.empty()) {
        Profiler::Reset();
      }
      if (on_done) {
        std::lock_guard<std::mutex> lock(mutex);
        on_done(index, outcome);
      }
    }
  };

  if (pool == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  return outcomes;
}

int DriverMain(int argc, char** argv) {
  RegisterBuiltinExperiments();
  const ExperimentRegistry& registry = ExperimentRegistry::Instance();

  Result<DriverOptions> parsed = DriverOptions::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "coopfs_bench: %s\n%s", parsed.status().message().c_str(), kUsage);
    return 2;
  }
  const DriverOptions& options = *parsed;
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (options.list) {
    PrintList(registry);
    return 0;
  }

  const std::vector<const ExperimentSpec*> selected = registry.Match(options.filter);
  if (selected.empty()) {
    std::fprintf(stderr, "coopfs_bench: no experiment matches '%s'; available:\n",
                 options.filter.c_str());
    for (const ExperimentSpec& spec : registry.specs()) {
      std::fprintf(stderr, "  %s\n", spec.name.c_str());
    }
    return 2;
  }

  if (Status status = EnsureParentDirs(BenchOptions{}, options.out_dir); !status.ok()) {
    std::fprintf(stderr, "coopfs_bench: %s\n", status.message().c_str());
    return 1;
  }

  std::fprintf(stderr, "[coopfs_bench] running %zu experiment(s)\n", selected.size());

  // Print buffered outputs in registration order as soon as each prefix
  // completes; the on_done callback runs serialized, so the bookkeeping
  // below needs no extra lock.
  std::vector<ExperimentOutcome> streamed(selected.size());
  std::vector<bool> done(selected.size(), false);
  std::size_t printed = 0;
  const auto flush_ready = [&](std::size_t index, const ExperimentOutcome& finished) {
    streamed[index] = finished;
    done[index] = true;
    while (printed < done.size() && done[printed]) {
      const ExperimentOutcome& outcome = streamed[printed];
      std::fwrite(outcome.output.data(), 1, outcome.output.size(), stdout);
      std::fflush(stdout);
      std::fprintf(stderr, "[coopfs_bench] %s: %s (%.2fs)\n", outcome.spec->name.c_str(),
                   outcome.status.ok() ? "ok" : outcome.status.ToString().c_str(),
                   outcome.manifest.wall_time_s);
      ++printed;
    }
  };

  const std::vector<ExperimentOutcome> outcomes =
      RunExperiments(selected, options, flush_ready);

  int failures = 0;
  for (const ExperimentOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "coopfs_bench: %s failed: %s\n", outcome.spec->name.c_str(),
                   outcome.status.ToString().c_str());
      ++failures;
      continue;
    }
    if (!options.out_dir.empty()) {
      const std::string path = options.out_dir + "/" + outcome.spec->name + ".run.json";
      if (Status status = WriteRunManifest(outcome.manifest, path); !status.ok()) {
        std::fprintf(stderr, "coopfs_bench: manifest for %s failed: %s\n",
                     outcome.spec->name.c_str(), status.ToString().c_str());
        ++failures;
        continue;
      }
      std::fprintf(stderr, "[coopfs_bench] wrote manifest: %s\n", path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int ExperimentMain(const char* name, int argc, char** argv) {
  RegisterBuiltinExperiments();
  const ExperimentSpec* spec = ExperimentRegistry::Instance().Find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown experiment '%s'\n", name);
    return 2;
  }
  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  ExperimentContext context(*spec, options);
  context.set_sweep_threads(0);  // legacy standalone behavior: hardware concurrency
  const Status status = spec->run(context);
  std::fwrite(context.output().data(), 1, context.output().size(), stdout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace coopfs
