// Declarative experiment specs and the process-wide registry.
//
// Every figure in the paper's evaluation — and every ext_* extension — is the
// same shape: replay a shared trace under a list of (config, policy) jobs,
// print a table, export structured metrics. An ExperimentSpec captures one
// such experiment declaratively (name, workload, banner strings, the paper's
// expectation note, and a run function working against an ExperimentContext);
// the ExperimentRegistry holds them all in canonical order. The single
// `coopfs_bench` driver executes registered specs (--list / --filter /
// --threads, src/exp/driver.h); the per-figure bench binaries are thin
// wrappers that run exactly one spec, so driver and standalone output are
// byte-identical by construction.
#ifndef COOPFS_SRC_EXP_EXPERIMENT_H_
#define COOPFS_SRC_EXP_EXPERIMENT_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace coopfs {

class ExperimentContext;

// Which memoized trace(s) an experiment replays. Informational (shown by
// --list, recorded in manifests); specs pull traces lazily through the
// context, so a spec may also generate private traces (ext_churn).
enum class TraceKind {
  kNone,    // pure model tables (fig01, fig03)
  kSprite,  // the synthetic Sprite-like trace (§4.1)
  kAuspex,  // the synthetic Auspex-like snooped trace (§4.4)
  kBoth,    // sprite and auspex (sec45)
  kCustom,  // generates its own trace variants (ext_churn)
};

const char* TraceKindName(TraceKind kind);

struct ExperimentSpec {
  std::string name;         // stable id, doubles as the bench binary name
  std::string title;        // banner title, e.g. "Figure 4"
  std::string what;         // banner subtitle, e.g. "average block read time by algorithm"
  std::string description;  // one-liner for --list
  std::string paper_note;   // what the paper reported (expectation notes)
  TraceKind trace = TraceKind::kSprite;
  std::function<Status(ExperimentContext&)> run;
};

// Process-wide ordered registry of experiment specs. Registration order is
// canonical: --list, --filter selection, and multi-experiment driver output
// all follow it.
class ExperimentRegistry {
 public:
  static ExperimentRegistry& Instance();

  // Registers a spec; aborts on a duplicate name or missing run function
  // (both are programming errors in spec definitions).
  void Register(ExperimentSpec spec);

  const ExperimentSpec* Find(std::string_view name) const;

  // Specs whose name matches `glob`, in registration order.
  std::vector<const ExperimentSpec*> Match(std::string_view glob) const;

  const std::vector<ExperimentSpec>& specs() const { return specs_; }

 private:
  std::vector<ExperimentSpec> specs_;
};

// Shell-style glob match supporting '*' and '?' (no character classes are
// needed beyond '[...]', which is also supported for ranges like fig0[456]).
bool GlobMatch(std::string_view pattern, std::string_view text);

// Registers every built-in experiment (all fig*/sec*/ext_* specs) into the
// process-wide registry, in figure order. Idempotent.
void RegisterBuiltinExperiments();

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_EXPERIMENT_H_
