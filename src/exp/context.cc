#include "src/exp/context.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/format.h"
#include "src/common/profiler.h"
#include "src/exp/trace_pool.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"

namespace coopfs {

ExperimentContext::ExperimentContext(const ExperimentSpec& spec, const BenchOptions& options)
    : spec_(spec), options_(options) {
  manifest_.experiment = spec.name;
  manifest_.title = spec.title;
  manifest_.description = spec.description;
  manifest_.events = options_.events;
  manifest_.seed = options_.seed;
  manifest_.auspex_events = options_.auspex_events;
  manifest_.sample_interval = options_.sample_interval;
}

ExperimentContext::~ExperimentContext() = default;

void ExperimentContext::Printf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed > 0) {
    const std::size_t old_size = output_.size();
    output_.resize(old_size + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(output_.data() + old_size, static_cast<std::size_t>(needed) + 1, format,
                   args_copy);
    output_.resize(old_size + static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
}

void ExperimentContext::Banner(std::uint64_t trace_events) {
  Printf("=== %s: %s ===\n", spec_.title.c_str(), spec_.what.c_str());
  Printf("workload: %llu events, seed %llu, warm-up %llu events\n",
         static_cast<unsigned long long>(trace_events),
         static_cast<unsigned long long>(options_.seed),
         static_cast<unsigned long long>(options_.WarmupFor(trace_events)));
  Printf("config: 16 MB/client, 128 MB server, 8 KB blocks, ATM timing "
         "(250/200/400 us, 14.8 ms disk)\n\n");
}

const Trace& ExperimentContext::Sprite() {
  NoteWorkload("sprite");
  return SpriteTrace(options_);
}

const Trace& ExperimentContext::Auspex() {
  NoteWorkload("auspex");
  return AuspexTrace(options_);
}

void ExperimentContext::NoteWorkload(const char* workload) {
  for (const std::string& existing : manifest_.workloads) {
    if (existing == workload) {
      return;
    }
  }
  manifest_.workloads.push_back(workload);
}

TraceRecorder* ExperimentContext::Recorder() {
  if (!options_.tracing_requested()) {
    return nullptr;
  }
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<TraceRecorder>();
  }
  return recorder_.get();
}

SnapshotSampler* ExperimentContext::Sampler() {
  if (!options_.sampling_requested()) {
    return nullptr;
  }
  if (sampler_ == nullptr) {
    sampler_ = std::make_unique<SnapshotSampler>();
  }
  return sampler_.get();
}

SimulationConfig ExperimentContext::PaperConfig(std::uint64_t trace_events) {
  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = options_.WarmupFor(trace_events);
  config.seed = options_.seed;
  config.trace_recorder = Recorder();
  config.snapshot_sampler = Sampler();
  config.sample_interval = options_.sample_interval;
  return config;
}

SimulationConfig ExperimentContext::AuspexConfig(std::uint64_t trace_events) {
  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = AuspexWarmupEvents(trace_events);
  config.seed = options_.seed;
  config.trace_recorder = Recorder();
  config.snapshot_sampler = Sampler();
  config.sample_interval = options_.sample_interval;
  return config;
}

Status ExperimentContext::Run(Simulator& simulator, Policy& policy, SimulationResult* out) {
  Result<SimulationResult> result = simulator.Run(policy);
  if (!result.ok()) {
    return Status(result.status().code(), "simulation of " + policy.Name() +
                                              " failed: " + result.status().message());
  }
  *out = *std::move(result);
  manifest_.num_results += 1;
  return Status::Ok();
}

Status ExperimentContext::Run(Simulator& simulator, PolicyKind kind, SimulationResult* out,
                              const PolicyParams& params) {
  auto policy = MakePolicy(kind, params);
  return Run(simulator, *policy, out);
}

Status ExperimentContext::RunJobs(const Trace& trace, const std::vector<SimulationJob>& jobs,
                                  std::vector<SimulationResult>* out) {
  // Observability sinks (recorder/sampler) are shared by every job's config
  // and are not synchronized; keep such sweeps on one thread. Results are
  // deterministic either way (the replay depends only on config + policy).
  const std::size_t threads = options_.observability_requested() ? 1 : sweep_threads_;
  std::vector<Result<SimulationResult>> results =
      RunSimulationsParallel(trace, jobs, threads, job_callback_);
  out->clear();
  out->reserve(results.size());
  for (Result<SimulationResult>& result : results) {
    if (!result.ok()) {
      return Status(result.status().code(), "run failed: " + result.status().message());
    }
    out->push_back(*std::move(result));
  }
  manifest_.num_results += out->size();
  return Status::Ok();
}

void ExperimentContext::RecordConfig(const SimulationConfig& config) {
  extra_configs_.push_back(config);
}

Status ExperimentContext::WriteExports(const std::vector<SimulationResult>& results) {
  // Same export order and stdout messages as the old bench_common
  // MaybeWriteJson: event trace, timeseries, profile, metrics document.
  const std::string workload =
      manifest_.workloads.empty() ? "sprite" : manifest_.workloads.front();
  TraceExportMetadata metadata;
  metadata.seed = options_.seed;
  metadata.trace_events = options_.events;
  metadata.workload = workload;
  if (TraceRecorder* recorder = Recorder(); recorder != nullptr) {
    if (!options_.trace_events_out.empty()) {
      COOPFS_RETURN_IF_ERROR(
          WriteEventsJsonl(recorder->runs(), metadata, options_.trace_events_out));
      Printf("wrote event trace: %s (%zu runs)\n", options_.trace_events_out.c_str(),
             recorder->runs().size());
      manifest_.exports.push_back(
          {"events", std::string(kEventsSchema), options_.trace_events_out});
    }
    if (!options_.trace_perfetto_out.empty()) {
      COOPFS_RETURN_IF_ERROR(WritePerfettoTrace(recorder->runs(), options_.trace_perfetto_out));
      Printf("wrote perfetto trace: %s (open at ui.perfetto.dev)\n",
             options_.trace_perfetto_out.c_str());
      manifest_.exports.push_back({"perfetto", "", options_.trace_perfetto_out});
    }
  }
  if (SnapshotSampler* sampler = Sampler(); sampler != nullptr) {
    COOPFS_RETURN_IF_ERROR(
        WriteTimeseriesJsonl(sampler->runs(), metadata, options_.timeseries_out));
    Printf("wrote timeseries: %s (%zu runs)\n", options_.timeseries_out.c_str(),
           sampler->runs().size());
    manifest_.exports.push_back(
        {"timeseries", std::string(kTimeseriesSchema), options_.timeseries_out});
  }
  if (!options_.profile_out.empty()) {
    // The profiler is process-wide; the driver serializes experiments when
    // --profile is on so spans attribute cleanly.
    COOPFS_RETURN_IF_ERROR(Profiler::WriteFile(options_.profile_out));
    Printf("wrote profile: %s\n\n%s", options_.profile_out.c_str(),
           Profiler::SelfTimeTable(20).c_str());
    manifest_.exports.push_back({"profile", std::string(kProfileSchema), options_.profile_out});
  }
  if (!options_.json_out.empty()) {
    MetricsExporter exporter;
    if (!manifest_.configs.empty()) {
      exporter.SetConfig(manifest_.configs.front());
    }
    for (const SimulationResult& result : results) {
      exporter.AddResult(result);
    }
    if (Status status = exporter.WriteFile(options_.json_out); !status.ok()) {
      return Status(status.code(),
                    "metrics export to " + options_.json_out + " failed: " + status.message());
    }
    Printf("wrote metrics document: %s (%zu results)\n", options_.json_out.c_str(),
           results.size());
    manifest_.exports.push_back({"metrics", std::string(kMetricsSchema), options_.json_out});
  }
  return Status::Ok();
}

Status ExperimentContext::Finish(const SimulationConfig& config,
                                 const std::vector<SimulationResult>& results) {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice for " + spec_.name);
  }
  finished_ = true;
  manifest_.configs.push_back(config);
  for (const SimulationConfig& extra : extra_configs_) {
    manifest_.configs.push_back(extra);
  }
  return WriteExports(results);
}

Status ExperimentContext::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice for " + spec_.name);
  }
  finished_ = true;
  for (const SimulationConfig& extra : extra_configs_) {
    manifest_.configs.push_back(extra);
  }
  return WriteExports({});
}

std::vector<std::string> ResultRow(const SimulationResult& result,
                                   const SimulationResult& baseline) {
  return {result.policy_name,
          FormatDouble(result.AverageReadTime(), 0) + " us",
          FormatDouble(result.SpeedupOver(baseline), 2) + "x",
          FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory)),
          FormatPercent(result.LevelFraction(CacheLevel::kRemoteClient)),
          FormatPercent(result.LevelFraction(CacheLevel::kServerMemory)),
          FormatPercent(result.DiskRate())};
}

}  // namespace coopfs
