// Process-wide, thread-safe memoization of the synthetic workload traces.
//
// Traces are the expensive shared input of every experiment: the Sprite-like
// trace is 700k events, the Auspex-like one 5M. Each (kind, seed, events)
// combination is generated exactly once and shared read-only afterwards —
// including across experiments running concurrently on the driver's thread
// pool, which is what makes `coopfs_bench --threads N` safe: generation is
// serialized per kind, and a returned Trace& is immutable and stable for the
// life of the process.
#ifndef COOPFS_SRC_EXP_TRACE_POOL_H_
#define COOPFS_SRC_EXP_TRACE_POOL_H_

#include <cstdint>
#include <memory>

#include "src/exp/options.h"
#include "src/trace/event.h"

namespace coopfs {

// Generates (and memoizes) the Sprite-like trace for (seed, events). Prints
// a one-line progress note to stderr on first generation.
const Trace& SpriteTrace(const BenchOptions& options);

// Generates (and memoizes) the Auspex-like snooped trace (237 clients; §4.4)
// for (seed, auspex_events).
const Trace& AuspexTrace(const BenchOptions& options);

// Shared-ownership snapshots of the same memoized entries. The refcount is
// bumped exactly once per call — on the acquiring thread, under the pool
// lock — and the snapshot is immutable afterwards, so a sweep acquires the
// snapshot once up front and fans the plain `const Trace&` out to its
// workers with zero cross-thread refcount or allocator traffic. The entry
// stays alive (and its address stable) for as long as any snapshot does,
// even if the pool is cleared or replaced in the future.
std::shared_ptr<const Trace> SpriteTraceSnapshot(const BenchOptions& options);
std::shared_ptr<const Trace> AuspexTraceSnapshot(const BenchOptions& options);

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_TRACE_POOL_H_
