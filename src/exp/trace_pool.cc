#include "src/exp/trace_pool.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/trace/workload.h"

namespace coopfs {

namespace {

// One cache per trace kind, each guarded by its own mutex so Sprite and
// Auspex generation can proceed concurrently. Values are shared_ptrs so a
// returned Trace& stays stable across later insertions and snapshot holders
// keep their entry alive independently of the pool. Generation happens
// under the lock: a second thread asking for the same trace blocks until the
// first finishes, then shares the result — exactly once per key.
struct TraceCache {
  std::mutex mutex;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::shared_ptr<const Trace>> traces;

  std::shared_ptr<const Trace> GetOrGenerate(
      std::uint64_t seed, std::uint64_t events, const char* label, const char* unit,
      Trace (*generate)(std::uint64_t seed, std::uint64_t events)) {
    const auto key = std::make_pair(seed, events);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = traces.find(key);
    if (it == traces.end()) {
      std::fprintf(stderr, "[bench] generating %s trace (%llu %s)...\n", label,
                   static_cast<unsigned long long>(events), unit);
      it = traces.emplace(key, std::make_shared<Trace>(generate(seed, events))).first;
    }
    return it->second;
  }
};

TraceCache& SpriteCache() {
  static auto* cache = new TraceCache();
  return *cache;
}

TraceCache& AuspexCache() {
  static auto* cache = new TraceCache();
  return *cache;
}

Trace GenerateSprite(std::uint64_t seed, std::uint64_t events) {
  WorkloadConfig config = SpriteWorkloadConfig(seed);
  config.num_events = events;
  return GenerateWorkload(config);
}

Trace GenerateAuspex(std::uint64_t seed, std::uint64_t events) {
  WorkloadConfig config = AuspexWorkloadConfig(seed + 1994);
  config.num_events = events;
  return GenerateWorkload(config);
}

}  // namespace

const Trace& SpriteTrace(const BenchOptions& options) {
  return *SpriteTraceSnapshot(options);
}

const Trace& AuspexTrace(const BenchOptions& options) {
  return *AuspexTraceSnapshot(options);
}

std::shared_ptr<const Trace> SpriteTraceSnapshot(const BenchOptions& options) {
  return SpriteCache().GetOrGenerate(options.seed, options.events, "Sprite-like", "events",
                                     &GenerateSprite);
}

std::shared_ptr<const Trace> AuspexTraceSnapshot(const BenchOptions& options) {
  return AuspexCache().GetOrGenerate(options.seed, options.auspex_events, "Auspex-like",
                                     "visible events", &GenerateAuspex);
}

}  // namespace coopfs
