#include "src/exp/options.h"

#include <cstdlib>
#include <cstring>

#include "src/common/profiler.h"

namespace coopfs {

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0) {
      options.events = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--auspex-events") == 0) {
      options.auspex_events = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-events") == 0) {
      options.trace_events_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-perfetto") == 0) {
      options.trace_perfetto_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--timeseries") == 0) {
      options.timeseries_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--sample-interval") == 0) {
      options.sample_interval = static_cast<Micros>(std::strtoll(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      options.profile_out = argv[i + 1];
    }
  }
  if (!options.profile_out.empty()) {
    Profiler::Enable(true);
  }
  // Environment override so `for b in bench/*; do $b; done` can be scaled.
  if (const char* env = std::getenv("COOPFS_BENCH_EVENTS"); env != nullptr) {
    options.events = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("COOPFS_BENCH_AUSPEX_EVENTS"); env != nullptr) {
    options.auspex_events = std::strtoull(env, nullptr, 10);
  }
  return options;
}

}  // namespace coopfs
