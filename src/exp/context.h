// Execution context handed to every ExperimentSpec::run function.
//
// The context owns everything one experiment needs: the resolved BenchOptions,
// buffered stdout (so the driver can interleave experiments on a thread pool
// yet print outputs in registration order, byte-identical to the standalone
// binaries), lazily shared traces (src/exp/trace_pool.h), per-context
// observability sinks (TraceRecorder / SnapshotSampler — each experiment gets
// its own, unlike the old bench_common process-wide singletons, so
// experiments can run concurrently), and the coopfs.run/v1 manifest being
// accumulated for the run (src/obs/run_manifest.h).
//
// Specs report failures as Status (never exit()): the driver keeps running
// the remaining experiments and exits non-zero at the end.
#ifndef COOPFS_SRC_EXP_CONTEXT_H_
#define COOPFS_SRC_EXP_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/core/sweep.h"
#include "src/exp/experiment.h"
#include "src/exp/options.h"
#include "src/obs/run_manifest.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/event.h"

#if defined(__GNUC__) || defined(__clang__)
#define COOPFS_PRINTF_LIKE(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))
#else
#define COOPFS_PRINTF_LIKE(fmt_index, first_arg)
#endif

namespace coopfs {

class SnapshotSampler;
class TraceRecorder;

class ExperimentContext {
 public:
  ExperimentContext(const ExperimentSpec& spec, const BenchOptions& options);
  ~ExperimentContext();

  ExperimentContext(const ExperimentContext&) = delete;
  ExperimentContext& operator=(const ExperimentContext&) = delete;

  const ExperimentSpec& spec() const { return spec_; }
  const BenchOptions& options() const { return options_; }

  // printf into the experiment's stdout buffer. The buffer is printed (by
  // the driver or the standalone wrapper) only after the experiment
  // finishes, in registration order.
  void Printf(const char* format, ...) COOPFS_PRINTF_LIKE(2, 3);

  // The standard bench banner ("=== <title>: <what> ===" + workload and
  // configuration lines), byte-identical to the old PrintBanner.
  void Banner(std::uint64_t trace_events);

  // Shared memoized traces; also records the workload in the run manifest.
  const Trace& Sprite();
  const Trace& Auspex();

  // Paper §4.1 defaults: 16 MB clients, 128 MB server, ATM network; warm-up
  // set to the paper's Sprite fraction of `trace_events`. Attaches this
  // context's observability sinks when requested by the options.
  SimulationConfig PaperConfig(std::uint64_t trace_events);

  // Same §4.1 memory sizes with the Auspex warm-up fraction (1/5 of the
  // visible events; the paper warms on 1M of 5M).
  SimulationConfig AuspexConfig(std::uint64_t trace_events);

  // Runs one policy, storing the result in *out. A failure Status names the
  // policy. The result also counts toward the manifest's num_results.
  Status Run(Simulator& simulator, Policy& policy, SimulationResult* out);
  Status Run(Simulator& simulator, PolicyKind kind, SimulationResult* out,
             const PolicyParams& params = {});

  // Fans `jobs` out over RunSimulationsParallel and returns one result per
  // job in input order, failing fast on the first error. Thread count is the
  // context's sweep budget (set by the driver; hardware concurrency for
  // standalone binaries) — forced to 1 when observability sinks are attached,
  // because recorders and samplers are not synchronized across jobs.
  Status RunJobs(const Trace& trace, const std::vector<SimulationJob>& jobs,
                 std::vector<SimulationResult>* out);

  // Records an additional resolved configuration in the manifest (for
  // experiments that derive secondary configs, e.g. sec45's moved-memory
  // layout). Finish() records its own config; only extras need this.
  void RecordConfig(const SimulationConfig& config);

  // Epilogue of every spec: writes the requested exports (event trace,
  // timeseries, profile, metrics document — same order and stdout messages
  // as the old MaybeWriteJson) and records config + exports in the manifest.
  // The overload without arguments is for model-only experiments (fig01,
  // fig03) that have no simulation config or results to export.
  Status Finish(const SimulationConfig& config, const std::vector<SimulationResult>& results);
  Status Finish();

  // Sweep thread budget for RunJobs; 0 = hardware concurrency.
  void set_sweep_threads(std::size_t threads) { sweep_threads_ = threads; }

  // Per-job completion callback for RunJobs (driver progress reporting).
  void set_job_callback(SweepCallback callback) { job_callback_ = std::move(callback); }

  // The buffered stdout produced so far.
  const std::string& output() const { return output_; }

  // The manifest accumulated by Sprite()/Auspex()/Run/Finish. The driver
  // fills in the run-level fields (threads, wall time, command) and writes it.
  const RunManifest& manifest() const { return manifest_; }
  RunManifest& manifest() { return manifest_; }

 private:
  TraceRecorder* Recorder();
  SnapshotSampler* Sampler();
  void NoteWorkload(const char* workload);
  Status WriteExports(const std::vector<SimulationResult>& results);

  const ExperimentSpec& spec_;
  BenchOptions options_;
  std::string output_;
  RunManifest manifest_;
  std::vector<SimulationConfig> extra_configs_;
  std::size_t sweep_threads_ = 0;
  SweepCallback job_callback_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<SnapshotSampler> sampler_;
  bool finished_ = false;
};

// Renders one SimulationResult row ("algorithm, avg time, speedup, level
// fractions") used by several figures.
std::vector<std::string> ResultRow(const SimulationResult& result,
                                   const SimulationResult& baseline);

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_CONTEXT_H_
