// Shared run options for the experiment framework (src/exp) and the bench
// binaries built on it.
//
// Every experiment replays a shared synthetic trace under the paper's §4.1
// default configuration, varying one dimension. Common flags:
//   --events N             trace length (default 700,000 as in the paper)
//   --seed S               workload seed (default 42)
//   --auspex-events N      Auspex visible-event count (default 5,000,000)
//   --json PATH            also export the runs as a coopfs.metrics/v1 document
//   --trace-events PATH    record per-event traces for every run and write a
//                          coopfs.events/v1 JSONL document (docs/observability.md)
//   --trace-perfetto PATH  also write the runs as Chrome trace_event JSON for
//                          ui.perfetto.dev
//   --timeseries PATH      sample simulation state periodically and write a
//                          coopfs.timeseries/v1 JSONL document
//   --sample-interval N    simulated microseconds between samples (default
//                          3600000000 = 1 simulated hour)
//   --profile PATH         time the simulator's own phases and write a
//                          coopfs.profile/v1 JSON document (also prints the
//                          self-time table)
// Warm-up is scaled as in the paper (src/trace/warmup.h): the first 4/7 of a
// Sprite-like trace (400k of 700k accesses), 1/5 of an Auspex-like one.
#ifndef COOPFS_SRC_EXP_OPTIONS_H_
#define COOPFS_SRC_EXP_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/trace/warmup.h"

namespace coopfs {

struct BenchOptions {
  std::uint64_t events = 700'000;
  std::uint64_t seed = 42;
  std::uint64_t auspex_events = 5'000'000;
  std::string json_out;            // --json PATH: empty = no structured export.
  std::string trace_events_out;    // --trace-events PATH: empty = no recording.
  std::string trace_perfetto_out;  // --trace-perfetto PATH: empty = none.
  std::string timeseries_out;      // --timeseries PATH: empty = no sampling.
  std::string profile_out;         // --profile PATH: empty = profiler off.
  // --sample-interval N: simulated µs between samples (1 simulated hour; the
  // synthetic Sprite-like workload spans two simulated days).
  Micros sample_interval = 3'600'000'000;

  // Parses flags; also enables the self-profiler process-wide when --profile
  // was given, so spans cover workload generation as well as the runs.
  // Unknown flags are ignored (the driver parses its own on top of these).
  static BenchOptions FromArgs(int argc, char** argv);

  bool tracing_requested() const {
    return !trace_events_out.empty() || !trace_perfetto_out.empty();
  }

  bool sampling_requested() const { return !timeseries_out.empty(); }

  // True when any per-run observability sink is attached; such sinks are not
  // synchronized, so runs sharing them must stay on one thread.
  bool observability_requested() const {
    return tracing_requested() || sampling_requested() || !profile_out.empty();
  }

  std::uint64_t WarmupFor(std::uint64_t num_events) const {
    return SpriteWarmupEvents(num_events);
  }
};

}  // namespace coopfs

#endif  // COOPFS_SRC_EXP_OPTIONS_H_
