// §4.5 ablation: cooperative caching vs. physically moving client memory to
// the server. Moving 80% of each client's cache into the central server is
// simulated as the baseline algorithm with 3.2 MB clients and a server
// cache enlarged by 42 x 12.8 MB. Paper: +66% over the standard layout on
// Sprite (+93% on Auspex), short of N-Chance — and with a ~50% higher
// server read load than N-Chance.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator standard(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(standard, PolicyKind::kBaseline, &baseline));
  SimulationResult nchance;
  COOPFS_RETURN_IF_ERROR(ctx.Run(standard, PolicyKind::kNChance, &nchance));

  // Physically moved memory: clients keep 20% (3.2 MB); the server gains
  // the other 80% of all 42 clients (537.6 MB -> 665.6 MB total).
  SimulationConfig moved = config;
  const std::size_t moved_per_client = BytesToBlocks(MiB(16)) * 8 / 10;
  moved.client_cache_blocks = BytesToBlocks(MiB(16)) - moved_per_client;
  moved.server_cache_blocks =
      BytesToBlocks(MiB(128)) + moved_per_client * standard.num_clients();
  ctx.RecordConfig(moved);
  Simulator moved_sim(moved, &trace);
  SimulationResult moved_result;
  COOPFS_RETURN_IF_ERROR(ctx.Run(moved_sim, PolicyKind::kBaseline, &moved_result));

  TableFormatter table({"Configuration", "Avg read", "Improvement vs standard", "Local hit",
                        "Disk rate", "Server read load"});
  auto load_units = [](const SimulationResult& result) {
    return result.server_load.TotalUnits();
  };
  auto row = [&](const char* name, const SimulationResult& result) {
    table.AddRow({name, FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatPercent(result.SpeedupOver(baseline) - 1.0, 0),
                  FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory)),
                  FormatPercent(result.DiskRate()),
                  std::to_string(load_units(result)) + " units"});
  };
  row("Standard layout (16 MB clients, 128 MB server)", baseline);
  row("80% of client memory moved to server", moved_result);
  row("N-Chance Forwarding (n=2)", nchance);
  ctx.Printf("%s\n", table.ToString().c_str());

  const double load_ratio = static_cast<double>(load_units(moved_result)) /
                            static_cast<double>(load_units(nchance));
  ctx.Printf("moved-memory server read load = %s of N-Chance's\n",
             FormatPercent(load_ratio, 0).c_str());
  ctx.Printf("paper reported: moving memory gains +66%% (Sprite) but trails N-Chance, with "
             "~150%% of N-Chance's read load\n\n");

  // The paper's second data point: the same comparison under the Auspex
  // workload (+93% for moved memory there), with stack deletion at the 80%
  // assumed hidden local hit rate as in Figure 14.
  const Trace& auspex = ctx.Auspex();
  const SimulationConfig aus_config = ctx.AuspexConfig(auspex.size());
  ctx.RecordConfig(aus_config);
  Simulator aus_standard(aus_config, &auspex);
  SimulationConfig aus_moved = aus_config;
  aus_moved.client_cache_blocks = BytesToBlocks(MiB(16)) - moved_per_client;
  aus_moved.server_cache_blocks =
      BytesToBlocks(MiB(128)) + moved_per_client * aus_standard.num_clients();
  Simulator aus_moved_sim(aus_moved, &auspex);

  const double local_us = static_cast<double>(aus_config.network.memory_copy);
  SimulationResult aus_base_raw;
  COOPFS_RETURN_IF_ERROR(ctx.Run(aus_standard, PolicyKind::kBaseline, &aus_base_raw));
  SimulationResult aus_nchance_raw;
  COOPFS_RETURN_IF_ERROR(ctx.Run(aus_standard, PolicyKind::kNChance, &aus_nchance_raw));
  SimulationResult aus_moved_raw;
  COOPFS_RETURN_IF_ERROR(ctx.Run(aus_moved_sim, PolicyKind::kBaseline, &aus_moved_raw));
  const SimulationResult aus_base = ApplyStackDeletion(aus_base_raw, 0.8, local_us);
  const SimulationResult aus_nchance = ApplyStackDeletion(aus_nchance_raw, 0.8, local_us);
  const SimulationResult aus_moved_result = ApplyStackDeletion(aus_moved_raw, 0.8, local_us);

  ctx.Printf("Auspex workload (237 clients, stack deletion @ 80%% hidden hit rate):\n");
  TableFormatter aus_table({"Configuration", "Avg read", "Improvement vs standard"});
  aus_table.AddRow({"Standard layout", FormatDouble(aus_base.AverageReadTime(), 0) + " us",
                    "0%"});
  aus_table.AddRow({"80% of client memory moved to server",
                    FormatDouble(aus_moved_result.AverageReadTime(), 0) + " us",
                    FormatPercent(aus_moved_result.SpeedupOver(aus_base) - 1.0, 0)});
  aus_table.AddRow({"N-Chance Forwarding (n=2)",
                    FormatDouble(aus_nchance.AverageReadTime(), 0) + " us",
                    FormatPercent(aus_nchance.SpeedupOver(aus_base) - 1.0, 0)});
  ctx.Printf("%s\n", aus_table.ToString().c_str());
  ctx.Printf("paper reported: +93%% for moved memory on Auspex, still short of N-Chance\n");
  return ctx.Finish(config, {baseline, nchance, moved_result});
}

}  // namespace

ExperimentSpec Sec45MemoryPlacementSpec() {
  ExperimentSpec spec;
  spec.name = "sec45_memory_placement";
  spec.title = "Section 4.5";
  spec.what = "moving memory to the server vs. cooperative caching";
  spec.description = "moving client memory to the server vs. cooperative caching";
  spec.paper_note = "paper reported: moving memory gains +66% (Sprite), +93% (Auspex), but "
                    "trails N-Chance with ~150% of its read load";
  spec.trace = TraceKind::kBoth;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
