// Extension ablation: workstation churn. The paper's traces cover stable
// machines; real LANs reboot. A reboot destroys the rebooting client's
// cache — including any singlets it was cooperatively holding — so the
// algorithms that depend on remote memory should degrade gracefully as the
// reboot rate rises, and the baseline (which never depends on peers)
// should degrade least.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"
#include "src/trace/workload.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const BenchOptions& options = ctx.options();
  ctx.Printf("=== Extension: client churn (reboots) ===\n");
  ctx.Printf("workload: %llu events, seed %llu; reboot rate swept per client per trace\n\n",
             static_cast<unsigned long long>(options.events),
             static_cast<unsigned long long>(options.seed));

  TableFormatter table({"Reboots/client", "Baseline", "Greedy", "Central", "N-Chance",
                        "N-Chance coop loss"});
  double no_churn_nchance = 0.0;
  double no_churn_base = 0.0;
  SimulationConfig base_config;
  std::vector<SimulationResult> results;
  for (const double rate : {0.0, 2.0, 8.0, 32.0, 128.0}) {
    WorkloadConfig workload = SpriteWorkloadConfig(options.seed);
    workload.num_events = options.events;
    workload.mean_reboots_per_client = rate;
    const Trace trace = GenerateWorkload(workload);
    SimulationConfig config = ctx.PaperConfig(trace.size());
    Simulator simulator(config, &trace);

    SimulationResult base;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &base));
    SimulationResult greedy;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kGreedy, &greedy));
    SimulationResult central;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kCentralCoord, &central));
    SimulationResult nchance;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kNChance, &nchance));
    if (rate == 0.0) {
      no_churn_nchance = nchance.AverageReadTime();
      no_churn_base = base.AverageReadTime();
      base_config = config;
    } else {
      ctx.RecordConfig(config);
    }
    results.push_back(base);
    results.push_back(greedy);
    results.push_back(central);
    results.push_back(nchance);
    // How much of N-Chance's cooperative advantage over the baseline
    // survives the churn?
    const double advantage =
        (base.AverageReadTime() - nchance.AverageReadTime()) /
        (no_churn_base - no_churn_nchance);
    table.AddRow({FormatDouble(rate, 0), FormatDouble(base.AverageReadTime(), 0) + " us",
                  FormatDouble(greedy.AverageReadTime(), 0) + " us",
                  FormatDouble(central.AverageReadTime(), 0) + " us",
                  FormatDouble(nchance.AverageReadTime(), 0) + " us",
                  FormatPercent(1.0 - advantage, 0)});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("expected: cooperative benefit erodes with churn but degrades gracefully; the\n"
             "baseline suffers only its own clients' cold caches\n");
  return ctx.Finish(base_config, results);
}

}  // namespace

ExperimentSpec ExtChurnSpec() {
  ExperimentSpec spec;
  spec.name = "ext_churn";
  spec.title = "Extension: client churn (reboots)";
  spec.what = "cooperative caching under workstation reboots";
  spec.description = "cooperative caching under workstation reboots (custom traces)";
  spec.paper_note = "expected: cooperative benefit erodes with churn but degrades gracefully";
  spec.trace = TraceKind::kCustom;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
