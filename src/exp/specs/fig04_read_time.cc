// Figure 4: average block read time per algorithm, segmented by the level
// that satisfied each read, plus the headline speedups (paper: Direct 1.05,
// Greedy 1.22, Central 1.64, N-Chance 1.73, best case ~1.77).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &results.back()));
  }
  const SimulationResult& baseline = results.front();

  TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local t", "Remote t", "Server t",
                        "Disk t"});
  for (const SimulationResult& result : results) {
    const double reads = static_cast<double>(result.reads);
    table.AddRow({result.policy_name, FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(result.SpeedupOver(baseline), 2) + "x",
                  FormatDouble(result.level_time_us[0] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[1] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[2] / reads, 0) + " us",
                  FormatDouble(result.level_time_us[3] / reads, 0) + " us"});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported speedups: Direct 1.05x, Greedy 1.22x, Central 1.64x, "
             "N-Chance 1.73x (both coordinated algorithms within 10%% of best case)\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Fig04ReadTimeSpec() {
  ExperimentSpec spec;
  spec.name = "fig04_read_time";
  spec.title = "Figure 4";
  spec.what = "average block read time by algorithm";
  spec.description = "average block read time by algorithm";
  spec.paper_note = "paper reported speedups: Direct 1.05x, Greedy 1.22x, Central 1.64x, "
                    "N-Chance 1.73x";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
