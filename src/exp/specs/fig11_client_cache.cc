// Figure 11: response time vs. per-client cache size. Paper: the
// coordinated algorithms do well once caches are reasonably large, but
// coordinating tiny caches hurts (borrowed memory costs local hits without
// cutting disk accesses); Greedy is solid across the range.
//
// The 30 (size x policy) simulations are independent; they run on the
// context's sweep thread budget (src/core/sweep.h).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  ctx.Banner(trace.size());

  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kBestCase};
  const std::vector<std::size_t> sizes = {2, 4, 8, 16, 32, 64};

  std::vector<SimulationJob> jobs;
  for (std::size_t mib : sizes) {
    for (PolicyKind kind : kinds) {
      SimulationJob job;
      job.config = ctx.PaperConfig(trace.size());
      job.config.WithClientCacheMiB(mib);
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  std::vector<SimulationResult> results;
  COOPFS_RETURN_IF_ERROR(ctx.RunJobs(trace, jobs, &results));

  TableFormatter table({"Client cache", "Baseline", "Greedy", "Central", "N-Chance", "Best"});
  std::size_t index = 0;
  for (std::size_t mib : sizes) {
    std::vector<std::string> row{std::to_string(mib) + " MB"};
    for (std::size_t p = 0; p < kinds.size(); ++p, ++index) {
      row.push_back(FormatDouble(results[index].AverageReadTime(), 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: coordination pays off for reasonably large caches; tiny "
             "caches gain little (or lose) from coordination. Default: 16 MB.\n");
  return ctx.Finish(ctx.PaperConfig(trace.size()), results);
}

}  // namespace

ExperimentSpec Fig11ClientCacheSpec() {
  ExperimentSpec spec;
  spec.name = "fig11_client_cache";
  spec.title = "Figure 11";
  spec.what = "response time vs. client cache size";
  spec.description = "response time vs. client cache size (parallel sweep)";
  spec.paper_note = "paper reported: coordination pays off for reasonably large caches; tiny "
                    "caches gain little (or lose). Default: 16 MB";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
