// Figure 12: response time vs. central server cache size. Paper: a bigger
// server cache helps the baseline a lot and the cooperative algorithms only
// modestly; cooperative caching stops paying once the server cache rivals
// the aggregate client memory (42 x 16 MB = 672 MB) — but such a server
// doubles the system's memory cost. Central Coordination suffers at very
// large server caches because of its reduced local hit rate.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  ctx.Banner(trace.size());

  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kBestCase};
  const std::vector<std::size_t> sizes = {32, 64, 128, 256, 512, 768, 1024};

  std::vector<SimulationJob> jobs;
  for (std::size_t mib : sizes) {
    for (PolicyKind kind : kinds) {
      SimulationJob job;
      job.config = ctx.PaperConfig(trace.size());
      job.config.WithServerCacheMiB(mib);
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  std::vector<SimulationResult> results;
  COOPFS_RETURN_IF_ERROR(ctx.RunJobs(trace, jobs, &results));

  TableFormatter table({"Server cache", "Baseline", "Greedy", "Central", "N-Chance", "Best"});
  std::size_t index = 0;
  for (std::size_t mib : sizes) {
    std::vector<std::string> row{std::to_string(mib) + " MB"};
    for (std::size_t p = 0; p < kinds.size(); ++p, ++index) {
      row.push_back(FormatDouble(results[index].AverageReadTime(), 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: baseline improves sharply with server cache; cooperative "
             "algorithms only modestly; benefit vanishes near aggregate client memory "
             "(672 MB). Default: 128 MB.\n");
  return ctx.Finish(ctx.PaperConfig(trace.size()), results);
}

}  // namespace

ExperimentSpec Fig12ServerCacheSpec() {
  ExperimentSpec spec;
  spec.name = "fig12_server_cache";
  spec.title = "Figure 12";
  spec.what = "response time vs. server cache size";
  spec.description = "response time vs. server cache size (parallel sweep)";
  spec.paper_note = "paper reported: baseline improves sharply with server cache; benefit "
                    "vanishes near aggregate client memory (672 MB). Default: 128 MB";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
