// Figure 9: Centrally Coordinated Caching response time vs. the fraction of
// each client cache that is centrally coordinated. Paper: a response-time
// plateau when 40-90% of client memory is coordinated; 0% = baseline.
#include "src/common/format.h"
#include "src/core/central_coord.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> results;
  TableFormatter table({"Coordinated", "Avg read", "Disk time", "Other time", "Local hit"});
  for (int percent = 0; percent <= 100; percent += 10) {
    SimulationResult result;
    if (percent == 0) {
      COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &result));
    } else {
      CentralCoordPolicy policy(percent / 100.0);
      COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, policy, &result));
    }
    results.push_back(result);
    const double reads = static_cast<double>(result.reads);
    const double disk_time = result.level_time_us[3] / reads;
    table.AddRow({std::to_string(percent) + "%",
                  FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(disk_time, 0) + " us",
                  FormatDouble(result.AverageReadTime() - disk_time, 0) + " us",
                  FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory))});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: response-time plateau for 40-90%% coordinated; the study "
             "uses 80%%\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Fig09CentralFractionSpec() {
  ExperimentSpec spec;
  spec.name = "fig09_central_fraction";
  spec.title = "Figure 9";
  spec.what = "Central Coordination response vs. coordinated fraction";
  spec.description = "Central Coordination response vs. coordinated fraction";
  spec.paper_note = "paper reported: response-time plateau for 40-90% coordinated; the study "
                    "uses 80%";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
