// Figure 5: fraction of reads satisfied at each level of the hierarchy.
// Paper: local miss rates 22% (base/direct/greedy/best), 36% (central),
// 23% (N-Chance); disk rates 15.7% (base) vs 7.6-7.7% (coordinated).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  TableFormatter table({"Algorithm", "Local miss", "Remote Client", "Server Mem", "Server Disk",
                        "Combined-mem miss"});
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &results.back()));
    const SimulationResult& result = results.back();
    const double remote = result.LevelFraction(CacheLevel::kRemoteClient);
    const double disk = result.DiskRate();
    table.AddRow({result.policy_name, FormatPercent(result.LocalMissRate()),
                  FormatPercent(remote),
                  FormatPercent(result.LevelFraction(CacheLevel::kServerMemory)),
                  FormatPercent(disk), FormatPercent(remote + disk)});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: local miss 22%% (base/greedy/best) / 36%% (central) / 23%% "
             "(N-Chance); disk 15.7%% base -> 7.6-7.7%% coordinated\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Fig05HitRatesSpec() {
  ExperimentSpec spec;
  spec.name = "fig05_hit_rates";
  spec.title = "Figure 5";
  spec.what = "hit level breakdown by algorithm";
  spec.description = "hit level breakdown by algorithm";
  spec.paper_note = "paper reported: local miss 22% (base/greedy/best) / 36% (central) / 23% "
                    "(N-Chance); disk 15.7% base -> 7.6-7.7% coordinated";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
