// Figure 6: server load by algorithm, as a percentage of the baseline
// no-cooperation load, segmented by request type (§4.1 load units: small
// message 1, data transfer +2, disk transfer 2; local hits free).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> results;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    results.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &results.back()));
  }
  const double base_units = static_cast<double>(results.front().server_load.TotalUnits());

  TableFormatter table({"Algorithm", "Hit Server Mem", "Hit Remote Client", "Hit Disk",
                        "Other Load", "Total"});
  for (const SimulationResult& result : results) {
    auto pct = [&](ServerLoadKind kind) {
      return FormatPercent(static_cast<double>(result.server_load.Units(kind)) / base_units, 1);
    };
    table.AddRow({result.policy_name, pct(ServerLoadKind::kHitServerMemory),
                  pct(ServerLoadKind::kHitRemoteClient), pct(ServerLoadKind::kHitDisk),
                  pct(ServerLoadKind::kOther),
                  FormatPercent(static_cast<double>(result.server_load.TotalUnits()) / base_units,
                                1)});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: most algorithms at or below baseline load; Central somewhat "
             "above it (every local miss goes through the server)\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Fig06ServerLoadSpec() {
  ExperimentSpec spec;
  spec.name = "fig06_server_load";
  spec.title = "Figure 6";
  spec.what = "relative server load by algorithm";
  spec.description = "relative server load by algorithm";
  spec.paper_note = "paper reported: most algorithms at or below baseline load; Central "
                    "somewhat above it";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
