// Figure 10: N-Chance response time vs. the recirculation count n.
// Paper: the big win is n = 0 -> 1; n = 1 -> 2 adds a little; beyond that,
// nothing. n = 0 is exactly Greedy Forwarding.
#include "src/common/format.h"
#include "src/core/nchance.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &baseline));

  std::vector<SimulationResult> results;
  results.push_back(baseline);
  TableFormatter table({"n", "Avg read", "Speedup", "Disk time", "Other time", "Disk rate"});
  for (int n : {0, 1, 2, 3, 4, 6, 8}) {
    NChancePolicy policy(n);
    SimulationResult result;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, policy, &result));
    results.push_back(result);
    const double reads = static_cast<double>(result.reads);
    const double disk_time = result.level_time_us[3] / reads;
    table.AddRow({std::to_string(n), FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(result.SpeedupOver(baseline), 2) + "x",
                  FormatDouble(disk_time, 0) + " us",
                  FormatDouble(result.AverageReadTime() - disk_time, 0) + " us",
                  FormatPercent(result.DiskRate())});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: largest improvement 0->1; small gain 1->2; flat beyond "
             "(the study uses n = 2)\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Fig10NChanceNSpec() {
  ExperimentSpec spec;
  spec.name = "fig10_nchance_n";
  spec.title = "Figure 10";
  spec.what = "N-Chance response vs. recirculation count n";
  spec.description = "N-Chance response vs. recirculation count n";
  spec.paper_note = "paper reported: largest improvement 0->1; small gain 1->2; flat beyond "
                    "(the study uses n = 2)";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
