// Figure 13: response time vs. network speed (x = round trip to request and
// receive an 8 KB block, excluding memory copy; disk and memory times held
// constant). Paper: at Ethernet speeds (~10 ms) the best cooperative
// speedup is ~20%; at 1 ms it reaches ~70%; below ~100 us the network no
// longer matters. N-Chance tracks the best case across the whole range,
// while Central Coordination decays on slow networks.
#include <algorithm>

#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  ctx.Banner(trace.size());

  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kBestCase};
  const std::vector<Micros> round_trips = {100, 200, 400, 800, 1600, 3200, 6400, 9600};

  std::vector<SimulationJob> jobs;
  for (Micros round_trip : round_trips) {
    for (PolicyKind kind : kinds) {
      SimulationJob job;
      job.config = ctx.PaperConfig(trace.size());
      job.config.network = NetworkModel::Atm155().WithRoundTrip(round_trip);
      job.kind = kind;
      jobs.push_back(job);
    }
  }
  std::vector<SimulationResult> results;
  COOPFS_RETURN_IF_ERROR(ctx.RunJobs(trace, jobs, &results));

  TableFormatter table({"Round trip", "Baseline", "Greedy", "Central", "N-Chance", "Best",
                        "Best speedup"});
  std::size_t index = 0;
  for (Micros round_trip : round_trips) {
    std::vector<std::string> row{std::to_string(round_trip) + " us"};
    double base_time = 0.0;
    double best_time = 1e18;
    for (std::size_t p = 0; p < kinds.size(); ++p, ++index) {
      const double avg = results[index].AverageReadTime();
      if (kinds[p] == PolicyKind::kBaseline) {
        base_time = avg;
      }
      best_time = std::min(best_time, avg);
      row.push_back(FormatDouble(avg, 0) + " us");
    }
    row.push_back(FormatDouble(base_time / best_time, 2) + "x");
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: ~20%% peak speedup at Ethernet speed (~10 ms), ~70%% at 1 ms, "
             "flat below ~100 us; N-Chance tracks the best case throughout. "
             "Default: 800 us.\n");
  return ctx.Finish(ctx.PaperConfig(trace.size()), results);
}

}  // namespace

ExperimentSpec Fig13NetworkSpeedSpec() {
  ExperimentSpec spec;
  spec.name = "fig13_network_speed";
  spec.title = "Figure 13";
  spec.what = "response time vs. network block round-trip time";
  spec.description = "response time vs. network round-trip time (parallel sweep)";
  spec.paper_note = "paper reported: ~20% peak speedup at Ethernet speed, ~70% at 1 ms, flat "
                    "below ~100 us. Default: 800 us";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
