// Extension analysis (paper §3 caveat): queueing delay at the server.
//
// The paper computes response times with no queueing, arguing that the
// attractive algorithms do not raise server load and the network is
// switched. This bench quantifies the caveat with a standard M/M/1
// correction: given a server that can process C load-units per second, an
// algorithm generating lambda units/second sees its server-side service
// times inflated by 1/(1 - lambda/C). Algorithms that push more traffic
// through the server (Central Coordination) hit the wall first; Hash
// Distribution, which bypasses the server for cooperative hits, lasts
// longest — making the paper's server-load argument concrete.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"
#include "src/sim/queueing.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kHashDistributed};
  std::vector<SimulationResult> results;
  for (PolicyKind kind : kinds) {
    results.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &results.back()));
  }

  // Post-warm-up simulated wall time.
  const Micros span = trace.back().timestamp - trace[config.warmup_events].timestamp;
  const double seconds = static_cast<double>(span) / 1e6;

  ctx.Printf("offered server load (units/s): ");
  for (const SimulationResult& result : results) {
    ctx.Printf("%s %s  ", result.policy_name.c_str(),
               FormatDouble(OfferedLoadUnitsPerSecond(result, seconds), 0).c_str());
  }
  ctx.Printf("\n\n");

  TableFormatter table({"Server capacity", "Baseline", "Greedy", "Central", "N-Chance", "Hash"});
  const double base_rate = OfferedLoadUnitsPerSecond(results.front(), seconds);
  for (const double capacity : {50.0, 20.0, 10.0, 5.0, 3.0, 2.0}) {
    // Capacity expressed as a multiple of the baseline's offered load.
    const double capacity_units = capacity * base_rate;
    std::vector<std::string> row{FormatDouble(capacity, 0) + "x base load"};
    for (const SimulationResult& result : results) {
      const Result<QueueingAdjustment> adjusted =
          ApplyServerQueueing(result, seconds, capacity_units);
      if (!adjusted.ok() || adjusted->saturated || adjusted->utilization >= 0.99) {
        row.push_back("saturated");
        continue;
      }
      row.push_back(FormatDouble(adjusted->adjusted_read_time, 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("expected: rankings stable at generous capacity; Central saturates first as\n"
             "capacity tightens (its local misses all transit the server), vindicating the\n"
             "paper's decision to report Figure 6 alongside unqueued response times\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec ExtQueueingSpec() {
  ExperimentSpec spec;
  spec.name = "ext_queueing";
  spec.title = "Extension: server queueing sensitivity";
  spec.what = "M/M/1-adjusted response vs. server capacity";
  spec.description = "M/M/1-adjusted response times vs. server capacity";
  spec.paper_note = "expected: rankings stable at generous capacity; Central saturates first "
                    "as capacity tightens";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
