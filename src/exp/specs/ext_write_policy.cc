// Extension ablation (paper §3 and §5): delayed writes vs. write-through.
//
// The paper asserts that, because it studies reads, "a delayed write or
// write back policy would not affect our results", and points (§5) at
// DASH-style dirty-data forwarding as the natural companion optimization.
// This bench validates the claim — read response barely moves — and
// quantifies what delayed writes buy on the write path: the fraction of
// server write traffic absorbed because blocks were overwritten or deleted
// before their 30 s flush came due.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  ctx.Banner(trace.size());

  SimulationConfig base_config;
  bool have_base_config = false;
  std::vector<SimulationResult> results;
  TableFormatter table({"Algorithm / write policy", "Avg read", "Disk rate", "Writes",
                        "Flushed", "Absorbed", "Write traffic"});
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kGreedy, PolicyKind::kNChance}) {
    for (const WritePolicy write_policy :
         {WritePolicy::kWriteThrough, WritePolicy::kDelayedWrite}) {
      SimulationConfig config = ctx.PaperConfig(trace.size());
      config.write_policy = write_policy;
      if (!have_base_config) {
        base_config = config;
        have_base_config = true;
      } else {
        ctx.RecordConfig(config);
      }
      Simulator simulator(config, &trace);
      SimulationResult result;
      COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &result));
      const bool delayed = write_policy == WritePolicy::kDelayedWrite;
      // Write traffic to the server: every write (through) vs. only flushes.
      const std::uint64_t traffic = delayed ? result.flushed_writes : result.writes;
      table.AddRow({result.policy_name + (delayed ? " / delayed" : " / through"),
                    FormatDouble(result.AverageReadTime(), 0) + " us",
                    FormatPercent(result.DiskRate()), std::to_string(result.writes),
                    delayed ? std::to_string(result.flushed_writes) : "-",
                    delayed ? std::to_string(result.absorbed_writes) : "-",
                    result.writes == 0
                        ? "-"
                        : FormatPercent(static_cast<double>(traffic) /
                                        static_cast<double>(result.writes))});
      results.push_back(std::move(result));
    }
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("expected: read columns nearly identical across write policies (paper §3); the\n"
             "delayed rows show the server write traffic saved by absorption\n");
  return ctx.Finish(base_config, results);
}

}  // namespace

ExperimentSpec ExtWritePolicySpec() {
  ExperimentSpec spec;
  spec.name = "ext_write_policy";
  spec.title = "Extension: write policy";
  spec.what = "write-through vs. 30 s delayed writes";
  spec.description = "write-through vs. 30 s delayed writes";
  spec.paper_note = "expected: read columns nearly identical across write policies; delayed "
                    "rows show server write traffic saved by absorption";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
