// Figure 14: response times under the Berkeley Auspex workload (237 NFS
// clients, snooped trace missing local hits). The simulation runs on the
// visible events; Smith's stack deletion then adds the inferred local hits
// for an assumed hidden local hit rate (80% default; footnote 4 sweeps 70%
// and 90%). Paper: same algorithm ranking as Sprite; N-Chance speedup 2.00
// at 80% (2.20 at 70%, 1.67 at 90%).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Auspex();
  const SimulationConfig config = ctx.AuspexConfig(trace.size());  // Paper: 1M of 5M warm-up.

  ctx.Printf("=== Figure 14: Berkeley Auspex workload (snooped NFS trace) ===\n");
  ctx.Printf("workload: %zu visible events, 237 clients, warm-up %llu events\n\n", trace.size(),
             static_cast<unsigned long long>(config.warmup_events));

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> raw;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    raw.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &raw.back()));
  }

  const double local_us = static_cast<double>(config.network.memory_copy);
  for (const double hidden_rate : {0.8, 0.7, 0.9}) {
    std::vector<SimulationResult> adjusted;
    adjusted.reserve(raw.size());
    for (const SimulationResult& result : raw) {
      adjusted.push_back(ApplyStackDeletion(result, hidden_rate, local_us));
    }
    const SimulationResult& baseline = adjusted.front();
    ctx.Printf("--- assumed hidden local hit rate: %s ---\n",
               FormatPercent(hidden_rate, 0).c_str());
    TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local", "Remote", "ServerMem",
                          "Disk"});
    for (const SimulationResult& result : adjusted) {
      table.AddRow(ResultRow(result, baseline));
    }
    ctx.Printf("%s\n", table.ToString().c_str());
  }
  ctx.Printf("paper reported (80%% hidden rate): same ranking as Sprite; N-Chance speedup "
             "2.00 (2.20 at 70%%, 1.67 at 90%%)\n");
  return ctx.Finish(config, raw);
}

}  // namespace

ExperimentSpec Fig14AuspexSpec() {
  ExperimentSpec spec;
  spec.name = "fig14_auspex";
  spec.title = "Figure 14";
  spec.what = "Berkeley Auspex workload (snooped NFS trace)";
  spec.description = "Auspex workload response times with stack deletion";
  spec.paper_note = "paper reported (80% hidden rate): same ranking as Sprite; N-Chance "
                    "speedup 2.00 (2.20 at 70%, 1.67 at 90%)";
  spec.trace = TraceKind::kAuspex;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
