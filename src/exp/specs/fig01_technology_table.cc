// Figure 1: time to service a local cache miss from remote memory or disk,
// for 10 Mbit/s Ethernet and 155 Mbit/s ATM. Pure technology-model table —
// reproduces the paper's numbers exactly.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"
#include "src/model/network_model.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const NetworkModel ethernet = NetworkModel::Ethernet10();
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  ctx.Printf("=== Figure 1: local-miss service time, remote memory vs. remote disk ===\n\n");

  TableFormatter table({"", "Eth Remote Mem", "Eth Remote Disk", "ATM Remote Mem",
                        "ATM Remote Disk"});
  auto us = [](Micros value) { return std::to_string(value) + " us"; };

  table.AddRow({"Mem. Copy", us(ethernet.memory_copy), us(ethernet.memory_copy),
                us(atm.memory_copy), us(atm.memory_copy)});
  table.AddRow({"Net Overhead", us(ethernet.per_hop * 2), us(ethernet.per_hop * 2),
                us(atm.per_hop * 2), us(atm.per_hop * 2)});
  table.AddRow({"Data", us(ethernet.block_transfer), us(ethernet.block_transfer),
                us(atm.block_transfer), us(atm.block_transfer)});
  table.AddRow({"Disk", "", us(disk.access_time), "", us(disk.access_time)});
  table.AddRule();
  table.AddRow({"Total", us(ethernet.RemoteFetchTime(2)),
                us(ethernet.RemoteFetchTime(2) + disk.access_time), us(atm.RemoteFetchTime(2)),
                us(atm.RemoteFetchTime(2) + disk.access_time)});
  ctx.Printf("%s\n", table.ToString().c_str());

  ctx.Printf("paper reported: 6,900 / 21,700 / 1,050 / 15,850 us\n");
  return ctx.Finish();
}

}  // namespace

ExperimentSpec Fig01TechnologyTableSpec() {
  ExperimentSpec spec;
  spec.name = "fig01_technology_table";
  spec.title = "Figure 1";
  spec.what = "local-miss service time, remote memory vs. remote disk";
  spec.description = "remote-memory vs. remote-disk service time (model)";
  spec.paper_note = "paper reported: 6,900 / 21,700 / 1,050 / 15,850 us";
  spec.trace = TraceKind::kNone;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
