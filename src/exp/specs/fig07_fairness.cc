// Figure 7: per-client speedup/slowdown vs. the baseline, ordered by client
// activity (read count). Paper: Greedy and N-Chance harm no client; Direct
// slows a few clients up to 25%; Central damages one client by 19%.
#include <algorithm>

#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &baseline));
  const std::vector<PolicyKind> kinds = {PolicyKind::kDirectCoop, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance};
  std::vector<SimulationResult> results;
  std::vector<std::vector<double>> speedups;
  for (PolicyKind kind : kinds) {
    results.emplace_back();
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &results.back()));
    speedups.push_back(results.back().PerClientSpeedup(baseline));
  }

  // Clients ordered by activity, least active first (as on the x-axis).
  std::vector<std::size_t> order(baseline.per_client.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    order[c] = c;
  }
  std::sort(order.begin(), order.end(), [&baseline](std::size_t a, std::size_t b) {
    return baseline.per_client[a].reads < baseline.per_client[b].reads;
  });

  TableFormatter table({"Client", "Reads", "Direct", "Greedy", "Central", "N-Chance"});
  for (std::size_t c : order) {
    std::vector<std::string> row{"c" + std::to_string(c),
                                 std::to_string(baseline.per_client[c].reads)};
    for (std::size_t p = 0; p < kinds.size(); ++p) {
      row.push_back(FormatDouble(speedups[p][c], 2) + "x");
    }
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());

  // Summary: worst per-client slowdown per algorithm.
  TableFormatter summary({"Algorithm", "Worst client", "Best client", "Clients slowed >2%"});
  for (std::size_t p = 0; p < kinds.size(); ++p) {
    double worst = 1e9;
    double best = 0.0;
    int slowed = 0;
    for (std::size_t c = 0; c < speedups[p].size(); ++c) {
      worst = std::min(worst, speedups[p][c]);
      best = std::max(best, speedups[p][c]);
      slowed += speedups[p][c] < 0.98 ? 1 : 0;
    }
    summary.AddRow({results[p].policy_name, FormatDouble(worst, 2) + "x",
                    FormatDouble(best, 2) + "x", std::to_string(slowed)});
  }
  ctx.Printf("%s\n", summary.ToString().c_str());
  ctx.Printf("paper reported: Greedy & N-Chance harm no client; Direct slows a few clients "
             "up to 25%%; Central slows one client 19%%\n");

  std::vector<SimulationResult> exported;
  exported.push_back(baseline);
  exported.insert(exported.end(), results.begin(), results.end());
  return ctx.Finish(config, exported);
}

}  // namespace

ExperimentSpec Fig07FairnessSpec() {
  ExperimentSpec spec;
  spec.name = "fig07_fairness";
  spec.title = "Figure 7";
  spec.what = "per-client speedup vs. baseline (fairness)";
  spec.description = "per-client fairness vs. baseline";
  spec.paper_note = "paper reported: Greedy & N-Chance harm no client; Direct slows a few "
                    "clients up to 25%; Central slows one client 19%";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
