// Figure 8: Direct Client Cooperation speedup as a function of each
// client's recruited remote cache size (paper: <1% improvement at 4 MB,
// ~5% at 16 MB, ~40% only at ~64 MB), plus the §4.2.1 what-if: only the
// most active 10% of clients recruit remote memory (paper: 85% of the
// maximum Direct benefit).
#include <algorithm>

#include "src/common/format.h"
#include "src/core/direct_coop.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &baseline));

  std::vector<SimulationResult> exported;
  exported.push_back(baseline);
  TableFormatter table({"Remote cache / client", "Avg read", "Speedup"});
  double max_speedup = 1.0;
  for (std::size_t mib : {0, 4, 8, 16, 32, 64, 128}) {
    SimulationResult result = baseline;  // 0 MB remote cache == baseline.
    if (mib != 0) {
      DirectCoopPolicy policy(BytesToBlocks(MiB(mib)));
      COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, policy, &result));
      exported.push_back(result);
    }
    const double speedup = result.SpeedupOver(baseline);
    max_speedup = std::max(max_speedup, speedup);
    table.AddRow({std::to_string(mib) + " MB", FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(speedup, 3) + "x"});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: <1%% at 4 MB, ~5%% at 16 MB, ~40%% at 64 MB\n\n");

  // §4.2.1: only the top 10% most active clients recruit 16 MB remote
  // caches. Activity is measured by baseline read counts.
  std::vector<std::size_t> order(baseline.per_client.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    order[c] = c;
  }
  std::sort(order.begin(), order.end(), [&baseline](std::size_t a, std::size_t b) {
    return baseline.per_client[a].reads > baseline.per_client[b].reads;
  });
  const std::size_t top = std::max<std::size_t>(1, order.size() / 10);
  std::vector<std::size_t> capacities(order.size(), 0);
  for (std::size_t rank = 0; rank < top; ++rank) {
    capacities[order[rank]] = BytesToBlocks(MiB(16));
  }
  DirectCoopPolicy top10(capacities);
  SimulationResult top10_result;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, top10, &top10_result));
  DirectCoopPolicy all16(BytesToBlocks(MiB(16)));
  SimulationResult all_result;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, all16, &all_result));
  exported.push_back(top10_result);
  exported.push_back(all_result);

  const double top10_gain = top10_result.SpeedupOver(baseline) - 1.0;
  const double all_gain = all_result.SpeedupOver(baseline) - 1.0;
  ctx.Printf("What-if (paper §4.2.1): top %zu of %zu clients recruit 16 MB each\n", top,
             order.size());
  ctx.Printf("  all clients recruit:    %s performance improvement\n",
             FormatPercent(all_gain, 1).c_str());
  ctx.Printf("  top 10%% only:           %s performance improvement (%s of the full benefit)\n",
             FormatPercent(top10_gain, 1).c_str(),
             all_gain > 0 ? FormatPercent(top10_gain / all_gain, 0).c_str() : "n/a");
  ctx.Printf("paper reported: top 10%% capture ~85%% of the maximum Direct benefit\n");
  return ctx.Finish(config, exported);
}

}  // namespace

ExperimentSpec Fig08DirectSweepSpec() {
  ExperimentSpec spec;
  spec.name = "fig08_direct_sweep";
  spec.title = "Figure 8";
  spec.what = "Direct Cooperation speedup vs. remote cache size";
  spec.description = "Direct Cooperation speedup vs. remote cache size";
  spec.paper_note = "paper reported: <1% at 4 MB, ~5% at 16 MB, ~40% at 64 MB; top 10% "
                    "capture ~85% of the maximum Direct benefit";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
