// §2.5: the two algorithms whose results the paper omits. Hash-Distributed
// Caching should match Centrally Coordinated hit rates with much lower
// server load; Weighted LRU should perform like N-Chance but with extra
// global-state query load.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &baseline));
  const std::vector<PolicyKind> kinds = {PolicyKind::kCentralCoord,
                                         PolicyKind::kHashDistributed, PolicyKind::kNChance,
                                         PolicyKind::kWeightedLru};

  std::vector<SimulationResult> results;
  results.push_back(baseline);
  TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local", "Remote", "ServerMem",
                        "Disk", "Rel. server load"});
  for (PolicyKind kind : kinds) {
    SimulationResult result;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, kind, &result));
    results.push_back(result);
    std::vector<std::string> row = ResultRow(result, baseline);
    row.push_back(FormatPercent(result.RelativeServerLoad(baseline), 0));
    table.AddRow(std::move(row));
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: Hash-Distributed ~= Central hit rates with significantly lower "
             "server load; Weighted LRU ~= N-Chance response time but more complex and "
             "heavier on the server\n");
  return ctx.Finish(config, results);
}

}  // namespace

ExperimentSpec Sec25OtherAlgorithmsSpec() {
  ExperimentSpec spec;
  spec.name = "sec25_other_algorithms";
  spec.title = "Section 2.5";
  spec.what = "Hash-Distributed and Weighted-LRU (results omitted in paper)";
  spec.description = "Hash-Distributed and Weighted-LRU algorithms";
  spec.paper_note = "paper reported: Hash-Distributed ~= Central hit rates with lower server "
                    "load; Weighted LRU ~= N-Chance response time";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
