// Extension ablation (paper §2.4's suggested enhancement): forward evicted
// singlets to the most idle client instead of a uniformly random one. The
// paper hypothesizes this "avoids disturbing active clients"; this bench
// measures both global response time and the speedup of the busiest
// clients under each forwarding rule.
#include <algorithm>

#include "src/common/format.h"
#include "src/core/nchance.h"
#include "src/core/nchance_idle.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  const SimulationConfig config = ctx.PaperConfig(trace.size());
  ctx.Banner(trace.size());

  Simulator simulator(config, &trace);
  SimulationResult baseline;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &baseline));
  NChancePolicy random_forwarding(2);
  NChanceIdleAwarePolicy idle_forwarding(2);
  SimulationResult random_result;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, random_forwarding, &random_result));
  SimulationResult idle_result;
  COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, idle_forwarding, &idle_result));

  TableFormatter table({"Forwarding rule", "Avg read", "Speedup", "Local", "Remote", "Disk"});
  for (const SimulationResult* result : {&random_result, &idle_result}) {
    table.AddRow({result->policy_name, FormatDouble(result->AverageReadTime(), 0) + " us",
                  FormatDouble(result->SpeedupOver(baseline), 2) + "x",
                  FormatPercent(result->LevelFraction(CacheLevel::kLocalMemory)),
                  FormatPercent(result->LevelFraction(CacheLevel::kRemoteClient)),
                  FormatPercent(result->DiskRate())});
  }
  ctx.Printf("%s\n", table.ToString().c_str());

  // Busiest-decile clients: does idle targeting protect them?
  std::vector<std::size_t> order(baseline.per_client.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    order[c] = c;
  }
  std::sort(order.begin(), order.end(), [&baseline](std::size_t a, std::size_t b) {
    return baseline.per_client[a].reads > baseline.per_client[b].reads;
  });
  const std::size_t top = std::max<std::size_t>(1, order.size() / 10);
  const auto top_decile_speedup = [&](const SimulationResult& result) {
    const std::vector<double> speedups = result.PerClientSpeedup(baseline);
    double total_reads = 0.0;
    double weighted = 0.0;
    for (std::size_t rank = 0; rank < top; ++rank) {
      const std::size_t c = order[rank];
      const auto reads = static_cast<double>(baseline.per_client[c].reads);
      weighted += speedups[c] * reads;
      total_reads += reads;
    }
    return weighted / total_reads;
  };
  ctx.Printf("busiest %zu clients, read-weighted speedup: random %sx, idle-aware %sx\n", top,
             FormatDouble(top_decile_speedup(random_result), 3).c_str(),
             FormatDouble(top_decile_speedup(idle_result), 3).c_str());
  ctx.Printf("(paper §2.4: idle targeting should help by not disturbing active clients)\n");
  return ctx.Finish(config, {baseline, random_result, idle_result});
}

}  // namespace

ExperimentSpec ExtIdleTargetingSpec() {
  ExperimentSpec spec;
  spec.name = "ext_idle_targeting";
  spec.title = "Extension: idle-targeted forwarding";
  spec.what = "random vs. idle-aware N-Chance singlet placement";
  spec.description = "random vs. idle-aware N-Chance singlet placement";
  spec.paper_note = "paper §2.4: idle targeting should help by not disturbing active clients";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
