// Figure 3: access times for the four memory-hierarchy levels under each
// cooperative caching algorithm. The only difference between algorithms is
// the hop count to remote client memory (2 for Direct, 3 for the
// server-forwarded algorithms).
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"
#include "src/model/access_times.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  ctx.Printf("=== Figure 3: per-level access times by algorithm (ATM) ===\n\n");

  TableFormatter table({"Algorithm", "Local Mem.", "Remote Client Mem.", "Server Mem.",
                        "Server Disk"});
  auto row = [&table](const char* name, const AccessTimes& times) {
    table.AddRow({name, std::to_string(times.local) + " us",
                  std::to_string(times.remote_client) + " us",
                  std::to_string(times.server_memory) + " us",
                  std::to_string(times.server_disk) + " us"});
  };
  row("Direct", ComputeAccessTimes(atm, disk, /*remote_hops=*/2));
  row("Greedy", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  row("Central", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  row("N-Chance", ComputeAccessTimes(atm, disk, /*remote_hops=*/3));
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("paper reported: 250 / 1050 or 1250 / 1050 / 15,850 us\n");
  return ctx.Finish();
}

}  // namespace

ExperimentSpec Fig03AccessTimesSpec() {
  ExperimentSpec spec;
  spec.name = "fig03_access_times";
  spec.title = "Figure 3";
  spec.what = "per-level access times by algorithm (ATM)";
  spec.description = "per-level access times by algorithm (model)";
  spec.paper_note = "paper reported: 250 / 1050 or 1250 / 1050 / 15,850 us";
  spec.trace = TraceKind::kNone;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
