// Extension ablation: striping the file service across multiple servers —
// the direction the paper's own xFS project took ("the use of the vast
// aggregate resources of the system's clients", §1; Sprite itself ran
// several servers, §3 footnote 1).
//
// Total server memory is held constant while files are hash-striped over
// 1..8 servers. Raw response time barely moves (the same blocks are cached
// somewhere), but the offered load *per server* falls ~1/S, which the
// M/M/1 queueing model turns into real latency headroom at tight capacity.
#include "src/common/format.h"
#include "src/exp/context.h"
#include "src/exp/specs.h"
#include "src/sim/queueing.h"

namespace coopfs {

namespace {

Status Run(ExperimentContext& ctx) {
  const Trace& trace = ctx.Sprite();
  ctx.Banner(trace.size());

  TableFormatter table({"Servers", "Baseline", "N-Chance", "Load/server (base)",
                        "Queued base @3x", "Queued N-Chance @3x"});
  double single_server_rate = 0.0;
  SimulationConfig base_config;
  std::vector<SimulationResult> results;
  for (const std::uint32_t servers : {1u, 2u, 4u, 8u}) {
    SimulationConfig config = ctx.PaperConfig(trace.size());
    config.num_servers = servers;
    if (servers == 1) {
      base_config = config;
    } else {
      ctx.RecordConfig(config);
    }
    Simulator simulator(config, &trace);
    SimulationResult base;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kBaseline, &base));
    SimulationResult nchance;
    COOPFS_RETURN_IF_ERROR(ctx.Run(simulator, PolicyKind::kNChance, &nchance));
    results.push_back(base);
    results.push_back(nchance);

    const Micros span = trace.back().timestamp - trace[config.warmup_events].timestamp;
    const double seconds = static_cast<double>(span) / 1e6;
    // Aggregate offered load is ~independent of striping; each server sees
    // roughly a 1/S share.
    const double per_server_rate =
        OfferedLoadUnitsPerSecond(base, seconds) / static_cast<double>(servers);
    if (servers == 1) {
      single_server_rate = per_server_rate;
    }
    // Queueing at per-server capacity fixed at 3x the single-server load:
    // striping buys headroom.
    const double capacity = 3.0 * single_server_rate;
    const auto queued = [&](const SimulationResult& result) -> std::string {
      SimulationResult share = result;  // Approximate: each server sees 1/S.
      share.server_load.Reset();
      share.server_load.ChargeSmallMessages(result.server_load.TotalUnits() / servers);
      const Result<QueueingAdjustment> adjustment =
          ApplyServerQueueing(share, seconds, capacity);
      if (!adjustment.ok() || adjustment->saturated || adjustment->utilization >= 0.99) {
        return "saturated";
      }
      return FormatDouble(adjustment->adjusted_read_time, 0) + " us";
    };

    table.AddRow({std::to_string(servers), FormatDouble(base.AverageReadTime(), 0) + " us",
                  FormatDouble(nchance.AverageReadTime(), 0) + " us",
                  FormatDouble(per_server_rate, 1) + " u/s", queued(base), queued(nchance)});
  }
  ctx.Printf("%s\n", table.ToString().c_str());
  ctx.Printf("expected: raw response ~flat (same total memory); per-server load ~1/S; at a\n"
             "fixed per-server capacity, striping is what keeps queueing in check —\n"
             "cooperative caching and server distribution compose (the xFS thesis)\n");
  return ctx.Finish(base_config, results);
}

}  // namespace

ExperimentSpec ExtMultiServerSpec() {
  ExperimentSpec spec;
  spec.name = "ext_multi_server";
  spec.title = "Extension: multi-server striping";
  spec.what = "response and per-server load vs. #servers";
  spec.description = "hash-striping the file service over 1..8 servers";
  spec.paper_note = "expected: raw response ~flat; per-server load ~1/S; striping keeps "
                    "queueing in check (the xFS thesis)";
  spec.trace = TraceKind::kSprite;
  spec.run = Run;
  return spec;
}

}  // namespace coopfs
