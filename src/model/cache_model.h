// Analytic LRU cache model: Che's approximation.
//
// Under the independent reference model (each access draws object i with
// fixed probability p_i — exactly the Leff et al. synthetic workload the
// paper used to validate its simulator, §3), an LRU cache of C objects has
// a well-known closed-form approximation (Che, Tung & Wang 2002): solve
//
//     sum_i (1 - exp(-p_i * T)) = C        for the characteristic time T,
//     hit_rate = sum_i p_i * (1 - exp(-p_i * T)).
//
// coopfs uses it as an independent oracle: the integration tests check the
// simulator's measured LRU hit rates against the analytic prediction, which
// would catch subtle replacement-policy bugs that hand-written scenarios
// cannot.
#ifndef COOPFS_SRC_MODEL_CACHE_MODEL_H_
#define COOPFS_SRC_MODEL_CACHE_MODEL_H_

#include <cstddef>
#include <vector>

namespace coopfs {

// Normalized Zipf(s) probability vector over `n` ranks (rank 0 = hottest).
std::vector<double> ZipfProbabilities(std::size_t n, double s);

// Characteristic time T of an LRU cache of `cache_objects` slots under IRM
// with the given (normalized) access probabilities. Returns 0 if the cache
// holds everything.
double CheCharacteristicTime(const std::vector<double>& probabilities,
                             std::size_t cache_objects);

// Che's approximation of the steady-state LRU hit rate. Exact limits: 0 for
// an empty cache, 1.0 when every object fits.
double CheLruHitRate(const std::vector<double>& probabilities, std::size_t cache_objects);

}  // namespace coopfs

#endif  // COOPFS_SRC_MODEL_CACHE_MODEL_H_
