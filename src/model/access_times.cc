#include "src/model/access_times.h"

#include <sstream>

namespace coopfs {

AccessTimes ComputeAccessTimes(const NetworkModel& net, const DiskModel& disk, int remote_hops) {
  AccessTimes times;
  times.local = net.memory_copy;
  times.remote_client = net.RemoteFetchTime(remote_hops);
  // Server-memory hits are always a direct request/reply: 2 hops.
  times.server_memory = net.RemoteFetchTime(2);
  // Disk hits pay the server-memory path plus the physical disk access.
  times.server_disk = times.server_memory + disk.access_time;
  return times;
}

std::string AccessTimes::ToString() const {
  std::ostringstream out;
  out << "local=" << local << "us remote=" << remote_client << "us server=" << server_memory
      << "us disk=" << server_disk << "us";
  return out.str();
}

}  // namespace coopfs
