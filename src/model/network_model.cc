#include "src/model/network_model.h"

#include <sstream>

namespace coopfs {

NetworkModel NetworkModel::Atm155() {
  NetworkModel model;
  model.memory_copy = 250;
  model.per_hop = 200;
  model.block_transfer = 400;
  return model;
}

NetworkModel NetworkModel::Ethernet10() {
  NetworkModel model;
  model.memory_copy = 250;
  model.per_hop = 200;
  model.block_transfer = 6250;
  return model;
}

NetworkModel NetworkModel::WithRoundTrip(Micros round_trip) const {
  const Micros base = TransferTime(2);
  NetworkModel scaled = *this;
  if (base > 0 && round_trip > 0) {
    const double factor = static_cast<double>(round_trip) / static_cast<double>(base);
    scaled.per_hop = static_cast<Micros>(static_cast<double>(per_hop) * factor + 0.5);
    scaled.block_transfer =
        static_cast<Micros>(static_cast<double>(block_transfer) * factor + 0.5);
  }
  return scaled;
}

std::string NetworkModel::ToString() const {
  std::ostringstream out;
  out << "mem_copy=" << memory_copy << "us hop=" << per_hop << "us transfer=" << block_transfer
      << "us";
  return out.str();
}

}  // namespace coopfs
