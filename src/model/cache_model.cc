#include "src/model/cache_model.h"

#include <cmath>

namespace coopfs {

std::vector<double> ZipfProbabilities(std::size_t n, double s) {
  std::vector<double> probabilities(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probabilities[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    sum += probabilities[i];
  }
  for (double& p : probabilities) {
    p /= sum;
  }
  return probabilities;
}

namespace {

// Expected number of distinct objects referenced within characteristic
// time t (the cache occupancy Che's approximation equates to capacity).
double ExpectedOccupancy(const std::vector<double>& probabilities, double t) {
  double occupancy = 0.0;
  for (double p : probabilities) {
    occupancy += 1.0 - std::exp(-p * t);
  }
  return occupancy;
}

}  // namespace

double CheCharacteristicTime(const std::vector<double>& probabilities,
                             std::size_t cache_objects) {
  if (cache_objects == 0 || probabilities.empty()) {
    return 0.0;
  }
  if (cache_objects >= probabilities.size()) {
    return 0.0;  // Everything fits; T is unbounded/meaningless.
  }
  // Bisection: occupancy is monotonically increasing in t.
  double lo = 0.0;
  double hi = 1.0;
  while (ExpectedOccupancy(probabilities, hi) < static_cast<double>(cache_objects)) {
    hi *= 2.0;
    if (hi > 1e18) {
      break;
    }
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedOccupancy(probabilities, mid) < static_cast<double>(cache_objects)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double CheLruHitRate(const std::vector<double>& probabilities, std::size_t cache_objects) {
  if (cache_objects == 0 || probabilities.empty()) {
    return 0.0;
  }
  if (cache_objects >= probabilities.size()) {
    return 1.0;
  }
  const double t = CheCharacteristicTime(probabilities, cache_objects);
  double hit_rate = 0.0;
  for (double p : probabilities) {
    hit_rate += p * (1.0 - std::exp(-p * t));
  }
  return hit_rate;
}

}  // namespace coopfs
