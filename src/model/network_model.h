// Network technology model (paper Figure 1 and §3).
//
// The paper computes response times from constant access latencies: an 8 KB
// block costs a 250 µs memory copy wherever it is found, plus (if remote) a
// per-block network transfer and a per-hop small-packet latency, plus (if on
// disk) a constant disk access. NetworkModel captures the network constants
// with presets for the paper's two technologies.
#ifndef COOPFS_SRC_MODEL_NETWORK_MODEL_H_
#define COOPFS_SRC_MODEL_NETWORK_MODEL_H_

#include <string>

#include "src/common/types.h"

namespace coopfs {

struct NetworkModel {
  // Time to copy one 8 KB block between the cache and the application.
  Micros memory_copy = 250;
  // One-way small-packet latency per network hop (request or forward).
  Micros per_hop = 200;
  // Time to move one 8 KB block across the network.
  Micros block_transfer = 400;

  // 155 Mbit/s ATM of Figure 1: 400 µs round-trip overhead (2 hops x 200 µs)
  // plus 400 µs data transfer. The paper's default.
  static NetworkModel Atm155();

  // 10 Mbit/s Ethernet of Figure 1: same per-hop overhead, 6250 µs for the
  // 8 KB payload at full (optimistic) link speed.
  static NetworkModel Ethernet10();

  // Scales per-hop and transfer times proportionally so that the basic
  // request/receive round trip (2 hops + 1 block transfer, excluding memory
  // copy) equals `round_trip`. Used by the Figure 13 network-speed sweep.
  NetworkModel WithRoundTrip(Micros round_trip) const;

  // Round trip to request and receive a block over `hops` network hops,
  // excluding the memory-copy time.
  Micros TransferTime(int hops) const { return block_transfer + per_hop * hops; }

  // Full time to fetch a block from a remote memory reached via `hops` hops
  // (includes the memory copy). E.g. 2 hops = 1050 µs on ATM (Figure 1),
  // 3 hops = 1250 µs (server-forwarded cooperative hit, Figure 3).
  Micros RemoteFetchTime(int hops) const { return memory_copy + TransferTime(hops); }

  std::string ToString() const;
};

// Backing-disk model: the paper charges a constant 14,800 µs physical access
// (Ruemmler & Wilkes measurement) on top of the server-memory fetch path and
// models no queueing (§3).
struct DiskModel {
  Micros access_time = 14'800;

  static DiskModel RuemmlerWilkes() { return DiskModel{}; }
};

}  // namespace coopfs

#endif  // COOPFS_SRC_MODEL_NETWORK_MODEL_H_
