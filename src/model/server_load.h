// Server load accounting (paper §4.1, Figure 6).
//
// The paper compares algorithms by abstract load units charged to the
// server: a small network message costs 1 unit, a block data transfer adds
// 2 (so a data reply costs 1 + 2 = 3), and a disk transfer costs 2. Local
// hits cost the server nothing. Only the read path plus coordination
// overhead ("other": invalidations, singlet queries, directory updates that
// are not piggybacked) is charged; write-backs and attribute traffic would
// add equally to every algorithm and are excluded.
#ifndef COOPFS_SRC_MODEL_SERVER_LOAD_H_
#define COOPFS_SRC_MODEL_SERVER_LOAD_H_

#include <cstdint>
#include <string>

#include "src/common/stats.h"

namespace coopfs {

// Cost constants, in load units.
inline constexpr std::uint64_t kLoadMessage = 1;       // Small packet send or receive.
inline constexpr std::uint64_t kLoadDataTransfer = 2;  // 8 KB payload on the network.
inline constexpr std::uint64_t kLoadDiskTransfer = 2;  // 8 KB to/from disk.

// Figure 6 segments.
enum class ServerLoadKind : std::uint8_t {
  kHitServerMemory = 0,  // Receive request + send data: 1 + (1+2) = 4.
  kHitRemoteClient = 1,  // Receive request + forward: 1 + 1 = 2.
  kHitDisk = 2,          // Receive + disk + send data: 1 + 2 + (1+2) = 6.
  kOther = 3,            // Invalidations, queries, non-piggybacked updates.
};

inline constexpr std::size_t kNumServerLoadKinds = 4;

constexpr const char* ServerLoadKindName(ServerLoadKind kind) {
  switch (kind) {
    case ServerLoadKind::kHitServerMemory:
      return "Hit Server Memory";
    case ServerLoadKind::kHitRemoteClient:
      return "Hit Remote Client";
    case ServerLoadKind::kHitDisk:
      return "Hit Disk";
    case ServerLoadKind::kOther:
      return "Other Load";
  }
  return "Unknown";
}

// Accumulates load units by Figure 6 segment.
class ServerLoadTracker {
 public:
  // A read satisfied from the server's memory cache.
  void ChargeServerMemoryHit() {
    Charge(ServerLoadKind::kHitServerMemory, kLoadMessage + kLoadMessage + kLoadDataTransfer);
  }

  // A read the server forwarded to a caching client (data flows
  // client-to-client and never touches the server).
  void ChargeRemoteClientHit() {
    Charge(ServerLoadKind::kHitRemoteClient, kLoadMessage + kLoadMessage);
  }

  // A read satisfied from disk: receive request, disk transfer, data reply.
  void ChargeDiskHit() {
    Charge(ServerLoadKind::kHitDisk,
           kLoadMessage + kLoadDiskTransfer + kLoadMessage + kLoadDataTransfer);
  }

  // One small coordination message (invalidation, is-this-a-singlet query,
  // non-piggybacked directory update), and its reply if any.
  void ChargeSmallMessages(std::uint64_t messages) {
    Charge(ServerLoadKind::kOther, messages * kLoadMessage);
  }

  void Charge(ServerLoadKind kind, std::uint64_t units) {
    units_.Add(static_cast<std::size_t>(kind), units);
  }

  std::uint64_t Units(ServerLoadKind kind) const {
    return units_.Get(static_cast<std::size_t>(kind));
  }
  std::uint64_t TotalUnits() const { return units_.Total(); }

  void Merge(const ServerLoadTracker& other) { units_.Merge(other.units_); }
  void Reset() { units_.Reset(); }

 private:
  CounterArray<kNumServerLoadKinds> units_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_MODEL_SERVER_LOAD_H_
