// Per-level access-time table (paper Figure 3).
//
// Converts the technology model into the four constant latencies the
// simulator multiplies hit counts by. The only per-algorithm difference is
// the number of network hops to reach a remote client's memory: 2 for
// algorithms that contact the holder directly (Direct Client Cooperation,
// Hash-Distributed on a hash hit), 3 for server-forwarded requests (Greedy,
// Centrally Coordinated, N-Chance, best case).
#ifndef COOPFS_SRC_MODEL_ACCESS_TIMES_H_
#define COOPFS_SRC_MODEL_ACCESS_TIMES_H_

#include <string>

#include "src/common/types.h"
#include "src/model/network_model.h"

namespace coopfs {

struct AccessTimes {
  Micros local = 250;
  Micros remote_client = 1250;
  Micros server_memory = 1050;
  Micros server_disk = 15'850;

  Micros ForLevel(CacheLevel level) const {
    switch (level) {
      case CacheLevel::kLocalMemory:
        return local;
      case CacheLevel::kRemoteClient:
        return remote_client;
      case CacheLevel::kServerMemory:
        return server_memory;
      case CacheLevel::kServerDisk:
        return server_disk;
    }
    return 0;
  }

  std::string ToString() const;
};

// Builds the Figure 3 row for an algorithm whose remote-client hits take
// `remote_hops` network hops.
AccessTimes ComputeAccessTimes(const NetworkModel& net, const DiskModel& disk, int remote_hops);

}  // namespace coopfs

#endif  // COOPFS_SRC_MODEL_ACCESS_TIMES_H_
