// Server directory of client cache contents (paper §2.2).
//
// Cooperative caching extends the server's per-file callback state to track
// the individual blocks cached by each client so the server can forward
// requests. The directory maps each block to the set of clients holding a
// copy; holder counts make is-this-a-singlet queries O(1) (paper §2.4).
//
// The directory also maintains a per-file index of blocks with at least one
// holder so whole-file deletes and invalidations do not scan every cache.
//
// Hot-path layout: both maps are open-addressing FlatHashMaps keyed on
// packed ids, and each holder set is an InlineVec that stores up to four
// ClientIds in place — N-Chance actively kills duplicates (§2.4), so almost
// every tracked block has one or two holders and the common AddHolder /
// RemoveHolder never allocates. Reserve() pre-sizes both maps from the
// simulation's aggregate cache capacity so replay runs rehash-free.
#ifndef COOPFS_SRC_CACHE_DIRECTORY_H_
#define COOPFS_SRC_CACHE_DIRECTORY_H_

#include <cstdint>
#include <vector>

#include "src/common/arena.h"
#include "src/common/flat_hash_map.h"
#include "src/common/inline_vec.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace coopfs {

// Kinds of directory mutation reported to a DirectoryObserver.
enum class DirectoryOpKind : std::uint8_t {
  kAddHolder = 0,    // A client registered a new copy.
  kRemoveHolder = 1, // A client's copy was dropped.
  kEraseBlock = 2,   // All state for a block was erased (delete/invalidate).
};

// Observer of individual directory mutations (observability extension; the
// event-level TraceRecorder in src/obs implements this). The op counter
// below answers "how many"; the observer answers "which block, which
// client". Kept as a separate hook so the cheap counter stays available
// without per-op records.
class DirectoryObserver {
 public:
  virtual ~DirectoryObserver() = default;

  // `client` is the affected holder, or kNoClient for kEraseBlock.
  virtual void OnDirectoryOp(DirectoryOpKind op, BlockId block, ClientId client) = 0;
};

class Directory {
 public:
  // The set of clients caching one block. Most blocks have 1-2 holders, so
  // four inline slots cover the common case without heap traffic.
  using HolderList = InlineVec<ClientId, 4>;

  // Blocks of one file with (possibly stale) holder state. Most files have a
  // handful of tracked blocks at a time; spills draw from the arena.
  using FileBlockList = InlineVec<std::uint64_t, 4>;

  Directory() = default;

  // Both indexes — and any holder-set or file-list spill past the inline
  // capacity — draw from `arena` (null = global heap).
  explicit Directory(Arena* arena)
      : arena_(arena), holders_(arena), file_index_(arena) {}

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  // Pre-sizes the block map for `expected_blocks` tracked blocks and the
  // file index for `expected_files` files so steady-state replay never
  // rehashes. Zero leaves the default growth behaviour.
  void Reserve(std::size_t expected_blocks, std::size_t expected_files) {
    if (expected_blocks > 0) {
      holders_.Reserve(expected_blocks);
    }
    if (expected_files > 0) {
      file_index_.Reserve(expected_files);
    }
  }

  // Optional mutation counter (observability): when set, every holder
  // addition/removal and block erasure increments `*counter`. Null (the
  // default) disables counting entirely.
  void set_op_counter(std::uint64_t* counter) { op_counter_ = counter; }

  // Optional per-mutation observer (null disables). Observers see the same
  // mutations the op counter counts, with block/client detail.
  void set_observer(DirectoryObserver* observer) { observer_ = observer; }

  // Records that `client` now caches `block`. Idempotent.
  void AddHolder(BlockId block, ClientId client);

  // Records that `client` no longer caches `block`. No-op if not a holder.
  void RemoveHolder(BlockId block, ClientId client);

  // Number of client copies of `block`.
  std::size_t HolderCount(BlockId block) const;

  // All clients caching `block` (unordered). Empty if none. The reference
  // is invalidated by any directory mutation (flat-map storage) — copy
  // before mutating.
  const HolderList& Holders(BlockId block) const;

  // True if the only cached copy of `block` is at `client` (paper: singlet).
  bool IsSingletHeldBy(BlockId block, ClientId client) const;

  // True if `block` has at least two client copies.
  bool IsDuplicated(BlockId block) const { return HolderCount(block) >= 2; }

  // A holder other than `exclude`, chosen uniformly at random (kNoClient if
  // none). Used to forward a read to one of several caching clients.
  ClientId PickHolder(BlockId block, ClientId exclude, Rng& rng) const;

  // Blocks of `file` with at least one holder. May contain blocks whose
  // holder sets have since emptied; callers re-check HolderCount.
  std::vector<BlockId> BlocksOfFile(FileId file) const;

  // Drops all state for `block` (delete/invalidate).
  void EraseBlock(BlockId block);

  std::size_t NumTrackedBlocks() const { return holders_.size(); }

  // Singlet/duplicate split of the blocks clients currently cache (paper
  // §2.4: N-Chance preserves singlets, so its duplicate fraction is the
  // interesting gauge). O(tracked blocks); meant for state sampling, not
  // the replay hot path. Blocks whose holder sets have emptied are skipped,
  // so singlets + duplicates == blocks with >= 1 holder.
  struct DuplicationCounts {
    std::uint64_t singlets = 0;    // Exactly one client copy.
    std::uint64_t duplicates = 0;  // Two or more client copies.
  };
  DuplicationCounts CountDuplication() const {
    DuplicationCounts counts;
    holders_.ForEach([&counts](std::uint64_t, const PerBlock& per_block) {
      if (per_block.holders.size() == 1) {
        ++counts.singlets;
      } else if (per_block.holders.size() >= 2) {
        ++counts.duplicates;
      }
    });
    return counts;
  }

  // Visits every block with at least one holder, in unspecified,
  // capacity-dependent order (introspection/validation). Consumers must
  // aggregate order-independently or sort.
  template <typename Fn>
  void ForEachBlock(Fn&& visitor) const {
    holders_.ForEach([&visitor](std::uint64_t packed, const PerBlock& per_block) {
      if (!per_block.holders.empty()) {
        visitor(BlockId::Unpack(packed), per_block.holders);
      }
    });
  }

  // Probe-length / occupancy statistics of the two indexes (observability).
  FlatMapStats HoldersIndexStats() const { return holders_.Stats(); }
  FlatMapStats FileIndexStats() const { return file_index_.Stats(); }

 private:
  struct PerBlock {
    HolderList holders;  // Small; linear scans are fine.
  };

  void CountOp(DirectoryOpKind op, BlockId block, ClientId client) {
    if (op_counter_ != nullptr) {
      ++*op_counter_;
    }
    if (observer_ != nullptr) {
      observer_->OnDirectoryOp(op, block, client);
    }
  }

  std::uint64_t* op_counter_ = nullptr;
  DirectoryObserver* observer_ = nullptr;
  Arena* arena_ = nullptr;
  FlatHashMap<std::uint64_t, PerBlock> holders_;
  // file -> packed BlockIds with (possibly stale) holder state. List order
  // is insertion order with swap-remove: deterministic, capacity-independent.
  FlatHashMap<FileId, FileBlockList> file_index_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_DIRECTORY_H_
