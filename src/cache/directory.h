// Server directory of client cache contents (paper §2.2).
//
// Cooperative caching extends the server's per-file callback state to track
// the individual blocks cached by each client so the server can forward
// requests. The directory maps each block to the set of clients holding a
// copy; holder counts make is-this-a-singlet queries O(1) (paper §2.4).
//
// The directory also maintains a per-file index of blocks with at least one
// holder so whole-file deletes and invalidations do not scan every cache.
#ifndef COOPFS_SRC_CACHE_DIRECTORY_H_
#define COOPFS_SRC_CACHE_DIRECTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace coopfs {

// Kinds of directory mutation reported to a DirectoryObserver.
enum class DirectoryOpKind : std::uint8_t {
  kAddHolder = 0,    // A client registered a new copy.
  kRemoveHolder = 1, // A client's copy was dropped.
  kEraseBlock = 2,   // All state for a block was erased (delete/invalidate).
};

// Observer of individual directory mutations (observability extension; the
// event-level TraceRecorder in src/obs implements this). The op counter
// below answers "how many"; the observer answers "which block, which
// client". Kept as a separate hook so the cheap counter stays available
// without per-op records.
class DirectoryObserver {
 public:
  virtual ~DirectoryObserver() = default;

  // `client` is the affected holder, or kNoClient for kEraseBlock.
  virtual void OnDirectoryOp(DirectoryOpKind op, BlockId block, ClientId client) = 0;
};

class Directory {
 public:
  Directory() = default;

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  // Optional mutation counter (observability): when set, every holder
  // addition/removal and block erasure increments `*counter`. Null (the
  // default) disables counting entirely.
  void set_op_counter(std::uint64_t* counter) { op_counter_ = counter; }

  // Optional per-mutation observer (null disables). Observers see the same
  // mutations the op counter counts, with block/client detail.
  void set_observer(DirectoryObserver* observer) { observer_ = observer; }

  // Records that `client` now caches `block`. Idempotent.
  void AddHolder(BlockId block, ClientId client);

  // Records that `client` no longer caches `block`. No-op if not a holder.
  void RemoveHolder(BlockId block, ClientId client);

  // Number of client copies of `block`.
  std::size_t HolderCount(BlockId block) const;

  // All clients caching `block` (unordered). Empty if none.
  const std::vector<ClientId>& Holders(BlockId block) const;

  // True if the only cached copy of `block` is at `client` (paper: singlet).
  bool IsSingletHeldBy(BlockId block, ClientId client) const;

  // True if `block` has at least two client copies.
  bool IsDuplicated(BlockId block) const { return HolderCount(block) >= 2; }

  // A holder other than `exclude`, chosen uniformly at random (kNoClient if
  // none). Used to forward a read to one of several caching clients.
  ClientId PickHolder(BlockId block, ClientId exclude, Rng& rng) const;

  // Blocks of `file` with at least one holder. May contain blocks whose
  // holder sets have since emptied; callers re-check HolderCount.
  std::vector<BlockId> BlocksOfFile(FileId file) const;

  // Drops all state for `block` (delete/invalidate).
  void EraseBlock(BlockId block);

  std::size_t NumTrackedBlocks() const { return holders_.size(); }

  // Singlet/duplicate split of the blocks clients currently cache (paper
  // §2.4: N-Chance preserves singlets, so its duplicate fraction is the
  // interesting gauge). O(tracked blocks); meant for state sampling, not
  // the replay hot path. Blocks whose holder sets have emptied are skipped,
  // so singlets + duplicates == blocks with >= 1 holder.
  struct DuplicationCounts {
    std::uint64_t singlets = 0;    // Exactly one client copy.
    std::uint64_t duplicates = 0;  // Two or more client copies.
  };
  DuplicationCounts CountDuplication() const {
    DuplicationCounts counts;
    for (const auto& [packed, per_block] : holders_) {
      if (per_block.holders.size() == 1) {
        ++counts.singlets;
      } else if (per_block.holders.size() >= 2) {
        ++counts.duplicates;
      }
    }
    return counts;
  }

  // Visits every block with at least one holder (introspection/validation).
  template <typename Fn>
  void ForEachBlock(Fn&& visitor) const {
    for (const auto& [packed, per_block] : holders_) {
      if (!per_block.holders.empty()) {
        visitor(BlockId::Unpack(packed), per_block.holders);
      }
    }
  }

 private:
  struct PerBlock {
    std::vector<ClientId> holders;  // Small; linear scans are fine.
  };

  // Removes `file`s bookkeeping for `block` when its holder set empties.
  void ForgetBlock(BlockId block);

  void CountOp(DirectoryOpKind op, BlockId block, ClientId client) {
    if (op_counter_ != nullptr) {
      ++*op_counter_;
    }
    if (observer_ != nullptr) {
      observer_->OnDirectoryOp(op, block, client);
    }
  }

  std::uint64_t* op_counter_ = nullptr;
  DirectoryObserver* observer_ = nullptr;
  std::unordered_map<std::uint64_t, PerBlock> holders_;
  // file -> packed BlockIds with (possibly stale) holder state.
  std::unordered_map<FileId, std::vector<std::uint64_t>> file_index_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_DIRECTORY_H_
