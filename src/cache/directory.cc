#include "src/cache/directory.h"

namespace coopfs {

namespace {
const Directory::HolderList kEmptyHolders{};
}  // namespace

void Directory::AddHolder(BlockId block, ClientId client) {
  auto [per_block, inserted] = holders_.TryEmplace(block.Pack());
  if (inserted) {
    // First time this block is tracked: register it with its file. Entries
    // whose holder sets empty later stay registered (and stay in holders_)
    // so re-adding a holder never duplicates the file index.
    file_index_[block.file].push_back(block.Pack(), arena_);
  }
  HolderList& list = per_block->holders;
  if (!list.ContainsValue(client)) {
    list.push_back(client, arena_);
    CountOp(DirectoryOpKind::kAddHolder, block, client);
  }
}

void Directory::RemoveHolder(BlockId block, ClientId client) {
  PerBlock* per_block = holders_.Find(block.Pack());
  if (per_block == nullptr) {
    return;
  }
  if (per_block->holders.SwapRemove(client)) {
    CountOp(DirectoryOpKind::kRemoveHolder, block, client);
  }
}

std::size_t Directory::HolderCount(BlockId block) const {
  const PerBlock* per_block = holders_.Find(block.Pack());
  return per_block == nullptr ? 0 : per_block->holders.size();
}

const Directory::HolderList& Directory::Holders(BlockId block) const {
  const PerBlock* per_block = holders_.Find(block.Pack());
  return per_block == nullptr ? kEmptyHolders : per_block->holders;
}

bool Directory::IsSingletHeldBy(BlockId block, ClientId client) const {
  const HolderList& list = Holders(block);
  return list.size() == 1 && list.front() == client;
}

ClientId Directory::PickHolder(BlockId block, ClientId exclude, Rng& rng) const {
  const HolderList& list = Holders(block);
  std::size_t eligible = 0;
  for (ClientId holder : list) {
    if (holder != exclude) {
      ++eligible;
    }
  }
  if (eligible == 0) {
    return kNoClient;
  }
  std::uint64_t pick = rng.NextBelow(eligible);
  for (ClientId holder : list) {
    if (holder != exclude) {
      if (pick == 0) {
        return holder;
      }
      --pick;
    }
  }
  return kNoClient;
}

std::vector<BlockId> Directory::BlocksOfFile(FileId file) const {
  std::vector<BlockId> result;
  const FileBlockList* blocks = file_index_.Find(file);
  if (blocks == nullptr) {
    return result;
  }
  result.reserve(blocks->size());
  for (std::uint64_t packed : *blocks) {
    const BlockId block = BlockId::Unpack(packed);
    if (HolderCount(block) > 0) {
      result.push_back(block);
    }
  }
  return result;
}

void Directory::EraseBlock(BlockId block) {
  if (!holders_.Erase(block.Pack())) {
    return;
  }
  CountOp(DirectoryOpKind::kEraseBlock, block, kNoClient);
  FileBlockList* blocks = file_index_.Find(block.file);
  if (blocks != nullptr) {
    blocks->SwapRemove(block.Pack());
    if (blocks->empty()) {
      file_index_.Erase(block.file);
    }
  }
}

}  // namespace coopfs
