#include "src/cache/directory.h"

#include <algorithm>

namespace coopfs {

namespace {
const std::vector<ClientId> kEmptyHolders;
}  // namespace

void Directory::AddHolder(BlockId block, ClientId client) {
  auto [it, inserted] = holders_.try_emplace(block.Pack());
  if (inserted) {
    // First time this block is tracked: register it with its file. Entries
    // whose holder sets empty later stay registered (and stay in holders_)
    // so re-adding a holder never duplicates the file index.
    file_index_[block.file].push_back(block.Pack());
  }
  auto& list = it->second.holders;
  if (std::find(list.begin(), list.end(), client) == list.end()) {
    list.push_back(client);
    CountOp(DirectoryOpKind::kAddHolder, block, client);
  }
}

void Directory::RemoveHolder(BlockId block, ClientId client) {
  auto it = holders_.find(block.Pack());
  if (it == holders_.end()) {
    return;
  }
  auto& list = it->second.holders;
  auto pos = std::find(list.begin(), list.end(), client);
  if (pos != list.end()) {
    *pos = list.back();
    list.pop_back();
    CountOp(DirectoryOpKind::kRemoveHolder, block, client);
  }
}

std::size_t Directory::HolderCount(BlockId block) const {
  auto it = holders_.find(block.Pack());
  return it == holders_.end() ? 0 : it->second.holders.size();
}

const std::vector<ClientId>& Directory::Holders(BlockId block) const {
  auto it = holders_.find(block.Pack());
  return it == holders_.end() ? kEmptyHolders : it->second.holders;
}

bool Directory::IsSingletHeldBy(BlockId block, ClientId client) const {
  const auto& list = Holders(block);
  return list.size() == 1 && list.front() == client;
}

ClientId Directory::PickHolder(BlockId block, ClientId exclude, Rng& rng) const {
  const auto& list = Holders(block);
  std::size_t eligible = 0;
  for (ClientId holder : list) {
    if (holder != exclude) {
      ++eligible;
    }
  }
  if (eligible == 0) {
    return kNoClient;
  }
  std::uint64_t pick = rng.NextBelow(eligible);
  for (ClientId holder : list) {
    if (holder != exclude) {
      if (pick == 0) {
        return holder;
      }
      --pick;
    }
  }
  return kNoClient;
}

std::vector<BlockId> Directory::BlocksOfFile(FileId file) const {
  std::vector<BlockId> result;
  auto it = file_index_.find(file);
  if (it == file_index_.end()) {
    return result;
  }
  result.reserve(it->second.size());
  for (std::uint64_t packed : it->second) {
    const BlockId block = BlockId::Unpack(packed);
    if (HolderCount(block) > 0) {
      result.push_back(block);
    }
  }
  return result;
}

void Directory::EraseBlock(BlockId block) {
  auto it = holders_.find(block.Pack());
  if (it == holders_.end()) {
    return;
  }
  holders_.erase(it);
  CountOp(DirectoryOpKind::kEraseBlock, block, kNoClient);
  auto file_it = file_index_.find(block.file);
  if (file_it != file_index_.end()) {
    auto& vec = file_it->second;
    auto pos = std::find(vec.begin(), vec.end(), block.Pack());
    if (pos != vec.end()) {
      *pos = vec.back();
      vec.pop_back();
    }
    if (vec.empty()) {
      file_index_.erase(file_it);
    }
  }
}

}  // namespace coopfs
