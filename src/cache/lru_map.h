// Generic fixed-capacity LRU map.
//
// Used for the server-managed global cache index of the Centrally
// Coordinated, Hash-Distributed, and best-case policies: an LRU-ordered map
// from block to the client hosting the globally managed copy (the doubly
// linked LRU list of the paper's 24-byte directory entries, §2.2).
//
// Storage layout (replay hot path): entries live in chunked slabs that are
// never reallocated, so the intrusive LRU list nodes stay put while the
// FlatHashMap index (key -> slab slot, reserved to capacity+1 so the
// transient over-capacity state in Insert never rehashes) provides O(1)
// allocation-free probes. Chunks are allocated lazily as the map grows and
// recycled through a free list on eviction/erase.
#ifndef COOPFS_SRC_CACHE_LRU_MAP_H_
#define COOPFS_SRC_CACHE_LRU_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/intrusive_list.h"

namespace coopfs {

template <typename K, typename V, typename Hash = FlatHash<K>>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {
    index_.Reserve(capacity_ + 1);
  }

  LruMap(const LruMap&) = delete;
  LruMap& operator=(const LruMap&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool Full() const { return size() >= capacity_; }
  bool CanInsert() const { return capacity_ > 0; }
  bool Contains(const K& key) const { return index_.Contains(key); }

  // Lookup without renewing. Returns nullptr if absent. Value pointers stay
  // valid until that key is erased or evicted (slab storage).
  V* Find(const K& key) {
    const std::uint32_t* slot = index_.Find(key);
    return slot == nullptr ? nullptr : &SlabAt(*slot).value;
  }

  // Lookup and renew (move to MRU). Returns nullptr if absent.
  V* Touch(const K& key) {
    const std::uint32_t* slot = index_.Find(key);
    if (slot == nullptr) {
      return nullptr;
    }
    Entry& entry = SlabAt(*slot);
    lru_.MoveToFront(&entry);
    return &entry.value;
  }

  // Inserts (key -> value) at MRU. If the key exists its value is replaced
  // and the entry renewed. If the map is over capacity afterwards, the LRU
  // entry is evicted and returned.
  std::optional<std::pair<K, V>> Insert(const K& key, V value) {
    assert(CanInsert());
    auto [slot, inserted] = index_.TryEmplace(key);
    if (!inserted) {
      Entry& entry = SlabAt(*slot);
      entry.value = std::move(value);
      lru_.MoveToFront(&entry);
      return std::nullopt;
    }
    const std::uint32_t fresh = AllocSlot();
    *slot = fresh;
    Entry& entry = SlabAt(fresh);
    entry.key = key;
    entry.value = std::move(value);
    entry.slot = fresh;
    lru_.PushFront(&entry);
    if (size() <= capacity_) {
      return std::nullopt;
    }
    Entry* victim = lru_.Back();
    std::pair<K, V> evicted{victim->key, std::move(victim->value)};
    lru_.Remove(victim);
    free_slots_.push_back(victim->slot);
    index_.Erase(evicted.first);
    return evicted;
  }

  bool Erase(const K& key) {
    const std::uint32_t* slot = index_.Find(key);
    if (slot == nullptr) {
      return false;
    }
    Entry& entry = SlabAt(*slot);
    lru_.Remove(&entry);
    free_slots_.push_back(*slot);
    index_.Erase(key);
    return true;
  }

  // Removes every entry for which `pred(key, value)` returns true; returns
  // the number removed. O(size); used for rare whole-host invalidations
  // (e.g. a client reboot dropping its share of the global cache).
  template <typename Pred>
  std::size_t EraseIf(Pred&& pred) {
    return index_.EraseIf([this, &pred](const K& key, std::uint32_t& slot) {
      Entry& entry = SlabAt(slot);
      if (!pred(key, entry.value)) {
        return false;
      }
      lru_.Remove(&entry);
      free_slots_.push_back(slot);
      return true;
    });
  }

  // Key/value of the LRU entry, or nullopt when empty.
  std::optional<std::pair<K, V>> LruEntry() const {
    const Entry* back = lru_.Back();
    if (back == nullptr) {
      return std::nullopt;
    }
    return std::pair<K, V>{back->key, back->value};
  }

  void Clear() {
    lru_.Clear();
    index_.Clear();
    index_.Reserve(capacity_ + 1);
    free_slots_.clear();
    const std::size_t total = chunks_.size() * kChunkSize;
    for (std::size_t i = total; i > 0; --i) {
      free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  // Key-index occupancy and probe-length statistics (observability).
  FlatMapStats IndexStats() const { return index_.Stats(); }

 private:
  struct Entry {
    K key{};
    V value{};
    IntrusiveListNode node;
    std::uint32_t slot = 0;
  };

  static constexpr std::size_t kChunkSize = 256;

  Entry& SlabAt(std::uint32_t slot) { return chunks_[slot / kChunkSize][slot % kChunkSize]; }
  const Entry& SlabAt(std::uint32_t slot) const {
    return chunks_[slot / kChunkSize][slot % kChunkSize];
  }

  std::uint32_t AllocSlot() {
    if (free_slots_.empty()) {
      const std::size_t base = chunks_.size() * kChunkSize;
      chunks_.push_back(std::make_unique<Entry[]>(kChunkSize));
      free_slots_.reserve(base + kChunkSize);
      for (std::size_t i = kChunkSize; i > 0; --i) {
        free_slots_.push_back(static_cast<std::uint32_t>(base + i - 1));
      }
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  std::size_t capacity_;
  FlatHashMap<K, std::uint32_t, Hash> index_;        // key -> slab slot
  std::vector<std::unique_ptr<Entry[]>> chunks_;     // Stable entry storage.
  std::vector<std::uint32_t> free_slots_;            // Recycled slots (LIFO).
  IntrusiveList<Entry, &Entry::node> lru_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_LRU_MAP_H_
