// Generic fixed-capacity LRU map.
//
// Used for the server-managed global cache index of the Centrally
// Coordinated, Hash-Distributed, and best-case policies: an LRU-ordered map
// from block to the client hosting the globally managed copy (the doubly
// linked LRU list of the paper's 24-byte directory entries, §2.2).
#ifndef COOPFS_SRC_CACHE_LRU_MAP_H_
#define COOPFS_SRC_CACHE_LRU_MAP_H_

#include <cassert>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/common/intrusive_list.h"

namespace coopfs {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {}

  LruMap(const LruMap&) = delete;
  LruMap& operator=(const LruMap&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool Full() const { return size() >= capacity_; }
  bool CanInsert() const { return capacity_ > 0; }
  bool Contains(const K& key) const { return entries_.contains(key); }

  // Lookup without renewing. Returns nullptr if absent.
  V* Find(const K& key) {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second.value;
  }

  // Lookup and renew (move to MRU). Returns nullptr if absent.
  V* Touch(const K& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return nullptr;
    }
    lru_.MoveToFront(&it->second);
    return &it->second.value;
  }

  // Inserts (key -> value) at MRU. If the key exists its value is replaced
  // and the entry renewed. If the map is over capacity afterwards, the LRU
  // entry is evicted and returned.
  std::optional<std::pair<K, V>> Insert(const K& key, V value) {
    assert(CanInsert());
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      lru_.MoveToFront(&it->second);
      return std::nullopt;
    }
    auto [new_it, inserted] = entries_.try_emplace(key);
    new_it->second.key = key;
    new_it->second.value = std::move(value);
    lru_.PushFront(&new_it->second);
    if (size() <= capacity_) {
      return std::nullopt;
    }
    Entry* victim = lru_.Back();
    std::pair<K, V> evicted{victim->key, std::move(victim->value)};
    lru_.Remove(victim);
    entries_.erase(evicted.first);
    return evicted;
  }

  bool Erase(const K& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return false;
    }
    lru_.Remove(&it->second);
    entries_.erase(it);
    return true;
  }

  // Removes every entry for which `pred(key, value)` returns true; returns
  // the number removed. O(size); used for rare whole-host invalidations
  // (e.g. a client reboot dropping its share of the global cache).
  template <typename Pred>
  std::size_t EraseIf(Pred&& pred) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(it->second.key, it->second.value)) {
        lru_.Remove(&it->second);
        it = entries_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  // Key/value of the LRU entry, or nullopt when empty.
  std::optional<std::pair<K, V>> LruEntry() const {
    const Entry* back = lru_.Back();
    if (back == nullptr) {
      return std::nullopt;
    }
    return std::pair<K, V>{back->key, back->value};
  }

  void Clear() {
    lru_.Clear();
    entries_.clear();
  }

 private:
  struct Entry {
    K key{};
    V value{};
    IntrusiveListNode node;
  };

  std::size_t capacity_;
  std::unordered_map<K, Entry, Hash> entries_;
  IntrusiveList<Entry, &Entry::node> lru_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_LRU_MAP_H_
