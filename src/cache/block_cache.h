// Fixed-capacity LRU block cache.
//
// One BlockCache models one machine's in-memory file cache: the local cache
// of every client, each client's private remote cache under Direct Client
// Cooperation, and the server's central cache. Entries carry the per-block
// metadata the N-Chance algorithm needs (recirculation count and the
// "known singlet" flag of paper §2.4) plus a last-reference timestamp for
// Weighted-LRU.
//
// Policies need fine-grained control of replacement (N-Chance's modified
// victim selection scans from the LRU end), so eviction is explicit: Insert
// requires free space and callers evict first, either EvictLru() or by
// scanning with entries in LRU order.
//
// Storage layout (replay hot path): entries live in a slab sized to the
// fixed capacity at construction, so CacheEntry pointers — and the intrusive
// LRU list nodes they embed — are stable for the cache's lifetime. A
// FlatHashMap from packed BlockId to slab slot, reserved up front, makes
// every Find/Touch/Insert/Erase allocation-free and rehash-free.
#ifndef COOPFS_SRC_CACHE_BLOCK_CACHE_H_
#define COOPFS_SRC_CACHE_BLOCK_CACHE_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/flat_hash_map.h"
#include "src/common/intrusive_list.h"
#include "src/common/types.h"

namespace coopfs {

struct CacheEntry {
  BlockId block;
  IntrusiveListNode lru_node;

  // N-Chance: recirculations remaining. > 0 means this copy is a singlet
  // recirculating through caches it was forwarded to (global data).
  std::uint8_t recirculation_count = 0;

  // N-Chance: the client learned this block is the last cached copy but is
  // holding it as normal local data (no recirculation count set). Spares a
  // repeat is-singlet query; reset when another client fetches a copy.
  bool singlet_flag = false;

  // Simulated time of the last reference to this copy (Weighted-LRU ages).
  Micros last_ref = 0;

  // Delayed-write extension: this copy holds data newer than the server's.
  bool dirty = false;
  Micros dirty_since = 0;

  bool recirculating() const { return recirculation_count > 0; }
};

class BlockCache {
 public:
  // Capacity in 8 KB blocks. A zero-capacity cache is legal (e.g. the local
  // section when 100% of client memory is centrally coordinated) and simply
  // rejects insertion. The entry slab and the index are fully allocated
  // here; steady-state operation never allocates. With an arena, the slab,
  // free list, and index all draw from it (sweep workers reuse one arena
  // across jobs instead of re-faulting fresh heap pages per job).
  explicit BlockCache(std::size_t capacity_blocks, Arena* arena = nullptr)
      : capacity_(capacity_blocks),
        slab_(capacity_blocks, ArenaAllocator<CacheEntry>(arena)),
        free_slots_(ArenaAllocator<std::uint32_t>(arena)),
        index_(arena) {
    index_.Reserve(capacity_);
    free_slots_.reserve(capacity_);
    // Pop from the back: slots are handed out in ascending order.
    for (std::size_t i = capacity_; i > 0; --i) {
      free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;
  BlockCache(BlockCache&&) = delete;
  BlockCache& operator=(BlockCache&&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool Full() const { return size() >= capacity_; }
  bool CanInsert() const { return capacity_ > 0; }

  bool Contains(BlockId block) const { return index_.Contains(block.Pack()); }

  // Lookup without changing LRU order. Returns nullptr if absent. Entry
  // pointers stay valid until that block is erased (slab storage).
  CacheEntry* Find(BlockId block) {
    const std::uint32_t* slot = index_.Find(block.Pack());
    return slot == nullptr ? nullptr : &slab_[*slot];
  }
  const CacheEntry* Find(BlockId block) const {
    const std::uint32_t* slot = index_.Find(block.Pack());
    return slot == nullptr ? nullptr : &slab_[*slot];
  }

  // Lookup and move to the MRU position. Returns nullptr if absent.
  CacheEntry* Touch(BlockId block) {
    CacheEntry* entry = Find(block);
    if (entry != nullptr) {
      lru_.MoveToFront(entry);
    }
    return entry;
  }

  // Inserts a new entry at the MRU position. Requires space (callers evict
  // first) and that the block is not already present.
  CacheEntry& Insert(BlockId block) {
    assert(CanInsert() && !Full());
    auto [slot, inserted] = index_.TryEmplace(block.Pack());
    assert(inserted && "block already cached");
    *slot = free_slots_.back();
    free_slots_.pop_back();
    CacheEntry& entry = slab_[*slot];
    entry = CacheEntry{};  // Fresh metadata; the slot's node is unlinked.
    entry.block = block;
    lru_.PushFront(&entry);
    return entry;
  }

  // Removes `block` if present; returns true if it was.
  bool Erase(BlockId block) {
    const std::uint32_t* slot = index_.Find(block.Pack());
    if (slot == nullptr) {
      return false;
    }
    const std::uint32_t freed = *slot;
    lru_.Remove(&slab_[freed]);
    index_.Erase(block.Pack());
    free_slots_.push_back(freed);
    return true;
  }

  // The least-recently-used entry, or nullptr when empty.
  CacheEntry* Lru() { return lru_.Back(); }
  CacheEntry* Mru() { return lru_.Front(); }

  // Evicts the LRU entry, returning a copy of it.
  std::optional<CacheEntry> EvictLru() {
    CacheEntry* victim = Lru();
    if (victim == nullptr) {
      return std::nullopt;
    }
    CacheEntry copy = *victim;
    copy.lru_node = IntrusiveListNode{};
    Erase(victim->block);
    return copy;
  }

  // Moves an entry (must belong to this cache) to the MRU / LRU position.
  void MoveToMru(CacheEntry* entry) { lru_.MoveToFront(entry); }
  void MoveToLru(CacheEntry* entry) { lru_.MoveToBack(entry); }

  // Visits entries from LRU to MRU until `visitor` returns true (stop) or
  // `limit` entries have been seen (0 = no limit). Returns the entry the
  // visitor stopped on, or nullptr. The visitor must not mutate the cache.
  // List order is deterministic and independent of index capacity.
  template <typename Visitor>
  CacheEntry* ScanFromLru(Visitor&& visitor, std::size_t limit = 0) {
    std::size_t seen = 0;
    for (IntrusiveListNode* node = LruNodeBack(); node != nullptr;) {
      auto* entry = static_cast<CacheEntry*>(node->owner);
      IntrusiveListNode* prev = PrevOf(node);
      if (visitor(*entry)) {
        return entry;
      }
      if (limit != 0 && ++seen >= limit) {
        return nullptr;
      }
      node = prev;
    }
    return nullptr;
  }

  // Visits every entry in unspecified, capacity-dependent order
  // (introspection/validation). Callers must aggregate order-independently;
  // use ScanFromLru for deterministic order.
  template <typename Visitor>
  void ForEachEntry(Visitor&& visitor) const {
    index_.ForEach(
        [this, &visitor](std::uint64_t, const std::uint32_t& slot) { visitor(slab_[slot]); });
  }

  // ---- Introspection gauges (state sampling; off the hot path) ----

  // Entries currently recirculating (N-Chance copies in flight).
  std::size_t RecirculatingCount() const {
    std::size_t count = 0;
    ForEachEntry([&count](const CacheEntry& entry) { count += entry.recirculating() ? 1 : 0; });
    return count;
  }

  // Entries holding dirty (unflushed) data under delayed writes.
  std::size_t DirtyCount() const {
    std::size_t count = 0;
    ForEachEntry([&count](const CacheEntry& entry) { count += entry.dirty ? 1 : 0; });
    return count;
  }

  // Block-index occupancy and probe-length statistics (observability).
  FlatMapStats IndexStats() const { return index_.Stats(); }

  // Removes every entry. (Used by tests.)
  void Clear() {
    lru_.Clear();
    index_.Clear();
    free_slots_.clear();
    for (std::size_t i = capacity_; i > 0; --i) {
      free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

 private:
  // Back (LRU) node or nullptr when empty; Prev walks toward MRU.
  IntrusiveListNode* LruNodeBack() {
    CacheEntry* back = lru_.Back();
    return back == nullptr ? nullptr : &back->lru_node;
  }
  IntrusiveListNode* PrevOf(IntrusiveListNode* node) {
    IntrusiveListNode* prev = node->prev;
    return (prev == nullptr || prev->owner == nullptr) ? nullptr : prev;
  }

  std::size_t capacity_;
  // Stable entry storage, one per slot.
  std::vector<CacheEntry, ArenaAllocator<CacheEntry>> slab_;
  // Unused slab slots (LIFO).
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> free_slots_;
  FlatHashMap<std::uint64_t, std::uint32_t> index_;  // Packed BlockId -> slot.
  IntrusiveList<CacheEntry, &CacheEntry::lru_node> lru_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_BLOCK_CACHE_H_
