// Fixed-capacity LRU block cache.
//
// One BlockCache models one machine's in-memory file cache: the local cache
// of every client, each client's private remote cache under Direct Client
// Cooperation, and the server's central cache. Entries carry the per-block
// metadata the N-Chance algorithm needs (recirculation count and the
// "known singlet" flag of paper §2.4) plus a last-reference timestamp for
// Weighted-LRU.
//
// Policies need fine-grained control of replacement (N-Chance's modified
// victim selection scans from the LRU end), so eviction is explicit: Insert
// requires free space and callers evict first, either EvictLru() or by
// scanning with entries in LRU order.
#ifndef COOPFS_SRC_CACHE_BLOCK_CACHE_H_
#define COOPFS_SRC_CACHE_BLOCK_CACHE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "src/common/intrusive_list.h"
#include "src/common/types.h"

namespace coopfs {

struct CacheEntry {
  BlockId block;
  IntrusiveListNode lru_node;

  // N-Chance: recirculations remaining. > 0 means this copy is a singlet
  // recirculating through caches it was forwarded to (global data).
  std::uint8_t recirculation_count = 0;

  // N-Chance: the client learned this block is the last cached copy but is
  // holding it as normal local data (no recirculation count set). Spares a
  // repeat is-singlet query; reset when another client fetches a copy.
  bool singlet_flag = false;

  // Simulated time of the last reference to this copy (Weighted-LRU ages).
  Micros last_ref = 0;

  // Delayed-write extension: this copy holds data newer than the server's.
  bool dirty = false;
  Micros dirty_since = 0;

  bool recirculating() const { return recirculation_count > 0; }
};

class BlockCache {
 public:
  // Capacity in 8 KB blocks. A zero-capacity cache is legal (e.g. the local
  // section when 100% of client memory is centrally coordinated) and simply
  // rejects insertion.
  explicit BlockCache(std::size_t capacity_blocks) : capacity_(capacity_blocks) {}

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;
  BlockCache(BlockCache&&) = delete;
  BlockCache& operator=(BlockCache&&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool Full() const { return size() >= capacity_; }
  bool CanInsert() const { return capacity_ > 0; }

  bool Contains(BlockId block) const { return entries_.contains(block.Pack()); }

  // Lookup without changing LRU order. Returns nullptr if absent.
  CacheEntry* Find(BlockId block) {
    auto it = entries_.find(block.Pack());
    return it == entries_.end() ? nullptr : &it->second;
  }
  const CacheEntry* Find(BlockId block) const {
    auto it = entries_.find(block.Pack());
    return it == entries_.end() ? nullptr : &it->second;
  }

  // Lookup and move to the MRU position. Returns nullptr if absent.
  CacheEntry* Touch(BlockId block) {
    CacheEntry* entry = Find(block);
    if (entry != nullptr) {
      lru_.MoveToFront(entry);
    }
    return entry;
  }

  // Inserts a new entry at the MRU position. Requires space (callers evict
  // first) and that the block is not already present.
  CacheEntry& Insert(BlockId block) {
    assert(CanInsert() && !Full());
    auto [it, inserted] = entries_.try_emplace(block.Pack());
    assert(inserted && "block already cached");
    it->second.block = block;
    lru_.PushFront(&it->second);
    return it->second;
  }

  // Removes `block` if present; returns true if it was.
  bool Erase(BlockId block) {
    auto it = entries_.find(block.Pack());
    if (it == entries_.end()) {
      return false;
    }
    lru_.Remove(&it->second);
    entries_.erase(it);
    return true;
  }

  // The least-recently-used entry, or nullptr when empty.
  CacheEntry* Lru() { return lru_.Back(); }
  CacheEntry* Mru() { return lru_.Front(); }

  // Evicts the LRU entry, returning a copy of it.
  std::optional<CacheEntry> EvictLru() {
    CacheEntry* victim = Lru();
    if (victim == nullptr) {
      return std::nullopt;
    }
    CacheEntry copy = *victim;
    copy.lru_node = IntrusiveListNode{};
    Erase(victim->block);
    return copy;
  }

  // Moves an entry (must belong to this cache) to the MRU / LRU position.
  void MoveToMru(CacheEntry* entry) { lru_.MoveToFront(entry); }
  void MoveToLru(CacheEntry* entry) { lru_.MoveToBack(entry); }

  // Visits entries from LRU to MRU until `visitor` returns true (stop) or
  // `limit` entries have been seen (0 = no limit). Returns the entry the
  // visitor stopped on, or nullptr. The visitor must not mutate the cache.
  CacheEntry* ScanFromLru(const std::function<bool(CacheEntry&)>& visitor,
                          std::size_t limit = 0) {
    std::size_t seen = 0;
    for (IntrusiveListNode* node = LruNodeBack(); node != nullptr;) {
      auto* entry = static_cast<CacheEntry*>(node->owner);
      IntrusiveListNode* prev = PrevOf(node);
      if (visitor(*entry)) {
        return entry;
      }
      if (limit != 0 && ++seen >= limit) {
        return nullptr;
      }
      node = prev;
    }
    return nullptr;
  }

  // Visits every entry in unspecified order (introspection/validation).
  void ForEachEntry(const std::function<void(const CacheEntry&)>& visitor) const {
    for (const auto& [key, entry] : entries_) {
      visitor(entry);
    }
  }

  // ---- Introspection gauges (state sampling; O(size), off the hot path) ----

  // Entries currently recirculating (N-Chance copies in flight).
  std::size_t RecirculatingCount() const {
    std::size_t count = 0;
    for (const auto& [key, entry] : entries_) {
      count += entry.recirculating() ? 1 : 0;
    }
    return count;
  }

  // Entries holding dirty (unflushed) data under delayed writes.
  std::size_t DirtyCount() const {
    std::size_t count = 0;
    for (const auto& [key, entry] : entries_) {
      count += entry.dirty ? 1 : 0;
    }
    return count;
  }

  // Removes every entry. (Used by tests.)
  void Clear() {
    lru_.Clear();
    entries_.clear();
  }

 private:
  // Back (LRU) node or nullptr when empty; Prev walks toward MRU.
  IntrusiveListNode* LruNodeBack() {
    CacheEntry* back = lru_.Back();
    return back == nullptr ? nullptr : &back->lru_node;
  }
  IntrusiveListNode* PrevOf(IntrusiveListNode* node) {
    IntrusiveListNode* prev = node->prev;
    return (prev == nullptr || prev->owner == nullptr) ? nullptr : prev;
  }

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, CacheEntry> entries_;
  IntrusiveList<CacheEntry, &CacheEntry::lru_node> lru_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CACHE_BLOCK_CACHE_H_
