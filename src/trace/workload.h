// Synthetic file-system workload generation.
//
// The paper replays the Sprite traces (Baker et al. '91; 42 clients, 2 days,
// >700k block accesses) and a snooped Berkeley Auspex NFS trace (237 clients,
// 6 days, 5M events). Those traces are not redistributable, so coopfs ships a
// deterministic generator that reproduces the workload *structure* the
// paper's results depend on:
//
//   * temporal locality: each client re-references a small working set, so a
//     16 MB local cache yields a ~78% local hit rate (paper §4.1, fn. 3);
//   * inter-client sharing: popular files (system binaries etc.) are read by
//     many clients, creating the duplicate cache entries that coordinated
//     algorithms reclaim;
//   * activity skew: a few clients issue most of the traffic while many sit
//     nearly idle, making idle remote memory available (paper §2.4, §4.2.1);
//   * an aggregate hot footprint larger than the server cache but smaller
//     than total client memory, so cooperation can roughly halve disk
//     accesses (paper Figure 5);
//   * sequential runs within files and whole-file deletes, as in Sprite.
//
// The model: files are divided into classes (shared-hot, shared-cold,
// private, temp). Each client alternates bursts of accesses drawn from its
// working set of open files; within a file accesses are sequential runs.
// Everything draws from one seeded RNG, so a config+seed pair defines the
// trace bit-for-bit.
#ifndef COOPFS_SRC_TRACE_WORKLOAD_H_
#define COOPFS_SRC_TRACE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/trace/event.h"

namespace coopfs {

// One class of files with shared generation behaviour.
struct FileClassConfig {
  std::size_t num_files = 0;        // Files in this class (per client for kPrivate).
  std::uint32_t min_blocks = 1;     // File size range, in 8 KB blocks.
  std::uint32_t max_blocks = 16;
  double select_weight = 1.0;       // Relative probability of opening this class.
  double write_fraction = 0.2;      // P(access is a write | this class).
  double zipf_s = 0.85;             // Popularity skew within the class.
  bool private_per_client = false;  // Owner-only access (home directories).
  bool delete_after_use = false;    // Temp files: deleted when closed.
};

struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::uint32_t num_clients = 42;
  std::uint64_t num_events = 700'000;
  Micros duration = static_cast<Micros>(2) * 24 * 3600 * 1'000'000;  // 2 days.

  // Client activity skew: client weights follow Zipf(activity_zipf_s) over a
  // random permutation of clients. 0 = uniform activity.
  double activity_zipf_s = 1.0;

  // Working set behaviour.
  std::size_t working_set_files = 6;   // Open files per client.
  double reopen_probability = 0.94;    // P(next access uses an open file).
  double run_stop_probability = 0.35;  // Geometric sequential-run terminator.
  std::uint32_t max_run_blocks = 64;

  // Probability that an access to a private file comes from a non-owner
  // (process migration, shared project directories).
  double private_cross_access = 0.02;

  // Workstation churn: expected number of reboots per client over the whole
  // trace (0 = none, the paper's setting). A reboot empties the client's
  // caches; the churn ablation bench sweeps this.
  double mean_reboots_per_client = 0.0;

  // File classes. Defaults populated by the named presets below.
  std::vector<FileClassConfig> classes;

  // Emit kReadAttr events for suppressed local re-reads (NFS-style traces).
  bool emit_read_attrs = false;

  // If > 0, filter the stream through a per-client LRU "local cache" of this
  // many blocks and emit only misses, modelling a network-snooped trace that
  // cannot see local hits (Berkeley Auspex, paper §4.4). Writes are always
  // visible (write-through). kNumEvents then counts *emitted* events.
  std::size_t snoop_filter_blocks = 0;
  // Attribute-cache window: a filtered local hit emits kReadAttr unless one
  // was emitted for the same file within this window (paper §4.4: 3 s).
  Micros attr_cache_window = 3'000'000;
};

// Preset approximating Sprite traces 5-6: 42 clients, 2 days, 700k accesses.
WorkloadConfig SpriteWorkloadConfig(std::uint64_t seed = 42);

// Preset approximating the Berkeley Auspex NFS trace: 237 clients, 6 days,
// 5M *visible* (snooped) events with read-attribute hints.
WorkloadConfig AuspexWorkloadConfig(std::uint64_t seed = 1994);

// Small preset for unit/integration tests: quick to generate and simulate.
WorkloadConfig SmallTestWorkloadConfig(std::uint64_t seed = 7);

// Generates the trace for `config`. Deterministic in (config, seed).
Trace GenerateWorkload(const WorkloadConfig& config);

// --- Leff-style validation workload (paper §3: "We verified our simulator by
// using the synthetic workload described in [Leff93a] as input.") ---
//
// Every client accesses a fixed set of objects with time-invariant, known
// per-client probabilities: client c's accesses draw object ranks from
// Zipf(s) over a per-client random permutation of the object set. Because
// the distribution is stationary, steady-state hit rates are analytically
// predictable, which the integration tests exploit.
struct LeffWorkloadConfig {
  std::uint64_t seed = 11;
  std::uint32_t num_clients = 8;
  std::size_t num_objects = 4096;  // Single-block objects.
  double zipf_s = 1.0;
  std::uint64_t num_events = 200'000;
  double shared_fraction = 0.5;  // Fraction of draws from a global (shared)
                                 // permutation instead of the client's own.
};

Trace GenerateLeffWorkload(const LeffWorkloadConfig& config);

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_WORKLOAD_H_
