// The paper's warm-up fractions, in one place.
//
// Metrics are collected only after the caches have warmed: the paper replays
// the first 400,000 of the 700,000 Sprite accesses (§3) and the first million
// of the 5 million visible Auspex events (§4.4) without counting them. Scaled
// runs (e.g. --events 30000 in tests) keep the same *fraction* — 4/7 for
// Sprite-like traces, 1/5 for Auspex-like snooped traces — so shortened
// benches stay comparable to the full-length defaults. Every bench, example,
// and test derives its warm-up through these helpers; do not hand-compute the
// ratios at call sites.
#ifndef COOPFS_SRC_TRACE_WARMUP_H_
#define COOPFS_SRC_TRACE_WARMUP_H_

#include <cstdint>

namespace coopfs {

// Sprite warm-up: 4/7 of the trace (the paper's 400k of 700k).
constexpr std::uint64_t SpriteWarmupEvents(std::uint64_t num_events) {
  return num_events * 4 / 7;
}

// Auspex warm-up: 1/5 of the visible events (the paper's 1M of 5M).
constexpr std::uint64_t AuspexWarmupEvents(std::uint64_t num_events) {
  return num_events / 5;
}

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_WARMUP_H_
