// Summary statistics over a trace: event mix, per-client activity, and data
// footprint. Used by trace tooling, generator calibration, and tests.
#ifndef COOPFS_SRC_TRACE_TRACE_STATS_H_
#define COOPFS_SRC_TRACE_TRACE_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/event.h"

namespace coopfs {

struct TraceStats {
  std::uint64_t num_events = 0;
  std::uint64_t num_reads = 0;
  std::uint64_t num_writes = 0;
  std::uint64_t num_deletes = 0;
  std::uint64_t num_attrs = 0;
  std::uint64_t num_reboots = 0;

  std::uint64_t unique_blocks = 0;       // Distinct BlockIds read or written.
  std::uint64_t unique_read_blocks = 0;  // Distinct BlockIds read.
  std::uint64_t unique_files = 0;
  Micros duration = 0;

  std::uint32_t num_clients = 0;  // max client id + 1.
  // Read counts per client. Accumulated in a flat hash map and sorted by
  // client id on emit, so the order is stable regardless of hash capacity.
  std::vector<std::pair<ClientId, std::uint64_t>> reads_per_client;

  // Reads by `client` (0 if the client never read). Linear probe of the
  // sorted list; for introspection and tests, not hot paths.
  std::uint64_t ReadsFor(ClientId client) const {
    for (const auto& [id, reads] : reads_per_client) {
      if (id == client) {
        return reads;
      }
    }
    return 0;
  }

  // Total bytes of distinct blocks touched (unique_blocks * block size).
  std::uint64_t FootprintBytes() const { return unique_blocks * kBlockSizeBytes; }

  std::string ToString() const;
};

TraceStats ComputeTraceStats(const Trace& trace);

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_TRACE_STATS_H_
