// Trace event model.
//
// A trace is a time-ordered sequence of block-granularity file system
// operations observed at clients, equivalent in structure to the Sprite
// traces of Baker et al. '91 that the paper replays: block reads, block
// writes, whole-file deletes, and (for NFS-style snooped traces) read-
// attribute validation requests.
#ifndef COOPFS_SRC_TRACE_EVENT_H_
#define COOPFS_SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace coopfs {

enum class EventType : std::uint8_t {
  kRead = 0,      // Client reads one block.
  kWrite = 1,     // Client writes one block (written through to the server).
  kDelete = 2,    // Client deletes a whole file (block index ignored).
  kReadAttr = 3,  // NFS read-attribute validation (Auspex traces, §4.4).
  kReboot = 4,    // Client restarts: its cache contents are lost (block
                  // ignored). Workstation churn; an extension beyond the
                  // paper's experiments (see DESIGN.md extensions).
};

inline constexpr std::uint8_t kMaxEventType = static_cast<std::uint8_t>(EventType::kReboot);

constexpr const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRead:
      return "read";
    case EventType::kWrite:
      return "write";
    case EventType::kDelete:
      return "delete";
    case EventType::kReadAttr:
      return "attr";
    case EventType::kReboot:
      return "reboot";
  }
  return "unknown";
}

// One trace record. 24 bytes; traces are held as flat vectors.
struct TraceEvent {
  Micros timestamp = 0;  // Microseconds since trace start; non-decreasing.
  BlockId block;         // For kDelete only block.file is meaningful.
  ClientId client = 0;
  EventType type = EventType::kRead;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;

  std::string ToString() const {
    return std::to_string(timestamp) + " c" + std::to_string(client) + " " +
           EventTypeName(type) + " " + block.ToString();
  }
};

using Trace = std::vector<TraceEvent>;

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_EVENT_H_
