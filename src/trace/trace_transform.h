// Trace manipulation utilities: filtering, slicing, merging, and client
// remapping. Used by the trace_tools CLI and available to embedders that
// preprocess traces (e.g. isolating one client's activity or splicing two
// captures, the way the paper restricted the Sprite traces to the main
// server's accesses — 81% of the raw trace, §3 footnote 1).
#ifndef COOPFS_SRC_TRACE_TRACE_TRANSFORM_H_
#define COOPFS_SRC_TRACE_TRACE_TRANSFORM_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/trace/event.h"

namespace coopfs {

// Events satisfying `keep`, in order.
Trace FilterTrace(const Trace& trace, const std::function<bool(const TraceEvent&)>& keep);

// Events of the given clients only.
Trace FilterTraceToClients(const Trace& trace, const std::vector<ClientId>& clients);

// Events with timestamps in [begin, end).
Trace SliceTraceByTime(const Trace& trace, Micros begin, Micros end);

// The first `count` events.
Trace TraceHead(const Trace& trace, std::size_t count);

// Renumbers client ids densely (0..k-1, in order of first appearance) so a
// filtered trace simulates with k clients instead of the original range.
// Returns the renumbered trace.
Trace CompactClientIds(const Trace& trace);

// Merges two time-ordered traces into one time-ordered trace, offsetting
// the second trace's client ids by `client_offset` (0 keeps them shared).
Trace MergeTraces(const Trace& a, const Trace& b, std::uint32_t client_offset);

// Validates structural well-formedness: non-decreasing timestamps and (if
// `max_clients` > 0) client ids below the bound.
Status ValidateTrace(const Trace& trace, std::uint32_t max_clients = 0);

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_TRACE_TRANSFORM_H_
