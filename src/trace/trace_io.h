// Trace file input/output.
//
// Two interchangeable on-disk formats:
//   * Text ("ccft"): one record per line, `timestamp client op file block`,
//     '#' comments allowed. Human-editable; used in tests and examples.
//   * Binary ("ccfb"): 16-byte magic+header then packed little-endian
//     records. ~5x smaller and ~20x faster to load; used for big traces.
// Readers detect the format from the file's leading bytes.
#ifndef COOPFS_SRC_TRACE_TRACE_IO_H_
#define COOPFS_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/trace/event.h"

namespace coopfs {

// Serializes `trace` as the text format.
Status WriteTraceText(const Trace& trace, std::ostream& out);
Status WriteTraceTextFile(const Trace& trace, const std::string& path);

// Serializes `trace` as the binary format.
Status WriteTraceBinary(const Trace& trace, std::ostream& out);
Status WriteTraceBinaryFile(const Trace& trace, const std::string& path);

// Parses either format (auto-detected). Validates monotonic timestamps and
// record well-formedness; returns kDataLoss/kInvalidArgument on corruption.
Result<Trace> ReadTrace(std::istream& in);
Result<Trace> ReadTraceFile(const std::string& path);

// Parses one text-format line (exposed for tests). Empty/comment lines
// return kNotFound.
Result<TraceEvent> ParseTraceLine(const std::string& line);

}  // namespace coopfs

#endif  // COOPFS_SRC_TRACE_TRACE_IO_H_
