#include "src/trace/trace_stats.h"

#include <algorithm>
#include <sstream>

#include "src/common/flat_hash_map.h"
#include "src/common/format.h"

namespace coopfs {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  FlatHashSet<std::uint64_t> blocks;
  FlatHashSet<std::uint64_t> read_blocks;
  FlatHashSet<FileId> files;
  FlatHashMap<ClientId, std::uint64_t> reads_per_client;
  // Distinct blocks are typically a small fraction of the event count; an
  // eighth keeps big traces from rehashing more than a couple of times.
  blocks.Reserve(trace.size() / 8 + 16);
  read_blocks.Reserve(trace.size() / 8 + 16);
  for (const TraceEvent& e : trace) {
    ++stats.num_events;
    stats.num_clients = std::max(stats.num_clients, e.client + 1);
    files.Insert(e.block.file);
    switch (e.type) {
      case EventType::kRead:
        ++stats.num_reads;
        blocks.Insert(e.block.Pack());
        read_blocks.Insert(e.block.Pack());
        ++reads_per_client[e.client];
        break;
      case EventType::kWrite:
        ++stats.num_writes;
        blocks.Insert(e.block.Pack());
        break;
      case EventType::kDelete:
        ++stats.num_deletes;
        break;
      case EventType::kReadAttr:
        ++stats.num_attrs;
        break;
      case EventType::kReboot:
        ++stats.num_reboots;
        break;
    }
  }
  if (!trace.empty()) {
    stats.duration = trace.back().timestamp - trace.front().timestamp;
  }
  stats.unique_blocks = blocks.size();
  stats.unique_read_blocks = read_blocks.size();
  stats.unique_files = files.size();
  // Sort-on-emit: the accumulator's iteration order depends on hash
  // capacity; the emitted list must not.
  stats.reads_per_client.reserve(reads_per_client.size());
  reads_per_client.ForEach([&stats](ClientId client, const std::uint64_t& reads) {
    stats.reads_per_client.emplace_back(client, reads);
  });
  std::sort(stats.reads_per_client.begin(), stats.reads_per_client.end());
  return stats;
}

std::string TraceStats::ToString() const {
  std::ostringstream out;
  out << "events: " << num_events << " (reads " << num_reads << ", writes " << num_writes
      << ", deletes " << num_deletes << ", attrs " << num_attrs << ", reboots " << num_reboots
      << ")\n";
  out << "clients: " << num_clients << ", files: " << unique_files << "\n";
  out << "unique blocks: " << unique_blocks << " (" << FormatBytes(FootprintBytes())
      << "), unique read blocks: " << unique_read_blocks << "\n";
  out << "duration: " << FormatMicros(static_cast<double>(duration)) << "\n";
  return out.str();
}

}  // namespace coopfs
