#include "src/trace/trace_stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/common/format.h"

namespace coopfs {

TraceStats ComputeTraceStats(const Trace& trace) {
  TraceStats stats;
  std::unordered_set<std::uint64_t> blocks;
  std::unordered_set<std::uint64_t> read_blocks;
  std::unordered_set<FileId> files;
  for (const TraceEvent& e : trace) {
    ++stats.num_events;
    stats.num_clients = std::max(stats.num_clients, e.client + 1);
    files.insert(e.block.file);
    switch (e.type) {
      case EventType::kRead:
        ++stats.num_reads;
        blocks.insert(e.block.Pack());
        read_blocks.insert(e.block.Pack());
        ++stats.reads_per_client[e.client];
        break;
      case EventType::kWrite:
        ++stats.num_writes;
        blocks.insert(e.block.Pack());
        break;
      case EventType::kDelete:
        ++stats.num_deletes;
        break;
      case EventType::kReadAttr:
        ++stats.num_attrs;
        break;
      case EventType::kReboot:
        ++stats.num_reboots;
        break;
    }
  }
  if (!trace.empty()) {
    stats.duration = trace.back().timestamp - trace.front().timestamp;
  }
  stats.unique_blocks = blocks.size();
  stats.unique_read_blocks = read_blocks.size();
  stats.unique_files = files.size();
  return stats;
}

std::string TraceStats::ToString() const {
  std::ostringstream out;
  out << "events: " << num_events << " (reads " << num_reads << ", writes " << num_writes
      << ", deletes " << num_deletes << ", attrs " << num_attrs << ", reboots " << num_reboots
      << ")\n";
  out << "clients: " << num_clients << ", files: " << unique_files << "\n";
  out << "unique blocks: " << unique_blocks << " (" << FormatBytes(FootprintBytes())
      << "), unique read blocks: " << unique_read_blocks << "\n";
  out << "duration: " << FormatMicros(static_cast<double>(duration)) << "\n";
  return out.str();
}

}  // namespace coopfs
