#include "src/trace/trace_transform.h"

#include <algorithm>
#include <unordered_map>

namespace coopfs {

Trace FilterTrace(const Trace& trace, const std::function<bool(const TraceEvent&)>& keep) {
  Trace result;
  for (const TraceEvent& event : trace) {
    if (keep(event)) {
      result.push_back(event);
    }
  }
  return result;
}

Trace FilterTraceToClients(const Trace& trace, const std::vector<ClientId>& clients) {
  return FilterTrace(trace, [&clients](const TraceEvent& event) {
    return std::find(clients.begin(), clients.end(), event.client) != clients.end();
  });
}

Trace SliceTraceByTime(const Trace& trace, Micros begin, Micros end) {
  return FilterTrace(trace, [begin, end](const TraceEvent& event) {
    return event.timestamp >= begin && event.timestamp < end;
  });
}

Trace TraceHead(const Trace& trace, std::size_t count) {
  Trace result(trace.begin(),
               trace.begin() + static_cast<std::ptrdiff_t>(std::min(count, trace.size())));
  return result;
}

Trace CompactClientIds(const Trace& trace) {
  Trace result = trace;
  std::unordered_map<ClientId, ClientId> mapping;
  for (TraceEvent& event : result) {
    auto [it, inserted] = mapping.try_emplace(event.client,
                                              static_cast<ClientId>(mapping.size()));
    event.client = it->second;
  }
  return result;
}

Trace MergeTraces(const Trace& a, const Trace& b, std::uint32_t client_offset) {
  Trace result;
  result.reserve(a.size() + b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() || (ia < a.size() && a[ia].timestamp <= b[ib].timestamp);
    if (take_a) {
      result.push_back(a[ia++]);
    } else {
      TraceEvent event = b[ib++];
      event.client += client_offset;
      result.push_back(event);
    }
  }
  return result;
}

Status ValidateTrace(const Trace& trace, std::uint32_t max_clients) {
  Micros last = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace[i];
    if (event.timestamp < last) {
      return Status::InvalidArgument("timestamps decrease at event " + std::to_string(i));
    }
    last = event.timestamp;
    if (max_clients > 0 && event.client >= max_clients) {
      return Status::OutOfRange("client " + std::to_string(event.client) +
                                " out of range at event " + std::to_string(i));
    }
  }
  return Status::Ok();
}

}  // namespace coopfs
