#include "src/trace/trace_io.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/profiler.h"

namespace coopfs {

namespace {

constexpr char kTextMagic[] = "#ccft v1";
constexpr std::array<char, 8> kBinaryMagic = {'c', 'c', 'f', 'b', ' ', 'v', '1', '\n'};

// Record layout for the binary format (little-endian, packed by hand so the
// format does not depend on struct padding):
//   int64  timestamp
//   uint32 file
//   uint32 block
//   uint32 client
//   uint8  type
// = 21 bytes per record.
constexpr std::size_t kBinaryRecordSize = 21;

void PutU32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

void PutU64(char* p, std::uint64_t v) {
  PutU32(p, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

Result<EventType> ParseEventType(const std::string& token) {
  if (token == "read") {
    return EventType::kRead;
  }
  if (token == "write") {
    return EventType::kWrite;
  }
  if (token == "delete") {
    return EventType::kDelete;
  }
  if (token == "attr") {
    return EventType::kReadAttr;
  }
  if (token == "reboot") {
    return EventType::kReboot;
  }
  return Status::InvalidArgument("unknown event type: " + token);
}

}  // namespace

Status WriteTraceText(const Trace& trace, std::ostream& out) {
  out << kTextMagic << "\n";
  out << "# timestamp_us client op file block\n";
  for (const TraceEvent& e : trace) {
    out << e.timestamp << ' ' << e.client << ' ' << EventTypeName(e.type) << ' ' << e.block.file
        << ' ' << e.block.block << '\n';
  }
  if (!out) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Status WriteTraceBinary(const Trace& trace, std::ostream& out) {
  out.write(kBinaryMagic.data(), kBinaryMagic.size());
  char count_buf[8];
  PutU64(count_buf, trace.size());
  out.write(count_buf, sizeof(count_buf));
  char rec[kBinaryRecordSize];
  for (const TraceEvent& e : trace) {
    PutU64(rec, static_cast<std::uint64_t>(e.timestamp));
    PutU32(rec + 8, e.block.file);
    PutU32(rec + 12, e.block.block);
    PutU32(rec + 16, e.client);
    rec[20] = static_cast<char>(e.type);
    out.write(rec, sizeof(rec));
  }
  if (!out) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Result<TraceEvent> ParseTraceLine(const std::string& line) {
  if (line.empty() || line[0] == '#') {
    return Status::NotFound("comment or blank line");
  }
  std::istringstream in(line);
  TraceEvent event;
  std::string type_token;
  std::int64_t timestamp = 0;
  std::uint32_t client = 0;
  std::uint32_t file = 0;
  std::uint32_t block = 0;
  if (!(in >> timestamp >> client >> type_token >> file >> block)) {
    return Status::InvalidArgument("malformed trace line: " + line);
  }
  if (timestamp < 0) {
    return Status::InvalidArgument("negative timestamp: " + line);
  }
  Result<EventType> type = ParseEventType(type_token);
  if (!type.ok()) {
    return type.status();
  }
  event.timestamp = timestamp;
  event.client = client;
  event.type = *type;
  event.block = BlockId{file, block};
  return event;
}

namespace {

Result<Trace> ReadTraceText(std::istream& in) {
  Trace trace;
  std::string line;
  Micros last_timestamp = 0;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    Result<TraceEvent> event = ParseTraceLine(line);
    if (!event.ok()) {
      if (event.status().code() == StatusCode::kNotFound) {
        continue;  // Comment or blank.
      }
      return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                     event.status().message());
    }
    if (event->timestamp < last_timestamp) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": timestamps must be non-decreasing");
    }
    last_timestamp = event->timestamp;
    trace.push_back(*event);
  }
  return trace;
}

Result<Trace> ReadTraceBinary(std::istream& in) {
  // Magic already consumed by the caller.
  char count_buf[8];
  if (!in.read(count_buf, sizeof(count_buf))) {
    return Status::DataLoss("truncated binary trace header");
  }
  const std::uint64_t count = GetU64(count_buf);
  Trace trace;
  // Never trust the header for allocation: a corrupted count would make
  // reserve() throw (or OOM). Cap the up-front reservation; a short stream
  // is detected record-by-record below.
  constexpr std::uint64_t kMaxReserve = 1u << 22;  // ~100 MB of events.
  trace.reserve(static_cast<std::size_t>(std::min(count, kMaxReserve)));
  char rec[kBinaryRecordSize];
  Micros last_timestamp = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!in.read(rec, sizeof(rec))) {
      return Status::DataLoss("truncated binary trace at record " + std::to_string(i));
    }
    TraceEvent event;
    event.timestamp = static_cast<Micros>(GetU64(rec));
    event.block = BlockId{GetU32(rec + 8), GetU32(rec + 12)};
    event.client = GetU32(rec + 16);
    const auto raw_type = static_cast<unsigned char>(rec[20]);
    if (raw_type > kMaxEventType) {
      return Status::DataLoss("bad event type at record " + std::to_string(i));
    }
    event.type = static_cast<EventType>(raw_type);
    if (event.timestamp < last_timestamp) {
      return Status::DataLoss("timestamps must be non-decreasing at record " + std::to_string(i));
    }
    last_timestamp = event.timestamp;
    trace.push_back(event);
  }
  return trace;
}

}  // namespace

Result<Trace> ReadTrace(std::istream& in) {
  COOPFS_PROFILE_SCOPE("trace/decode");
  std::array<char, 8> magic{};
  if (!in.read(magic.data(), magic.size())) {
    return Status::DataLoss("trace shorter than a format header");
  }
  if (magic == kBinaryMagic) {
    return ReadTraceBinary(in);
  }
  // Rewind and parse as text.
  in.clear();
  in.seekg(0);
  return ReadTraceText(in);
}

Status WriteTraceTextFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for write: " + path);
  }
  return WriteTraceText(trace, out);
}

Status WriteTraceBinaryFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for write: " + path);
  }
  return WriteTraceBinary(trace, out);
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for read: " + path);
  }
  return ReadTrace(in);
}

}  // namespace coopfs
