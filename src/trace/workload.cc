#include "src/trace/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <numeric>
#include <optional>
#include <vector>

#include "src/cache/lru_map.h"
#include "src/common/flat_hash_map.h"
#include "src/common/logging.h"
#include "src/common/profiler.h"

namespace coopfs {

namespace {

// Metadata for one generatable file.
struct FileMeta {
  FileId id = 0;
  std::uint32_t blocks = 1;
  std::size_t class_index = 0;
  ClientId owner = kNoClient;  // kNoClient for shared classes.
};

// A file a client currently has "open" in its working set.
struct OpenFile {
  std::size_t file_slot = 0;   // Index into the world's file table.
  std::uint32_t cursor = 0;    // Next block of the current sequential run.
  std::uint32_t run_left = 0;  // Blocks remaining in the run.
};

// Per-client LRU set of blocks, modelling the local cache a network snooper
// cannot see through (Auspex-style traces). Backed by the flat-indexed
// LruMap from the cache layer: Auspex generation touches this per access,
// and the old std::list + unordered_map version allocated on every miss.
class SnoopFilter {
 public:
  explicit SnoopFilter(std::size_t capacity) : lru_(capacity) {}

  // Returns true if `block` was already present (a hidden local hit), and
  // touches/inserts it either way.
  bool Touch(BlockId block) {
    const std::uint64_t key = block.Pack();
    if (lru_.Touch(key) != nullptr) {
      return true;
    }
    lru_.Insert(key, true);  // Over-capacity insert auto-evicts the LRU key.
    return false;
  }

  void EraseFile(FileId file) {
    lru_.EraseIf([file](std::uint64_t key, bool) { return BlockId::Unpack(key).file == file; });
  }

  // Drops all remembered blocks (reboot: the filter dies with the memory).
  void Reset() { lru_.Clear(); }

 private:
  LruMap<std::uint64_t, bool> lru_;
};

// Weighted discrete sampler over a fixed weight vector (CDF + binary search).
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights) : cdf_(weights.size()) {
    double sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      sum += weights[i];
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) {
      v /= sum;
    }
  }

  std::size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
        it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  }

 private:
  std::vector<double> cdf_;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config)
      : config_(config), rng_(config.seed) {
    BuildWorld();
  }

  Trace Generate() {
    Trace trace;
    trace.reserve(config_.num_events);
    // Mean inter-access gap. For snooped traces the pre-filter stream is
    // denser than the emitted one; hidden hits fall between visible events.
    const double mean_gap = static_cast<double>(config_.duration) /
                            static_cast<double>(std::max<std::uint64_t>(config_.num_events, 1));

    // Per-burst reboot probability chosen so each client reboots the
    // expected number of times across the trace (bursts average 24.5
    // accesses).
    const double expected_bursts = static_cast<double>(config_.num_events) / 24.5;
    const double reboot_probability =
        expected_bursts > 0.0 ? config_.mean_reboots_per_client *
                                    static_cast<double>(config_.num_clients) / expected_bursts
                              : 0.0;

    while (trace.size() < config_.num_events) {
      const auto client = static_cast<ClientId>(client_sampler_->Sample(rng_));
      if (reboot_probability > 0.0 && rng_.NextBool(reboot_probability)) {
        EmitReboot(static_cast<ClientId>(rng_.NextBelow(config_.num_clients)), trace);
      }
      // A burst: several accesses by one client before another takes over.
      const std::uint64_t burst = 1 + rng_.NextBelow(48);
      for (std::uint64_t i = 0; i < burst && trace.size() < config_.num_events; ++i) {
        clock_ += static_cast<Micros>(rng_.NextExponential(mean_gap)) + 1;
        EmitOneAccess(client, trace);
      }
    }
    return trace;
  }

  // Emits a reboot: the client's working set and (if snooping) its local
  // cache filter are lost with the machine's memory.
  void EmitReboot(ClientId client, Trace& trace) {
    clock_ += 1;
    TraceEvent event;
    event.timestamp = clock_;
    event.client = client;
    event.type = EventType::kReboot;
    trace.push_back(event);
    working_sets_[client].clear();
    if (!snoop_filters_.empty()) {
      snoop_filters_[client].Reset();
    }
  }

 private:
  void BuildWorld() {
    // Instantiate the file table from the class configs.
    FileId next_file = 0;
    for (std::size_t ci = 0; ci < config_.classes.size(); ++ci) {
      const FileClassConfig& cls = config_.classes[ci];
      const std::size_t copies = cls.private_per_client ? config_.num_clients : 1;
      class_first_slot_.push_back(files_.size());
      for (std::size_t copy = 0; copy < copies; ++copy) {
        for (std::size_t f = 0; f < cls.num_files; ++f) {
          FileMeta meta;
          meta.id = next_file++;
          meta.blocks = static_cast<std::uint32_t>(
              rng_.NextInRange(cls.min_blocks, cls.max_blocks));
          meta.class_index = ci;
          meta.owner = cls.private_per_client ? static_cast<ClientId>(copy) : kNoClient;
          files_.push_back(meta);
        }
      }
      class_samplers_.emplace_back(cls.num_files, cls.zipf_s);
    }
    next_file_id_ = next_file;

    // Class-selection weights.
    std::vector<double> class_weights;
    class_weights.reserve(config_.classes.size());
    for (const auto& cls : config_.classes) {
      class_weights.push_back(cls.select_weight);
    }
    class_sampler_.emplace(class_weights);

    // Client activity skew: Zipf weights over a seeded permutation so the
    // most active clients are not always the lowest-numbered ones.
    std::vector<double> activity(config_.num_clients, 1.0);
    if (config_.activity_zipf_s > 0.0) {
      std::vector<std::size_t> perm(config_.num_clients);
      std::iota(perm.begin(), perm.end(), 0);
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng_.NextBelow(i)]);
      }
      for (std::size_t rank = 0; rank < perm.size(); ++rank) {
        activity[perm[rank]] =
            1.0 / std::pow(static_cast<double>(rank + 1), config_.activity_zipf_s);
      }
    }
    client_sampler_.emplace(activity);

    working_sets_.resize(config_.num_clients);
    if (config_.snoop_filter_blocks > 0) {
      for (std::uint32_t c = 0; c < config_.num_clients; ++c) {
        snoop_filters_.emplace_back(config_.snoop_filter_blocks);
      }
    }
    last_attr_.resize(config_.num_clients);
    for (auto& per_file : last_attr_) {
      per_file.Reserve(kAttrReserveFiles);
    }
  }

  // Picks a file slot for `client` opening a file of class `ci`.
  std::size_t PickFileSlot(ClientId client, std::size_t ci) {
    const FileClassConfig& cls = config_.classes[ci];
    const std::size_t rank = class_samplers_[ci].Sample(rng_);
    if (!cls.private_per_client) {
      return class_first_slot_[ci] + rank;
    }
    ClientId owner = client;
    if (config_.num_clients > 1 && rng_.NextBool(config_.private_cross_access)) {
      owner = static_cast<ClientId>(rng_.NextBelow(config_.num_clients - 1));
      if (owner >= client) {
        ++owner;  // Skip self: cross access means someone else's file.
      }
    }
    return class_first_slot_[ci] + static_cast<std::size_t>(owner) * cls.num_files + rank;
  }

  // Opens a file into the client's working set, evicting one if full.
  // Returns the index of the opened entry in the working set.
  std::size_t OpenFileFor(ClientId client, Trace& trace) {
    std::vector<OpenFile>& ws = working_sets_[client];
    const std::size_t ci = class_sampler_->Sample(rng_);
    const FileClassConfig& cls = config_.classes[ci];

    OpenFile entry;
    if (cls.delete_after_use) {
      // Temp files are born fresh: allocate a brand-new FileId so deleted
      // blocks are never referenced again.
      FileMeta meta;
      meta.id = next_file_id_++;
      meta.blocks = static_cast<std::uint32_t>(rng_.NextInRange(cls.min_blocks, cls.max_blocks));
      meta.class_index = ci;
      meta.owner = client;
      entry.file_slot = files_.size();
      files_.push_back(meta);
    } else {
      entry.file_slot = PickFileSlot(client, ci);
    }
    const FileMeta& meta = files_[entry.file_slot];
    // Big files start mid-file (partial scans); small ones at the start.
    entry.cursor = meta.blocks > config_.max_run_blocks
                       ? static_cast<std::uint32_t>(rng_.NextBelow(meta.blocks))
                       : 0;
    entry.run_left = NewRunLength(meta.blocks);

    if (ws.size() < config_.working_set_files) {
      ws.push_back(entry);
      return ws.size() - 1;
    }
    const std::size_t victim = rng_.NextBelow(ws.size());
    CloseFile(client, ws[victim], trace);
    ws[victim] = entry;
    return victim;
  }

  void CloseFile(ClientId client, const OpenFile& open, Trace& trace) {
    const FileMeta& meta = files_[open.file_slot];
    if (config_.classes[meta.class_index].delete_after_use) {
      TraceEvent del;
      del.timestamp = clock_;
      del.client = client;
      del.type = EventType::kDelete;
      del.block = BlockId{meta.id, 0};
      trace.push_back(del);
      if (!snoop_filters_.empty()) {
        for (auto& filter : snoop_filters_) {
          filter.EraseFile(meta.id);
        }
      }
    }
  }

  std::uint32_t NewRunLength(std::uint32_t file_blocks) {
    const std::uint64_t cap = std::min<std::uint64_t>(config_.max_run_blocks, file_blocks);
    return static_cast<std::uint32_t>(rng_.NextRunLength(config_.run_stop_probability, cap));
  }

  void EmitOneAccess(ClientId client, Trace& trace) {
    std::vector<OpenFile>& ws = working_sets_[client];
    std::size_t slot;
    if (!ws.empty() && rng_.NextBool(config_.reopen_probability)) {
      slot = rng_.NextBelow(ws.size());
    } else {
      slot = OpenFileFor(client, trace);
    }
    OpenFile& open = working_sets_[client][slot];
    const FileMeta& meta = files_[open.file_slot];
    const FileClassConfig& cls = config_.classes[meta.class_index];

    TraceEvent event;
    event.timestamp = clock_;
    event.client = client;
    event.block = BlockId{meta.id, open.cursor};
    event.type = rng_.NextBool(cls.write_fraction) ? EventType::kWrite : EventType::kRead;

    // Advance the sequential run; on exhaustion jump within the file.
    open.cursor = (open.cursor + 1) % meta.blocks;
    if (--open.run_left == 0) {
      open.cursor = meta.blocks > 1 ? static_cast<std::uint32_t>(rng_.NextBelow(meta.blocks)) : 0;
      open.run_left = NewRunLength(meta.blocks);
    }

    if (snoop_filters_.empty()) {
      trace.push_back(event);
      return;
    }

    // Snooped-trace mode: suppress reads served by the (invisible) local
    // cache; optionally surface them as read-attribute validations.
    if (event.type == EventType::kRead) {
      const bool local_hit = snoop_filters_[client].Touch(event.block);
      if (local_hit) {
        if (config_.emit_read_attrs && AttrDue(client, meta.id)) {
          event.type = EventType::kReadAttr;
          trace.push_back(event);
        }
        return;
      }
      trace.push_back(event);
      return;
    }
    if (event.type == EventType::kWrite) {
      snoop_filters_[client].Touch(event.block);
    }
    trace.push_back(event);
  }

  // True if no kReadAttr for (client, file) was emitted inside the
  // attribute-cache window (paper §4.4: NFS hides validations for 3 s).
  bool AttrDue(ClientId client, FileId file) {
    auto& per_file = last_attr_[client];
    auto [last, inserted] = per_file.TryEmplace(file);
    if (inserted) {
      *last = clock_;
      return true;
    }
    if (clock_ - *last >= config_.attr_cache_window) {
      *last = clock_;
      return true;
    }
    return false;
  }

  const WorkloadConfig& config_;
  Rng rng_;
  Micros clock_ = 0;

  std::vector<FileMeta> files_;
  std::vector<std::size_t> class_first_slot_;
  std::vector<ZipfSampler> class_samplers_;
  std::optional<WeightedSampler> class_sampler_;
  std::optional<WeightedSampler> client_sampler_;
  FileId next_file_id_ = 0;

  // Per-client attribute-cache reserve: covers a client's recently validated
  // files for the calibrated workloads (a few hundred active files each);
  // heavier per-client footprints cost a few amortized table growths.
  static constexpr std::size_t kAttrReserveFiles = 256;

  std::vector<std::vector<OpenFile>> working_sets_;
  std::deque<SnoopFilter> snoop_filters_;  // deque: SnoopFilter is immovable.
  std::vector<FlatHashMap<FileId, Micros>> last_attr_;
};

}  // namespace

WorkloadConfig SpriteWorkloadConfig(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_clients = 42;
  config.num_events = 700'000;
  config.duration = static_cast<Micros>(2) * 24 * 3600 * 1'000'000;
  config.activity_zipf_s = 1.0;
  config.working_set_files = 44;
  config.reopen_probability = 0.98;
  config.run_stop_probability = 0.5;
  config.max_run_blocks = 32;

  // Shared hot: system binaries, headers, shared project files. Read-mostly,
  // highly skewed popularity -> heavy inter-client duplication.
  FileClassConfig shared_hot;
  shared_hot.num_files = 2400;
  shared_hot.min_blocks = 1;
  shared_hot.max_blocks = 32;
  shared_hot.select_weight = 0.46;
  shared_hot.write_fraction = 0.03;
  shared_hot.zipf_s = 0.75;

  // Shared cold: large simulation inputs / VLSI data, scanned occasionally.
  FileClassConfig shared_cold;
  shared_cold.num_files = 220;
  shared_cold.min_blocks = 128;
  shared_cold.max_blocks = 768;
  shared_cold.select_weight = 0.05;
  shared_cold.write_fraction = 0.08;
  shared_cold.zipf_s = 0.75;

  // Private: home-directory files, mostly owner-accessed, read/write mix.
  FileClassConfig private_files;
  private_files.num_files = 300;  // Per client.
  private_files.min_blocks = 1;
  private_files.max_blocks = 24;
  private_files.select_weight = 0.42;
  private_files.write_fraction = 0.30;
  private_files.zipf_s = 0.65;
  private_files.private_per_client = true;

  // Temp: compiler intermediates etc. Written, re-read, deleted.
  FileClassConfig temp_files;
  temp_files.num_files = 1;  // Allocated fresh per open.
  temp_files.min_blocks = 1;
  temp_files.max_blocks = 8;
  temp_files.select_weight = 0.06;
  temp_files.write_fraction = 0.55;
  temp_files.delete_after_use = true;

  config.classes = {shared_hot, shared_cold, private_files, temp_files};
  return config;
}

WorkloadConfig AuspexWorkloadConfig(std::uint64_t seed) {
  WorkloadConfig config = SpriteWorkloadConfig(seed);
  config.num_clients = 237;
  config.num_events = 5'000'000;
  config.duration = static_cast<Micros>(6) * 24 * 3600 * 1'000'000;
  // Scale the shared file population up for the larger community.
  config.classes[0].num_files = 4000;
  config.classes[1].num_files = 700;
  config.classes[2].num_files = 160;  // Per client; 237 clients.
  // Snooped: only local-cache misses are visible; hidden hits surface as
  // read-attribute hints. ~2048 blocks = 16 MB local filter.
  config.snoop_filter_blocks = 2048;
  config.emit_read_attrs = true;
  return config;
}

WorkloadConfig SmallTestWorkloadConfig(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.num_clients = 6;
  config.num_events = 20'000;
  config.duration = static_cast<Micros>(3600) * 1'000'000;
  config.working_set_files = 4;
  config.reopen_probability = 0.9;

  FileClassConfig shared;
  shared.num_files = 120;
  shared.min_blocks = 1;
  shared.max_blocks = 16;
  shared.select_weight = 0.5;
  shared.write_fraction = 0.1;

  FileClassConfig private_files;
  private_files.num_files = 40;
  private_files.min_blocks = 1;
  private_files.max_blocks = 8;
  private_files.select_weight = 0.45;
  private_files.write_fraction = 0.3;
  private_files.private_per_client = true;

  FileClassConfig temp_files;
  temp_files.num_files = 1;
  temp_files.min_blocks = 1;
  temp_files.max_blocks = 4;
  temp_files.select_weight = 0.05;
  temp_files.write_fraction = 0.5;
  temp_files.delete_after_use = true;

  config.classes = {shared, private_files, temp_files};
  return config;
}

Trace GenerateWorkload(const WorkloadConfig& config) {
  COOPFS_PROFILE_SCOPE("trace/generate");
  assert(!config.classes.empty());
  WorkloadGenerator generator(config);
  Trace trace = generator.Generate();
  COOPFS_LOG(kInfo) << "generated " << trace.size() << " events for " << config.num_clients
                    << " clients";
  return trace;
}

Trace GenerateLeffWorkload(const LeffWorkloadConfig& config) {
  Rng rng(config.seed);
  // Per-client and shared permutations of the object space give each client
  // a fixed, known access distribution (Zipf over its permutation).
  const auto make_permutation = [&rng, &config] {
    std::vector<std::uint32_t> perm(config.num_objects);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBelow(i)]);
    }
    return perm;
  };
  const std::vector<std::uint32_t> shared_perm = make_permutation();
  std::vector<std::vector<std::uint32_t>> client_perms;
  client_perms.reserve(config.num_clients);
  for (std::uint32_t c = 0; c < config.num_clients; ++c) {
    client_perms.push_back(make_permutation());
  }

  ZipfSampler zipf(config.num_objects, config.zipf_s);
  Trace trace;
  trace.reserve(config.num_events);
  Micros clock = 0;
  for (std::uint64_t i = 0; i < config.num_events; ++i) {
    clock += 1000;
    const auto client = static_cast<ClientId>(rng.NextBelow(config.num_clients));
    const std::size_t rank = zipf.Sample(rng);
    const bool shared = rng.NextBool(config.shared_fraction);
    const std::uint32_t object = shared ? shared_perm[rank] : client_perms[client][rank];
    TraceEvent event;
    event.timestamp = clock;
    event.client = client;
    event.type = EventType::kRead;
    event.block = BlockId{object, 0};
    trace.push_back(event);
  }
  return trace;
}

}  // namespace coopfs
