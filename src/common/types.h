// Core identifier and unit types shared by every coopfs module.
//
// The simulated system is a network file system: one server, many clients,
// files made of fixed-size blocks (8 KB in the paper). Blocks are the unit of
// caching, forwarding, and consistency.
#ifndef COOPFS_SRC_COMMON_TYPES_H_
#define COOPFS_SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace coopfs {

// Simulated time and latency are expressed in microseconds, matching the
// paper's technology tables (Figures 1 and 3).
using Micros = std::int64_t;

// Identifies one client machine. Clients are numbered densely from 0.
using ClientId = std::uint32_t;

// Identifies one file on the server.
using FileId = std::uint32_t;

// Block index within a file (block 0 holds bytes [0, kBlockSizeBytes)).
using BlockIndex = std::uint32_t;

// Sentinel for "no client" (e.g. a block cached nowhere).
inline constexpr ClientId kNoClient = std::numeric_limits<ClientId>::max();

// The paper simulates 8 KB cache blocks and does not allocate partial blocks.
inline constexpr std::size_t kBlockSizeBytes = 8 * 1024;

// Uniquely identifies one cacheable file block across the whole system.
//
// BlockId is a value type: cheap to copy, totally ordered, and hashable, so
// it can key hash maps (cache indexes, the server directory) directly.
struct BlockId {
  FileId file = 0;
  BlockIndex block = 0;

  friend bool operator==(const BlockId&, const BlockId&) = default;
  friend auto operator<=>(const BlockId&, const BlockId&) = default;

  // Packs the id into one 64-bit word; used for hashing and compact storage.
  constexpr std::uint64_t Pack() const {
    return (static_cast<std::uint64_t>(file) << 32) | block;
  }

  static constexpr BlockId Unpack(std::uint64_t packed) {
    return BlockId{static_cast<FileId>(packed >> 32),
                   static_cast<BlockIndex>(packed & 0xffffffffu)};
  }

  std::string ToString() const {
    return "f" + std::to_string(file) + ":b" + std::to_string(block);
  }
};

// Storage hierarchy level that satisfied an access (paper Figures 4 and 5).
// Values double as indexes into per-level metric arrays.
enum class CacheLevel : std::uint8_t {
  kLocalMemory = 0,    // Requesting client's own cache.
  kRemoteClient = 1,   // Another client's memory (the cooperative level).
  kServerMemory = 2,   // Central server cache.
  kServerDisk = 3,     // Backing disk.
};

inline constexpr std::size_t kNumCacheLevels = 4;

// Human-readable level name, for tables and logs.
constexpr const char* CacheLevelName(CacheLevel level) {
  switch (level) {
    case CacheLevel::kLocalMemory:
      return "Local Memory";
    case CacheLevel::kRemoteClient:
      return "Remote Client";
    case CacheLevel::kServerMemory:
      return "Server Memory";
    case CacheLevel::kServerDisk:
      return "Server Disk";
  }
  return "Unknown";
}

// Converts a byte count to a whole number of cache blocks (rounding down;
// cache capacities in the paper are exact multiples of the block size).
constexpr std::size_t BytesToBlocks(std::size_t bytes) { return bytes / kBlockSizeBytes; }

constexpr std::size_t MiB(std::size_t mib) { return mib * 1024 * 1024; }

}  // namespace coopfs

template <>
struct std::hash<coopfs::BlockId> {
  std::size_t operator()(const coopfs::BlockId& id) const noexcept {
    // SplitMix64 finalizer: cheap, well-distributed for sequential ids.
    std::uint64_t x = id.Pack();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

#endif  // COOPFS_SRC_COMMON_TYPES_H_
