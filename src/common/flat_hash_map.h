// Open-addressing flat hash containers for the replay hot path.
//
// The simulator's inner loop is index maintenance: every replayed event
// walks the per-client BlockCache index, the server Directory, and (for the
// coordinated policies) an LruMap — all previously std::unordered_map, whose
// node-per-entry layout costs one heap allocation per insert and one or more
// dependent cache-line loads per probe. FlatHashMap stores slots in one
// contiguous power-of-two array and resolves collisions with robin-hood
// linear probing, so a lookup is a handful of sequential cache lines and an
// insert after reserve() never allocates.
//
// Design:
//   * one metadata byte per slot: 0 = empty, d > 0 = "probe distance d-1
//     from the home bucket". No tombstones — erase backward-shifts the
//     following cluster, so probe sequences never degrade over time.
//   * robin-hood insertion (steal the slot of a richer element) keeps the
//     maximum probe length small and variance low even near the max load
//     factor (7/8).
//   * integral keys are mixed with the SplitMix64 finalizer by default;
//     sequential BlockId/FileId/ClientId keys otherwise cluster badly in a
//     power-of-two table. Non-integral keys go through std::hash + mix.
//   * rehash is profiled under the "flat_map/rehash" span, so an
//     under-reserved hot map shows up directly in coopfs.profile/v1 output
//     (see docs/performance.md).
//
// Constraints (deliberate, for the keys/values this codebase uses): K and V
// must be default-constructible and movable; erased slots are reset by
// moving a default-constructed value in. Pointers/references into the map
// are invalidated by any insert, erase, or rehash — unlike
// std::unordered_map. Callers that need stable entries (BlockCache, LruMap)
// keep values in a separate stable slab and store slab indexes here.
//
// Iteration order is unspecified and changes with capacity. Anything that
// can leak into simulation results or exported documents must aggregate
// order-independently or sort before emitting; tests/sim/
// capacity_determinism_test.cc holds that line.
#ifndef COOPFS_SRC_COMMON_FLAT_HASH_MAP_H_
#define COOPFS_SRC_COMMON_FLAT_HASH_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/profiler.h"

namespace coopfs {

// SplitMix64 finalizer: cheap, invertible, and well distributed for the
// dense sequential ids (packed BlockId, FileId, ClientId) this codebase
// keys on. Identical to the std::hash<BlockId> mixer in types.h.
constexpr std::uint64_t MixHash64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Default hasher: integral keys are mixed directly (std::hash on libstdc++
// is the identity, which a power-of-two table cannot digest); anything else
// is hashed then mixed.
template <typename K>
struct FlatHash {
  std::uint64_t operator()(const K& key) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return MixHash64(static_cast<std::uint64_t>(key));
    } else {
      return MixHash64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
    }
  }
};

// Probe-length / occupancy statistics, cheap enough to sample on demand
// (O(buckets)); surfaced by the cache-layer IndexStats() accessors and the
// flat_map_* series in bench/perf_harness.
struct FlatMapStats {
  std::size_t size = 0;
  std::size_t buckets = 0;
  double load_factor = 0.0;
  std::size_t max_probe_length = 0;   // Worst slot displacement (0 = home).
  double avg_probe_length = 0.0;      // Mean displacement over live slots.
  std::uint64_t rehashes = 0;         // Grows since construction/Clear.
};

template <typename K, typename V, typename Hasher = FlatHash<K>>
class FlatHashMap {
  static_assert(std::is_default_constructible_v<K> && std::is_default_constructible_v<V>,
                "FlatHashMap slots are default-constructed");

 public:
  FlatHashMap() = default;

  // Draws the slot and metadata arrays from `arena` (null = global heap).
  // Rehash abandons the old arrays into the arena — size the map with
  // Reserve() up front, as the replay containers already do.
  explicit FlatHashMap(Arena* arena)
      : slots_(ArenaAllocator<Slot>(arena)), dist_(ArenaAllocator<std::uint8_t>(arena)) {}

  FlatHashMap(FlatHashMap&&) noexcept = default;
  FlatHashMap& operator=(FlatHashMap&&) noexcept = default;
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return dist_.size(); }
  double load_factor() const {
    return dist_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(dist_.size());
  }

  // Ensures `n` entries fit without further rehashing.
  void Reserve(std::size_t n) {
    const std::size_t needed = BucketsFor(n);
    if (needed > dist_.size()) {
      Rehash(needed);
    }
  }

  void Clear() {
    for (std::size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        slots_[i] = Slot{};
        dist_[i] = 0;
      }
    }
    size_ = 0;
    rehashes_ = 0;
  }

  bool Contains(const K& key) const { return FindIndex(key) != kNpos; }

  // Pointer to the mapped value, or nullptr. Invalidated by any mutation.
  V* Find(const K& key) {
    const std::size_t i = FindIndex(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const V* Find(const K& key) const {
    const std::size_t i = FindIndex(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }

  // Inserts a default-constructed value under `key` if absent. Returns the
  // value pointer and whether an insert happened (try_emplace semantics).
  std::pair<V*, bool> TryEmplace(const K& key) {
    GrowIfNeeded();
    const std::uint64_t hash = hasher_(key);
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    std::uint8_t dist = 1;
    while (true) {
      if (dist_[i] == 0) {
        slots_[i].key = key;
        dist_[i] = dist;
        ++size_;
        return {&slots_[i].value, true};
      }
      if (dist_[i] >= dist && slots_[i].key == key) {
        return {&slots_[i].value, false};
      }
      if (dist_[i] < dist) {
        // Robin hood: displace the richer resident, then keep inserting it.
        return {InsertDisplacing(key, i, dist), true};
      }
      i = (i + 1) & mask_;
      ++dist;
      if (dist == kMaxDistance) {  // Pathological clustering: grow and retry.
        Rehash(dist_.empty() ? kMinBuckets : dist_.size() * 2);
        return TryEmplace(key);
      }
    }
  }

  V& operator[](const K& key) { return *TryEmplace(key).first; }

  // Removes `key` if present (backward-shift, no tombstone). Returns whether
  // it was present.
  bool Erase(const K& key) {
    const std::size_t i = FindIndex(key);
    if (i == kNpos) {
      return false;
    }
    EraseAt(i);
    return true;
  }

  // Removes every entry for which pred(key, value) is true; returns the
  // number removed. Handles the backward-shift-into-current-slot case.
  template <typename Pred>
  std::size_t EraseIf(Pred&& pred) {
    std::size_t removed = 0;
    for (std::size_t i = 0; i < dist_.size();) {
      if (dist_[i] != 0 && pred(std::as_const(slots_[i].key), slots_[i].value)) {
        EraseAt(i);
        ++removed;
        // EraseAt may have shifted the next cluster element into slot i;
        // re-examine i. A shifted-in element always has dist >= 1 at its
        // new, closer position, so progress is guaranteed: each re-check
        // either erases (size shrinks) or advances.
        continue;
      }
      ++i;
    }
    return removed;
  }

  // Visits every (key, value) in unspecified order. The visitor must not
  // mutate the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (std::size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

  FlatMapStats Stats() const {
    FlatMapStats stats;
    stats.size = size_;
    stats.buckets = dist_.size();
    stats.load_factor = load_factor();
    stats.rehashes = rehashes_;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < dist_.size(); ++i) {
      if (dist_[i] != 0) {
        const std::size_t probe = dist_[i] - 1;
        total += probe;
        stats.max_probe_length = std::max(stats.max_probe_length, probe);
      }
    }
    stats.avg_probe_length = size_ == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(size_);
    return stats;
  }

 private:
  struct Slot {
    K key{};
    V value{};
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::uint8_t kMaxDistance = 255;

  // Smallest power-of-two bucket count that keeps `n` entries at or under
  // the 7/8 max load factor.
  static std::size_t BucketsFor(std::size_t n) {
    std::size_t buckets = kMinBuckets;
    while (buckets * 7 / 8 < n) {
      buckets *= 2;
    }
    return buckets;
  }

  std::size_t FindIndex(const K& key) const {
    if (dist_.empty()) {
      return kNpos;
    }
    const std::uint64_t hash = hasher_(key);
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    std::uint8_t dist = 1;
    // A resident with a smaller distance than our probe would have robbed us
    // at insertion time: the key cannot be further along.
    while (dist_[i] >= dist) {
      if (slots_[i].key == key) {
        return i;
      }
      i = (i + 1) & mask_;
      ++dist;
    }
    return kNpos;
  }

  void GrowIfNeeded() {
    if (size_ + 1 > dist_.size() * 7 / 8) {
      Rehash(dist_.empty() ? kMinBuckets : dist_.size() * 2);
    }
  }

  // Robin-hood displacement chain: park (key, default V) at slot `i`
  // (whose resident is richer), then reinsert the evicted resident further
  // along, repeating as needed. Returns the value slot for `key`.
  V* InsertDisplacing(const K& key, std::size_t i, std::uint8_t dist) {
    Slot carried;
    carried.key = key;
    std::swap(carried, slots_[i]);
    std::swap(dist, dist_[i]);
    V* result = &slots_[i].value;
    std::size_t j = (i + 1) & mask_;
    ++dist;
    while (true) {
      if (dist_[j] == 0) {
        slots_[j] = std::move(carried);
        dist_[j] = dist;
        ++size_;
        return result;
      }
      if (dist_[j] < dist) {
        std::swap(carried, slots_[j]);
        std::swap(dist, dist_[j]);
      }
      j = (j + 1) & mask_;
      ++dist;
      if (dist == kMaxDistance) {
        // Grow, reinsert the carried slot, and relocate `result`'s key
        // (`slots_[i]` still holds the new key; rehash moves it).
        const K anchor = slots_[i].key;
        Rehash(dist_.size() * 2, &carried);
        return &slots_[FindIndex(anchor)].value;
      }
    }
  }

  void EraseAt(std::size_t i) {
    std::size_t next = (i + 1) & mask_;
    // Backward shift: pull each following cluster element (dist > 1) one
    // slot closer to home until a hole or a home-positioned element.
    while (dist_[next] > 1) {
      slots_[i] = std::move(slots_[next]);
      dist_[i] = dist_[next] - 1;
      i = next;
      next = (next + 1) & mask_;
    }
    slots_[i] = Slot{};
    dist_[i] = 0;
    --size_;
  }

  void Rehash(std::size_t new_buckets, Slot* carried = nullptr) {
    COOPFS_PROFILE_SCOPE("flat_map/rehash");
    SlotVec old_slots = std::move(slots_);
    DistVec old_dist = std::move(dist_);
    slots_.assign(new_buckets, Slot{});
    dist_.assign(new_buckets, 0);
    mask_ = new_buckets - 1;
    size_ = 0;
    ++rehashes_;
    for (std::size_t i = 0; i < old_dist.size(); ++i) {
      if (old_dist[i] != 0) {
        ReinsertUnchecked(std::move(old_slots[i]));
      }
    }
    if (carried != nullptr) {
      ReinsertUnchecked(std::move(*carried));
    }
  }

  // Insert of a known-absent slot during rehash (no equality checks).
  void ReinsertUnchecked(Slot&& slot) {
    Slot carried = std::move(slot);
    const std::uint64_t hash = hasher_(carried.key);
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    std::uint8_t dist = 1;
    while (true) {
      if (dist_[i] == 0) {
        slots_[i] = std::move(carried);
        dist_[i] = dist;
        ++size_;
        return;
      }
      if (dist_[i] < dist) {
        std::swap(carried, slots_[i]);
        std::swap(dist, dist_[i]);
      }
      i = (i + 1) & mask_;
      ++dist;
      assert(dist < kMaxDistance && "rehash exceeded max probe distance");
    }
  }

  using SlotVec = std::vector<Slot, ArenaAllocator<Slot>>;
  using DistVec = std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>>;

  SlotVec slots_;
  DistVec dist_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
  [[no_unique_address]] Hasher hasher_{};
};

// Flat hash set: FlatHashMap with an empty mapped type.
template <typename K, typename Hasher = FlatHash<K>>
class FlatHashSet {
 public:
  FlatHashSet() = default;
  explicit FlatHashSet(Arena* arena) : map_(arena) {}

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Reserve(std::size_t n) { map_.Reserve(n); }
  void Clear() { map_.Clear(); }
  bool Contains(const K& key) const { return map_.Contains(key); }

  // Returns true if `key` was inserted (false: already present).
  bool Insert(const K& key) { return map_.TryEmplace(key).second; }
  bool Erase(const K& key) { return map_.Erase(key); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](const K& key, const Empty&) { fn(key); });
  }

  FlatMapStats Stats() const { return map_.Stats(); }

 private:
  struct Empty {};
  FlatHashMap<K, Empty, Hasher> map_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_FLAT_HASH_MAP_H_
