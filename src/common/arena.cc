#include "src/common/arena.h"

#include <algorithm>
#include <cassert>

namespace coopfs {
namespace {

inline std::uintptr_t AlignUp(std::uintptr_t value, std::size_t alignment) {
  return (value + (alignment - 1)) & ~static_cast<std::uintptr_t>(alignment - 1);
}

}  // namespace

void* Arena::Allocate(std::size_t bytes, std::size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) {
    bytes = 1;  // Keep zero-byte requests distinct and non-null.
  }
  const std::uintptr_t aligned = AlignUp(cursor_, alignment);
  if (aligned + bytes <= limit_ && aligned >= cursor_) {
    cursor_ = aligned + bytes;
    used_bytes_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }
  return AllocateSlow(bytes, alignment);
}

void* Arena::AllocateSlow(std::size_t bytes, std::size_t alignment) {
  // Advance through retained chunks first; only touch the heap when none of
  // them can serve the request. The alignment slack is bounded, so reserving
  // bytes + alignment guarantees the aligned request fits.
  const std::size_t needed = bytes + alignment;
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    const Chunk& chunk = chunks_[current_];
    cursor_ = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    limit_ = cursor_ + chunk.size;
    const std::uintptr_t aligned = AlignUp(cursor_, alignment);
    if (aligned + bytes <= limit_) {
      cursor_ = aligned + bytes;
      used_bytes_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
  }

  Chunk chunk;
  chunk.size = std::max(needed, next_chunk_bytes_);
  chunk.data = std::make_unique<std::byte[]>(chunk.size);
  ++chunk_allocations_;
  if (next_chunk_bytes_ < kMaxChunkBytes) {
    next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  }
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[current_].data.get());
  limit_ = cursor_ + chunks_[current_].size;

  const std::uintptr_t aligned = AlignUp(cursor_, alignment);
  cursor_ = aligned + bytes;
  used_bytes_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::Reset() {
  ++resets_;
  used_bytes_ = 0;
  current_ = 0;
  if (chunks_.empty()) {
    cursor_ = 0;
    limit_ = 0;
    return;
  }
  cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[0].data.get());
  limit_ = cursor_ + chunks_[0].size;
}

}  // namespace coopfs
