#include "src/common/format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace coopfs {

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatMicros(double micros) {
  if (micros >= 1'000'000.0) {
    return FormatDouble(micros / 1'000'000.0, 2) + " s";
  }
  if (micros >= 10'000.0) {
    return FormatDouble(micros / 1'000.0, 1) + " ms";
  }
  return FormatDouble(micros, 0) + " us";
}

std::string FormatBytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = kKiB * 1024;
  constexpr std::uint64_t kGiB = kMiB * 1024;
  if (bytes >= kGiB && bytes % kGiB == 0) {
    return std::to_string(bytes / kGiB) + " GB";
  }
  if (bytes >= kMiB) {
    if (bytes % kMiB == 0) {
      return std::to_string(bytes / kMiB) + " MB";
    }
    return FormatDouble(static_cast<double>(bytes) / static_cast<double>(kMiB), 1) + " MB";
  }
  if (bytes >= kKiB && bytes % kKiB == 0) {
    return std::to_string(bytes / kKiB) + " KB";
  }
  return std::to_string(bytes) + " B";
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

TableFormatter::TableFormatter(std::vector<std::string> header) : header_(std::move(header)) {}

void TableFormatter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TableFormatter::AddRule() { rows_.emplace_back(); }

std::string TableFormatter::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) {
      widen(row);
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      if (i == 0) {
        out << cell << std::string(widths[i] - cell.size(), ' ');
      } else {
        out << "  " << std::string(widths[i] - cell.size(), ' ') << cell;
      }
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i == 0 ? 0 : 2);
    }
    out << std::string(total, '-') << "\n";
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

}  // namespace coopfs
