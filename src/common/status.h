// Lightweight Status / Result<T> error model.
//
// coopfs avoids exceptions for recoverable errors (malformed trace files,
// bad configurations); fallible functions return Status or Result<T>.
#ifndef COOPFS_SRC_COMMON_STATUS_H_
#define COOPFS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace coopfs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kUnimplemented,
  kInternal,
  kIoError,
};

constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

// Success-or-error value. Cheap to copy on the success path (no message).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status IoError(std::string msg) { return Status(StatusCode::kIoError, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error. `Result<T>` either holds a T (ok) or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-OK status to the caller (expression statements only).
#define COOPFS_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::coopfs::Status _coopfs_status = (expr); \
    if (!_coopfs_status.ok()) {             \
      return _coopfs_status;                \
    }                                       \
  } while (false)

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_STATUS_H_
