// Library version. Bump per release; the minor tracks reproduced-paper
// coverage milestones, the patch tracks fixes.
#ifndef COOPFS_SRC_COMMON_VERSION_H_
#define COOPFS_SRC_COMMON_VERSION_H_

namespace coopfs {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_VERSION_H_
