// Deterministic pseudo-random number generation.
//
// Every stochastic decision in coopfs (workload generation, N-Chance random
// peer selection) draws from an explicitly seeded generator, so a fixed seed
// reproduces a simulation bit-for-bit. We implement SplitMix64 (seeding) and
// xoshiro256** (bulk generation) rather than using <random> engines because
// their output is specified exactly and stable across standard libraries.
#ifndef COOPFS_SRC_COMMON_RNG_H_
#define COOPFS_SRC_COMMON_RNG_H_

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace coopfs {

// SplitMix64: tiny generator used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.Next();
    }
  }

  // Uniform over the full 64-bit range.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  // Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t NextBelow(std::uint64_t bound) {
    assert(bound > 0);
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 high-quality bits -> double mantissa.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean) {
    assert(mean > 0.0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Geometric-ish: number of successes before a failure with prob. `p_stop`
  // of stopping per step; used for run lengths. Capped to keep runs bounded.
  std::uint64_t NextRunLength(double p_stop, std::uint64_t cap) {
    std::uint64_t n = 1;
    while (n < cap && !NextBool(p_stop)) {
      ++n;
    }
    return n;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Draws from a Zipf(s) distribution over ranks [0, n). Precomputes the CDF
// once so each sample is a binary search: O(log n).
//
// Zipf popularity is the standard model for file access skew; the Sprite and
// Auspex workload generators use it to pick which file a reference touches.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) {
      v /= sum;
    }
  }

  std::size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // First index with cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_RNG_H_
