// Zero-cost-when-disabled scoped-timer profiler ("coopfs.profile/v1").
//
// The simulator's wall-clock behavior (not the simulated metrics — those are
// deterministic) is tracked by RAII spans placed on the hot phases: trace
// generation/decode, event replay, policy eviction, directory mutation,
// metrics finalization. A disabled profiler costs one relaxed atomic load
// and a branch per span, so the instrumentation stays compiled in
// everywhere; bench/perf_harness keeps the replay_serial_* series honest
// about that claim.
//
// Spans nest: each thread keeps a cursor into its private call tree, so
// "policy/evict" under "sim/write" and under "sim/read" aggregate
// separately. Trees are merged into a process-wide registry when a thread
// exits (covering RunSimulationsParallel workers) and when Snapshot() runs
// (covering the calling thread), under one mutex — the per-span hot path is
// lock-free and touches only thread-local state.
//
// Timings come from std::chrono::steady_clock and are inherently
// non-deterministic; the *structure* (span names, nesting, counts for a
// fixed workload) is reproducible. Export is a single "coopfs.profile/v1"
// JSON document plus a sorted self-time table for terminals.
#ifndef COOPFS_SRC_COMMON_PROFILER_H_
#define COOPFS_SRC_COMMON_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace coopfs {

// Schema identifier of the exported document. Bump on any backward-
// incompatible change; additive fields keep the version.
inline constexpr std::string_view kProfileSchema = "coopfs.profile/v1";

class Profiler {
 public:
  // One aggregated span in a merged snapshot. Children are sorted by name so
  // identical aggregates serialize to identical bytes.
  struct Node {
    std::string name;
    std::uint64_t count = 0;     // Completed spans.
    std::uint64_t total_ns = 0;  // Inclusive wall time.
    std::vector<Node> children;

    std::uint64_t ChildrenTotalNs() const;
    // Exclusive time: total minus children (clamped at zero — children can
    // nominally exceed the parent by clock-read granularity).
    std::uint64_t SelfNs() const;

    friend bool operator==(const Node&, const Node&) = default;
  };

  // Process-wide switch. Spans opened while disabled record nothing, even if
  // the profiler is enabled before they close.
  static void Enable(bool on);
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Drops all aggregated data: the global registry and the calling thread's
  // live tree. Must not be called with spans open on the calling thread.
  static void Reset();

  // Merged aggregate: the global registry (threads that exited) plus the
  // calling thread's live tree. Non-destructive; other still-running threads
  // are not included until they exit.
  static std::vector<Node> Snapshot();

  // Snapshot serialized as a "coopfs.profile/v1" document.
  static std::string ToJson();

  // Snapshot rendered as the sorted self-time table.
  static std::string SelfTimeTable(std::size_t max_rows = 0);

  // Renders the snapshot, self-validates by re-parsing, writes to `path`.
  static Status WriteFile(const std::string& path);

  // ---- Heap-allocation counters ----
  //
  // Process-wide relaxed counters of global operator new traffic. The
  // library never overrides the global allocator itself; a TU that does
  // (tests/sim/replay_allocation_test.cc) forwards every allocation here,
  // and the steady-state replay test asserts the delta across a warmed-up
  // arena-backed run is zero. Always safe to read; zero until someone feeds
  // them.
  static void RecordAllocation(std::size_t bytes) {
    allocation_count_.fetch_add(1, std::memory_order_relaxed);
    allocation_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  static std::uint64_t AllocationCount() {
    return allocation_count_.load(std::memory_order_relaxed);
  }
  static std::uint64_t AllocationBytes() {
    return allocation_bytes_.load(std::memory_order_relaxed);
  }
  static void ResetAllocationCounters() {
    allocation_count_.store(0, std::memory_order_relaxed);
    allocation_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class ProfileSpan;
  static std::atomic<bool> enabled_;
  static std::atomic<std::uint64_t> allocation_count_;
  static std::atomic<std::uint64_t> allocation_bytes_;
};

// ---- Document helpers (shared by the class above, tools, and tests) ----

std::string ProfileToJson(const std::vector<Profiler::Node>& roots);

// Parses and structurally validates a "coopfs.profile/v1" document. The
// returned forest re-serializes to the input bytes exactly.
Result<std::vector<Profiler::Node>> ParseProfileDocument(std::string_view text);

// Structural validation only (parse + discard).
Status ValidateProfileDocument(std::string_view text);

// Flattened per-name totals, sorted by self time (descending, then name).
struct ProfileFlatRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};
std::vector<ProfileFlatRow> FlattenProfileBySelfTime(const std::vector<Profiler::Node>& roots);

// The self-time table for an arbitrary forest (max_rows 0 = all rows).
std::string ProfileSelfTimeTable(const std::vector<Profiler::Node>& roots,
                                 std::size_t max_rows = 0);

// RAII span. Use through COOPFS_PROFILE_SCOPE; `name` must be a string
// literal (or otherwise outlive the process) — nodes store the pointer.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name) {
    if (Profiler::enabled()) {
      Begin(name);
    }
  }
  ~ProfileSpan() {
    if (node_ != nullptr) {
      End();
    }
  }

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  void* node_ = nullptr;  // internal::LiveNode of the enclosing thread tree.
  std::chrono::steady_clock::time_point start_{};
};

#define COOPFS_PROFILE_CONCAT_INNER(a, b) a##b
#define COOPFS_PROFILE_CONCAT(a, b) COOPFS_PROFILE_CONCAT_INNER(a, b)

// Times the enclosing scope under `name` when the profiler is enabled.
#define COOPFS_PROFILE_SCOPE(name) \
  ::coopfs::ProfileSpan COOPFS_PROFILE_CONCAT(coopfs_profile_span_, __LINE__)(name)

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_PROFILER_H_
