// Reusable bump/slab arena for allocation-isolated replay.
//
// A parallel sweep runs one simulation per (config, policy) job, and each
// run builds a SimContext worth tens of megabytes of slabs and hash tables.
// Allocating that working set from the global heap on every job makes the
// fan-out path contend on the allocator and re-fault fresh pages per job —
// the measured cause of the negative parallel_sweep scaling this arena was
// built to fix. Instead, each sweep worker owns one Arena, builds every
// job's context out of it, and calls Reset() between jobs: the chunks (and
// their already-faulted pages) are retained, so steady-state sweeping
// performs no heap traffic and no cross-thread allocator contention at all.
//
// Design:
//   * chunked bump allocation: pointers never move, Allocate is a cursor
//     bump, and an oversized request just opens a larger chunk (doubling).
//   * Reset() rewinds the cursor but keeps every chunk, so the second and
//     later uses of the arena are allocation-free against the heap.
//   * no per-object free. Memory is reclaimed by Reset()/destruction only —
//     exactly the lifetime of a simulation run. Trivial and non-trivial
//     objects alike must be destroyed by their owners before Reset();
//     the arena never runs destructors.
//   * single-threaded by design: one arena per worker. Stats() exposes
//     reserved/used bytes so tests and the profiler can assert reuse.
//
// ArenaAllocator<T> adapts an Arena to the standard allocator interface so
// std::vector (BlockCache slabs, FlatHashMap slot arrays) can draw from it.
// A default-constructed ArenaAllocator (null arena) falls back to the
// global heap, so arena-aware containers behave identically when no arena
// is attached.
#ifndef COOPFS_SRC_COMMON_ARENA_H_
#define COOPFS_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace coopfs {

class Arena {
 public:
  // First chunk size; later chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kDefaultFirstChunkBytes = std::size_t{1} << 20;  // 1 MiB
  static constexpr std::size_t kMaxChunkBytes = std::size_t{64} << 20;          // 64 MiB

  explicit Arena(std::size_t first_chunk_bytes = kDefaultFirstChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes < kMinChunkBytes ? kMinChunkBytes
                                                             : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `alignment` (a power of two). Never
  // returns null for bytes > 0; a zero-byte request returns a unique,
  // aligned, dereference-illegal pointer like operator new would.
  void* Allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t));

  // Rewinds the cursor to the start, retaining every chunk for reuse. All
  // previously returned pointers become invalid. Owners must have destroyed
  // any non-trivially-destructible objects first; the arena never runs
  // destructors.
  void Reset();

  struct Stats {
    std::size_t reserved_bytes = 0;  // Sum of all chunk sizes.
    std::size_t used_bytes = 0;      // Bytes handed out since the last Reset.
    std::size_t chunks = 0;          // Chunks currently retained.
    std::uint64_t resets = 0;        // Reset() calls so far.
    std::uint64_t chunk_allocations = 0;  // Heap chunk acquisitions ever.
  };
  Stats stats() const {
    Stats s;
    for (const Chunk& chunk : chunks_) {
      s.reserved_bytes += chunk.size;
    }
    s.used_bytes = used_bytes_;
    s.chunks = chunks_.size();
    s.resets = resets_;
    s.chunk_allocations = chunk_allocations_;
    return s;
  }

 private:
  static constexpr std::size_t kMinChunkBytes = 4096;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  // Opens (or advances to) a chunk able to serve `bytes` at `alignment`,
  // growing the chunk list if no retained chunk fits.
  void* AllocateSlow(std::size_t bytes, std::size_t alignment);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;        // Active chunk index (valid if !chunks_.empty()).
  std::uintptr_t cursor_ = 0;      // Next free address within the active chunk.
  std::uintptr_t limit_ = 0;       // One past the active chunk's last byte.
  std::size_t next_chunk_bytes_;   // Size of the next freshly allocated chunk.
  std::size_t used_bytes_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t chunk_allocations_ = 0;
};

// Standard-allocator adapter. Stateful: compares equal iff it points at the
// same arena (or both at none). deallocate() is a no-op for arena-backed
// memory — containers that shrink or rehash waste their old buffer until
// the next Reset(), which is fine for the reserve-once replay containers
// this is built for.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p);
    }
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) noexcept {
    return a.arena() == b.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_ARENA_H_
