#include "src/common/profiler.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>

#include "src/common/format.h"
#include "src/common/json.h"
#include "src/common/version.h"

namespace coopfs {

std::atomic<bool> Profiler::enabled_{false};
std::atomic<std::uint64_t> Profiler::allocation_count_{0};
std::atomic<std::uint64_t> Profiler::allocation_bytes_{0};

namespace internal {

// Node of a thread's live call tree. Child lists are tiny (a handful of
// distinct span names per level), so linear scans beat a map.
struct LiveNode {
  const char* name = "";
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::unique_ptr<LiveNode>> children;

  LiveNode* FindOrAddChild(const char* child_name) {
    for (const auto& child : children) {
      // Names are string literals: pointer equality is the common case, the
      // strcmp covers identical literals deduplicated differently per TU.
      if (child->name == child_name || std::strcmp(child->name, child_name) == 0) {
        return child.get();
      }
    }
    children.push_back(std::make_unique<LiveNode>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

}  // namespace internal

namespace {

std::mutex& GlobalMutex() {
  static auto* mutex = new std::mutex();
  return *mutex;
}

// Exited threads' trees, merged. Guarded by GlobalMutex().
std::vector<Profiler::Node>& GlobalForest() {
  static auto* forest = new std::vector<Profiler::Node>();
  return *forest;
}

void MergeNode(const Profiler::Node& from, std::vector<Profiler::Node>& siblings) {
  for (Profiler::Node& sibling : siblings) {
    if (sibling.name == from.name) {
      sibling.count += from.count;
      sibling.total_ns += from.total_ns;
      for (const Profiler::Node& child : from.children) {
        MergeNode(child, sibling.children);
      }
      return;
    }
  }
  siblings.push_back(from);
}

void MergeLiveChildren(const internal::LiveNode& root, std::vector<Profiler::Node>& into);

Profiler::Node ConvertLive(const internal::LiveNode& live) {
  Profiler::Node node;
  node.name = live.name;
  node.count = live.count;
  node.total_ns = live.total_ns;
  MergeLiveChildren(live, node.children);
  return node;
}

void MergeLiveChildren(const internal::LiveNode& root, std::vector<Profiler::Node>& into) {
  for (const auto& child : root.children) {
    MergeNode(ConvertLive(*child), into);
  }
}

void SortForest(std::vector<Profiler::Node>& forest) {
  std::sort(forest.begin(), forest.end(),
            [](const Profiler::Node& a, const Profiler::Node& b) { return a.name < b.name; });
  for (Profiler::Node& node : forest) {
    SortForest(node.children);
  }
}

struct ThreadProfile {
  internal::LiveNode root;                  // Sentinel; only children matter.
  std::vector<internal::LiveNode*> stack{&root};

  ~ThreadProfile() {
    if (root.children.empty()) {
      return;
    }
    std::lock_guard<std::mutex> lock(GlobalMutex());
    MergeLiveChildren(root, GlobalForest());
  }
};

ThreadProfile& LocalProfile() {
  thread_local ThreadProfile profile;
  return profile;
}

}  // namespace

std::uint64_t Profiler::Node::ChildrenTotalNs() const {
  std::uint64_t sum = 0;
  for (const Node& child : children) {
    sum += child.total_ns;
  }
  return sum;
}

std::uint64_t Profiler::Node::SelfNs() const {
  const std::uint64_t children_ns = ChildrenTotalNs();
  return children_ns >= total_ns ? 0 : total_ns - children_ns;
}

void Profiler::Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

void Profiler::Reset() {
  ThreadProfile& profile = LocalProfile();
  assert(profile.stack.size() == 1 && "Profiler::Reset with spans open");
  profile.root.children.clear();
  profile.stack.assign(1, &profile.root);
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalForest().clear();
}

std::vector<Profiler::Node> Profiler::Snapshot() {
  std::vector<Node> forest;
  {
    std::lock_guard<std::mutex> lock(GlobalMutex());
    forest = GlobalForest();
  }
  MergeLiveChildren(LocalProfile().root, forest);
  SortForest(forest);
  return forest;
}

void ProfileSpan::Begin(const char* name) {
  ThreadProfile& profile = LocalProfile();
  internal::LiveNode* node = profile.stack.back()->FindOrAddChild(name);
  profile.stack.push_back(node);
  node_ = node;
  start_ = std::chrono::steady_clock::now();
}

void ProfileSpan::End() {
  auto* node = static_cast<internal::LiveNode*>(node_);
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node->total_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  ++node->count;
  ThreadProfile& profile = LocalProfile();
  // Spans are strictly scoped, so this span is the top of its thread's stack
  // unless Enable() flipped mid-nesting; find-and-truncate stays correct.
  while (profile.stack.size() > 1 && profile.stack.back() != node) {
    profile.stack.pop_back();
  }
  if (profile.stack.size() > 1) {
    profile.stack.pop_back();
  }
}

namespace {

void WriteNode(JsonWriter& json, const Profiler::Node& node) {
  json.BeginObject();
  json.Key("name").Value(node.name);
  json.Key("count").Value(node.count);
  json.Key("total_ns").Value(node.total_ns);
  json.Key("self_ns").Value(node.SelfNs());
  json.Key("children").BeginArray();
  for (const Profiler::Node& child : node.children) {
    WriteNode(json, child);
  }
  json.EndArray();
  json.EndObject();
}

Status ParseNode(const JsonValue& value, Profiler::Node& node) {
  const JsonValue* name = value.FindString("name");
  const JsonValue* count = value.FindNumber("count");
  const JsonValue* total = value.FindNumber("total_ns");
  const JsonValue* self = value.FindNumber("self_ns");
  const JsonValue* children = value.FindArray("children");
  if (name == nullptr || count == nullptr || !count->IsIntegral() || count->AsInt() < 0 ||
      total == nullptr || !total->IsIntegral() || total->AsInt() < 0 || self == nullptr ||
      !self->IsIntegral() || self->AsInt() < 0 || children == nullptr) {
    return Status::DataLoss("profile node missing required field");
  }
  node.name = name->AsString();
  node.count = static_cast<std::uint64_t>(count->AsInt());
  node.total_ns = static_cast<std::uint64_t>(total->AsInt());
  node.children.resize(children->size());
  for (std::size_t i = 0; i < children->size(); ++i) {
    COOPFS_RETURN_IF_ERROR(ParseNode(children->items()[i], node.children[i]));
  }
  if (static_cast<std::uint64_t>(self->AsInt()) != node.SelfNs()) {
    return Status::DataLoss("profile node '" + node.name +
                            "': self_ns inconsistent with total_ns and children");
  }
  return Status::Ok();
}

}  // namespace

std::string ProfileToJson(const std::vector<Profiler::Node>& roots) {
  JsonWriter json(2);
  json.BeginObject();
  json.Key("schema").Value(kProfileSchema);
  json.Key("coopfs_version").Value(kVersionString);
  json.Key("roots").BeginArray();
  for (const Profiler::Node& root : roots) {
    WriteNode(json, root);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Result<std::vector<Profiler::Node>> ParseProfileDocument(std::string_view text) {
  Result<JsonValue> parsed = ParseJson(text);
  COOPFS_RETURN_IF_ERROR(parsed.status());
  const JsonValue* schema = parsed->FindString("schema");
  if (schema == nullptr || schema->AsString() != kProfileSchema) {
    return Status::DataLoss("profile document missing schema tag '" +
                            std::string(kProfileSchema) + "'");
  }
  if (parsed->FindString("coopfs_version") == nullptr) {
    return Status::DataLoss("profile document missing 'coopfs_version'");
  }
  const JsonValue* roots = parsed->FindArray("roots");
  if (roots == nullptr) {
    return Status::DataLoss("profile document missing 'roots' array");
  }
  std::vector<Profiler::Node> forest(roots->size());
  for (std::size_t i = 0; i < roots->size(); ++i) {
    COOPFS_RETURN_IF_ERROR(ParseNode(roots->items()[i], forest[i]));
  }
  return forest;
}

Status ValidateProfileDocument(std::string_view text) {
  return ParseProfileDocument(text).status();
}

namespace {

void FlattenInto(const std::vector<Profiler::Node>& forest,
                 std::vector<ProfileFlatRow>& rows) {
  for (const Profiler::Node& node : forest) {
    ProfileFlatRow* row = nullptr;
    for (ProfileFlatRow& existing : rows) {
      if (existing.name == node.name) {
        row = &existing;
        break;
      }
    }
    if (row == nullptr) {
      rows.push_back(ProfileFlatRow{node.name, 0, 0, 0});
      row = &rows.back();
    }
    row->count += node.count;
    row->total_ns += node.total_ns;
    row->self_ns += node.SelfNs();
    FlattenInto(node.children, rows);
  }
}

}  // namespace

std::vector<ProfileFlatRow> FlattenProfileBySelfTime(const std::vector<Profiler::Node>& roots) {
  std::vector<ProfileFlatRow> rows;
  FlattenInto(roots, rows);
  std::sort(rows.begin(), rows.end(), [](const ProfileFlatRow& a, const ProfileFlatRow& b) {
    if (a.self_ns != b.self_ns) {
      return a.self_ns > b.self_ns;
    }
    return a.name < b.name;
  });
  return rows;
}

std::string ProfileSelfTimeTable(const std::vector<Profiler::Node>& roots,
                                 std::size_t max_rows) {
  std::vector<ProfileFlatRow> rows = FlattenProfileBySelfTime(roots);
  std::uint64_t root_total_ns = 0;
  for (const Profiler::Node& root : roots) {
    root_total_ns += root.total_ns;
  }
  if (max_rows != 0 && rows.size() > max_rows) {
    rows.resize(max_rows);
  }
  TableFormatter table({"Span", "Count", "Total", "Self", "Self %"});
  for (const ProfileFlatRow& row : rows) {
    const double share = root_total_ns == 0
                             ? 0.0
                             : static_cast<double>(row.self_ns) /
                                   static_cast<double>(root_total_ns);
    table.AddRow({row.name, std::to_string(row.count),
                  FormatMicros(static_cast<double>(row.total_ns) / 1000.0),
                  FormatMicros(static_cast<double>(row.self_ns) / 1000.0),
                  FormatPercent(share)});
  }
  return table.ToString();
}

std::string Profiler::ToJson() { return ProfileToJson(Snapshot()); }

std::string Profiler::SelfTimeTable(std::size_t max_rows) {
  return ProfileSelfTimeTable(Snapshot(), max_rows);
}

Status Profiler::WriteFile(const std::string& path) {
  const std::string document = ToJson();
  COOPFS_RETURN_IF_ERROR(ValidateProfileDocument(document));
  return WriteTextFile(path, document);
}

}  // namespace coopfs
