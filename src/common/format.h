// Text-table and unit formatting helpers shared by benches and examples.
//
// Every bench binary prints paper-style tables; TableFormatter keeps their
// layout consistent (fixed-width columns, header rule, right-aligned numbers).
#ifndef COOPFS_SRC_COMMON_FORMAT_H_
#define COOPFS_SRC_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace coopfs {

// "14800 us" -> "14.8 ms"-style human units for latency values.
std::string FormatMicros(double micros);

// 16777216 -> "16 MB".
std::string FormatBytes(std::uint64_t bytes);

// 0.1573 -> "15.7%".
std::string FormatPercent(double fraction, int decimals = 1);

// Fixed-point with `decimals` digits, e.g. FormatDouble(1.734, 2) == "1.73".
std::string FormatDouble(double value, int decimals = 2);

// Builds a left-column + N-data-column text table and renders it with
// column widths computed from content. Cells are strings so callers control
// numeric formatting.
class TableFormatter {
 public:
  explicit TableFormatter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal rule before the next added row.
  void AddRule();

  // Renders the table; first column left-aligned, the rest right-aligned.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_FORMAT_H_
