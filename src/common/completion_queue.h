// Bounded lock-free MPMC completion queue (Vyukov ring).
//
// RunSimulationsParallel used to serialize job-completion callbacks behind a
// mutex shared by every worker; with short jobs the workers convoyed on that
// lock. This queue replaces it: workers TryPush the finished job index
// wait-free in the common case, and the caller thread drains indices and
// fires callbacks in submission order without ever blocking a worker.
//
// Classic bounded MPMC design: each cell carries a sequence counter; a
// producer claims a cell by CAS on the enqueue cursor and publishes with a
// release store of the sequence, a consumer mirrors it on the dequeue side.
// No operation takes a lock and no operation waits on another thread that is
// descheduled mid-operation (except a producer/consumer pair racing on the
// same cell, which resolves in a bounded number of steps).
//
// Capacity is rounded up to a power of two. Size the queue to at least the
// number of in-flight items and TryPush can never fail.
#ifndef COOPFS_SRC_COMMON_COMPLETION_QUEUE_H_
#define COOPFS_SRC_COMMON_COMPLETION_QUEUE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace coopfs {

template <typename T>
class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t min_capacity) {
    std::size_t capacity = 2;
    while (capacity < min_capacity) {
      capacity *= 2;
    }
    mask_ = capacity - 1;
    cells_ = std::make_unique<Cell[]>(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Returns false only when the ring is full.
  bool TryPush(T value) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // Full: the consumer has not freed this cell yet.
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Returns false when the ring is empty.
  bool TryPop(T* out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(cell.value);
          cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // Empty: no producer has published this cell yet.
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producers and consumers advance independent cursors; keep them on
  // separate cache lines so pushes do not invalidate the consumer's line.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_COMPLETION_QUEUE_H_
