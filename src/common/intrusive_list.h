// Intrusive doubly-linked list.
//
// The cache substrate needs LRU lists whose entries are also hash-map values;
// an intrusive list gives O(1) unlink/relink with zero allocation per
// operation, the standard idiom for OS cache implementations. Entries embed
// an IntrusiveListNode and the list never owns its elements.
#ifndef COOPFS_SRC_COMMON_INTRUSIVE_LIST_H_
#define COOPFS_SRC_COMMON_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>

namespace coopfs {

// Embed one of these per list a type participates in. The node records its
// owning object when linked, avoiding container-of pointer arithmetic.
struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;
  void* owner = nullptr;

  bool linked() const { return prev != nullptr; }

  // Unlinks from whatever list contains this node. No-op if not linked.
  void Unlink() {
    if (!linked()) {
      return;
    }
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
    owner = nullptr;
  }
};

// Circular sentinel-based intrusive list of T. `NodeMember` selects which
// embedded node to use, so one object can sit on several lists.
//
// Ordering convention used by the caches: front = most recently used,
// back = least recently used.
template <typename T, IntrusiveListNode T::* NodeMember = &T::node>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  // Non-copyable, non-movable: nodes hold pointers into the sentinel.
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() { Clear(); }

  bool empty() const { return sentinel_.next == &sentinel_; }
  std::size_t size() const { return size_; }

  void PushFront(T* item) {
    IntrusiveListNode* node = Node(item);
    assert(!node->linked() && "item already on a list");
    node->owner = item;
    InsertAfter(&sentinel_, node);
    ++size_;
  }

  void PushBack(T* item) {
    IntrusiveListNode* node = Node(item);
    assert(!node->linked() && "item already on a list");
    node->owner = item;
    InsertAfter(sentinel_.prev, node);
    ++size_;
  }

  // Removes `item` from this list. `item` must be on this list.
  void Remove(T* item) {
    IntrusiveListNode* node = Node(item);
    assert(node->linked());
    node->Unlink();
    --size_;
  }

  // True if `item`'s node for this list is currently linked (on some list).
  static bool IsLinked(const T* item) { return (item->*NodeMember).linked(); }

  // Moves `item` (already on this list) to the front (MRU position).
  void MoveToFront(T* item) {
    Remove(item);
    PushFront(item);
  }

  void MoveToBack(T* item) {
    Remove(item);
    PushBack(item);
  }

  T* Front() const { return empty() ? nullptr : FromNode(sentinel_.next); }
  T* Back() const { return empty() ? nullptr : FromNode(sentinel_.prev); }

  T* PopFront() {
    T* item = Front();
    if (item != nullptr) {
      Remove(item);
    }
    return item;
  }

  T* PopBack() {
    T* item = Back();
    if (item != nullptr) {
      Remove(item);
    }
    return item;
  }

  // Unlinks every element (does not destroy them; the list is non-owning).
  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

  // Minimal forward iterator over list order (front to back). Supports
  // removing the *current* element only via a copy taken before ++.
  class Iterator {
   public:
    explicit Iterator(IntrusiveListNode* node) : node_(node) {}

    T& operator*() const { return *FromNode(node_); }
    T* operator->() const { return FromNode(node_); }

    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) { return a.node_ == b.node_; }

   private:
    IntrusiveListNode* node_;
  };

  Iterator begin() { return Iterator(sentinel_.next); }
  Iterator end() { return Iterator(&sentinel_); }

 private:
  static IntrusiveListNode* Node(T* item) { return &(item->*NodeMember); }

  static T* FromNode(IntrusiveListNode* node) { return static_cast<T*>(node->owner); }

  static void InsertAfter(IntrusiveListNode* where, IntrusiveListNode* node) {
    node->prev = where;
    node->next = where->next;
    where->next->prev = node;
    where->next = node;
  }

  IntrusiveListNode sentinel_;
  std::size_t size_ = 0;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_INTRUSIVE_LIST_H_
