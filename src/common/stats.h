// Streaming statistics accumulators used by the metrics layer and benches.
#ifndef COOPFS_SRC_COMMON_STATS_H_
#define COOPFS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace coopfs {

// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bucket histogram over [0, +inf) with logarithmic bucket boundaries:
// [0,1), [1,2), [2,4), [4,8), ... doubling up to 2^(kNumBuckets-2), with the
// final bucket catching everything larger. Suited to latency distributions
// spanning microseconds to tens of milliseconds.
class LogHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 40;

  void Add(double value);
  void Merge(const LogHistogram& other);
  void Reset();

  std::uint64_t count() const { return total_; }
  std::uint64_t bucket_count(std::size_t bucket) const { return buckets_[bucket]; }

  // Inclusive lower bound of a bucket.
  static double BucketLowerBound(std::size_t bucket);

  // Approximate quantile (q in [0,1]) by linear interpolation inside the
  // containing bucket. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  // Multi-line human-readable rendering (for example programs).
  std::string ToString(std::size_t max_rows = 12) const;

 private:
  static std::size_t BucketFor(double value);

  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kNumBuckets, 0);
  std::uint64_t total_ = 0;
};

// Simple named counter set, used for per-level hit accounting and server
// load units where all we need is "add n to counter i".
template <std::size_t N>
class CounterArray {
 public:
  void Add(std::size_t index, std::uint64_t n = 1) { counts_[index] += n; }
  std::uint64_t Get(std::size_t index) const { return counts_[index]; }

  std::uint64_t Total() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < N; ++i) {
      sum += counts_[i];
    }
    return sum;
  }

  // Fraction of the total in `index`; 0 if empty.
  double Fraction(std::size_t index) const {
    const std::uint64_t total = Total();
    return total == 0 ? 0.0 : static_cast<double>(counts_[index]) / static_cast<double>(total);
  }

  void Reset() { counts_ = {}; }

  void Merge(const CounterArray& other) {
    for (std::size_t i = 0; i < N; ++i) {
      counts_[i] += other.counts_[i];
    }
  }

 private:
  std::array<std::uint64_t, N> counts_{};
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_STATS_H_
