#include "src/common/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace coopfs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) {
    return;
  }
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::Prepare() {
  if (stack_.empty()) {
    return;  // Top-level value.
  }
  if (stack_.back() == Scope::kObject) {
    // Values inside an object are emitted by Key(); Prepare() is only called
    // for the key itself or for array elements.
    assert(!pending_key_ || !"Prepare called with a key pending");
  }
  if (has_items_.back()) {
    out_.push_back(',');
  }
  has_items_.back() = true;
  NewlineIndent();
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_);
  Prepare();
  WriteEscaped(key);
  out_.push_back(':');
  if (indent_ > 0) {
    out_.push_back(' ');
  }
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    NewlineIndent();
  }
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) {
    NewlineIndent();
  }
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  WriteEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; metrics never produce them, but never emit an
    // unparseable document if one slips through.
    out_.append("null");
    return *this;
  }
  char buffer[32];
  // Shortest representation that round-trips to the same double, so equal
  // doubles always serialize to identical bytes.
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  assert(ec == std::errc());
  out_.append(buffer, end);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  char buffer[24];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  assert(ec == std::errc());
  out_.append(buffer, end);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  char buffer[24];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  assert(ec == std::errc());
  out_.append(buffer, end);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  if (pending_key_) {
    pending_key_ = false;
  } else {
    Prepare();
  }
  out_.append("null");
  return *this;
}

void JsonWriter::WriteEscaped(std::string_view text) {
  out_.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\r':
        out_.append("\\r");
        break;
      case '\t':
        out_.append("\\t");
        break;
      case '\b':
        out_.append("\\b");
        break;
      case '\f':
        out_.append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_.append(buffer);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    COOPFS_RETURN_IF_ERROR(ParseValue(root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& message) const {
    return Status::DataLoss("json parse error at offset " + std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return ParseString(out.string_);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      JsonValue::Member member;
      COOPFS_RETURN_IF_ERROR(ParseString(member.first));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      COOPFS_RETURN_IF_ERROR(ParseValue(member.second, depth + 1));
      out.members_.push_back(std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::Ok();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      COOPFS_RETURN_IF_ERROR(ParseValue(item, depth + 1));
      out.items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::Ok();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // Encode as UTF-8. Surrogate pairs are not combined — the writer
          // never emits them (it only escapes C0 controls).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseBool(JsonValue& out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = true;
      return Status::Ok();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = false;
      return Status::Ok();
    }
    return Error("invalid literal");
  }

  Status ParseNull(JsonValue& out) {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      out.kind_ = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Error("invalid number");
    }
    out.kind_ = JsonValue::Kind::kNumber;
    const auto [dend, dec] =
        std::from_chars(token.data(), token.data() + token.size(), out.number_);
    if (dec != std::errc() || dend != token.data() + token.size()) {
      return Error("invalid number");
    }
    if (integral) {
      const auto [iend, iec] =
          std::from_chars(token.data(), token.data() + token.size(), out.int_number_);
      out.integral_ = iec == std::errc() && iend == token.data() + token.size();
    } else {
      out.int_number_ = static_cast<std::int64_t>(out.number_);
    }
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const Member& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const JsonValue* JsonValue::FindObject(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_object() ? v : nullptr;
}

const JsonValue* JsonValue::FindArray(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_array() ? v : nullptr;
}

const JsonValue* JsonValue::FindNumber(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v : nullptr;
}

const JsonValue* JsonValue::FindString(std::string_view key) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v : nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) { return JsonParser(text).Parse(); }

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.put('\n');
  out.flush();
  if (!out) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace coopfs
