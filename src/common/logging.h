// Minimal leveled logging for library diagnostics.
//
// Usage: COOPFS_LOG(kInfo) << "warmed " << n << " accesses";
// Severity below the global threshold is compiled to a cheap runtime check.
//
// The threshold and output format are process-wide atomics, safe to read and
// write from parallel sweeps. Both are initialized from the environment at
// startup:
//   COOPFS_LOG_LEVEL  = debug | info | warning | error | none (or 0-4)
//   COOPFS_LOG_FORMAT = text | json
// The json format emits each record as one machine-parseable JSON object per
// line ({"level":...,"src":"file:line","msg":...}) so library diagnostics
// can be collected alongside the structured exports (coopfs.metrics/v1,
// coopfs.events/v1) instead of scraped from free text.
#ifndef COOPFS_SRC_COMMON_LOGGING_H_
#define COOPFS_SRC_COMMON_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace coopfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,  // Threshold value that silences everything.
};

// How emitted records are rendered to stderr.
enum class LogFormat : int {
  kText = 0,  // "[I file.cc:42] message"
  kJson = 1,  // {"level":"info","src":"file.cc:42","msg":"message"}
};

// Process-wide minimum severity that is actually emitted. Defaults to
// kWarning (or COOPFS_LOG_LEVEL if set) so library consumers are quiet
// unless they opt in. Thread-safe.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Process-wide output format. Defaults to kText (or COOPFS_LOG_FORMAT if
// set). Thread-safe.
LogFormat GetLogFormat();
void SetLogFormat(LogFormat format);

// Parses a COOPFS_LOG_LEVEL value ("warning", "WARNING", or "2");
// std::nullopt if unrecognized.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Parses a COOPFS_LOG_FORMAT value ("text" or "json", case-insensitive).
std::optional<LogFormat> ParseLogFormat(std::string_view text);

// Re-reads COOPFS_LOG_LEVEL / COOPFS_LOG_FORMAT and applies any valid
// values. Runs automatically before main(); exposed so tests (and hosts
// that mutate their environment) can re-trigger it.
void InitLoggingFromEnvironment();

// Renders one record in `format` (without trailing newline). The text form
// is the classic bracketed line; the JSON form is one compact object.
// Exposed for tests; LogMessage uses it internally.
std::string FormatLogRecord(LogLevel level, const char* file, int line, std::string_view message,
                            LogFormat format);

// Internal: stream that emits one formatted line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace coopfs

#define COOPFS_LOG(severity)                                                      \
  if (::coopfs::LogLevel::severity < ::coopfs::GetLogLevel()) {                   \
  } else                                                                          \
    ::coopfs::LogMessage(::coopfs::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // COOPFS_SRC_COMMON_LOGGING_H_
