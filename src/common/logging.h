// Minimal leveled logging for library diagnostics.
//
// Usage: COOPFS_LOG(kInfo) << "warmed " << n << " accesses";
// Severity below the global threshold is compiled to a cheap runtime check.
#ifndef COOPFS_SRC_COMMON_LOGGING_H_
#define COOPFS_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace coopfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,  // Threshold value that silences everything.
};

// Process-wide minimum severity that is actually emitted. Defaults to
// kWarning so library consumers are quiet unless they opt in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Internal: stream that emits one formatted line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace coopfs

#define COOPFS_LOG(severity)                                                      \
  if (::coopfs::LogLevel::severity < ::coopfs::GetLogLevel()) {                   \
  } else                                                                          \
    ::coopfs::LogMessage(::coopfs::LogLevel::severity, __FILE__, __LINE__).stream()

#endif  // COOPFS_SRC_COMMON_LOGGING_H_
