#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/json.h"

namespace coopfs {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::atomic<LogFormat> g_log_format{LogFormat::kText};

// Applies the environment before main() so every binary honors
// COOPFS_LOG_LEVEL / COOPFS_LOG_FORMAT without code changes.
const bool g_env_applied = [] {
  InitLoggingFromEnvironment();
  return true;
}();

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kNone:
      return "none";
  }
  return "none";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::string AsciiLower(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower;
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

LogFormat GetLogFormat() { return g_log_format.load(std::memory_order_relaxed); }

void SetLogFormat(LogFormat format) { g_log_format.store(format, std::memory_order_relaxed); }

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  const std::string lower = AsciiLower(text);
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  if (lower == "none" || lower == "off" || lower == "4") {
    return LogLevel::kNone;
  }
  return std::nullopt;
}

std::optional<LogFormat> ParseLogFormat(std::string_view text) {
  const std::string lower = AsciiLower(text);
  if (lower == "text") {
    return LogFormat::kText;
  }
  if (lower == "json") {
    return LogFormat::kJson;
  }
  return std::nullopt;
}

void InitLoggingFromEnvironment() {
  if (const char* env = std::getenv("COOPFS_LOG_LEVEL"); env != nullptr) {
    if (std::optional<LogLevel> level = ParseLogLevel(env); level.has_value()) {
      SetLogLevel(*level);
    }
  }
  if (const char* env = std::getenv("COOPFS_LOG_FORMAT"); env != nullptr) {
    if (std::optional<LogFormat> format = ParseLogFormat(env); format.has_value()) {
      SetLogFormat(*format);
    }
  }
}

std::string FormatLogRecord(LogLevel level, const char* file, int line, std::string_view message,
                            LogFormat format) {
  const char* base = Basename(file);
  if (format == LogFormat::kJson) {
    JsonWriter json;
    json.BeginObject();
    json.Key("level").Value(LevelName(level));
    json.Key("src").Value(std::string(base) + ":" + std::to_string(line));
    json.Key("msg").Value(message);
    json.EndObject();
    return json.str();
  }
  std::string out = "[";
  out += LevelTag(level);
  out += " ";
  out += base;
  out += ":";
  out += std::to_string(line);
  out += "] ";
  out += message;
  return out;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const std::string line =
      FormatLogRecord(level_, file_, line_, stream_.str(), GetLogFormat()) + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace coopfs
