#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace coopfs {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace coopfs
