#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace coopfs {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  mean_ += delta * n_b / n;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::size_t LogHistogram::BucketFor(double value) {
  if (value < 1.0) {
    return 0;
  }
  const auto bucket = static_cast<std::size_t>(std::log2(value)) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

double LogHistogram::BucketLowerBound(std::size_t bucket) {
  if (bucket == 0) {
    return 0.0;
  }
  return std::pow(2.0, static_cast<double>(bucket - 1));
}

void LogHistogram::Add(double value) {
  ++buckets_[BucketFor(value)];
  ++total_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

void LogHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

double LogHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double lo = BucketLowerBound(i);
      const double hi = (i + 1 < kNumBuckets) ? BucketLowerBound(i + 1) : lo * 2.0;
      const double frac = (target - cumulative) / static_cast<double>(buckets_[i]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return BucketLowerBound(kNumBuckets - 1);
}

std::string LogHistogram::ToString(std::size_t max_rows) const {
  std::ostringstream out;
  // Show only the occupied range, densest buckets first capped to max_rows.
  std::size_t first = kNumBuckets;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] > 0) {
      first = std::min(first, i);
      last = i;
    }
  }
  if (first == kNumBuckets) {
    return "(empty histogram)\n";
  }
  std::uint64_t peak = 0;
  for (std::size_t i = first; i <= last; ++i) {
    peak = std::max(peak, buckets_[i]);
  }
  std::size_t rows = 0;
  for (std::size_t i = first; i <= last && rows < max_rows; ++i, ++rows) {
    const double lo = BucketLowerBound(i);
    const auto bar_len =
        static_cast<std::size_t>(40.0 * static_cast<double>(buckets_[i]) /
                                 static_cast<double>(peak));
    out << "[" << lo << ", " << BucketLowerBound(i + 1) << ")\t" << buckets_[i] << "\t"
        << std::string(bar_len, '#') << "\n";
  }
  return out.str();
}

}  // namespace coopfs
