// Dependency-free JSON writing and parsing.
//
// The observability layer (src/obs) exports metrics and bench results as
// JSON so external tooling (perf trajectories, regression gates, dashboards)
// can consume them. coopfs takes no third-party dependencies, so this header
// provides the two pieces it needs:
//
//   * JsonWriter — a streaming, stack-validated writer. Doubles are printed
//     with std::to_chars (shortest round-trip form), so serializing the same
//     values always yields the same bytes; the determinism tests compare
//     serialized documents for bit-for-bit equality.
//   * JsonValue / ParseJson — a small DOM parser used to validate exported
//     documents (schema round-trip tests, perf_harness self-checks).
#ifndef COOPFS_SRC_COMMON_JSON_H_
#define COOPFS_SRC_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace coopfs {

// Streaming JSON writer. Usage:
//
//   JsonWriter json(/*indent=*/2);
//   json.BeginObject().Key("reads").Value(std::uint64_t{42}).EndObject();
//   std::string doc = std::move(json).str();
//
// Structural misuse (a value with no pending key inside an object, unbalanced
// End calls) is caught by assertions in debug builds; the writer never
// produces syntactically invalid JSON for correct call sequences.
class JsonWriter {
 public:
  // `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must precede every value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }
  JsonWriter& Value(bool value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<std::int64_t>(value)); }
  JsonWriter& Value(unsigned value) { return Value(static_cast<std::uint64_t>(value)); }
  JsonWriter& Null();

  // The document so far. Complete once every Begin has its matching End.
  const std::string& str() const { return out_; }

  // Appends `"\n"`-terminated document convenience: not provided; callers
  // add a trailing newline when writing files.

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void Prepare();  // Separator + indentation before a key or top-level value.
  void NewlineIndent();
  void WriteEscaped(std::string_view text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // Parallel to stack_.
  bool pending_key_ = false;
  int indent_ = 0;
};

// Parsed JSON document node.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  // Integral numbers keep an exact 64-bit value alongside the double.
  std::int64_t AsInt() const { return int_number_; }
  bool IsIntegral() const { return is_number() && integral_; }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }
  std::size_t size() const { return is_object() ? members_.size() : items_.size(); }

  // Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Typed member lookups used by the schema validators: nullptr if the
  // member is missing or has the wrong kind.
  const JsonValue* FindObject(std::string_view key) const;
  const JsonValue* FindArray(std::string_view key) const;
  const JsonValue* FindNumber(std::string_view key) const;
  const JsonValue* FindString(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_number_ = 0;
  bool integral_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

// Parses one complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). Rejects documents nested deeper than 256 levels.
Result<JsonValue> ParseJson(std::string_view text);

// Writes `content` to `path` with a trailing newline; kIoError on failure.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_JSON_H_
