// Small-size-optimized vector for hot-path element sets.
//
// The server directory keeps one holder set per tracked block; the paper's
// workloads leave most blocks with one or two holders (§2.4: N-Chance
// actively kills duplicates), so a heap-allocated std::vector per block
// wastes an allocation and a pointer chase on almost every AddHolder /
// RemoveHolder. InlineVec stores up to N elements inside the object and
// only touches the heap for the rare block cached by more than N clients.
//
// Restricted to trivially copyable element types (ids, packed ids) so
// growth and moves are memcpy-class operations and the destructor of the
// inline case is trivial.
#ifndef COOPFS_SRC_COMMON_INLINE_VEC_H_
#define COOPFS_SRC_COMMON_INLINE_VEC_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/common/arena.h"

namespace coopfs {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>, "InlineVec is for trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  // Activates the pointer variant so element types with default member
  // initializers (non-trivial default ctors) can sit in the union; elements
  // are trivially copyable, so slots are written without construction.
  InlineVec() : heap_(nullptr) {}

  InlineVec(const InlineVec& other) { CopyFrom(other); }
  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  InlineVec(InlineVec&& other) noexcept { StealFrom(other); }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      Release();
      StealFrom(other);
    }
    return *this;
  }

  ~InlineVec() { Release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_ & ~kArenaFlag; }
  static constexpr std::size_t inline_capacity() { return N; }
  bool inlined() const { return capacity_ == N; }
  // Whether the spilled storage came from an Arena (and so must not be
  // delete[]d). Always false while inline.
  bool arena_backed() const { return (capacity_ & kArenaFlag) != 0; }

  T* data() { return inlined() ? inline_ : heap_; }
  const T* data() const { return inlined() ? inline_ : heap_; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity()) {
      Grow(nullptr);
    }
    data()[size_++] = value;
  }

  // Like push_back, but a spill past the inline capacity draws its heap
  // block from `arena` (null falls back to the global heap). Arena-backed
  // storage is never freed by this container — the arena reclaims it
  // wholesale at Reset().
  void push_back(const T& value, Arena* arena) {
    if (size_ == capacity()) {
      Grow(arena);
    }
    data()[size_++] = value;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  // Removes the element at `i` by swapping the last element in (order is
  // not preserved — holder sets are unordered anyway).
  void SwapRemoveAt(std::size_t i) {
    assert(i < size_);
    data()[i] = data()[size_ - 1];
    --size_;
  }

  // SwapRemoveAt of the first element equal to `value`; returns whether one
  // was found.
  bool SwapRemove(const T& value) {
    T* base = data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (base[i] == value) {
        SwapRemoveAt(i);
        return true;
      }
    }
    return false;
  }

  bool ContainsValue(const T& value) const {
    const T* base = data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (base[i] == value) {
        return true;
      }
    }
    return false;
  }

 private:
  // MSB of capacity_ marks arena-backed heap storage. Inline capacities are
  // tiny and growth doubles from N, so real capacities never reach the flag.
  static constexpr std::uint32_t kArenaFlag = 0x80000000u;

  void Grow(Arena* arena) {
    const std::size_t new_capacity = capacity() * 2;
    T* fresh;
    std::uint32_t flag = 0;
    if (arena != nullptr) {
      fresh = static_cast<T*>(arena->Allocate(new_capacity * sizeof(T), alignof(T)));
      flag = kArenaFlag;
    } else {
      fresh = new T[new_capacity];
    }
    std::memcpy(fresh, data(), size_ * sizeof(T));
    Release();
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(new_capacity) | flag;
  }

  void Release() {
    if (!inlined() && !arena_backed()) {
      delete[] heap_;
    }
    capacity_ = N;
  }

  // Copies always land on the global heap: the copy may outlive the source's
  // arena, and holder-list copies (policy snapshots) are cold-path anyway.
  void CopyFrom(const InlineVec& other) {
    size_ = other.size_;
    if (other.inlined()) {
      capacity_ = N;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    } else {
      capacity_ = static_cast<std::uint32_t>(other.capacity());
      heap_ = new T[capacity_];
      std::memcpy(heap_, other.heap_, size_ * sizeof(T));
    }
  }

  // Takes other's storage; leaves other empty and inline.
  void StealFrom(InlineVec& other) {
    size_ = other.size_;
    capacity_ = other.capacity_;
    if (other.inlined()) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    } else {
      heap_ = other.heap_;
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = N;
  union {
    T inline_[N];
    T* heap_;
  };
};

}  // namespace coopfs

#endif  // COOPFS_SRC_COMMON_INLINE_VEC_H_
