// Weighted LRU (paper §2.5).
//
// A dynamic algorithm that tries to evict the block with the lowest
// value/cost ratio: duplicated blocks are cheap to lose (a later reference
// is still a remote-memory hit) while the last cached copy of a block is
// expensive (its loss may cost a disk access); the opportunity cost of
// keeping a block is roughly the time since its last reference [Smit81].
//
// The paper gives only this sketch (its quantitative results are omitted
// because "response time was slightly worse than for the substantially
// simpler N-Chance Forwarding"). Our implementation, documented in
// DESIGN.md: eviction examines a window of the least recently used blocks
// and evicts the one minimizing miss_penalty / age, where the penalty is
// the remote-fetch time for duplicated blocks and the disk time for
// singlets; evicted singlets recirculate exactly as in N-Chance. Each
// weighted decision queries the server for duplicate status (charged as
// "Other" load — the paper's noted drawback).
#ifndef COOPFS_SRC_CORE_WEIGHTED_LRU_H_
#define COOPFS_SRC_CORE_WEIGHTED_LRU_H_

#include <string>

#include "src/core/nchance.h"

namespace coopfs {

class WeightedLruPolicy : public NChancePolicy {
 public:
  // `window` bounds how many LRU-end blocks each eviction decision weighs
  // (a full-cache scan per eviction is neither realistic nor necessary).
  explicit WeightedLruPolicy(int recirculation_count = 2, std::size_t window = 16)
      : NChancePolicy(recirculation_count), window_(window) {}

  std::string Name() const override { return "Weighted LRU"; }

 protected:
  CacheEntry* SelectVictim(ClientId client) override;

 private:
  std::size_t window_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_WEIGHTED_LRU_H_
