#include "src/core/direct_coop.h"

#include <optional>

namespace coopfs {

void DirectCoopPolicy::OnAttach() {
  const std::size_t uniform_capacity = remote_cache_blocks_ != 0
                                           ? remote_cache_blocks_
                                           : ctx().config().client_cache_blocks;
  remote_caches_.clear();
  remote_caches_.reserve(ctx().num_clients());
  for (std::uint32_t c = 0; c < ctx().num_clients(); ++c) {
    const std::size_t capacity = per_client_remote_blocks_.empty()
                                     ? uniform_capacity
                                     : (c < per_client_remote_blocks_.size()
                                            ? per_client_remote_blocks_[c]
                                            : 0);
    remote_caches_.push_back(std::make_unique<BlockCache>(capacity));
  }
}

ReadOutcome DirectCoopPolicy::Read(ClientId client, BlockId block) {
  if (CacheEntry* entry = ctx().client_cache(client).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    return {CacheLevel::kLocalMemory, 0, false};
  }

  // Probe the private remote cache: request + reply, no server (Figure 3:
  // 1050 us on ATM). The block migrates back into the local cache.
  BlockCache& remote = *remote_caches_[client];
  if (remote.Erase(block)) {
    // The "remote client" here is this client's own private remote cache.
    ctx().TraceForward(client);
    CacheLocally(client, block);
    return {CacheLevel::kRemoteClient, 2, true};
  }

  // As far as the server is concerned this client just has a larger cache:
  // the remaining path is exactly the baseline's.
  if (CacheEntry* entry = ctx().server_cache_for(block).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    ctx().ChargeServerMemoryHit();
    CacheLocally(client, block);
    return {CacheLevel::kServerMemory, 2, true};
  }

  if (std::optional<ReadOutcome> dirty = MaybeServeFromDirtyHolder(client, block);
      dirty.has_value()) {
    return *dirty;
  }
  ctx().ChargeDiskHit();
  InstallInServerCache(block);
  CacheLocally(client, block);
  return {CacheLevel::kServerDisk, 2, true};
}

void DirectCoopPolicy::EvictForInsert(ClientId client) {
  BlockCache& cache = ctx().client_cache(client);
  CacheEntry* victim = cache.Lru();
  if (victim == nullptr) {
    return;
  }
  const BlockId block = victim->block;
  FlushIfDirty(client, block);
  DropLocal(client, block);

  BlockCache& remote = *remote_caches_[client];
  if (!remote.CanInsert() || remote.Contains(block)) {
    return;
  }
  while (remote.Full()) {
    remote.EvictLru();
  }
  remote.Insert(block).last_ref = ctx().now();
}

void DirectCoopPolicy::OnClientReboot(ClientId client) {
  remote_caches_[client]->Clear();
}

void DirectCoopPolicy::OnInvalidateExtra(BlockId block, ClientId writer) {
  for (std::uint32_t c = 0; c < remote_caches_.size(); ++c) {
    if (writer != kNoClient && c == writer) {
      continue;  // The writer's own spilled copy is refreshed below anyway.
    }
    remote_caches_[c]->Erase(block);
  }
  if (writer != kNoClient) {
    // Write-through makes the writer's spilled copy stale too; the fresh
    // data will re-enter its local cache via the normal write path.
    remote_caches_[writer]->Erase(block);
  }
}

}  // namespace coopfs
