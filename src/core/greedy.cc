#include "src/core/greedy.h"

namespace coopfs {

ReadOutcome GreedyPolicy::Read(ClientId client, BlockId block) {
  if (CacheEntry* entry = ctx().client_cache(client).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    OnLocalHit(client, *entry);
    return {CacheLevel::kLocalMemory, 0, false};
  }

  if (CacheEntry* entry = ctx().server_cache_for(block).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    ctx().ChargeServerMemoryHit();
    OnBlockReplicated(block);
    CacheLocally(client, block);
    return {CacheLevel::kServerMemory, 2, true};
  }

  // The server consults its directory and forwards the request to a caching
  // client, which sends the data directly to the requester: request +
  // forward + reply = 3 hops (Figure 3).
  const ClientId holder = ctx().directory().PickHolder(block, client, ctx().rng());
  if (holder != kNoClient) {
    ctx().ChargeRemoteClientHit(holder);
    OnRemoteHit(client, holder, block);
    CacheLocally(client, block);
    return {CacheLevel::kRemoteClient, 3, true};
  }

  ctx().ChargeDiskHit();
  InstallInServerCache(block);
  CacheLocally(client, block);
  return {CacheLevel::kServerDisk, 2, true};
}

void GreedyPolicy::OnLocalHit(ClientId client, CacheEntry& entry) {
  (void)client;
  (void)entry;
}

void GreedyPolicy::OnRemoteHit(ClientId client, ClientId holder, BlockId block) {
  (void)client;
  (void)holder;
  (void)block;
}

}  // namespace coopfs
