// Baseline: traditional client/server caching, no cooperation (paper §3).
//
// Reads are satisfied by the client's local cache, then the server's memory
// cache, then disk. Local evictions simply discard blocks. This is the
// "base case" every figure compares against.
#ifndef COOPFS_SRC_CORE_BASELINE_H_
#define COOPFS_SRC_CORE_BASELINE_H_

#include <string>

#include "src/sim/policy.h"

namespace coopfs {

class BaselinePolicy : public PolicyBase {
 public:
  std::string Name() const override { return "Baseline"; }

  ReadOutcome Read(ClientId client, BlockId block) override;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_BASELINE_H_
