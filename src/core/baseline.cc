#include "src/core/baseline.h"

#include <optional>

namespace coopfs {

ReadOutcome BaselinePolicy::Read(ClientId client, BlockId block) {
  if (CacheEntry* entry = ctx().client_cache(client).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    return {CacheLevel::kLocalMemory, 0, false};
  }
  if (CacheEntry* entry = ctx().server_cache_for(block).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    ctx().ChargeServerMemoryHit();
    CacheLocally(client, block);
    return {CacheLevel::kServerMemory, 2, true};
  }
  if (std::optional<ReadOutcome> dirty = MaybeServeFromDirtyHolder(client, block);
      dirty.has_value()) {
    return *dirty;
  }
  ctx().ChargeDiskHit();
  InstallInServerCache(block);
  CacheLocally(client, block);
  return {CacheLevel::kServerDisk, 2, true};
}

}  // namespace coopfs
