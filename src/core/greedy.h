// Greedy Forwarding (paper §2.2).
//
// Client caches remain greedily (locally) managed, but the server's
// directory of client cache contents lets it forward a missing read to any
// client caching the block; that client replies directly to the requester
// (3 network hops total). Cache contents are not coordinated, so duplicates
// persist.
//
// GreedyPolicy is also the base of N-Chance Forwarding (greedy is N-Chance
// with n = 0), which overrides the eviction path and the two hooks below.
#ifndef COOPFS_SRC_CORE_GREEDY_H_
#define COOPFS_SRC_CORE_GREEDY_H_

#include <string>

#include "src/sim/policy.h"

namespace coopfs {

class GreedyPolicy : public PolicyBase {
 public:
  std::string Name() const override { return "Greedy Forwarding"; }

  ReadOutcome Read(ClientId client, BlockId block) override;

 protected:
  // Called when `client` hits its own cached copy. N-Chance turns a
  // recirculating copy back into normal local data here.
  virtual void OnLocalHit(ClientId client, CacheEntry& entry);

  // Called when the server forwards `client`'s read to `holder`. N-Chance
  // discards the holder's copy if it was a recirculating singlet and clears
  // stale singlet flags.
  virtual void OnRemoteHit(ClientId client, ClientId holder, BlockId block);

  // Called when a copy of `block` appears somewhere new while other client
  // copies exist. N-Chance clears holders' singlet flags.
  virtual void OnBlockReplicated(BlockId block) { (void)block; }
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_GREEDY_H_
