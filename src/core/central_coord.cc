#include "src/core/central_coord.h"

#include <optional>

#include <algorithm>
#include <cmath>

#include "src/common/format.h"

namespace coopfs {

namespace {

std::size_t CoordinatedBlocksPerClient(double fraction, std::size_t client_blocks) {
  const double exact = fraction * static_cast<double>(client_blocks);
  return static_cast<std::size_t>(exact + 0.5);
}

}  // namespace

std::string CentralCoordPolicy::Name() const {
  return "Central Coordination (" + FormatPercent(coordinated_fraction_, 0) + ")";
}

std::size_t CentralCoordPolicy::ClientCacheBlocks(const SimulationConfig& config) const {
  if (best_case_doubling_) {
    // Doubled memory: the locally managed half is a full-size private cache.
    return config.client_cache_blocks;
  }
  const std::size_t coordinated =
      CoordinatedBlocksPerClient(coordinated_fraction_, config.client_cache_blocks);
  return config.client_cache_blocks - std::min(coordinated, config.client_cache_blocks);
}

std::size_t CentralCoordPolicy::GlobalCacheBlocks(const SimulationConfig& config,
                                                  std::uint32_t num_clients) const {
  const std::size_t per_client =
      best_case_doubling_
          ? config.client_cache_blocks
          : CoordinatedBlocksPerClient(coordinated_fraction_, config.client_cache_blocks);
  return per_client * num_clients;
}

void CentralCoordPolicy::OnAttach() {
  global_cache_.emplace(GlobalCacheBlocks(ctx().config(), ctx().num_clients()));
  next_host_ = 0;
}

ClientId CentralCoordPolicy::NextHost() {
  const ClientId host = next_host_;
  next_host_ = (next_host_ + 1) % ctx().num_clients();
  return host;
}

ReadOutcome CentralCoordPolicy::Read(ClientId client, BlockId block) {
  if (CacheEntry* entry = ctx().client_cache(client).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    return {CacheLevel::kLocalMemory, 0, false};
  }

  if (CacheEntry* entry = ctx().server_cache_for(block).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    ctx().ChargeServerMemoryHit();
    CacheLocally(client, block);
    return {CacheLevel::kServerMemory, 2, true};
  }

  // The server checks the centrally coordinated client memory; a hit renews
  // the entry on the global LRU list and forwards the request (3 hops).
  if (const ClientId* host = global_cache_->Touch(block.Pack()); host != nullptr) {
    ctx().ChargeRemoteClientHit(*host);
    CacheLocally(client, block);
    return {CacheLevel::kRemoteClient, 3, true};
  }

  if (std::optional<ReadOutcome> dirty = MaybeServeFromDirtyHolder(client, block);
      dirty.has_value()) {
    return *dirty;
  }
  ctx().ChargeDiskHit();
  InstallInServerCache(block);
  CacheLocally(client, block);
  return {CacheLevel::kServerDisk, 2, true};
}

void CentralCoordPolicy::OnServerEvict(BlockId block) {
  if (!global_cache_->CanInsert()) {
    return;
  }
  // "The server sends the victim block to replace the least recently used
  // block among all of the blocks in the centrally coordinated distributed
  // cache" (§2.3). LruMap::Insert evicts its LRU entry automatically.
  global_cache_->Insert(block.Pack(), NextHost());
}

void CentralCoordPolicy::OnInvalidateExtra(BlockId block, ClientId writer) {
  (void)writer;
  global_cache_->Erase(block.Pack());
}

void CentralCoordPolicy::OnClientReboot(ClientId client) {
  global_cache_->EraseIf(
      [client](std::uint64_t, ClientId host) { return host == client; });
}

}  // namespace coopfs
