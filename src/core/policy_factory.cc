#include "src/core/policy_factory.h"

#include "src/core/baseline.h"
#include "src/core/central_coord.h"
#include "src/core/direct_coop.h"
#include "src/core/greedy.h"
#include "src/core/hash_distributed.h"
#include "src/core/nchance.h"
#include "src/core/nchance_idle.h"
#include "src/core/weighted_lru.h"

namespace coopfs {

std::unique_ptr<Policy> MakePolicy(PolicyKind kind, const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kBaseline:
      return std::make_unique<BaselinePolicy>();
    case PolicyKind::kDirectCoop:
      return std::make_unique<DirectCoopPolicy>(params.direct_remote_blocks);
    case PolicyKind::kGreedy:
      return std::make_unique<GreedyPolicy>();
    case PolicyKind::kCentralCoord:
      return std::make_unique<CentralCoordPolicy>(params.coordinated_fraction);
    case PolicyKind::kNChance:
      return std::make_unique<NChancePolicy>(params.nchance_recirculation);
    case PolicyKind::kNChanceIdle:
      return std::make_unique<NChanceIdleAwarePolicy>(params.nchance_recirculation);
    case PolicyKind::kHashDistributed:
      return std::make_unique<HashDistributedPolicy>(params.coordinated_fraction);
    case PolicyKind::kWeightedLru:
      return std::make_unique<WeightedLruPolicy>(params.nchance_recirculation,
                                                 params.weighted_window);
    case PolicyKind::kBestCase:
      return std::make_unique<BestCasePolicy>();
  }
  return nullptr;
}

Result<PolicyKind> ParsePolicyKind(const std::string& name) {
  if (name == "baseline" || name == "base") {
    return PolicyKind::kBaseline;
  }
  if (name == "direct") {
    return PolicyKind::kDirectCoop;
  }
  if (name == "greedy") {
    return PolicyKind::kGreedy;
  }
  if (name == "central") {
    return PolicyKind::kCentralCoord;
  }
  if (name == "nchance" || name == "n-chance") {
    return PolicyKind::kNChance;
  }
  if (name == "nchance-idle") {
    return PolicyKind::kNChanceIdle;
  }
  if (name == "hash") {
    return PolicyKind::kHashDistributed;
  }
  if (name == "weighted" || name == "weighted-lru") {
    return PolicyKind::kWeightedLru;
  }
  if (name == "best" || name == "best-case") {
    return PolicyKind::kBestCase;
  }
  return Status::InvalidArgument("unknown policy: " + name +
                                 " (expected baseline|direct|greedy|central|nchance|hash|"
                                 "weighted|best)");
}

std::vector<PolicyKind> Figure4PolicyKinds() {
  return {PolicyKind::kBaseline,     PolicyKind::kDirectCoop, PolicyKind::kGreedy,
          PolicyKind::kCentralCoord, PolicyKind::kNChance,    PolicyKind::kBestCase};
}

std::vector<PolicyKind> AllPolicyKinds() {
  return {PolicyKind::kBaseline,     PolicyKind::kDirectCoop,      PolicyKind::kGreedy,
          PolicyKind::kCentralCoord, PolicyKind::kNChance,         PolicyKind::kNChanceIdle,
          PolicyKind::kHashDistributed, PolicyKind::kWeightedLru,  PolicyKind::kBestCase};
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaseline:
      return "baseline";
    case PolicyKind::kDirectCoop:
      return "direct";
    case PolicyKind::kGreedy:
      return "greedy";
    case PolicyKind::kCentralCoord:
      return "central";
    case PolicyKind::kNChance:
      return "nchance";
    case PolicyKind::kNChanceIdle:
      return "nchance-idle";
    case PolicyKind::kHashDistributed:
      return "hash";
    case PolicyKind::kWeightedLru:
      return "weighted";
    case PolicyKind::kBestCase:
      return "best";
  }
  return "unknown";
}

}  // namespace coopfs
