// N-Chance Forwarding (paper §2.4).
//
// Extends Greedy Forwarding so clients cooperate to preferentially keep
// *singlets* — blocks cached by exactly one client. When a client evicts a
// singlet it sets the block's recirculation count to n and forwards it to a
// random peer instead of discarding it; a recirculating block that drifts
// to the end of a peer's LRU list is decremented and forwarded again until
// the count reaches zero. Referencing a singlet turns it back into normal
// local data at the requester.
//
// Implemented details from the paper:
//   * ripple prevention: a client receiving a recirculated block never
//     forwards one to make space; it uses the modified replacement rule
//     (discard its oldest duplicated block, else the oldest recirculating
//     block with the fewest recirculations remaining);
//   * message optimizations: directory updates piggyback on miss requests
//     (uncharged); at most one is-this-a-singlet query per block lifetime —
//     recirculating copies and flag-marked singlets are never re-queried;
//     queries cost two small messages ("Other" server load, Figure 6);
//   * a holder whose recirculating singlet is fetched by another client
//     discards its copy; a flag-marked singlet that becomes duplicated has
//     its flag reset.
//
// n = 0 degenerates to exactly Greedy Forwarding.
#ifndef COOPFS_SRC_CORE_NCHANCE_H_
#define COOPFS_SRC_CORE_NCHANCE_H_

#include <string>

#include "src/core/greedy.h"

namespace coopfs {

class NChancePolicy : public GreedyPolicy {
 public:
  // `recirculation_count` is the paper's n. Default 2 (paper §4.1).
  explicit NChancePolicy(int recirculation_count = 2) : n_(recirculation_count) {}

  std::string Name() const override {
    return "N-Chance (n=" + std::to_string(n_) + ")";
  }

  int recirculation_count() const { return n_; }

 protected:
  void OnLocalHit(ClientId client, CacheEntry& entry) override;
  void OnRemoteHit(ClientId client, ClientId holder, BlockId block) override;
  void OnBlockReplicated(BlockId block) override;

  // Eviction to admit a new block: LRU victim, but singlets recirculate.
  void EvictForInsert(ClientId client) override;

  // Victim selection for a normal (non-recirculation) insertion. Weighted
  // LRU overrides this to pick the lowest value/cost block.
  virtual CacheEntry* SelectVictim(ClientId client);

  // Forward-target selection for a recirculating singlet. The paper's base
  // algorithm picks uniformly at random; the idle-aware variant (§2.4's
  // suggested enhancement) overrides this. Returns kNoClient if no peer.
  virtual ClientId PickForwardTarget(ClientId client);

  // Uniformly random peer other than `client` (kNoClient if none).
  ClientId PickRandomPeer(ClientId client);

 private:
  // Disposes of `victim` (must be in `client`'s cache): drop duplicates,
  // recirculate singlets with remaining budget.
  void HandleEviction(ClientId client, CacheEntry& victim);

  // Delivers a recirculated singlet to `peer` with `count` recirculations
  // remaining, applying the modified replacement rule if the peer is full.
  void ReceiveForwarded(ClientId peer, BlockId block, int count);

  // Modified replacement for a peer admitting a recirculated block: evict
  // the oldest duplicated block; else the oldest recirculating block with
  // the fewest recirculations remaining; else the plain LRU block.
  void MakeSpaceWithoutForwarding(ClientId peer);

  int n_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_NCHANCE_H_
