#include "src/core/weighted_lru.h"

namespace coopfs {

CacheEntry* WeightedLruPolicy::SelectVictim(ClientId client) {
  BlockCache& cache = ctx().client_cache(client);
  const NetworkModel& net = ctx().config().network;
  const double remote_penalty = static_cast<double>(net.RemoteFetchTime(3));
  const double disk_penalty =
      static_cast<double>(net.RemoteFetchTime(2) + ctx().config().disk.access_time);
  const Micros now = ctx().now();

  // Duplicate status is global knowledge: one query (request + reply) per
  // eviction decision, the server-load cost the paper warns about.
  ctx().ChargeSmallMessages(2);

  CacheEntry* best = nullptr;
  double best_weight = 0.0;
  cache.ScanFromLru(
      [&](CacheEntry& entry) {
        const bool duplicated = ctx().directory().IsDuplicated(entry.block);
        const double penalty = duplicated ? remote_penalty : disk_penalty;
        const double age = static_cast<double>(now - entry.last_ref) + 1.0;
        const double weight = penalty / age;
        if (best == nullptr || weight < best_weight) {
          best = &entry;
          best_weight = weight;
        }
        return false;
      },
      window_);
  return best != nullptr ? best : cache.Lru();
}

}  // namespace coopfs
