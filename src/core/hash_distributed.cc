#include "src/core/hash_distributed.h"

#include <optional>

#include <algorithm>

#include "src/common/format.h"

namespace coopfs {

std::string HashDistributedPolicy::Name() const {
  return "Hash Distributed (" + FormatPercent(coordinated_fraction_, 0) + ")";
}

std::size_t HashDistributedPolicy::ClientCacheBlocks(const SimulationConfig& config) const {
  const auto coordinated = static_cast<std::size_t>(
      coordinated_fraction_ * static_cast<double>(config.client_cache_blocks) + 0.5);
  return config.client_cache_blocks - std::min(coordinated, config.client_cache_blocks);
}

void HashDistributedPolicy::OnAttach() {
  const auto per_client = static_cast<std::size_t>(
      coordinated_fraction_ * static_cast<double>(ctx().config().client_cache_blocks) + 0.5);
  partitions_.clear();
  partitions_.reserve(ctx().num_clients());
  for (std::uint32_t c = 0; c < ctx().num_clients(); ++c) {
    partitions_.push_back(std::make_unique<LruMap<std::uint64_t, bool>>(per_client));
  }
}

ClientId HashDistributedPolicy::HashTarget(BlockId block) const {
  return static_cast<ClientId>(std::hash<BlockId>{}(block) % partitions_.size());
}

ReadOutcome HashDistributedPolicy::Read(ClientId client, BlockId block) {
  if (CacheEntry* entry = ctx().client_cache(client).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    return {CacheLevel::kLocalMemory, 0, false};
  }

  // The distributed cache is probed first, directly at the responsible
  // client — the server is not involved at all on a hit.
  const ClientId target = HashTarget(block);
  const bool self_target = target == client;
  if (partitions_[target]->Touch(block.Pack()) != nullptr) {
    CacheLocally(client, block);
    if (self_target) {
      // The coordinated copy is in this client's own memory: no network.
      return {CacheLevel::kLocalMemory, 0, false};
    }
    ctx().TraceForward(target);
    return {CacheLevel::kRemoteClient, 2, true};
  }

  // Partition miss: the hashed client forwards the request to the server
  // (one extra hop unless the requester was the hashed client itself).
  const int extra_hop = self_target ? 0 : 1;
  if (CacheEntry* entry = ctx().server_cache_for(block).Touch(block); entry != nullptr) {
    entry->last_ref = ctx().now();
    ctx().ChargeServerMemoryHit();
    CacheLocally(client, block);
    return {CacheLevel::kServerMemory, 2 + extra_hop, true};
  }

  if (std::optional<ReadOutcome> dirty = MaybeServeFromDirtyHolder(client, block);
      dirty.has_value()) {
    return *dirty;
  }
  ctx().ChargeDiskHit();
  InstallInServerCache(block);
  CacheLocally(client, block);
  return {CacheLevel::kServerDisk, 2 + extra_hop, true};
}

void HashDistributedPolicy::OnServerEvict(BlockId block) {
  LruMap<std::uint64_t, bool>& partition = *partitions_[HashTarget(block)];
  if (partition.CanInsert()) {
    partition.Insert(block.Pack(), true);
  }
}

void HashDistributedPolicy::OnInvalidateExtra(BlockId block, ClientId writer) {
  (void)writer;
  partitions_[HashTarget(block)]->Erase(block.Pack());
}

void HashDistributedPolicy::OnClientReboot(ClientId client) {
  partitions_[client]->Clear();
}

}  // namespace coopfs
