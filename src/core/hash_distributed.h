// Hash-Distributed Caching (paper §2.5).
//
// Like Centrally Coordinated Caching, each client's cache is split into a
// locally managed section and a coordinated section, but the coordinated
// cache is statically partitioned by block identifier: block b's globally
// managed copy may live only at client hash(b). On a local miss the client
// sends its request *directly* to that client (2 hops on a hit — and no
// server load at all); only if the partition misses is the request
// forwarded on to the server (one extra hop to server memory or disk).
// Server cache evictions drop the victim into the responsible client's
// partition, which runs its own LRU.
//
// The paper reports (results omitted there) that its hit rates are nearly
// identical to Central Coordination while server load falls sharply — the
// sec25_other_algorithms bench reproduces that claim.
#ifndef COOPFS_SRC_CORE_HASH_DISTRIBUTED_H_
#define COOPFS_SRC_CORE_HASH_DISTRIBUTED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/lru_map.h"
#include "src/sim/policy.h"

namespace coopfs {

class HashDistributedPolicy : public PolicyBase {
 public:
  explicit HashDistributedPolicy(double coordinated_fraction = 0.8)
      : coordinated_fraction_(coordinated_fraction) {}

  std::string Name() const override;

  std::size_t ClientCacheBlocks(const SimulationConfig& config) const override;

  ReadOutcome Read(ClientId client, BlockId block) override;

  // Introspection for tests: is `block` resident in its hash partition, and
  // which client is responsible for it? Valid between Attach and re-Attach.
  bool PartitionContains(BlockId block) const {
    return !partitions_.empty() && partitions_[HashTargetForTest(block)]->Contains(block.Pack());
  }
  ClientId HashTargetForTest(BlockId block) const {
    return static_cast<ClientId>(std::hash<BlockId>{}(block) % partitions_.size());
  }

 protected:
  void OnAttach() override;
  void OnServerEvict(BlockId block) override;
  void OnInvalidateExtra(BlockId block, ClientId writer) override;
  void OnClientReboot(ClientId client) override;

 private:
  ClientId HashTarget(BlockId block) const;

  double coordinated_fraction_;
  // Per-client coordinated partition: LRU set of packed BlockIds. The bool
  // value is unused (LruMap is a map; presence is what matters).
  std::vector<std::unique_ptr<LruMap<std::uint64_t, bool>>> partitions_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_HASH_DISTRIBUTED_H_
