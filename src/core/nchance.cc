#include "src/core/nchance.h"

#include <cassert>

namespace coopfs {

void NChancePolicy::OnLocalHit(ClientId client, CacheEntry& entry) {
  (void)client;
  // Referencing a singlet "resets the block's recirculation count and caches
  // the data normally" (§2.4): the copy becomes ordinary local data.
  entry.recirculation_count = 0;
}

void NChancePolicy::OnRemoteHit(ClientId client, ClientId holder, BlockId block) {
  (void)client;
  CacheEntry* entry = ctx().client_cache(holder).Find(block);
  assert(entry != nullptr && "directory pointed at a non-holder");
  if (entry == nullptr) {
    return;
  }
  if (entry->recirculating()) {
    // The requester takes over the singlet; the cooperative copy dies.
    FlushIfDirty(holder, block);
    DropLocal(holder, block);
    return;
  }
  // The block is about to be duplicated at the requester; stale singlet
  // flags would cause pointless recirculation later.
  entry->singlet_flag = false;
}

void NChancePolicy::OnBlockReplicated(BlockId block) {
  // A server-supplied copy is appearing at a new client; clear any holder's
  // now-stale singlet state (the paper's flag reset on re-reference, §2.4).
  // A recirculating copy is demoted to normal data: the block is no longer
  // the last cached copy, so protecting it would be pointless.
  for (ClientId holder : ctx().directory().Holders(block)) {
    if (CacheEntry* entry = ctx().client_cache(holder).Find(block); entry != nullptr) {
      entry->singlet_flag = false;
      entry->recirculation_count = 0;
    }
  }
}

CacheEntry* NChancePolicy::SelectVictim(ClientId client) {
  return ctx().client_cache(client).Lru();
}

void NChancePolicy::EvictForInsert(ClientId client) {
  CacheEntry* victim = SelectVictim(client);
  if (victim == nullptr) {
    return;
  }
  if (n_ == 0) {
    // Degenerate case: exactly Greedy Forwarding, no queries, no forwarding.
    DropLocal(client, victim->block);
    return;
  }
  HandleEviction(client, *victim);
}

void NChancePolicy::HandleEviction(ClientId client, CacheEntry& victim) {
  const BlockId block = victim.block;
  // Delayed writes: the server must have the data before the copy leaves
  // this cache (whether dropped or forwarded).
  FlushIfDirty(client, block);

  bool is_singlet;
  int count;
  if (victim.recirculating()) {
    // "Any block whose recirculation count is set must be a singlet, so no
    // server message is necessary" — and reaching the LRU end decrements.
    is_singlet = true;
    count = victim.recirculation_count - 1;
  } else if (victim.singlet_flag) {
    // Previously discovered singlet held as local data: no repeat query.
    is_singlet = true;
    count = n_;
  } else {
    // One is-this-the-last-copy query per block lifetime (request + reply).
    ctx().ChargeSmallMessages(2);
    is_singlet = ctx().directory().IsSingletHeldBy(block, client);
    count = n_;
  }

  if (!is_singlet || count <= 0) {
    DropLocal(client, block);
    return;
  }

  const ClientId peer = PickForwardTarget(client);
  if (peer == kNoClient) {
    DropLocal(client, block);
    return;
  }
  // The "block has moved" directory update piggybacks on the miss request
  // that triggered this eviction (§2.4 first optimization): uncharged.
  ctx().CountRecirculation();
  ctx().TraceRecirculation(client, peer, block, count);
  DropLocal(client, block);
  ReceiveForwarded(peer, block, count);
}

void NChancePolicy::ReceiveForwarded(ClientId peer, BlockId block, int count) {
  assert(count > 0);
  BlockCache& cache = ctx().client_cache(peer);
  if (!cache.CanInsert()) {
    return;
  }
  if (CacheEntry* existing = cache.Find(block); existing != nullptr) {
    // Should not happen for a true singlet; tolerate stale flags by merging.
    existing->recirculation_count =
        static_cast<std::uint8_t>(std::max<int>(existing->recirculation_count, count));
    return;
  }
  // The "block has moved" update reaches the directory with the forward
  // itself; register the new holder before displacement queries run.
  ctx().directory().AddHolder(block, peer);
  while (cache.Full()) {
    MakeSpaceWithoutForwarding(peer);
  }
  CacheEntry& entry = cache.Insert(block);
  // "The peer adds the block to its LRU list as if recently referenced."
  entry.recirculation_count = static_cast<std::uint8_t>(count);
  entry.singlet_flag = true;  // Known singlet: never re-queried.
  entry.last_ref = ctx().now();
}

void NChancePolicy::MakeSpaceWithoutForwarding(ClientId peer) {
  BlockCache& cache = ctx().client_cache(peer);

  // First choice: the oldest duplicated block. Recirculating copies and
  // flag-marked singlets are known singlets (skipped without a query);
  // unmarked blocks cost one query each — but a discovered singlet gets its
  // flag set, so it is never queried again (§2.4 optimizations).
  CacheEntry* dup_victim = cache.ScanFromLru([this, peer](CacheEntry& entry) {
    if (entry.recirculating() || entry.singlet_flag) {
      return false;
    }
    ctx().ChargeSmallMessages(2);
    if (ctx().directory().IsDuplicated(entry.block)) {
      return true;
    }
    entry.singlet_flag = true;
    return false;
  });
  if (dup_victim != nullptr) {
    FlushIfDirty(peer, dup_victim->block);
    DropLocal(peer, dup_victim->block);
    return;
  }

  // Second choice: the oldest recirculating block with the fewest
  // recirculations remaining.
  CacheEntry* best = nullptr;
  cache.ScanFromLru([&best](CacheEntry& entry) {
    if (entry.recirculating() &&
        (best == nullptr || entry.recirculation_count < best->recirculation_count)) {
      best = &entry;
    }
    return false;
  });
  if (best != nullptr) {
    FlushIfDirty(peer, best->block);
    DropLocal(peer, best->block);
    return;
  }

  // Fallback (cache entirely flag-marked singlets): plain LRU.
  CacheEntry* lru = cache.Lru();
  if (lru != nullptr) {
    FlushIfDirty(peer, lru->block);
    DropLocal(peer, lru->block);
  }
}

ClientId NChancePolicy::PickForwardTarget(ClientId client) { return PickRandomPeer(client); }

ClientId NChancePolicy::PickRandomPeer(ClientId client) {
  const std::uint32_t n = ctx().num_clients();
  if (n <= 1) {
    return kNoClient;
  }
  auto peer = static_cast<ClientId>(ctx().rng().NextBelow(n - 1));
  if (peer >= client) {
    ++peer;
  }
  return peer;
}

}  // namespace coopfs
