#include "src/core/sweep.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>

#include "src/common/arena.h"
#include "src/common/completion_queue.h"

namespace coopfs {
namespace {

// One result slot per job, padded to its own cache line(s): adjacent jobs
// finish on different workers, and an unpadded vector would put several
// result headers on one line, bouncing it between cores on every store.
struct alignas(64) PaddedResultSlot {
  Result<SimulationResult> value{Status::Internal("job never ran")};
};

// Runs one job, drawing context storage from `arena` unless the job brought
// its own. The arena is reset first, so each job starts from an empty (but
// fully page-warmed, after the first job) allocation window.
Result<SimulationResult> RunOneJob(const Trace& trace, const SimulationJob& job,
                                   Arena* arena) {
  SimulationConfig config = job.config;
  if (config.arena == nullptr) {
    arena->Reset();
    config.arena = arena;
  }
  Simulator simulator(config, &trace);
  auto policy = MakePolicy(job.kind, job.params);
  return simulator.Run(*policy);
}

}  // namespace

std::vector<Result<SimulationResult>> RunSimulationsParallel(
    const Trace& trace, const std::vector<SimulationJob>& jobs, std::size_t threads,
    const SweepCallback& on_job_done) {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads == 0) {
    threads = hardware;
  }
  // Never oversubscribe: replay is CPU-bound, so threads beyond the core
  // count cannot add throughput — they only add context switches and, with
  // per-worker arenas, multiply the resident working set that timesliced
  // workers then thrash through one core's cache. Asking for 8 threads on a
  // 4-core host runs 4.
  threads = std::min({threads, jobs.size(), hardware});

  std::vector<Result<SimulationResult>> results(jobs.size(),
                                                Status::Internal("job never ran"));
  if (jobs.empty()) {
    return results;
  }
  if (threads <= 1) {
    Arena arena;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = RunOneJob(trace, jobs[i], &arena);
      if (on_job_done) {
        on_job_done(i, results[i]);
      }
    }
    return results;
  }

  std::vector<PaddedResultSlot> slots(jobs.size());
  // Sized to hold every job, so TryPush below can never find the ring full.
  CompletionQueue<std::size_t> completions(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};

  auto worker = [&] {
    Arena arena;
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) {
        return;
      }
      slots[index].value = RunOneJob(trace, jobs[index], &arena);
      // Publish before bumping `completed`: a drainer that observes the
      // count always finds the index already in the ring.
      const bool pushed = completions.TryPush(index);
      (void)pushed;
      assert(pushed && "completion ring sized to the job count");
      completed.fetch_add(1, std::memory_order_release);
      completed.notify_one();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }

  if (on_job_done) {
    // Drain on this thread, releasing callbacks in submission order as the
    // front of the job list completes. Workers never block here.
    std::vector<std::uint8_t> done(jobs.size(), 0);
    std::size_t delivered = 0;
    std::size_t popped = 0;
    while (delivered < jobs.size()) {
      std::size_t index;
      if (completions.TryPop(&index)) {
        ++popped;
        done[index] = 1;
        while (delivered < jobs.size() && done[delivered] != 0) {
          on_job_done(delivered, slots[delivered].value);
          ++delivered;
        }
        continue;
      }
      // Ring empty. If every completion so far has been popped, sleep until
      // a worker bumps the count; otherwise a push landed between our pop
      // and this check — just retry.
      const std::size_t seen = completed.load(std::memory_order_acquire);
      if (seen == popped) {
        completed.wait(seen, std::memory_order_acquire);
      }
    }
  }

  for (std::thread& thread : pool) {
    thread.join();
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results[i] = std::move(slots[i].value);
  }
  return results;
}

}  // namespace coopfs
