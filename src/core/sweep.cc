#include "src/core/sweep.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace coopfs {

std::vector<Result<SimulationResult>> RunSimulationsParallel(
    const Trace& trace, const std::vector<SimulationJob>& jobs, std::size_t threads,
    const SweepCallback& on_job_done) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, jobs.size());

  std::vector<Result<SimulationResult>> results(jobs.size(),
                                                Status::Internal("job never ran"));
  if (jobs.empty()) {
    return results;
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      Simulator simulator(jobs[i].config, &trace);
      auto policy = MakePolicy(jobs[i].kind, jobs[i].params);
      results[i] = simulator.Run(*policy);
      if (on_job_done) {
        on_job_done(i, results[i]);
      }
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex callback_mutex;
  auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) {
        return;
      }
      Simulator simulator(jobs[index].config, &trace);
      auto policy = MakePolicy(jobs[index].kind, jobs[index].params);
      results[index] = simulator.Run(*policy);
      if (on_job_done) {
        std::lock_guard<std::mutex> lock(callback_mutex);
        on_job_done(index, results[index]);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
  return results;
}

}  // namespace coopfs
