// Direct Client Cooperation (paper §2.1).
//
// An active client uses an idle peer's memory as private backing store for
// its own cache overflow, with no server involvement: blocks evicted from
// the local cache spill into the client's private remote cache, and local
// misses probe it (2 network hops) before asking the server. Other clients
// never benefit from one client's remote cache.
//
// Following the paper's optimistic evaluation assumption (§4.1), every
// client holds a *permanent* private remote cache (default: equal to its
// local cache, "effectively doubling" it); Figure 8 sweeps this size.
#ifndef COOPFS_SRC_CORE_DIRECT_COOP_H_
#define COOPFS_SRC_CORE_DIRECT_COOP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cache/block_cache.h"
#include "src/sim/policy.h"

namespace coopfs {

class DirectCoopPolicy : public PolicyBase {
 public:
  // `remote_cache_blocks` is each client's private remote cache capacity;
  // 0 means "equal to the local cache size" (the paper's default).
  explicit DirectCoopPolicy(std::size_t remote_cache_blocks = 0)
      : remote_cache_blocks_(remote_cache_blocks) {}

  // Per-client remote capacities (element c = client c's remote cache, in
  // blocks; clients beyond the vector get zero). Used for the paper's
  // §4.2.1 what-if: "only the most active 10% of clients are able to
  // recruit a cooperative cache".
  explicit DirectCoopPolicy(std::vector<std::size_t> per_client_remote_blocks)
      : remote_cache_blocks_(0), per_client_remote_blocks_(std::move(per_client_remote_blocks)) {}

  std::string Name() const override { return "Direct Cooperation"; }

  ReadOutcome Read(ClientId client, BlockId block) override;

 protected:
  void OnAttach() override;

  // Local evictions spill into the private remote cache instead of dying.
  void EvictForInsert(ClientId client) override;

  // Writes and deletes must invalidate private remote copies too.
  void OnInvalidateExtra(BlockId block, ClientId writer) override;

  // Reboot loses the client's recruitment state along with its memory; its
  // private remote cache must be re-recruited from scratch.
  void OnClientReboot(ClientId client) override;

 private:
  std::size_t remote_cache_blocks_;
  std::vector<std::size_t> per_client_remote_blocks_;
  std::vector<std::unique_ptr<BlockCache>> remote_caches_;
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_DIRECT_COOP_H_
