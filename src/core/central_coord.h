// Centrally Coordinated Caching (paper §2.3) and the unrealizable best case
// (paper §3).
//
// Each client's cache is statically split: a locally managed section
// (greedy, as in the baseline) and a globally managed section the server
// runs as an LRU extension of its own cache. Blocks the server evicts from
// its memory drop into the global distributed cache, replacing its LRU
// entry; a read satisfied from the global cache renews the entry. Reads go
// local section -> server memory -> global cache (server-forwarded, 3 hops)
// -> disk.
//
// The best case of §3 is the same machinery with each client's memory
// doubled: a full-size locally managed cache (private local hit rates) plus
// a full-size globally managed share (global hit rate of one big cache).
#ifndef COOPFS_SRC_CORE_CENTRAL_COORD_H_
#define COOPFS_SRC_CORE_CENTRAL_COORD_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/cache/lru_map.h"
#include "src/sim/policy.h"

namespace coopfs {

class CentralCoordPolicy : public PolicyBase {
 public:
  // `coordinated_fraction` of each client's cache is server-managed (paper
  // default: 0.8). Figure 9 sweeps it.
  explicit CentralCoordPolicy(double coordinated_fraction = 0.8)
      : coordinated_fraction_(coordinated_fraction) {}

  std::string Name() const override;

  std::size_t ClientCacheBlocks(const SimulationConfig& config) const override;

  ReadOutcome Read(ClientId client, BlockId block) override;

  double coordinated_fraction() const { return coordinated_fraction_; }

  // Introspection for tests: is `block` resident in the globally managed
  // distributed cache? Only valid between Attach and the next Attach.
  bool GlobalCacheContains(BlockId block) const {
    return global_cache_.has_value() && global_cache_->Contains(block.Pack());
  }

 protected:
  // Best-case constructor path (see BestCasePolicy).
  CentralCoordPolicy(double coordinated_fraction, bool best_case_doubling)
      : coordinated_fraction_(coordinated_fraction), best_case_doubling_(best_case_doubling) {}

  void OnAttach() override;

  // Server evictions feed the globally managed client memory.
  void OnServerEvict(BlockId block) override;

  // Writes/deletes invalidate the globally managed copy.
  void OnInvalidateExtra(BlockId block, ClientId writer) override;

  // A rebooting client loses the globally managed entries it hosts.
  void OnClientReboot(ClientId client) override;

  // Total capacity of the globally managed distributed cache, in blocks.
  std::size_t GlobalCacheBlocks(const SimulationConfig& config, std::uint32_t num_clients) const;

 private:
  // Host assignment for globally managed entries. Placement does not change
  // any reported metric (every remote client costs the same); round-robin
  // keeps the per-client distribution even, as the static partition would.
  ClientId NextHost();

  double coordinated_fraction_;
  bool best_case_doubling_ = false;
  std::optional<LruMap<std::uint64_t, ClientId>> global_cache_;
  std::uint32_t next_host_ = 0;
};

// The paper's unrealizable best case: global hit rate of a single unified
// cache with the local hit rates of fully private caches.
class BestCasePolicy : public CentralCoordPolicy {
 public:
  BestCasePolicy() : CentralCoordPolicy(1.0, /*best_case_doubling=*/true) {}

  std::string Name() const override { return "Best Case"; }
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_CENTRAL_COORD_H_
