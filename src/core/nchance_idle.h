// Idle-targeted N-Chance Forwarding — the enhancement the paper suggests in
// §2.4: "An enhancement to this algorithm might be to preferentially forward
// singlets to idle clients to avoid disturbing active clients. For this
// study, however, clients forward singlets uniformly randomly."
//
// This variant implements that enhancement: each client's last file-system
// activity time is tracked, and an evicted singlet is forwarded to the
// least-recently-active peer (idle machines accumulate global data; busy
// machines are left alone). The ext_idle_targeting bench compares it with
// the random-forwarding base algorithm.
#ifndef COOPFS_SRC_CORE_NCHANCE_IDLE_H_
#define COOPFS_SRC_CORE_NCHANCE_IDLE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/nchance.h"

namespace coopfs {

class NChanceIdleAwarePolicy : public NChancePolicy {
 public:
  explicit NChanceIdleAwarePolicy(int recirculation_count = 2)
      : NChancePolicy(recirculation_count) {}

  std::string Name() const override {
    return "N-Chance idle-aware (n=" + std::to_string(recirculation_count()) + ")";
  }

  ReadOutcome Read(ClientId client, BlockId block) override {
    NoteActivity(client);
    return NChancePolicy::Read(client, block);
  }

  void Write(ClientId client, BlockId block) override {
    NoteActivity(client);
    NChancePolicy::Write(client, block);
  }

 protected:
  void OnAttach() override {
    NChancePolicy::OnAttach();
    last_active_.assign(ctx().num_clients(), 0);
  }

  // Forward to a random peer from the least-recently-active quartile.
  // Always picking the single most idle client would funnel every singlet
  // into one cache and thrash it; sampling the idle quartile avoids active
  // clients (the §2.4 goal) while still spreading global data over many
  // idle memories the way random forwarding does.
  ClientId PickForwardTarget(ClientId client) override {
    peers_by_idleness_.clear();
    for (ClientId peer = 0; peer < ctx().num_clients(); ++peer) {
      if (peer != client) {
        peers_by_idleness_.push_back(peer);
      }
    }
    if (peers_by_idleness_.empty()) {
      return kNoClient;
    }
    const std::size_t quartile = std::max<std::size_t>(1, peers_by_idleness_.size() / 4);
    std::nth_element(peers_by_idleness_.begin(), peers_by_idleness_.begin() + (quartile - 1),
                     peers_by_idleness_.end(), [this](ClientId a, ClientId b) {
                       return last_active_[a] < last_active_[b];
                     });
    return peers_by_idleness_[ctx().rng().NextBelow(quartile)];
  }

 private:
  void NoteActivity(ClientId client) {
    if (client < last_active_.size()) {
      last_active_[client] = ctx().now();
    }
  }

  std::vector<Micros> last_active_;
  std::vector<ClientId> peers_by_idleness_;  // Scratch for target selection.
};

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_NCHANCE_IDLE_H_
