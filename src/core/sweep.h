// Parallel execution of independent simulations.
//
// Every figure in the paper is a sweep: the same trace replayed under many
// (configuration, policy) pairs, each run fully independent (the trace is
// shared read-only; each run builds its own SimContext). RunSimulationsParallel
// fans the runs out over a thread pool and returns results in input order.
// Determinism is unaffected: each run's result depends only on its own
// (config, policy), never on scheduling.
//
// Scaling design (see docs/performance.md): each worker owns a reusable
// Arena that every job's SimContext draws from, so steady-state sweeping
// performs no global-heap traffic and workers never contend on the
// allocator; per-job result slots are cache-line padded against false
// sharing; and completions flow through a bounded lock-free queue drained
// by the calling thread, which fires the callback in submission order —
// workers never serialize on a callback mutex.
#ifndef COOPFS_SRC_CORE_SWEEP_H_
#define COOPFS_SRC_CORE_SWEEP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"

namespace coopfs {

// One simulation job: a configuration and the policy to run under it.
struct SimulationJob {
  SimulationConfig config;
  PolicyKind kind = PolicyKind::kBaseline;
  PolicyParams params;
};

// Invoked once per job with its input index and result (which may carry an
// error Status). Invocations all happen on the calling thread, in submission
// (job-index) order — callbacks may print or mutate shared state without any
// locking. Job i's callback fires as soon as jobs 0..i have all completed,
// overlapping with still-running later jobs.
using SweepCallback = std::function<void(std::size_t job_index, const Result<SimulationResult>&)>;

// Runs all jobs against `trace` using up to `threads` worker threads
// (0 = hardware concurrency; requests beyond the core count or the job
// count are clamped — oversubscribing a CPU-bound replay only adds context
// switches and cache thrash). Results are returned in job order; a failed
// run carries its error Status. `on_job_done`, when set, fires once per job
// in job order (driver progress lines).
//
// Jobs whose config has no arena attached are run against a per-worker
// arena owned by the sweep; a caller-provided config.arena is used as-is
// (the caller must then ensure jobs sharing an arena never run concurrently).
std::vector<Result<SimulationResult>> RunSimulationsParallel(
    const Trace& trace, const std::vector<SimulationJob>& jobs, std::size_t threads = 0,
    const SweepCallback& on_job_done = nullptr);

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_SWEEP_H_
