// Parallel execution of independent simulations.
//
// Every figure in the paper is a sweep: the same trace replayed under many
// (configuration, policy) pairs, each run fully independent (the trace is
// shared read-only; each run builds its own SimContext). RunSimulationsParallel
// fans the runs out over a thread pool and returns results in input order.
// Determinism is unaffected: each run's result depends only on its own
// (config, policy), never on scheduling.
#ifndef COOPFS_SRC_CORE_SWEEP_H_
#define COOPFS_SRC_CORE_SWEEP_H_

#include <cstddef>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"

namespace coopfs {

// One simulation job: a configuration and the policy to run under it.
struct SimulationJob {
  SimulationConfig config;
  PolicyKind kind = PolicyKind::kBaseline;
  PolicyParams params;
};

// Runs all jobs against `trace` using up to `threads` worker threads
// (0 = hardware concurrency). Results are returned in job order; a failed
// run carries its error Status.
std::vector<Result<SimulationResult>> RunSimulationsParallel(const Trace& trace,
                                                             const std::vector<SimulationJob>& jobs,
                                                             std::size_t threads = 0);

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_SWEEP_H_
