// Parallel execution of independent simulations.
//
// Every figure in the paper is a sweep: the same trace replayed under many
// (configuration, policy) pairs, each run fully independent (the trace is
// shared read-only; each run builds its own SimContext). RunSimulationsParallel
// fans the runs out over a thread pool and returns results in input order.
// Determinism is unaffected: each run's result depends only on its own
// (config, policy), never on scheduling.
#ifndef COOPFS_SRC_CORE_SWEEP_H_
#define COOPFS_SRC_CORE_SWEEP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"

namespace coopfs {

// One simulation job: a configuration and the policy to run under it.
struct SimulationJob {
  SimulationConfig config;
  PolicyKind kind = PolicyKind::kBaseline;
  PolicyParams params;
};

// Invoked once per completed job with its input index and result (which may
// carry an error Status). Invocations are serialized under an internal mutex
// — callbacks may print or mutate shared state without further locking —
// but arrive in completion order, not job order.
using SweepCallback = std::function<void(std::size_t job_index, const Result<SimulationResult>&)>;

// Runs all jobs against `trace` using up to `threads` worker threads
// (0 = hardware concurrency). Results are returned in job order; a failed
// run carries its error Status. `on_job_done`, when set, fires after each
// job finishes (driver progress lines).
std::vector<Result<SimulationResult>> RunSimulationsParallel(
    const Trace& trace, const std::vector<SimulationJob>& jobs, std::size_t threads = 0,
    const SweepCallback& on_job_done = nullptr);

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_SWEEP_H_
