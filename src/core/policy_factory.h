// Construction of policies by kind, shared by benches, examples, and tests.
#ifndef COOPFS_SRC_CORE_POLICY_FACTORY_H_
#define COOPFS_SRC_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/policy.h"

namespace coopfs {

enum class PolicyKind {
  kBaseline,
  kDirectCoop,
  kGreedy,
  kCentralCoord,
  kNChance,
  kNChanceIdle,  // Extension: §2.4's suggested idle-targeted forwarding.
  kHashDistributed,
  kWeightedLru,
  kBestCase,
};

// Tunables for the parameterized policies; defaults are the paper's (§4.1).
struct PolicyParams {
  int nchance_recirculation = 2;        // N-Chance n.
  double coordinated_fraction = 0.8;    // Central / Hash-Distributed split.
  std::size_t direct_remote_blocks = 0;  // 0 = equal to the local cache.
  std::size_t weighted_window = 16;     // Weighted-LRU decision window.
};

std::unique_ptr<Policy> MakePolicy(PolicyKind kind, const PolicyParams& params = {});

// Parses names like "baseline", "nchance", "central" (used by CLI tools).
Result<PolicyKind> ParsePolicyKind(const std::string& name);

// The four algorithms of the paper's main comparison plus baseline and best
// case, in Figure 4's left-to-right order.
std::vector<PolicyKind> Figure4PolicyKinds();

// Every implemented policy kind.
std::vector<PolicyKind> AllPolicyKinds();

const char* PolicyKindName(PolicyKind kind);

}  // namespace coopfs

#endif  // COOPFS_SRC_CORE_POLICY_FACTORY_H_
