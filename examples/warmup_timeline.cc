// Timeline example: watch cache warm-up and steady-state behaviour over
// simulated time using SimulationConfig::timeline_interval.
//
// Prints hour-by-hour average read latency and disk rate for the baseline
// and N-Chance over a two-day Sprite-like trace — the picture behind the
// paper's decision to discard the first 400k accesses as warm-up (§3).
//
// Usage: warmup_timeline [--events N] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/format.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

namespace {

std::uint64_t FlagValue(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coopfs;

  WorkloadConfig workload = SpriteWorkloadConfig(FlagValue(argc, argv, "--seed", 42));
  workload.num_events = FlagValue(argc, argv, "--events", 300'000);
  std::printf("Generating %llu events over %s...\n\n",
              static_cast<unsigned long long>(workload.num_events),
              FormatMicros(static_cast<double>(workload.duration)).c_str());
  const Trace trace = GenerateWorkload(workload);

  SimulationConfig config;
  config.warmup_events = 0;  // We want to *see* the warm-up.
  config.timeline_interval = 4LL * 3600 * 1'000'000;  // 4-hour buckets.

  Simulator simulator(config, &trace);
  auto baseline = MakePolicy(PolicyKind::kBaseline);
  auto nchance = MakePolicy(PolicyKind::kNChance);
  const Result<SimulationResult> base = simulator.Run(*baseline);
  const Result<SimulationResult> coop = simulator.Run(*nchance);
  if (!base.ok() || !coop.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }

  TableFormatter table({"Sim. time", "Base avg", "Base disk", "N-Chance avg", "N-Chance disk",
                        "Speedup"});
  const std::size_t points = std::min(base->timeline.size(), coop->timeline.size());
  for (std::size_t i = 0; i < points; ++i) {
    const auto& b = base->timeline[i];
    const auto& n = coop->timeline[i];
    table.AddRow({FormatMicros(static_cast<double>(b.end_time)),
                  FormatDouble(b.avg_read_time_us, 0) + " us", FormatPercent(b.disk_rate),
                  FormatDouble(n.avg_read_time_us, 0) + " us", FormatPercent(n.disk_rate),
                  FormatDouble(b.avg_read_time_us / n.avg_read_time_us, 2) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Note the cold start: both start disk-bound; the cooperative advantage only\n"
              "emerges once client caches fill — which is why the paper (and the fig*\n"
              "benches here) discard the warm-up portion of the trace before measuring.\n");
  return 0;
}
