// Workload calibration harness.
//
// The synthetic Sprite-like generator substitutes for the paper's traces
// (DESIGN.md §3); its credibility rests on hitting the paper's measured
// calibration targets under the §4.1 configuration. This tool prints every
// target next to the generator's current value, so anyone re-tuning the
// generator (different seed, different community size, their own
// environment) can see at a glance what they preserved and what they broke.
//
// Usage: calibrate_workload [--events N] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/format.h"
#include "src/core/policy_factory.h"
#include "src/core/sweep.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_stats.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace {

std::uint64_t FlagValue(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coopfs;

  WorkloadConfig workload = SpriteWorkloadConfig(FlagValue(argc, argv, "--seed", 42));
  workload.num_events = FlagValue(argc, argv, "--events", 700'000);
  std::printf("Generating %llu events...\n",
              static_cast<unsigned long long>(workload.num_events));
  const Trace trace = GenerateWorkload(workload);
  const TraceStats stats = ComputeTraceStats(trace);

  SimulationConfig config;
  config.warmup_events = SpriteWarmupEvents(workload.num_events);

  std::vector<SimulationJob> jobs;
  for (PolicyKind kind :
       {PolicyKind::kBaseline, PolicyKind::kGreedy, PolicyKind::kCentralCoord,
        PolicyKind::kNChance, PolicyKind::kBestCase, PolicyKind::kDirectCoop}) {
    SimulationJob job;
    job.config = config;
    job.kind = kind;
    jobs.push_back(job);
  }
  const auto results = RunSimulationsParallel(trace, jobs);
  for (const auto& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
  }
  const SimulationResult& base = *results[0];
  const SimulationResult& greedy = *results[1];
  const SimulationResult& central = *results[2];
  const SimulationResult& nchance = *results[3];
  const SimulationResult& best = *results[4];
  const SimulationResult& direct = *results[5];

  const auto check = [](double measured, double lo, double hi) {
    return measured >= lo && measured <= hi ? "ok" : "OFF TARGET";
  };

  TableFormatter table({"Calibration target (paper value)", "Target band", "Measured", ""});
  const double base_local = base.LevelFraction(CacheLevel::kLocalMemory);
  table.AddRow({"Baseline local hit rate (78%)", "74-81%", FormatPercent(base_local),
                check(base_local, 0.74, 0.81)});
  table.AddRow({"Baseline disk rate (15.7%)", "13-19%", FormatPercent(base.DiskRate()),
                check(base.DiskRate(), 0.13, 0.19)});
  const double central_miss = central.LocalMissRate();
  table.AddRow({"Central local miss rate (36%)", "30-46%", FormatPercent(central_miss),
                check(central_miss, 0.30, 0.46)});
  const double nchance_miss_delta = nchance.LocalMissRate() - base.LocalMissRate();
  table.AddRow({"N-Chance extra local misses (+1 pt)", "0-3 pts",
                FormatPercent(nchance_miss_delta), check(nchance_miss_delta, -0.001, 0.03)});
  const double disk_cut = central.DiskRate() / base.DiskRate();
  table.AddRow({"Coordinated disk rate / baseline (48%)", "40-65%", FormatPercent(disk_cut),
                check(disk_cut, 0.40, 0.65)});
  table.AddRow({"Direct speedup (1.05x)", "1.00-1.10x",
                FormatDouble(direct.SpeedupOver(base), 2) + "x",
                check(direct.SpeedupOver(base), 1.00, 1.10)});
  table.AddRow({"Greedy speedup (1.22x)", "1.10-1.35x",
                FormatDouble(greedy.SpeedupOver(base), 2) + "x",
                check(greedy.SpeedupOver(base), 1.10, 1.35)});
  table.AddRow({"Central speedup (1.64x)", "1.40-1.80x",
                FormatDouble(central.SpeedupOver(base), 2) + "x",
                check(central.SpeedupOver(base), 1.40, 1.80)});
  table.AddRow({"N-Chance speedup (1.73x)", "1.45-1.90x",
                FormatDouble(nchance.SpeedupOver(base), 2) + "x",
                check(nchance.SpeedupOver(base), 1.45, 1.90)});
  const double gap = nchance.AverageReadTime() / best.AverageReadTime();
  table.AddRow({"N-Chance / best-case time (<1.10)", "1.00-1.10",
                FormatDouble(gap, 3), check(gap, 1.0, 1.10)});
  const double footprint_gb =
      static_cast<double>(stats.FootprintBytes()) / (1024.0 * 1024.0 * 1024.0);
  table.AddRow({"Unique footprint vs 672 MB aggregate", "0.4-0.9 GB",
                FormatDouble(footprint_gb, 2) + " GB", check(footprint_gb, 0.4, 0.9)});
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("All targets derive from the paper's §4.1 measurements; see DESIGN.md §3 for\n"
              "why these are the properties the conclusions depend on.\n");
  return 0;
}
