// Capacity planning: a what-if tool a storage administrator could use.
//
// Given a workload, compare three upgrade paths for read performance:
//   (a) buy more client memory (bigger local caches),
//   (b) buy more server memory (bigger central cache),
//   (c) deploy cooperative caching (N-Chance) on existing hardware.
// The paper's §4.5 argues (c) beats (b) at equal cost; this example lets
// you check that for a workload you model.
//
// Usage: capacity_planning [--events N] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/format.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace {

std::uint64_t FlagValue(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coopfs;

  WorkloadConfig workload = SpriteWorkloadConfig(FlagValue(argc, argv, "--seed", 42));
  workload.num_events = FlagValue(argc, argv, "--events", 300'000);
  std::printf("Generating workload (%llu events, %u clients)...\n\n",
              static_cast<unsigned long long>(workload.num_events), workload.num_clients);
  const Trace trace = GenerateWorkload(workload);

  const auto run = [&trace](std::size_t client_mib, std::size_t server_mib, PolicyKind kind) {
    SimulationConfig config;
    config.WithClientCacheMiB(client_mib).WithServerCacheMiB(server_mib);
    config.warmup_events = SpriteWarmupEvents(trace.size());
    Simulator simulator(config, &trace);
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return *std::move(result);
  };

  const std::uint32_t clients = workload.num_clients;
  const SimulationResult today = run(16, 128, PolicyKind::kBaseline);

  TableFormatter table({"Upgrade path", "Added RAM", "Avg read", "Speedup", "Disk rate"});
  const auto row = [&](const char* name, std::size_t added_mib, const SimulationResult& result) {
    table.AddRow({name, FormatBytes(MiB(added_mib)), FormatDouble(result.AverageReadTime(), 0) +
                  " us", FormatDouble(result.SpeedupOver(today), 2) + "x",
                  FormatPercent(result.DiskRate())});
  };

  row("Today: 16 MB clients + 128 MB server, no coop", 0, today);
  row("(a) double client memory (32 MB each)", 16 * clients,
      run(32, 128, PolicyKind::kBaseline));
  row("(b) grow server cache by the same total RAM", 16 * clients,
      run(16, 128 + 16 * clients, PolicyKind::kBaseline));
  row("(c) cooperative caching, zero new RAM", 0, run(16, 128, PolicyKind::kNChance));
  row("(c+) coop caching AND double client memory", 16 * clients,
      run(32, 128, PolicyKind::kNChance));
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Interpretation: if (c) rivals (a)/(b), cooperative caching delivers the\n"
              "upgrade without buying RAM; (c+) shows the two combine.\n");
  return 0;
}
