// Compares every implemented cooperative caching algorithm on a Sprite-like
// workload, reproducing the shape of the paper's Figures 4-6 in one table.
//
// Usage: algorithm_comparison [--events N] [--clients N] [--seed S]
//                             [--client-mb MB] [--server-mb MB]
//                             [--json PATH] [--trace-events PATH]
//                             [--trace-perfetto PATH] [--timeseries PATH]
//                             [--sample-interval US] [--profile PATH]
//
// --json also exports the runs as a coopfs.metrics/v1 document (see
// docs/metrics_schema.md) for machine consumption. --trace-events records
// every replayed event and writes a coopfs.events/v1 JSONL document (one
// run per algorithm; see docs/observability.md) for `coopfs_inspect`;
// --trace-perfetto writes the same runs as Chrome trace_event JSON for
// ui.perfetto.dev. --timeseries samples simulation state every
// --sample-interval simulated microseconds (default 1 simulated hour) into
// a coopfs.timeseries/v1 JSONL document, and --profile times the run
// itself into a coopfs.profile/v1 document.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/format.h"
#include "src/common/profiler.h"
#include "src/core/policy_factory.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_stats.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace {

std::uint64_t FlagValue(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return argv[i + 1];
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coopfs;

  WorkloadConfig workload = SpriteWorkloadConfig(FlagValue(argc, argv, "--seed", 42));
  workload.num_events = FlagValue(argc, argv, "--events", 700'000);
  workload.num_clients =
      static_cast<std::uint32_t>(FlagValue(argc, argv, "--clients", workload.num_clients));

  std::printf("Generating %llu events for %u clients...\n",
              static_cast<unsigned long long>(workload.num_events), workload.num_clients);
  const Trace trace = GenerateWorkload(workload);
  std::printf("%s\n", ComputeTraceStats(trace).ToString().c_str());

  SimulationConfig config;
  config.WithClientCacheMiB(FlagValue(argc, argv, "--client-mb", 16));
  config.WithServerCacheMiB(FlagValue(argc, argv, "--server-mb", 128));
  config.warmup_events = SpriteWarmupEvents(workload.num_events);  // Paper: 400k of 700k.

  const std::string trace_events_out = StringFlag(argc, argv, "--trace-events");
  const std::string trace_perfetto_out = StringFlag(argc, argv, "--trace-perfetto");
  TraceRecorder recorder;
  if (!trace_events_out.empty() || !trace_perfetto_out.empty()) {
    config.trace_recorder = &recorder;
  }

  const std::string timeseries_out = StringFlag(argc, argv, "--timeseries");
  SnapshotSampler sampler;
  if (!timeseries_out.empty()) {
    config.snapshot_sampler = &sampler;
    config.sample_interval = static_cast<Micros>(
        FlagValue(argc, argv, "--sample-interval", 3'600'000'000));  // 1 sim. hour.
  }

  const std::string profile_out = StringFlag(argc, argv, "--profile");
  if (!profile_out.empty()) {
    Profiler::Enable(true);
  }

  Simulator simulator(config, &trace);

  std::vector<SimulationResult> results;
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    Result<SimulationResult> result = simulator.Run(*policy);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", PolicyKindName(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*std::move(result));
  }

  const SimulationResult& base = results.front();
  TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local", "Remote", "ServerMem",
                        "Disk", "Rel. load"});
  for (const SimulationResult& r : results) {
    table.AddRow({r.policy_name, FormatMicros(r.AverageReadTime()),
                  FormatDouble(r.SpeedupOver(base), 2) + "x",
                  FormatPercent(r.LevelFraction(CacheLevel::kLocalMemory)),
                  FormatPercent(r.LevelFraction(CacheLevel::kRemoteClient)),
                  FormatPercent(r.LevelFraction(CacheLevel::kServerMemory)),
                  FormatPercent(r.DiskRate()),
                  FormatPercent(r.RelativeServerLoad(base), 0)});
  }
  std::printf("%s", table.ToString().c_str());

  if (const std::string json_out = StringFlag(argc, argv, "--json"); !json_out.empty()) {
    MetricsExporter exporter;
    exporter.SetConfig(config);
    for (const SimulationResult& r : results) {
      exporter.AddResult(r);
    }
    if (Status status = exporter.WriteFile(json_out); !status.ok()) {
      std::fprintf(stderr, "metrics export to %s failed: %s\n", json_out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics document: %s (%zu results)\n", json_out.c_str(), results.size());
  }

  if (config.trace_recorder != nullptr) {
    TraceExportMetadata metadata;
    metadata.seed = workload.seed;
    metadata.trace_events = workload.num_events;
    metadata.workload = "sprite";
    if (!trace_events_out.empty()) {
      if (Status status = WriteEventsJsonl(recorder.runs(), metadata, trace_events_out);
          !status.ok()) {
        std::fprintf(stderr, "event trace export to %s failed: %s\n", trace_events_out.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("wrote event trace: %s (%zu runs)\n", trace_events_out.c_str(),
                  recorder.runs().size());
    }
    if (!trace_perfetto_out.empty()) {
      if (Status status = WritePerfettoTrace(recorder.runs(), trace_perfetto_out);
          !status.ok()) {
        std::fprintf(stderr, "perfetto trace export to %s failed: %s\n",
                     trace_perfetto_out.c_str(), status.ToString().c_str());
        return 1;
      }
      std::printf("wrote perfetto trace: %s (open at ui.perfetto.dev)\n",
                  trace_perfetto_out.c_str());
    }
  }

  if (!timeseries_out.empty()) {
    TraceExportMetadata metadata;
    metadata.seed = workload.seed;
    metadata.trace_events = workload.num_events;
    metadata.workload = "sprite";
    if (Status status = WriteTimeseriesJsonl(sampler.runs(), metadata, timeseries_out);
        !status.ok()) {
      std::fprintf(stderr, "timeseries export to %s failed: %s\n", timeseries_out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote timeseries: %s (%zu runs)\n", timeseries_out.c_str(),
                sampler.runs().size());
  }

  if (!profile_out.empty()) {
    if (Status status = Profiler::WriteFile(profile_out); !status.ok()) {
      std::fprintf(stderr, "profile export to %s failed: %s\n", profile_out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote profile: %s\n\n%s", profile_out.c_str(),
                Profiler::SelfTimeTable(20).c_str());
  }
  return 0;
}
