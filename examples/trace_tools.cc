// Trace tooling: generate, inspect, convert, and simulate trace files.
//
// Subcommands:
//   trace_tools generate <sprite|auspex|small|leff> <out-file> [seed [events]]
//       Generate a synthetic workload and write it (binary format).
//   trace_tools stats <trace-file>
//       Print summary statistics for a trace (text or binary).
//   trace_tools convert <in-file> <out-file> <text|binary>
//       Re-encode a trace.
//   trace_tools simulate <trace-file> <policy> [client-mb [server-mb]]
//       Replay a trace under one policy (baseline|direct|greedy|central|
//       nchance|nchance-idle|hash|weighted|best) and print the results.
//   trace_tools filter <in> <out> clients <id,id,...>
//   trace_tools filter <in> <out> time <begin-us> <end-us>
//   trace_tools filter <in> <out> head <count>
//       Extract a sub-trace (client ids are re-numbered densely).
//   trace_tools merge <in-a> <in-b> <out> [client-offset]
//       Splice two traces on the time axis.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/format.h"
#include "src/core/policy_factory.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trace/trace_transform.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace {

using namespace coopfs;

int Usage() {
  std::fprintf(stderr,
               "usage: trace_tools generate <sprite|auspex|small|leff> <out> [seed [events]]\n"
               "       trace_tools stats <trace>\n"
               "       trace_tools convert <in> <out> <text|binary>\n"
               "       trace_tools simulate <trace> <policy> [client-mb [server-mb]]\n"
               "       trace_tools filter <in> <out> clients <id,id,...>\n"
               "       trace_tools filter <in> <out> time <begin-us> <end-us>\n"
               "       trace_tools filter <in> <out> head <count>\n"
               "       trace_tools merge <in-a> <in-b> <out> [client-offset]\n");
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  const std::string kind = argv[2];
  const std::string out = argv[3];
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  const std::uint64_t events = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 0;

  Trace trace;
  if (kind == "leff") {
    LeffWorkloadConfig config;
    config.seed = seed;
    if (events > 0) {
      config.num_events = events;
    }
    trace = GenerateLeffWorkload(config);
  } else {
    WorkloadConfig config;
    if (kind == "sprite") {
      config = SpriteWorkloadConfig(seed);
    } else if (kind == "auspex") {
      config = AuspexWorkloadConfig(seed);
    } else if (kind == "small") {
      config = SmallTestWorkloadConfig(seed);
    } else {
      return Usage();
    }
    if (events > 0) {
      config.num_events = events;
    }
    trace = GenerateWorkload(config);
  }
  const Status status = WriteTraceBinaryFile(trace, out);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", trace.size(), out.c_str());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  Result<Trace> trace = ReadTraceFile(argv[2]);
  if (!trace.ok()) {
    std::fprintf(stderr, "read failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", ComputeTraceStats(*trace).ToString().c_str());
  return 0;
}

int Convert(int argc, char** argv) {
  if (argc < 5) {
    return Usage();
  }
  Result<Trace> trace = ReadTraceFile(argv[2]);
  if (!trace.ok()) {
    std::fprintf(stderr, "read failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const std::string format = argv[4];
  const Status status = format == "text"   ? WriteTraceTextFile(*trace, argv[3])
                        : format == "binary" ? WriteTraceBinaryFile(*trace, argv[3])
                                             : Status::InvalidArgument("format: " + format);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("converted %zu events to %s (%s)\n", trace->size(), argv[3], format.c_str());
  return 0;
}

int Simulate(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  Result<Trace> trace = ReadTraceFile(argv[2]);
  if (!trace.ok()) {
    std::fprintf(stderr, "read failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const Result<PolicyKind> kind = ParsePolicyKind(argv[3]);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  SimulationConfig config;
  config.WithClientCacheMiB(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 16);
  config.WithServerCacheMiB(argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 128);
  config.warmup_events = SpriteWarmupEvents(trace->size());

  Simulator simulator(config, &*trace);
  auto policy = MakePolicy(*kind);
  Result<SimulationResult> result = simulator.Run(*policy);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString().c_str());
  std::printf("average read time: %s\n", FormatMicros(result->AverageReadTime()).c_str());
  std::printf("server load: %llu units\n",
              static_cast<unsigned long long>(result->server_load.TotalUnits()));
  return 0;
}

int Filter(int argc, char** argv) {
  if (argc < 6) {
    return Usage();
  }
  Result<Trace> trace = ReadTraceFile(argv[2]);
  if (!trace.ok()) {
    std::fprintf(stderr, "read failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  const std::string mode = argv[4];
  Trace filtered;
  if (mode == "clients") {
    std::vector<ClientId> clients;
    std::string list = argv[5];
    for (std::size_t pos = 0; pos < list.size();) {
      const std::size_t comma = list.find(',', pos);
      clients.push_back(
          static_cast<ClientId>(std::strtoul(list.substr(pos, comma - pos).c_str(), nullptr, 10)));
      if (comma == std::string::npos) {
        break;
      }
      pos = comma + 1;
    }
    filtered = FilterTraceToClients(*trace, clients);
  } else if (mode == "time") {
    if (argc < 7) {
      return Usage();
    }
    filtered = SliceTraceByTime(*trace, std::strtoll(argv[5], nullptr, 10),
                                std::strtoll(argv[6], nullptr, 10));
  } else if (mode == "head") {
    filtered = TraceHead(*trace, std::strtoull(argv[5], nullptr, 10));
  } else {
    return Usage();
  }
  filtered = CompactClientIds(filtered);
  const Status status = WriteTraceBinaryFile(filtered, argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("kept %zu of %zu events -> %s\n", filtered.size(), trace->size(), argv[3]);
  return 0;
}

int Merge(int argc, char** argv) {
  if (argc < 5) {
    return Usage();
  }
  Result<Trace> a = ReadTraceFile(argv[2]);
  Result<Trace> b = ReadTraceFile(argv[3]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  const auto offset =
      argc > 5 ? static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10)) : 0u;
  const Trace merged = MergeTraces(*a, *b, offset);
  const Status status = WriteTraceBinaryFile(merged, argv[4]);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("merged %zu + %zu events -> %s\n", a->size(), b->size(), argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "generate") {
    return Generate(argc, argv);
  }
  if (command == "stats") {
    return Stats(argc, argv);
  }
  if (command == "convert") {
    return Convert(argc, argv);
  }
  if (command == "simulate") {
    return Simulate(argc, argv);
  }
  if (command == "filter") {
    return Filter(argc, argv);
  }
  if (command == "merge") {
    return Merge(argc, argv);
  }
  return Usage();
}
