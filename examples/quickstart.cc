// Quickstart: generate a small workload, simulate N-Chance Forwarding
// against the no-cooperation baseline, and print the comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "src/common/format.h"
#include "src/core/nchance.h"
#include "src/core/baseline.h"
#include "src/sim/simulator.h"
#include "src/trace/workload.h"

int main() {
  using namespace coopfs;

  // 1. A workload: 6 clients, 20k block accesses, with sharing and skew.
  //    (Real uses would load a trace file via ReadTraceFile instead.)
  const Trace trace = GenerateWorkload(SmallTestWorkloadConfig(/*seed=*/7));

  // 2. A configuration: small caches so the trace stresses them.
  SimulationConfig config;
  config.client_cache_blocks = 128;  // 1 MB per client.
  config.server_cache_blocks = 512;  // 4 MB at the server.
  config.warmup_events = 5'000;

  // 3. Simulate the baseline and N-Chance Forwarding over the same trace.
  Simulator simulator(config, &trace);

  BaselinePolicy baseline;
  const Result<SimulationResult> base = simulator.Run(baseline);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n", base.status().ToString().c_str());
    return 1;
  }

  NChancePolicy nchance(/*recirculation_count=*/2);
  const Result<SimulationResult> coop = simulator.Run(nchance);
  if (!coop.ok()) {
    std::fprintf(stderr, "n-chance failed: %s\n", coop.status().ToString().c_str());
    return 1;
  }

  // 4. Report.
  TableFormatter table({"Metric", "Baseline", "N-Chance"});
  table.AddRow({"Avg read time", FormatMicros(base->AverageReadTime()),
                FormatMicros(coop->AverageReadTime())});
  table.AddRow({"Local hit rate", FormatPercent(base->LevelFraction(CacheLevel::kLocalMemory)),
                FormatPercent(coop->LevelFraction(CacheLevel::kLocalMemory))});
  table.AddRow({"Remote client hits",
                FormatPercent(base->LevelFraction(CacheLevel::kRemoteClient)),
                FormatPercent(coop->LevelFraction(CacheLevel::kRemoteClient))});
  table.AddRow({"Server memory hits",
                FormatPercent(base->LevelFraction(CacheLevel::kServerMemory)),
                FormatPercent(coop->LevelFraction(CacheLevel::kServerMemory))});
  table.AddRow({"Disk access rate", FormatPercent(base->DiskRate()),
                FormatPercent(coop->DiskRate())});
  table.AddRow({"p50 read latency", FormatMicros(base->latency_histogram.Quantile(0.5)),
                FormatMicros(coop->latency_histogram.Quantile(0.5))});
  table.AddRow({"p99 read latency", FormatMicros(base->latency_histogram.Quantile(0.99)),
                FormatMicros(coop->latency_histogram.Quantile(0.99))});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("N-Chance speedup over baseline: %sx\n",
              FormatDouble(coop->SpeedupOver(*base), 2).c_str());
  return 0;
}
