// State-timeline example: sample live simulation state over simulated time
// with SnapshotSampler (coopfs.timeseries/v1).
//
// Where warmup_timeline watches only per-bucket read latency, this example
// attaches the full sampler to an N-Chance run and prints the state the
// aggregates average away: client-cache occupancy climbing, the
// singlet/duplicate split the algorithm manages (§2.4), and per-window
// forwarding activity. With --out PATH the samples are also written as a
// validated coopfs.timeseries/v1 JSONL document for plotting or
// `coopfs_inspect timeline`.
//
// Usage: state_timeline [--events N] [--seed S] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/format.h"
#include "src/core/policy_factory.h"
#include "src/obs/snapshot_sampler.h"
#include "src/sim/simulator.h"
#include "src/trace/warmup.h"
#include "src/trace/workload.h"

namespace {

std::uint64_t FlagValue(int argc, char** argv, const char* name, std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

const char* StringFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coopfs;

  const std::uint64_t seed = FlagValue(argc, argv, "--seed", 42);
  WorkloadConfig workload = SpriteWorkloadConfig(seed);
  workload.num_events = FlagValue(argc, argv, "--events", 300'000);
  std::printf("Generating %llu events over %s...\n\n",
              static_cast<unsigned long long>(workload.num_events),
              FormatMicros(static_cast<double>(workload.duration)).c_str());
  const Trace trace = GenerateWorkload(workload);

  SnapshotSampler sampler;
  SimulationConfig config;
  config.warmup_events = SpriteWarmupEvents(workload.num_events);
  config.snapshot_sampler = &sampler;
  config.sample_interval = 4LL * 3600 * 1'000'000;  // 4 simulated hours.

  Simulator simulator(config, &trace);
  auto nchance = MakePolicy(PolicyKind::kNChance);
  const Result<SimulationResult> result = simulator.Run(*nchance);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TableFormatter table({"Sim. time", "Trigger", "Reads", "Avg read", "Client occ.", "Duplicates",
                        "Forwards"});
  for (const SnapshotRun& run : sampler.runs()) {
    for (const StateSample& sample : run.samples) {
      const std::uint64_t counted = sample.CountedReads();
      const double occupancy =
          sample.state.client_blocks_capacity == 0
              ? 0.0
              : static_cast<double>(sample.state.client_blocks_used) /
                    static_cast<double>(sample.state.client_blocks_capacity);
      const double duplicates =
          sample.state.directory_blocks == 0
              ? 0.0
              : static_cast<double>(sample.state.duplicate_blocks) /
                    static_cast<double>(sample.state.directory_blocks);
      std::uint64_t forwards = 0;
      for (const ClientWindowStats& client : sample.clients) {
        forwards += client.benefited;
      }
      table.AddRow({FormatMicros(static_cast<double>(sample.time)),
                    SampleTriggerName(sample.trigger),
                    std::to_string(sample.window_reads),
                    counted == 0 ? "-" : FormatDouble(sample.CountedTimeUs() /
                                                          static_cast<double>(counted), 0) + " us",
                    FormatPercent(occupancy), FormatPercent(duplicates),
                    std::to_string(forwards)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Zero-read windows appear explicitly (overnight gaps in the diurnal\n"
              "workload); 'Avg read' covers counted (post-warm-up) reads only, so early\n"
              "windows show '-' while the caches fill.\n");

  if (const char* out = StringFlag(argc, argv, "--out"); out != nullptr) {
    TraceExportMetadata metadata;
    metadata.seed = seed;
    metadata.trace_events = workload.num_events;
    metadata.workload = "sprite";
    if (Status status = WriteTimeseriesJsonl(sampler.runs(), metadata, out); !status.ok()) {
      std::fprintf(stderr, "timeseries export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s -- try: coopfs_inspect timeline %s\n", out, out);
  }
  return 0;
}
