// Offline analysis of coopfs observability documents: "coopfs.events/v1"
// event traces, "coopfs.timeseries/v1" state samples, and
// "coopfs.profile/v1" simulator self-profiles.
//
// Consumes the JSONL documents written by --trace-events / --timeseries /
// --profile (bench binaries, examples/algorithm_comparison) and answers the
// questions the aggregate metrics document cannot: which blocks are hot, who
// forwards to whom, how deep N-Chance recirculation chains run, why a
// particular block missed, how cache state evolved over simulated time, and
// where the simulator spent its own wall clock.
//
// Usage: coopfs_inspect <command> [options] <input>
//   summary                       per-run overview (default command)
//   latency                       per-level latency histograms per run
//   hot-blocks [--top N]          most-read blocks with hit-level breakdown
//   forwards                      per-client forwarding matrix (who served whom)
//   recirc                        N-Chance recirculation-depth distribution
//   block <fF:bB>                 chronological post-mortem for one block
//   export-perfetto <out.json>    convert to Chrome trace_event JSON
//   timeline                      render a coopfs.timeseries/v1 document
//   profile                       render a coopfs.profile/v1 document
//   manifest                      render a coopfs.run/v1 run manifest and
//                                 cross-check that its export files exist
// Options:
//   --run N        restrict to run index N (default: all runs)
//   --top N        hot-blocks list length (default 20)
// Unknown commands, unreadable inputs, and documents that fail validation
// all exit nonzero. See docs/observability.md for the schemas.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/format.h"
#include "src/common/json.h"
#include "src/common/profiler.h"
#include "src/common/stats.h"
#include "src/obs/run_manifest.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"

namespace coopfs {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "coopfs_inspect: %s\n", message.c_str());
  std::exit(1);
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: coopfs_inspect <command> [options] <input>\n"
               "commands (on coopfs.events/v1 documents):\n"
               "  summary                     per-run overview (default)\n"
               "  latency                     per-level latency histograms\n"
               "  hot-blocks [--top N]        most-read blocks\n"
               "  forwards                    per-client forwarding matrix\n"
               "  recirc                      recirculation-depth distribution\n"
               "  block <fF:bB>               post-mortem for one block\n"
               "  export-perfetto <out.json>  convert to Chrome trace_event JSON\n"
               "commands (on other documents):\n"
               "  timeline                    render coopfs.timeseries/v1 samples\n"
               "  profile                     render a coopfs.profile/v1 span tree\n"
               "  manifest                    render a coopfs.run/v1 manifest and\n"
               "                              cross-check its export files\n"
               "options: --run N (restrict to one run index)\n");
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Die("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    Die("error reading " + path);
  }
  return std::move(buffer).str();
}

// Parses "f12:b3" (the BlockId::ToString form); also accepts "12:3".
bool ParseBlockRef(const std::string& text, BlockId& out) {
  const char* cursor = text.c_str();
  if (*cursor == 'f') {
    ++cursor;
  }
  char* end = nullptr;
  const unsigned long long file = std::strtoull(cursor, &end, 10);
  if (end == cursor || *end != ':') {
    return false;
  }
  cursor = end + 1;
  if (*cursor == 'b') {
    ++cursor;
  }
  const unsigned long long block = std::strtoull(cursor, &end, 10);
  if (end == cursor || *end != '\0') {
    return false;
  }
  out = BlockId{static_cast<FileId>(file), static_cast<BlockIndex>(block)};
  return true;
}

std::string RunLabel(const EventsDocument& document, std::size_t run_index) {
  const TraceRun& run = document.runs[run_index];
  return "run " + std::to_string(run_index) + " (" + run.policy + ", " +
         std::to_string(run.num_clients) + " clients)";
}

std::uint64_t CountOps(const TraceRun& run, TraceOpKind kind) {
  std::uint64_t count = 0;
  for (const OpRecord& op : run.ops) {
    count += op.kind == kind ? 1 : 0;
  }
  return count;
}

// ---- summary ----

void CommandSummary(const EventsDocument& document, const std::vector<std::size_t>& run_indices) {
  TableFormatter table({"Run", "Policy", "Reads", "Counted", "Avg lat", "Local", "Remote",
                        "ServerMem", "Disk", "Writes", "Invals", "Recircs"});
  for (std::size_t run_index : run_indices) {
    const TraceRun& run = document.runs[run_index];
    const TraceRecorder::LevelTotals totals = TraceRecorder::CountedTotals(run);
    double total_time = 0.0;
    for (double t : totals.time_us) {
      total_time += t;
    }
    const double counted = static_cast<double>(totals.counted_reads);
    auto fraction = [&](CacheLevel level) {
      const auto i = static_cast<std::size_t>(level);
      return counted == 0.0 ? 0.0 : static_cast<double>(totals.counts[i]) / counted;
    };
    table.AddRow({std::to_string(run_index), run.policy, std::to_string(run.reads.size()),
                  std::to_string(totals.counted_reads),
                  counted == 0.0 ? "-" : FormatMicros(total_time / counted),
                  FormatPercent(fraction(CacheLevel::kLocalMemory)),
                  FormatPercent(fraction(CacheLevel::kRemoteClient)),
                  FormatPercent(fraction(CacheLevel::kServerMemory)),
                  FormatPercent(fraction(CacheLevel::kServerDisk)),
                  std::to_string(CountOps(run, TraceOpKind::kWrite)),
                  std::to_string(CountOps(run, TraceOpKind::kInvalidation)),
                  std::to_string(CountOps(run, TraceOpKind::kRecirculation))});
  }
  std::printf("%s", table.ToString().c_str());
}

// ---- latency ----

void CommandLatency(const EventsDocument& document, const std::vector<std::size_t>& run_indices) {
  for (std::size_t run_index : run_indices) {
    std::array<LogHistogram, kNumCacheLevels> histograms;
    const TraceRun& run = document.runs[run_index];
    for (const ReadSpan& span : run.reads) {
      if (span.counted) {
        histograms[static_cast<std::size_t>(span.level)].Add(
            static_cast<double>(span.latency_us));
      }
    }
    std::printf("=== %s ===\n", RunLabel(document, run_index).c_str());
    for (std::size_t level = 0; level < kNumCacheLevels; ++level) {
      const LogHistogram& histogram = histograms[level];
      std::printf("--- %s: %llu counted reads", CacheLevelName(static_cast<CacheLevel>(level)),
                  static_cast<unsigned long long>(histogram.count()));
      if (histogram.count() > 0) {
        std::printf(", p50 %s, p99 %s\n%s", FormatMicros(histogram.Quantile(0.5)).c_str(),
                    FormatMicros(histogram.Quantile(0.99)).c_str(),
                    histogram.ToString().c_str());
      } else {
        std::printf("\n");
      }
    }
    std::printf("\n");
  }
}

// ---- hot-blocks ----

void CommandHotBlocks(const EventsDocument& document, const std::vector<std::size_t>& run_indices,
                      std::size_t top_n) {
  struct BlockStats {
    std::uint64_t reads = 0;
    std::array<std::uint64_t, kNumCacheLevels> by_level{};
    double time_us = 0.0;
  };
  for (std::size_t run_index : run_indices) {
    const TraceRun& run = document.runs[run_index];
    std::map<BlockId, BlockStats> blocks;
    for (const ReadSpan& span : run.reads) {
      BlockStats& stats = blocks[span.block];
      ++stats.reads;
      ++stats.by_level[static_cast<std::size_t>(span.level)];
      stats.time_us += static_cast<double>(span.latency_us);
    }
    std::vector<std::pair<BlockId, BlockStats>> ranked(blocks.begin(), blocks.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second.reads != b.second.reads) {
        return a.second.reads > b.second.reads;
      }
      return a.first < b.first;  // Deterministic order among ties.
    });
    if (ranked.size() > top_n) {
      ranked.resize(top_n);
    }
    std::printf("=== %s: top %zu of %zu blocks by reads ===\n",
                RunLabel(document, run_index).c_str(), ranked.size(), blocks.size());
    TableFormatter table(
        {"Block", "Reads", "Local", "Remote", "ServerMem", "Disk", "Total time"});
    for (const auto& [block, stats] : ranked) {
      table.AddRow({block.ToString(), std::to_string(stats.reads),
                    std::to_string(stats.by_level[0]), std::to_string(stats.by_level[1]),
                    std::to_string(stats.by_level[2]), std::to_string(stats.by_level[3]),
                    FormatMicros(stats.time_us)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

// ---- forwards ----

void CommandForwards(const EventsDocument& document, const std::vector<std::size_t>& run_indices) {
  for (std::size_t run_index : run_indices) {
    const TraceRun& run = document.runs[run_index];
    // matrix[requester][holder] = remote-client hits served by holder.
    std::map<ClientId, std::map<ClientId, std::uint64_t>> matrix;
    std::uint64_t forwarded = 0;
    for (const ReadSpan& span : run.reads) {
      if (span.forward_holder != kNoClient) {
        ++matrix[span.client][span.forward_holder];
        ++forwarded;
      }
    }
    std::printf("=== %s: %llu forwarded reads ===\n", RunLabel(document, run_index).c_str(),
                static_cast<unsigned long long>(forwarded));
    if (forwarded == 0) {
      std::printf("(no remote-client forwards recorded)\n\n");
      continue;
    }
    TableFormatter table({"Requester", "Holder", "Reads", "Share"});
    for (const auto& [requester, holders] : matrix) {
      for (const auto& [holder, count] : holders) {
        table.AddRow({"client " + std::to_string(requester), "client " + std::to_string(holder),
                      std::to_string(count),
                      FormatPercent(static_cast<double>(count) / static_cast<double>(forwarded))});
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

// ---- recirc ----

void CommandRecirc(const EventsDocument& document, const std::vector<std::size_t>& run_indices) {
  for (std::size_t run_index : run_indices) {
    const TraceRun& run = document.runs[run_index];
    // detail = recirculation count remaining on the forwarded copy; the
    // paper's N-Chance uses N=2, so expected keys are small integers.
    std::map<unsigned, std::uint64_t> by_depth;
    std::uint64_t total = 0;
    for (const OpRecord& op : run.ops) {
      if (op.kind == TraceOpKind::kRecirculation) {
        ++by_depth[op.detail];
        ++total;
      }
    }
    std::printf("=== %s: %llu recirculations ===\n", RunLabel(document, run_index).c_str(),
                static_cast<unsigned long long>(total));
    if (total == 0) {
      std::printf("(no N-Chance recirculations recorded)\n\n");
      continue;
    }
    TableFormatter table({"Count remaining", "Recirculations", "Share"});
    for (const auto& [depth, count] : by_depth) {
      table.AddRow({std::to_string(depth), std::to_string(count),
                    FormatPercent(static_cast<double>(count) / static_cast<double>(total))});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

// ---- block post-mortem ----

void CommandBlock(const EventsDocument& document, const std::vector<std::size_t>& run_indices,
                  const BlockId& block) {
  for (std::size_t run_index : run_indices) {
    const TraceRun& run = document.runs[run_index];
    // Merge this block's reads and ops back into sequence order, the same
    // interleaving the JSONL document stores.
    struct Row {
      std::uint64_t seq;
      std::vector<std::string> cells;
    };
    std::vector<Row> rows;
    std::uint64_t disk_reads = 0;
    for (const ReadSpan& span : run.reads) {
      if (span.block != block) {
        continue;
      }
      disk_reads += span.level == CacheLevel::kServerDisk ? 1 : 0;
      std::string detail = std::string(CacheLevelName(span.level));
      if (span.forward_holder != kNoClient) {
        detail += " from client " + std::to_string(span.forward_holder);
      }
      rows.push_back({span.seq,
                      {std::to_string(span.event_index), "read",
                       "client " + std::to_string(span.client), detail,
                       FormatMicros(static_cast<double>(span.latency_us)),
                       span.counted ? "yes" : "warm-up"}});
    }
    for (const OpRecord& op : run.ops) {
      if (op.block != block) {
        continue;
      }
      std::string actor =
          op.client == kNoClient ? std::string("-") : "client " + std::to_string(op.client);
      std::string detail;
      switch (op.kind) {
        case TraceOpKind::kInvalidation:
          detail = op.peer == kNoClient ? std::string("by delete")
                                        : "by writer client " + std::to_string(op.peer);
          break;
        case TraceOpKind::kRecirculation:
          detail = "to client " + std::to_string(op.peer) + ", count " +
                   std::to_string(op.detail);
          break;
        default:
          break;
      }
      rows.push_back({op.seq,
                      {std::to_string(op.event_index), TraceOpKindName(op.kind), actor, detail,
                       "-", "-"}});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.seq < b.seq; });
    std::printf("=== %s: %s, %zu records, %llu disk reads ===\n",
                RunLabel(document, run_index).c_str(), block.ToString().c_str(), rows.size(),
                static_cast<unsigned long long>(disk_reads));
    if (rows.empty()) {
      std::printf("(block never touched in this run)\n\n");
      continue;
    }
    TableFormatter table({"Event", "Kind", "Client", "Detail", "Latency", "Counted"});
    for (const Row& row : rows) {
      table.AddRow(row.cells);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

// ---- timeline (coopfs.timeseries/v1) ----

void CommandTimeline(const TimeseriesDocument& document,
                     const std::vector<std::size_t>& run_indices) {
  for (std::size_t run_index : run_indices) {
    const SnapshotRun& run = document.runs[run_index];
    std::printf("=== run %zu (%s, %u clients, interval %s) ===\n", run_index, run.policy.c_str(),
                run.num_clients,
                run.interval > 0
                    ? (FormatDouble(static_cast<double>(run.interval) / 1e6, 0) + " s").c_str()
                    : "off");
    TableFormatter table({"#", "Trigger", "Time", "Reads", "Counted", "Avg lat", "Local",
                          "Remote", "Disk", "Client occ", "Dup", "Load units"});
    for (const StateSample& sample : run.samples) {
      const std::uint64_t counted = sample.CountedReads();
      const double counted_d = static_cast<double>(counted);
      auto fraction = [&](CacheLevel level) {
        const auto i = static_cast<std::size_t>(level);
        return counted == 0 ? 0.0 : static_cast<double>(sample.level_reads[i]) / counted_d;
      };
      const StateProbe& state = sample.state;
      const double occupancy =
          state.client_blocks_capacity == 0
              ? 0.0
              : static_cast<double>(state.client_blocks_used) /
                    static_cast<double>(state.client_blocks_capacity);
      const double duplicated =
          state.directory_blocks == 0
              ? 0.0
              : static_cast<double>(state.duplicate_blocks) /
                    static_cast<double>(state.directory_blocks);
      std::uint64_t load = 0;
      for (std::uint64_t units : state.load_units) {
        load += units;
      }
      table.AddRow({std::to_string(sample.index), SampleTriggerName(sample.trigger),
                    FormatDouble(static_cast<double>(sample.time) / 1e6, 0) + " s",
                    std::to_string(sample.window_reads), std::to_string(counted),
                    counted == 0 ? "-" : FormatMicros(sample.CountedTimeUs() / counted_d),
                    FormatPercent(fraction(CacheLevel::kLocalMemory)),
                    FormatPercent(fraction(CacheLevel::kRemoteClient)),
                    FormatPercent(fraction(CacheLevel::kServerDisk)), FormatPercent(occupancy),
                    FormatPercent(duplicated), std::to_string(load)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
}

// ---- profile (coopfs.profile/v1) ----

void PrintProfileTree(const std::vector<Profiler::Node>& nodes, int depth) {
  for (const Profiler::Node& node : nodes) {
    std::printf("%*s%s: %llu calls, %s total, %s self\n", depth * 2, "", node.name.c_str(),
                static_cast<unsigned long long>(node.count),
                FormatMicros(static_cast<double>(node.total_ns) / 1000.0).c_str(),
                FormatMicros(static_cast<double>(node.SelfNs()) / 1000.0).c_str());
    PrintProfileTree(node.children, depth + 1);
  }
}

void CommandProfile(const std::vector<Profiler::Node>& roots) {
  PrintProfileTree(roots, 0);
  std::printf("\n%s", ProfileSelfTimeTable(roots).c_str());
}

// ---- manifest (coopfs.run/v1) ----

// Export paths are stored as written by the run (absolute, or relative to
// the run's working directory). For the cross-check, try the path as-is
// first, then relative to the manifest's own directory — the common case
// when a whole --out-dir was moved or archived together with the exports.
bool ExportExists(const std::string& manifest_path, const std::string& export_path) {
  std::error_code ec;
  if (std::filesystem::exists(export_path, ec)) {
    return true;
  }
  const std::filesystem::path sibling =
      std::filesystem::path(manifest_path).parent_path() / export_path;
  return std::filesystem::exists(sibling, ec);
}

void CommandManifest(const std::string& input_path, const std::string& text) {
  if (Status status = ValidateRunManifestDocument(text); !status.ok()) {
    Die(input_path + ": " + status.ToString());
  }
  // Validation guarantees every field read below is present and typed.
  const JsonValue root = *ParseJson(text);
  std::printf("%s: %s, coopfs %s\n\n", input_path.c_str(),
              root.FindString("schema")->AsString().c_str(),
              root.FindString("coopfs_version")->AsString().c_str());
  std::printf("experiment:  %s (%s)\n", root.FindString("experiment")->AsString().c_str(),
              root.FindString("title")->AsString().c_str());
  std::printf("description: %s\n", root.FindString("description")->AsString().c_str());
  std::string workloads;
  for (const JsonValue& workload : root.FindArray("workloads")->items()) {
    workloads += (workloads.empty() ? "" : ", ") + workload.AsString();
  }
  std::printf("workloads:   %s\n", workloads.empty() ? "(none)" : workloads.c_str());
  const JsonValue* options = root.FindObject("options");
  std::printf("options:     events %lld, seed %lld, auspex_events %lld, "
              "sample_interval %lld us\n",
              static_cast<long long>(options->FindNumber("events")->AsInt()),
              static_cast<long long>(options->FindNumber("seed")->AsInt()),
              static_cast<long long>(options->FindNumber("auspex_events")->AsInt()),
              static_cast<long long>(options->FindNumber("sample_interval_us")->AsInt()));
  std::printf("run:         %lld results, %lld threads, %s s wall\n",
              static_cast<long long>(root.FindNumber("num_results")->AsInt()),
              static_cast<long long>(root.FindNumber("threads")->AsInt()),
              FormatDouble(root.FindNumber("wall_time_s")->AsDouble(), 2).c_str());
  std::printf("re-run:      %s\n\n", root.FindString("command")->AsString().c_str());

  const auto& configs = root.FindArray("configs")->items();
  if (!configs.empty()) {
    TableFormatter table({"Config", "Client cache", "Server cache", "Servers", "Warm-up",
                          "Seed", "Write policy"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const JsonValue& config = configs[i];
      const auto blocks_mib = [&config](const char* field) {
        const double blocks = static_cast<double>(config.FindNumber(field)->AsInt());
        const double block_bytes =
            static_cast<double>(config.FindNumber("block_size_bytes")->AsInt());
        return FormatDouble(blocks * block_bytes / (1024.0 * 1024.0), 0) + " MB";
      };
      table.AddRow({std::to_string(i), blocks_mib("client_cache_blocks"),
                    blocks_mib("server_cache_blocks"),
                    std::to_string(config.FindNumber("num_servers")->AsInt()),
                    std::to_string(config.FindNumber("warmup_events")->AsInt()) + " events",
                    std::to_string(config.FindNumber("seed")->AsInt()),
                    config.FindString("write_policy")->AsString()});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  const auto& exports = root.FindArray("exports")->items();
  if (exports.empty()) {
    std::printf("exports: none\n");
    return;
  }
  TableFormatter table({"Kind", "Schema", "Path", "Status"});
  std::vector<std::string> missing;
  for (const JsonValue& entry : exports) {
    const std::string& path = entry.FindString("path")->AsString();
    const bool exists = ExportExists(input_path, path);
    if (!exists) {
      missing.push_back(path);
    }
    const std::string& schema = entry.FindString("schema")->AsString();
    table.AddRow({entry.FindString("kind")->AsString(), schema.empty() ? "-" : schema, path,
                  exists ? "ok" : "MISSING"});
  }
  std::printf("%s", table.ToString().c_str());
  if (!missing.empty()) {
    Die(std::to_string(missing.size()) + " export file(s) referenced by " + input_path +
        " not found (first: " + missing.front() + ")");
  }
}

}  // namespace
}  // namespace coopfs

int main(int argc, char** argv) {
  using namespace coopfs;

  std::string command = "summary";
  std::string input_path;
  std::string command_arg;
  std::size_t top_n = 20;
  long run_filter = -1;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      run_filter = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  static constexpr const char* kCommands[] = {"summary",  "latency", "hot-blocks",
                                              "forwards", "recirc",  "block",
                                              "export-perfetto", "timeline", "profile",
                                              "manifest"};
  std::size_t cursor = 0;
  if (!positional.empty()) {
    bool known = false;
    for (const char* name : kCommands) {
      if (positional[0] == name) {
        command = positional[0];
        cursor = 1;
        known = true;
        break;
      }
    }
    // A lone non-command positional is the input path (default command);
    // with more positionals it can only be a misspelled command.
    if (!known && positional.size() > 1) {
      std::fprintf(stderr, "coopfs_inspect: unknown command '%s'\n\n", positional[0].c_str());
      PrintUsage();
      return 1;
    }
  }
  if ((command == "block" || command == "export-perfetto") && cursor < positional.size()) {
    command_arg = positional[cursor++];
  }
  if (cursor < positional.size()) {
    input_path = positional[cursor++];
  }
  if (input_path.empty() || cursor != positional.size()) {
    PrintUsage();
    return 1;
  }

  const std::string text = ReadWholeFile(input_path);

  // The timeline and profile commands read their own document types; they
  // branch off before the events parse below.
  if (command == "timeline") {
    Result<TimeseriesDocument> timeseries = ParseTimeseriesJsonl(text);
    if (!timeseries.ok()) {
      Die(input_path + ": " + timeseries.status().ToString());
    }
    std::printf("%s: %s, coopfs %s, seed %llu, %llu trace events%s%s, %zu runs\n\n",
                input_path.c_str(), std::string(kTimeseriesSchema).c_str(),
                timeseries->coopfs_version.c_str(),
                static_cast<unsigned long long>(timeseries->metadata.seed),
                static_cast<unsigned long long>(timeseries->metadata.trace_events),
                timeseries->metadata.workload.empty() ? "" : ", workload ",
                timeseries->metadata.workload.c_str(), timeseries->runs.size());
    std::vector<std::size_t> indices;
    if (run_filter >= 0) {
      if (static_cast<std::size_t>(run_filter) >= timeseries->runs.size()) {
        Die("--run " + std::to_string(run_filter) + " out of range (document has " +
            std::to_string(timeseries->runs.size()) + " runs)");
      }
      indices.push_back(static_cast<std::size_t>(run_filter));
    } else {
      for (std::size_t i = 0; i < timeseries->runs.size(); ++i) {
        indices.push_back(i);
      }
    }
    CommandTimeline(*timeseries, indices);
    return 0;
  }
  if (command == "manifest") {
    CommandManifest(input_path, text);
    return 0;
  }
  if (command == "profile") {
    Result<std::vector<Profiler::Node>> roots = ParseProfileDocument(text);
    if (!roots.ok()) {
      Die(input_path + ": " + roots.status().ToString());
    }
    std::printf("%s: %s, %zu root spans\n\n", input_path.c_str(),
                std::string(kProfileSchema).c_str(), roots->size());
    CommandProfile(*roots);
    return 0;
  }
  Result<EventsDocument> parsed = ParseEventsJsonl(text);
  if (!parsed.ok()) {
    Die(input_path + ": " + parsed.status().ToString());
  }
  const EventsDocument& document = *parsed;
  std::printf("%s: %s, coopfs %s, seed %llu, %llu trace events%s%s, %zu runs\n\n",
              input_path.c_str(), std::string(kEventsSchema).c_str(),
              document.coopfs_version.c_str(),
              static_cast<unsigned long long>(document.metadata.seed),
              static_cast<unsigned long long>(document.metadata.trace_events),
              document.metadata.workload.empty() ? "" : ", workload ",
              document.metadata.workload.c_str(), document.runs.size());

  std::vector<std::size_t> run_indices;
  if (run_filter >= 0) {
    if (static_cast<std::size_t>(run_filter) >= document.runs.size()) {
      Die("--run " + std::to_string(run_filter) + " out of range (document has " +
          std::to_string(document.runs.size()) + " runs)");
    }
    run_indices.push_back(static_cast<std::size_t>(run_filter));
  } else {
    for (std::size_t i = 0; i < document.runs.size(); ++i) {
      run_indices.push_back(i);
    }
  }

  if (command == "summary") {
    CommandSummary(document, run_indices);
  } else if (command == "latency") {
    CommandLatency(document, run_indices);
  } else if (command == "hot-blocks") {
    CommandHotBlocks(document, run_indices, top_n);
  } else if (command == "forwards") {
    CommandForwards(document, run_indices);
  } else if (command == "recirc") {
    CommandRecirc(document, run_indices);
  } else if (command == "block") {
    BlockId block;
    if (command_arg.empty() || !ParseBlockRef(command_arg, block)) {
      Die("block command needs a block reference like f12:b3");
    }
    CommandBlock(document, run_indices, block);
  } else if (command == "export-perfetto") {
    if (command_arg.empty()) {
      Die("export-perfetto needs an output path");
    }
    std::vector<TraceRun> selected;
    for (std::size_t i : run_indices) {
      selected.push_back(document.runs[i]);
    }
    if (Status status = WritePerfettoTrace(selected, command_arg); !status.ok()) {
      Die("perfetto export to " + command_arg + " failed: " + status.ToString());
    }
    std::printf("wrote perfetto trace: %s (%zu runs, open at ui.perfetto.dev)\n",
                command_arg.c_str(), selected.size());
  }
  return 0;
}
