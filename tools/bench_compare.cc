// Perf-regression gate: compares "coopfs.bench/v1" documents.
//
// Usage: bench_compare BASELINE.json CANDIDATE.json [--threshold PCT]
//            [--scaling-floor F] [--mono-tolerance F] [--no-scaling-gate]
//        bench_compare DOC.json [--scaling-floor F] [--mono-tolerance F]
//
// Two-document mode prints a per-series throughput delta table for every
// series present in both documents, then exits non-zero if any replay
// series (name starting with "replay_") in the candidate is more than PCT
// percent slower than the baseline (default 10), or if a baseline replay
// series is missing from the candidate. Non-replay series (microbenches,
// exports) are reported but do not gate: they are noisier and
// machine-dependent, while the replay series are the numbers the paper
// reproduction actually spends its time in.
//
// In both modes the candidate (or sole) document's parallel_sweep_<T>t
// series additionally pass through the scaling-efficiency gate
// (src/obs/scaling_gate.h): the 2t/1t speedup must reach the efficiency
// floor times what the document's host_threads made attainable, and
// throughput must stay monotonic (within tolerance) as threads are added.
// --no-scaling-gate disables that check (two-document mode only).
//
// CI runs this against the committed BENCH_coopfs.json; see
// docs/performance.md for the re-baselining workflow.
//
// Exit codes: 0 = all gates pass, 1 = a gate failed, 2 = usage/load error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/format.h"
#include "src/obs/bench_report.h"
#include "src/obs/scaling_gate.h"

namespace coopfs {
namespace {

// Loads and schema-validates one bench document.
std::optional<BenchReport> LoadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<BenchReport> report = ParseBenchDocument(buffer.str());
  if (!report.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 report.status().ToString().c_str());
    return std::nullopt;
  }
  return *std::move(report);
}

const BenchSeries* FindByName(const std::vector<BenchSeries>& series,
                              std::string_view name) {
  for (const BenchSeries& sample : series) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

bool IsGated(std::string_view name) { return name.rfind("replay_", 0) == 0; }

// The >10%-slower replay gate (two-document mode). Appends failure lines.
void CheckReplayRegressions(const BenchReport& baseline, const BenchReport& candidate,
                            double threshold_pct, std::vector<std::string>* failures) {
  TableFormatter table({"Series", "Baseline", "Candidate", "Delta", "Gate"});
  for (const BenchSeries& base : baseline.series) {
    const BenchSeries* cand = FindByName(candidate.series, base.name);
    if (cand == nullptr) {
      if (IsGated(base.name)) {
        failures->push_back(base.name + ": missing from candidate");
      }
      continue;
    }
    const double delta_pct = base.ops_per_sec > 0.0
        ? (cand->ops_per_sec - base.ops_per_sec) / base.ops_per_sec * 100.0
        : 0.0;
    const bool gated = IsGated(base.name);
    const bool regressed = gated && delta_pct < -threshold_pct;
    table.AddRow({base.name, FormatDouble(base.ops_per_sec / 1e6, 2) + " M/s",
                  FormatDouble(cand->ops_per_sec / 1e6, 2) + " M/s",
                  FormatDouble(delta_pct, 1) + " %",
                  regressed ? "FAIL" : (gated ? "ok" : "-")});
    if (regressed) {
      failures->push_back(base.name + ": " + FormatDouble(-delta_pct, 1) +
                          "% slower (threshold " +
                          FormatDouble(threshold_pct, 1) + "%)");
    }
  }
  std::printf("%s", table.ToString().c_str());
}

int Run(int argc, char** argv) {
  double threshold_pct = 10.0;
  ScalingGateOptions scaling;
  bool scaling_gate_enabled = true;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--scaling-floor") == 0 && i + 1 < argc) {
      scaling.efficiency_floor = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--mono-tolerance") == 0 && i + 1 < argc) {
      scaling.monotonicity_tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--no-scaling-gate") == 0) {
      scaling_gate_enabled = false;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty() || paths.size() > 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CANDIDATE.json"
                 " [--threshold PCT] [--scaling-floor F] [--mono-tolerance F]"
                 " [--no-scaling-gate]\n"
                 "       bench_compare DOC.json [--scaling-floor F]"
                 " [--mono-tolerance F]\n");
    return 2;
  }

  std::vector<std::string> failures;
  std::optional<BenchReport> candidate;
  if (paths.size() == 2) {
    std::optional<BenchReport> baseline = LoadReport(paths[0]);
    candidate = LoadReport(paths[1]);
    if (!baseline.has_value() || !candidate.has_value()) {
      return 2;
    }
    CheckReplayRegressions(*baseline, *candidate, threshold_pct, &failures);
    if (failures.empty()) {
      std::printf("bench_compare: no replay series regressed more than %s%%\n",
                  FormatDouble(threshold_pct, 1).c_str());
    }
  } else {
    candidate = LoadReport(paths[0]);
    if (!candidate.has_value()) {
      return 2;
    }
  }

  if (scaling_gate_enabled) {
    const ScalingGateResult gate = EvaluateScalingGate(*candidate, scaling);
    for (const std::string& note : gate.notes) {
      std::printf("bench_compare: note: %s\n", note.c_str());
    }
    if (!gate.applicable) {
      std::printf("bench_compare: scaling gate not applicable (no sweep series)\n");
    } else if (gate.passed) {
      std::printf(
          "bench_compare: scaling gate passed (floor %s, monotonicity tolerance %s)\n",
          FormatDouble(scaling.efficiency_floor, 2).c_str(),
          FormatDouble(scaling.monotonicity_tolerance, 2).c_str());
    } else {
      for (const std::string& failure : gate.failures) {
        failures.push_back("scaling: " + failure);
      }
    }
  }

  if (!failures.empty()) {
    for (const std::string& failure : failures) {
      if (failure.rfind("scaling: ", 0) == 0) {
        std::fprintf(stderr, "bench_compare: SCALING %s\n",
                     failure.c_str() + std::strlen("scaling: "));
      } else {
        std::fprintf(stderr, "bench_compare: REGRESSION %s\n", failure.c_str());
      }
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace coopfs

int main(int argc, char** argv) { return coopfs::Run(argc, argv); }
