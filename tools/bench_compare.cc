// Perf-regression gate: compares two "coopfs.bench/v1" documents.
//
// Usage: bench_compare BASELINE.json CANDIDATE.json [--threshold PCT]
//
// Prints a per-series throughput delta table for every series present in
// both documents, then exits non-zero if any replay series (name starting
// with "replay_") in the candidate is more than PCT percent slower than the
// baseline (default 10), or if a baseline replay series is missing from the
// candidate. Non-replay series (microbenches, exports, parallel sweeps) are
// reported but do not gate: they are noisier and machine-dependent, while
// the replay series are the numbers the paper reproduction actually spends
// its time in. CI runs this against the committed BENCH_coopfs.json; see
// docs/performance.md for the re-baselining workflow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/format.h"
#include "src/common/json.h"
#include "src/obs/bench_report.h"

namespace coopfs {
namespace {

struct SeriesSample {
  std::string name;
  double ops_per_sec = 0.0;
};

// Loads, schema-validates, and flattens one bench document.
bool LoadSeries(const std::string& path, std::vector<SeriesSample>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (Status status = ValidateBenchDocument(text); !status.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  Result<JsonValue> doc = ParseJson(text);
  if (!doc.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return false;
  }
  const JsonValue* series = doc->FindArray("series");
  for (const JsonValue& entry : series->items()) {
    SeriesSample sample;
    sample.name = entry.FindString("name")->AsString();
    sample.ops_per_sec = entry.FindNumber("ops_per_sec")->AsDouble();
    out->push_back(std::move(sample));
  }
  return true;
}

const SeriesSample* FindByName(const std::vector<SeriesSample>& series,
                               std::string_view name) {
  for (const SeriesSample& sample : series) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

bool IsGated(std::string_view name) { return name.rfind("replay_", 0) == 0; }

int Run(int argc, char** argv) {
  double threshold_pct = 10.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CANDIDATE.json"
                 " [--threshold PCT]\n");
    return 2;
  }

  std::vector<SeriesSample> baseline;
  std::vector<SeriesSample> candidate;
  if (!LoadSeries(paths[0], &baseline) || !LoadSeries(paths[1], &candidate)) {
    return 2;
  }

  TableFormatter table({"Series", "Baseline", "Candidate", "Delta", "Gate"});
  std::vector<std::string> failures;
  for (const SeriesSample& base : baseline) {
    const SeriesSample* cand = FindByName(candidate, base.name);
    if (cand == nullptr) {
      if (IsGated(base.name)) {
        failures.push_back(base.name + ": missing from candidate");
      }
      continue;
    }
    const double delta_pct = base.ops_per_sec > 0.0
        ? (cand->ops_per_sec - base.ops_per_sec) / base.ops_per_sec * 100.0
        : 0.0;
    const bool gated = IsGated(base.name);
    const bool regressed = gated && delta_pct < -threshold_pct;
    table.AddRow({base.name, FormatDouble(base.ops_per_sec / 1e6, 2) + " M/s",
                  FormatDouble(cand->ops_per_sec / 1e6, 2) + " M/s",
                  FormatDouble(delta_pct, 1) + " %",
                  regressed ? "FAIL" : (gated ? "ok" : "-")});
    if (regressed) {
      failures.push_back(base.name + ": " + FormatDouble(-delta_pct, 1) +
                         "% slower (threshold " +
                         FormatDouble(threshold_pct, 1) + "%)");
    }
  }
  std::printf("%s", table.ToString().c_str());

  if (!failures.empty()) {
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "bench_compare: REGRESSION %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("bench_compare: no replay series regressed more than %s%%\n",
              FormatDouble(threshold_pct, 1).c_str());
  return 0;
}

}  // namespace
}  // namespace coopfs

int main(int argc, char** argv) { return coopfs::Run(argc, argv); }
