// Figure 1: time to service a local cache miss from remote memory or disk,
// for 10 Mbit/s Ethernet and 155 Mbit/s ATM. Pure technology-model table —
// reproduces the paper's numbers exactly.
#include <cstdio>

#include "src/common/format.h"
#include "src/model/network_model.h"

int main() {
  using namespace coopfs;

  const NetworkModel ethernet = NetworkModel::Ethernet10();
  const NetworkModel atm = NetworkModel::Atm155();
  const DiskModel disk = DiskModel::RuemmlerWilkes();

  std::printf("=== Figure 1: local-miss service time, remote memory vs. remote disk ===\n\n");

  TableFormatter table({"", "Eth Remote Mem", "Eth Remote Disk", "ATM Remote Mem",
                        "ATM Remote Disk"});
  auto us = [](Micros value) { return std::to_string(value) + " us"; };

  table.AddRow({"Mem. Copy", us(ethernet.memory_copy), us(ethernet.memory_copy),
                us(atm.memory_copy), us(atm.memory_copy)});
  table.AddRow({"Net Overhead", us(ethernet.per_hop * 2), us(ethernet.per_hop * 2),
                us(atm.per_hop * 2), us(atm.per_hop * 2)});
  table.AddRow({"Data", us(ethernet.block_transfer), us(ethernet.block_transfer),
                us(atm.block_transfer), us(atm.block_transfer)});
  table.AddRow({"Disk", "", us(disk.access_time), "", us(disk.access_time)});
  table.AddRule();
  table.AddRow({"Total", us(ethernet.RemoteFetchTime(2)),
                us(ethernet.RemoteFetchTime(2) + disk.access_time), us(atm.RemoteFetchTime(2)),
                us(atm.RemoteFetchTime(2) + disk.access_time)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper reported: 6,900 / 21,700 / 1,050 / 15,850 us\n");
  return 0;
}
