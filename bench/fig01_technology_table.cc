// Standalone wrapper for the 'fig01_technology_table' experiment. The experiment body lives
// in src/exp/specs/fig01_technology_table.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig01_technology_table`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig01_technology_table", argc, argv);
}
