// Standalone wrapper for the 'ext_queueing' experiment. The experiment body lives
// in src/exp/specs/ext_queueing.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter ext_queueing`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("ext_queueing", argc, argv);
}
