// Extension analysis (paper §3 caveat): queueing delay at the server.
//
// The paper computes response times with no queueing, arguing that the
// attractive algorithms do not raise server load and the network is
// switched. This bench quantifies the caveat with a standard M/M/1
// correction: given a server that can process C load-units per second, an
// algorithm generating lambda units/second sees its server-side service
// times inflated by 1/(1 - lambda/C). Algorithms that push more traffic
// through the server (Central Coordination) hit the wall first; Hash
// Distribution, which bypasses the server for cooperative hits, lasts
// longest — making the paper's server-load argument concrete.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/sim/queueing.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Extension: server queueing sensitivity",
              "M/M/1-adjusted response vs. server capacity", options, trace.size());

  Simulator simulator(config, &trace);
  const std::vector<PolicyKind> kinds = {PolicyKind::kBaseline, PolicyKind::kGreedy,
                                         PolicyKind::kCentralCoord, PolicyKind::kNChance,
                                         PolicyKind::kHashDistributed};
  std::vector<SimulationResult> results;
  for (PolicyKind kind : kinds) {
    results.push_back(MustRun(simulator, kind));
  }

  // Post-warm-up simulated wall time.
  const Micros span = trace.back().timestamp - trace[config.warmup_events].timestamp;
  const double seconds = static_cast<double>(span) / 1e6;

  std::printf("offered server load (units/s): ");
  for (const SimulationResult& result : results) {
    std::printf("%s %s  ", result.policy_name.c_str(),
                FormatDouble(OfferedLoadUnitsPerSecond(result, seconds), 0).c_str());
  }
  std::printf("\n\n");

  TableFormatter table({"Server capacity", "Baseline", "Greedy", "Central", "N-Chance", "Hash"});
  const double base_rate = OfferedLoadUnitsPerSecond(results.front(), seconds);
  for (const double capacity : {50.0, 20.0, 10.0, 5.0, 3.0, 2.0}) {
    // Capacity expressed as a multiple of the baseline's offered load.
    const double capacity_units = capacity * base_rate;
    std::vector<std::string> row{FormatDouble(capacity, 0) + "x base load"};
    for (const SimulationResult& result : results) {
      const Result<QueueingAdjustment> adjusted =
          ApplyServerQueueing(result, seconds, capacity_units);
      if (!adjusted.ok() || adjusted->saturated || adjusted->utilization >= 0.99) {
        row.push_back("saturated");
        continue;
      }
      row.push_back(FormatDouble(adjusted->adjusted_read_time, 0) + " us");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected: rankings stable at generous capacity; Central saturates first as\n"
              "capacity tightens (its local misses all transit the server), vindicating the\n"
              "paper's decision to report Figure 6 alongside unqueued response times\n");
  return 0;
}
