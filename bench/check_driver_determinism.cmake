# Parallel-determinism check for the coopfs_bench driver (run via `cmake -P`).
#
# Replay depends only on (config, policy), never on scheduling, so the driver
# must produce byte-identical stdout whether experiments and sweeps run
# serially or fanned out. Runs the same selection at --threads 1 and
# --threads THREADS and fails on any stdout difference.
#
# Expected -D variables:
#   DRIVER   path to the coopfs_bench binary
#   FILTER   the --filter glob for the selection
#   EVENTS   --events value (kept small for test time)
#   THREADS  parallel width to compare against serial
#   OUT_DIR  scratch --out-dir for manifests
foreach(var DRIVER FILTER EVENTS THREADS OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_driver_determinism.cmake: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
execute_process(COMMAND "${DRIVER}" --filter "${FILTER}" --events "${EVENTS}"
    --threads 1 --out-dir "${OUT_DIR}/serial"
  OUTPUT_VARIABLE serial_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial driver run failed with exit code ${rc}")
endif()

execute_process(COMMAND "${DRIVER}" --filter "${FILTER}" --events "${EVENTS}"
    --threads "${THREADS}" --out-dir "${OUT_DIR}/parallel"
  OUTPUT_VARIABLE parallel_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "parallel driver run failed with exit code ${rc}")
endif()

if(NOT serial_out STREQUAL parallel_out)
  file(WRITE "${OUT_DIR}/serial.stdout" "${serial_out}")
  file(WRITE "${OUT_DIR}/parallel.stdout" "${parallel_out}")
  message(FATAL_ERROR "--threads ${THREADS} changed the driver's stdout; see "
    "${OUT_DIR}/serial.stdout vs ${OUT_DIR}/parallel.stdout")
endif()
message(STATUS "--threads ${THREADS} byte-identical to serial for '${FILTER}'")
