// Standalone wrapper for the 'ext_multi_server' experiment. The experiment body lives
// in src/exp/specs/ext_multi_server.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter ext_multi_server`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("ext_multi_server", argc, argv);
}
