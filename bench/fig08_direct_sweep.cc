// Figure 8: Direct Client Cooperation speedup as a function of each
// client's recruited remote cache size (paper: <1% improvement at 4 MB,
// ~5% at 16 MB, ~40% only at ~64 MB), plus the §4.2.1 what-if: only the
// most active 10% of clients recruit remote memory (paper: 85% of the
// maximum Direct benefit).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"
#include "src/core/direct_coop.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Figure 8", "Direct Cooperation speedup vs. remote cache size", options,
              trace.size());

  Simulator simulator(config, &trace);
  const SimulationResult baseline = MustRun(simulator, PolicyKind::kBaseline);

  TableFormatter table({"Remote cache / client", "Avg read", "Speedup"});
  double max_speedup = 1.0;
  for (std::size_t mib : {0, 4, 8, 16, 32, 64, 128}) {
    SimulationResult result = baseline;  // 0 MB remote cache == baseline.
    if (mib != 0) {
      DirectCoopPolicy policy(BytesToBlocks(MiB(mib)));
      result = MustRun(simulator, policy);
    }
    const double speedup = result.SpeedupOver(baseline);
    max_speedup = std::max(max_speedup, speedup);
    table.AddRow({std::to_string(mib) + " MB", FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatDouble(speedup, 3) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper reported: <1%% at 4 MB, ~5%% at 16 MB, ~40%% at 64 MB\n\n");

  // §4.2.1: only the top 10% most active clients recruit 16 MB remote
  // caches. Activity is measured by baseline read counts.
  std::vector<std::size_t> order(baseline.per_client.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    order[c] = c;
  }
  std::sort(order.begin(), order.end(), [&baseline](std::size_t a, std::size_t b) {
    return baseline.per_client[a].reads > baseline.per_client[b].reads;
  });
  const std::size_t top = std::max<std::size_t>(1, order.size() / 10);
  std::vector<std::size_t> capacities(order.size(), 0);
  for (std::size_t rank = 0; rank < top; ++rank) {
    capacities[order[rank]] = BytesToBlocks(MiB(16));
  }
  DirectCoopPolicy top10(capacities);
  const SimulationResult top10_result = MustRun(simulator, top10);
  DirectCoopPolicy all16(BytesToBlocks(MiB(16)));
  const SimulationResult all_result = MustRun(simulator, all16);

  const double top10_gain = top10_result.SpeedupOver(baseline) - 1.0;
  const double all_gain = all_result.SpeedupOver(baseline) - 1.0;
  std::printf("What-if (paper §4.2.1): top %zu of %zu clients recruit 16 MB each\n", top,
              order.size());
  std::printf("  all clients recruit:    %s performance improvement\n",
              FormatPercent(all_gain, 1).c_str());
  std::printf("  top 10%% only:           %s performance improvement (%s of the full benefit)\n",
              FormatPercent(top10_gain, 1).c_str(),
              all_gain > 0 ? FormatPercent(top10_gain / all_gain, 0).c_str() : "n/a");
  std::printf("paper reported: top 10%% capture ~85%% of the maximum Direct benefit\n");
  return 0;
}
