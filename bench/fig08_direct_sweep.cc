// Standalone wrapper for the 'fig08_direct_sweep' experiment. The experiment body lives
// in src/exp/specs/fig08_direct_sweep.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig08_direct_sweep`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig08_direct_sweep", argc, argv);
}
