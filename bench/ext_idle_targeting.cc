// Standalone wrapper for the 'ext_idle_targeting' experiment. The experiment body lives
// in src/exp/specs/ext_idle_targeting.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter ext_idle_targeting`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("ext_idle_targeting", argc, argv);
}
