// Figure 14: response times under the Berkeley Auspex workload (237 NFS
// clients, snooped trace missing local hits). The simulation runs on the
// visible events; Smith's stack deletion then adds the inferred local hits
// for an assumed hidden local hit rate (80% default; footnote 4 sweeps 70%
// and 90%). Paper: same algorithm ranking as Sprite; N-Chance speedup 2.00
// at 80% (2.20 at 70%, 1.67 at 90%).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = AuspexTrace(options);

  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = trace.size() / 5;  // Paper: 1M of 5M events.
  config.seed = options.seed;

  std::printf("=== Figure 14: Berkeley Auspex workload (snooped NFS trace) ===\n");
  std::printf("workload: %zu visible events, 237 clients, warm-up %llu events\n\n", trace.size(),
              static_cast<unsigned long long>(config.warmup_events));

  Simulator simulator(config, &trace);
  std::vector<SimulationResult> raw;
  for (PolicyKind kind : Figure4PolicyKinds()) {
    raw.push_back(MustRun(simulator, kind));
  }

  const double local_us = static_cast<double>(config.network.memory_copy);
  for (const double hidden_rate : {0.8, 0.7, 0.9}) {
    std::vector<SimulationResult> adjusted;
    adjusted.reserve(raw.size());
    for (const SimulationResult& result : raw) {
      adjusted.push_back(ApplyStackDeletion(result, hidden_rate, local_us));
    }
    const SimulationResult& baseline = adjusted.front();
    std::printf("--- assumed hidden local hit rate: %s ---\n",
                FormatPercent(hidden_rate, 0).c_str());
    TableFormatter table({"Algorithm", "Avg read", "Speedup", "Local", "Remote", "ServerMem",
                          "Disk"});
    for (const SimulationResult& result : adjusted) {
      table.AddRow(ResultRow(result, baseline));
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("paper reported (80%% hidden rate): same ranking as Sprite; N-Chance speedup "
              "2.00 (2.20 at 70%%, 1.67 at 90%%)\n");
  return 0;
}
