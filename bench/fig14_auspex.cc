// Standalone wrapper for the 'fig14_auspex' experiment. The experiment body lives
// in src/exp/specs/fig14_auspex.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig14_auspex`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig14_auspex", argc, argv);
}
