// Standalone wrapper for the 'sec45_memory_placement' experiment. The experiment body lives
// in src/exp/specs/sec45_memory_placement.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter sec45_memory_placement`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("sec45_memory_placement", argc, argv);
}
