// §4.5 ablation: cooperative caching vs. physically moving client memory to
// the server. Moving 80% of each client's cache into the central server is
// simulated as the baseline algorithm with 3.2 MB clients and a server
// cache enlarged by 42 x 12.8 MB. Paper: +66% over the standard layout on
// Sprite (+93% on Auspex), short of N-Chance — and with a ~50% higher
// server read load than N-Chance.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/format.h"

int main(int argc, char** argv) {
  using namespace coopfs;

  const BenchOptions options = BenchOptions::FromArgs(argc, argv);
  const Trace& trace = SpriteTrace(options);
  const SimulationConfig config = PaperConfig(options, trace.size());
  PrintBanner("Section 4.5", "moving memory to the server vs. cooperative caching", options,
              trace.size());

  Simulator standard(config, &trace);
  const SimulationResult baseline = MustRun(standard, PolicyKind::kBaseline);
  const SimulationResult nchance = MustRun(standard, PolicyKind::kNChance);

  // Physically moved memory: clients keep 20% (3.2 MB); the server gains
  // the other 80% of all 42 clients (537.6 MB -> 665.6 MB total).
  SimulationConfig moved = config;
  const std::size_t moved_per_client = BytesToBlocks(MiB(16)) * 8 / 10;
  moved.client_cache_blocks = BytesToBlocks(MiB(16)) - moved_per_client;
  moved.server_cache_blocks =
      BytesToBlocks(MiB(128)) + moved_per_client * standard.num_clients();
  Simulator moved_sim(moved, &trace);
  const SimulationResult moved_result = MustRun(moved_sim, PolicyKind::kBaseline);

  TableFormatter table({"Configuration", "Avg read", "Improvement vs standard", "Local hit",
                        "Disk rate", "Server read load"});
  auto load_units = [](const SimulationResult& result) {
    return result.server_load.TotalUnits();
  };
  auto row = [&](const char* name, const SimulationResult& result) {
    table.AddRow({name, FormatDouble(result.AverageReadTime(), 0) + " us",
                  FormatPercent(result.SpeedupOver(baseline) - 1.0, 0),
                  FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory)),
                  FormatPercent(result.DiskRate()),
                  std::to_string(load_units(result)) + " units"});
  };
  row("Standard layout (16 MB clients, 128 MB server)", baseline);
  row("80% of client memory moved to server", moved_result);
  row("N-Chance Forwarding (n=2)", nchance);
  std::printf("%s\n", table.ToString().c_str());

  const double load_ratio = static_cast<double>(load_units(moved_result)) /
                            static_cast<double>(load_units(nchance));
  std::printf("moved-memory server read load = %s of N-Chance's\n",
              FormatPercent(load_ratio, 0).c_str());
  std::printf("paper reported: moving memory gains +66%% (Sprite) but trails N-Chance, with "
              "~150%% of N-Chance's read load\n\n");

  // The paper's second data point: the same comparison under the Auspex
  // workload (+93% for moved memory there), with stack deletion at the 80%
  // assumed hidden local hit rate as in Figure 14.
  const Trace& auspex = AuspexTrace(options);
  SimulationConfig aus_config;
  aus_config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  aus_config.warmup_events = auspex.size() / 5;
  aus_config.seed = options.seed;
  Simulator aus_standard(aus_config, &auspex);
  SimulationConfig aus_moved = aus_config;
  aus_moved.client_cache_blocks = BytesToBlocks(MiB(16)) - moved_per_client;
  aus_moved.server_cache_blocks =
      BytesToBlocks(MiB(128)) + moved_per_client * aus_standard.num_clients();
  Simulator aus_moved_sim(aus_moved, &auspex);

  const double local_us = static_cast<double>(aus_config.network.memory_copy);
  const SimulationResult aus_base =
      ApplyStackDeletion(MustRun(aus_standard, PolicyKind::kBaseline), 0.8, local_us);
  const SimulationResult aus_nchance =
      ApplyStackDeletion(MustRun(aus_standard, PolicyKind::kNChance), 0.8, local_us);
  const SimulationResult aus_moved_result =
      ApplyStackDeletion(MustRun(aus_moved_sim, PolicyKind::kBaseline), 0.8, local_us);

  std::printf("Auspex workload (237 clients, stack deletion @ 80%% hidden hit rate):\n");
  TableFormatter aus_table({"Configuration", "Avg read", "Improvement vs standard"});
  aus_table.AddRow({"Standard layout", FormatDouble(aus_base.AverageReadTime(), 0) + " us",
                    "0%"});
  aus_table.AddRow({"80% of client memory moved to server",
                    FormatDouble(aus_moved_result.AverageReadTime(), 0) + " us",
                    FormatPercent(aus_moved_result.SpeedupOver(aus_base) - 1.0, 0)});
  aus_table.AddRow({"N-Chance Forwarding (n=2)",
                    FormatDouble(aus_nchance.AverageReadTime(), 0) + " us",
                    FormatPercent(aus_nchance.SpeedupOver(aus_base) - 1.0, 0)});
  std::printf("%s\n", aus_table.ToString().c_str());
  std::printf("paper reported: +93%% for moved memory on Auspex, still short of N-Chance\n");
  return 0;
}
