// Standalone wrapper for the 'fig13_network_speed' experiment. The experiment body lives
// in src/exp/specs/fig13_network_speed.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig13_network_speed`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig13_network_speed", argc, argv);
}
