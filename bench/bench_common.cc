#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>

#include "src/common/format.h"
#include "src/common/profiler.h"
#include "src/obs/metrics_exporter.h"
#include "src/obs/snapshot_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/trace_sink.h"
#include "src/trace/trace_stats.h"

namespace coopfs {

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0) {
      options.events = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--auspex-events") == 0) {
      options.auspex_events = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-events") == 0) {
      options.trace_events_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-perfetto") == 0) {
      options.trace_perfetto_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--timeseries") == 0) {
      options.timeseries_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--sample-interval") == 0) {
      options.sample_interval = static_cast<Micros>(std::strtoll(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      options.profile_out = argv[i + 1];
    }
  }
  if (!options.profile_out.empty()) {
    Profiler::Enable(true);
  }
  // Environment override so `for b in bench/*; do $b; done` can be scaled.
  if (const char* env = std::getenv("COOPFS_BENCH_EVENTS"); env != nullptr) {
    options.events = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("COOPFS_BENCH_AUSPEX_EVENTS"); env != nullptr) {
    options.auspex_events = std::strtoull(env, nullptr, 10);
  }
  return options;
}

namespace {
// Memoized traces, keyed by (seed, events). Bench binaries are short-lived
// single-threaded programs; a static cache is fine.
std::map<std::pair<std::uint64_t, std::uint64_t>, Trace>& SpriteCache() {
  static auto* cache = new std::map<std::pair<std::uint64_t, std::uint64_t>, Trace>();
  return *cache;
}
std::map<std::pair<std::uint64_t, std::uint64_t>, Trace>& AuspexCache() {
  static auto* cache = new std::map<std::pair<std::uint64_t, std::uint64_t>, Trace>();
  return *cache;
}
}  // namespace

const Trace& SpriteTrace(const BenchOptions& options) {
  const auto key = std::make_pair(options.seed, options.events);
  auto it = SpriteCache().find(key);
  if (it == SpriteCache().end()) {
    WorkloadConfig config = SpriteWorkloadConfig(options.seed);
    config.num_events = options.events;
    std::fprintf(stderr, "[bench] generating Sprite-like trace (%llu events)...\n",
                 static_cast<unsigned long long>(options.events));
    it = SpriteCache().emplace(key, GenerateWorkload(config)).first;
  }
  return it->second;
}

const Trace& AuspexTrace(const BenchOptions& options) {
  const auto key = std::make_pair(options.seed, options.auspex_events);
  auto it = AuspexCache().find(key);
  if (it == AuspexCache().end()) {
    WorkloadConfig config = AuspexWorkloadConfig(options.seed + 1994);
    config.num_events = options.auspex_events;
    std::fprintf(stderr, "[bench] generating Auspex-like trace (%llu visible events)...\n",
                 static_cast<unsigned long long>(options.auspex_events));
    it = AuspexCache().emplace(key, GenerateWorkload(config)).first;
  }
  return it->second;
}

SimulationConfig PaperConfig(const BenchOptions& options, std::uint64_t trace_events) {
  SimulationConfig config;
  config.WithClientCacheMiB(16).WithServerCacheMiB(128);
  config.warmup_events = options.WarmupFor(trace_events);
  config.seed = options.seed;
  config.trace_recorder = BenchTraceRecorder(options);
  config.snapshot_sampler = BenchSnapshotSampler(options);
  config.sample_interval = options.sample_interval;
  return config;
}

TraceRecorder* BenchTraceRecorder(const BenchOptions& options) {
  if (!options.tracing_requested()) {
    return nullptr;
  }
  static auto* recorder = new TraceRecorder();
  return recorder;
}

SnapshotSampler* BenchSnapshotSampler(const BenchOptions& options) {
  if (!options.sampling_requested()) {
    return nullptr;
  }
  static auto* sampler = new SnapshotSampler();
  return sampler;
}

void MaybeWriteTimeseries(const BenchOptions& options, const std::string& workload) {
  SnapshotSampler* sampler = BenchSnapshotSampler(options);
  if (sampler == nullptr) {
    return;
  }
  TraceExportMetadata metadata;
  metadata.seed = options.seed;
  metadata.trace_events = options.events;
  metadata.workload = workload;
  if (Status status = WriteTimeseriesJsonl(sampler->runs(), metadata, options.timeseries_out);
      !status.ok()) {
    std::fprintf(stderr, "timeseries export to %s failed: %s\n", options.timeseries_out.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote timeseries: %s (%zu runs)\n", options.timeseries_out.c_str(),
              sampler->runs().size());
}

void MaybeWriteProfile(const BenchOptions& options) {
  if (options.profile_out.empty()) {
    return;
  }
  if (Status status = Profiler::WriteFile(options.profile_out); !status.ok()) {
    std::fprintf(stderr, "profile export to %s failed: %s\n", options.profile_out.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote profile: %s\n\n%s", options.profile_out.c_str(),
              Profiler::SelfTimeTable(20).c_str());
}

void MaybeWriteTraceEvents(const BenchOptions& options, const std::string& workload) {
  TraceRecorder* recorder = BenchTraceRecorder(options);
  if (recorder == nullptr) {
    return;
  }
  TraceExportMetadata metadata;
  metadata.seed = options.seed;
  metadata.trace_events = options.events;
  metadata.workload = workload;
  if (!options.trace_events_out.empty()) {
    if (Status status = WriteEventsJsonl(recorder->runs(), metadata, options.trace_events_out);
        !status.ok()) {
      std::fprintf(stderr, "event trace export to %s failed: %s\n",
                   options.trace_events_out.c_str(), status.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote event trace: %s (%zu runs)\n", options.trace_events_out.c_str(),
                recorder->runs().size());
  }
  if (!options.trace_perfetto_out.empty()) {
    if (Status status = WritePerfettoTrace(recorder->runs(), options.trace_perfetto_out);
        !status.ok()) {
      std::fprintf(stderr, "perfetto trace export to %s failed: %s\n",
                   options.trace_perfetto_out.c_str(), status.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote perfetto trace: %s (open at ui.perfetto.dev)\n",
                options.trace_perfetto_out.c_str());
  }
}

SimulationResult MustRun(Simulator& simulator, Policy& policy) {
  Result<SimulationResult> result = simulator.Run(policy);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation of %s failed: %s\n", policy.Name().c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

SimulationResult MustRun(Simulator& simulator, PolicyKind kind, const PolicyParams& params) {
  auto policy = MakePolicy(kind, params);
  return MustRun(simulator, *policy);
}

void PrintBanner(const std::string& figure, const std::string& what, const BenchOptions& options,
                 std::uint64_t trace_events) {
  std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
  std::printf("workload: %llu events, seed %llu, warm-up %llu events\n",
              static_cast<unsigned long long>(trace_events),
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.WarmupFor(trace_events)));
  std::printf("config: 16 MB/client, 128 MB server, 8 KB blocks, ATM timing "
              "(250/200/400 us, 14.8 ms disk)\n\n");
}

void MaybeWriteJson(const BenchOptions& options, const SimulationConfig& config,
                    const std::vector<SimulationResult>& results) {
  MaybeWriteTraceEvents(options);
  MaybeWriteTimeseries(options);
  MaybeWriteProfile(options);
  if (options.json_out.empty()) {
    return;
  }
  MetricsExporter exporter;
  exporter.SetConfig(config);
  for (const SimulationResult& result : results) {
    exporter.AddResult(result);
  }
  if (Status status = exporter.WriteFile(options.json_out); !status.ok()) {
    std::fprintf(stderr, "metrics export to %s failed: %s\n", options.json_out.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote metrics document: %s (%zu results)\n", options.json_out.c_str(),
              results.size());
}

std::vector<std::string> ResultRow(const SimulationResult& result,
                                   const SimulationResult& baseline) {
  return {result.policy_name,
          FormatDouble(result.AverageReadTime(), 0) + " us",
          FormatDouble(result.SpeedupOver(baseline), 2) + "x",
          FormatPercent(result.LevelFraction(CacheLevel::kLocalMemory)),
          FormatPercent(result.LevelFraction(CacheLevel::kRemoteClient)),
          FormatPercent(result.LevelFraction(CacheLevel::kServerMemory)),
          FormatPercent(result.DiskRate())};
}

}  // namespace coopfs
