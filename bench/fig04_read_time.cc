// Standalone wrapper for the 'fig04_read_time' experiment. The experiment body lives
// in src/exp/specs/fig04_read_time.cc; run it here or via the coopfs_bench driver
// (`coopfs_bench --filter fig04_read_time`) — the output bytes are identical.
#include "src/exp/driver.h"

int main(int argc, char** argv) {
  return coopfs::ExperimentMain("fig04_read_time", argc, argv);
}
